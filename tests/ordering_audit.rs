//! Atomic-ordering audit: every `Ordering::` site in production code
//! must carry an adjacent `// ordering:` justification comment.
//!
//! The model checker (`crates/modelcheck`, `protocol-check`) proves the
//! runtime protocols' orderings minimal; this lint keeps the *prose*
//! honest — any new atomic site must state its contract next to the
//! code, where the next reader (and the next weakening attempt) will
//! find it. A site is justified when the line itself, or the comment
//! block reachable through at most [`CONTINUATION_BUDGET`] lines of the
//! same statement above it, contains `ordering:`.
//!
//! Files that mention orderings as *data* rather than as
//! synchronization sites (the checker's own memory model, the
//! minimality matrix tables) are exempted in [`EXEMPT`], each with its
//! reason.

use std::fs;
use std::path::{Path, PathBuf};

/// Files (path suffixes, `/`-separated) whose `Ordering::` mentions are
/// not synchronization sites.
const EXEMPT: &[(&str, &str)] = &[
    (
        "crates/modelcheck/src/",
        "the checker implements the memory model; orderings are its input data",
    ),
    (
        "crates/scheduler/src/modelcheck_suite.rs",
        "matrix rows and weakening tables name orderings as data",
    ),
];

/// Non-comment lines of one statement the scanner may cross while
/// walking up from a site to its justification comment (multi-line
/// method chains: `let n = self\n.count\n.fetch_add(...)`).
const CONTINUATION_BUDGET: usize = 3;

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn is_exempt(rel: &str) -> bool {
    EXEMPT.iter().any(|(suffix, _)| rel.contains(suffix))
}

/// Line ranges (0-based, inclusive start, exclusive end sentinel via
/// brace depth) covered by `#[cfg(test)] mod ... { ... }` regions.
fn in_test_region(lines: &[&str]) -> Vec<bool> {
    let mut masked = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].trim_start().starts_with("#[cfg(test)]") {
            // Find the opening brace of the gated item (skipping any
            // further attributes), then mask until its depth closes.
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                masked[j] = true;
                for ch in lines[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    masked
}

fn is_comment(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

/// Walks upward from the site line: through the current statement's
/// continuation lines to the nearest contiguous comment block, which
/// must contain `ordering:`.
fn justified(lines: &[&str], site: usize) -> bool {
    if lines[site].contains("// ordering:") {
        return true;
    }
    let mut budget = CONTINUATION_BUDGET;
    let mut j = site;
    while j > 0 {
        j -= 1;
        let t = lines[j].trim();
        if is_comment(t) {
            // Scan the whole contiguous comment block above.
            let mut k = j;
            loop {
                let t2 = lines[k].trim();
                if !is_comment(t2) {
                    return false;
                }
                if t2.contains("ordering:") {
                    return true;
                }
                if k == 0 {
                    return false;
                }
                k -= 1;
            }
        }
        if t.is_empty() || budget == 0 {
            return false;
        }
        budget -= 1;
    }
    false
}

#[test]
fn every_atomic_ordering_site_is_justified() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    for entry in fs::read_dir(root.join("crates")).expect("crates dir") {
        let src = entry.expect("crate dir").path().join("src");
        if src.is_dir() {
            rust_files(&src, &mut files);
        }
    }
    files.sort();
    assert!(
        files.len() > 10,
        "scanner found too few files — broken walk?"
    );

    let mut audited = 0usize;
    let mut violations = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .expect("under repo root")
            .to_string_lossy()
            .replace('\\', "/");
        if is_exempt(&rel) {
            continue;
        }
        let text = fs::read_to_string(path).expect("readable source file");
        let lines: Vec<&str> = text.lines().collect();
        let masked = in_test_region(&lines);
        for (i, line) in lines.iter().enumerate() {
            let t = line.trim_start();
            if masked[i] || is_comment(t) || t.starts_with("use ") {
                continue;
            }
            if !line.contains("Ordering::") {
                continue;
            }
            audited += 1;
            if !justified(&lines, i) {
                violations.push(format!("{rel}:{}: {}", i + 1, line.trim()));
            }
        }
    }

    assert!(
        violations.is_empty(),
        "atomic sites without an adjacent `// ordering:` justification \
         (state the contract, or exempt the file with a reason):\n  {}",
        violations.join("\n  ")
    );
    // The audit found the known production sites; a silent scanning
    // regression (e.g. everything suddenly masked as tests) fails here.
    assert!(
        audited >= 35,
        "only {audited} sites audited — scanner regression?"
    );
}

#[test]
fn exemptions_still_exist_and_are_minimal() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for (suffix, reason) in EXEMPT {
        assert!(!reason.is_empty());
        let probe = root.join(suffix.trim_end_matches('/'));
        assert!(
            probe.exists(),
            "exempt entry {suffix} no longer matches anything — drop it"
        );
    }
}
