//! Integration tests spanning the whole stack: machine model → island
//! layout → real threaded execution, and planner traces → simulator →
//! metrics, cross-checked against each other.

use islands_of_cores::islands::{
    estimate, extra_elements, plan_fused, plan_islands, plan_original, InitPolicy, IslandLayout,
    Partition, Variant, Workload,
};
use islands_of_cores::mpdata::{
    self, gaussian_pulse, mpdata_graph, IslandsExecutor, ReferenceExecutor,
};
use islands_of_cores::numa::{Op, SimConfig, UvParams};
use islands_of_cores::perf::{original_traffic, sustained_gflops, useful_flops};
use islands_of_cores::scheduler::WorkerPool;
use islands_of_cores::stencil::Region3;

/// The island layout derived from the *machine model* drives the
/// *real-thread* executor and still reproduces the reference bitwise —
/// the same partition/teams abstraction serves both worlds.
#[test]
fn machine_layout_drives_real_execution() {
    let machine = UvParams::uv2000(2).build(); // 16 cores, 2 islands
    let layout = IslandLayout::per_socket(&machine);
    let teams = layout.team_spec();
    let pool = WorkerPool::new(machine.core_count());

    let domain = Region3::of_extent(40, 12, 6);
    let fields = gaussian_pulse(domain, (0.25, 0.1, 0.0));
    let expect = ReferenceExecutor::new().step(&fields);
    let got = IslandsExecutor::new(&pool, teams, Variant::A.axis())
        .cache_bytes(256 * 1024)
        .step(&fields)
        .expect("island blocks fit the cache");
    assert_eq!(got.max_abs_diff(&expect), 0.0);
}

/// The planner's trace-level flop surplus equals the overlap analysis
/// (Table 2) — two independent code paths, one number.
#[test]
fn trace_extra_flops_match_overlap_analysis() {
    let machine = UvParams::uv2000(4).build();
    let w = Workload {
        domain: Region3::of_extent(128, 64, 8),
        steps: 1,
        cache_bytes: 1 << 20,
    };
    let flops = |ts: &islands_of_cores::numa::TraceSet| -> f64 {
        ts.ops
            .iter()
            .flatten()
            .map(|op| match *op {
                Op::Compute { flops } | Op::Stream { flops, .. } => flops,
                _ => 0.0,
            })
            .sum()
    };
    let base = flops(&plan_fused(&machine, &w, InitPolicy::ParallelFirstTouch).unwrap());
    let isl = flops(&plan_islands(&machine, &w, Variant::A).unwrap());
    let trace_extra = (isl - base) / base;

    let (graph, _) = mpdata_graph();
    let analysis = extra_elements(&graph, &Partition::one_d(w.domain, Variant::A, 4).unwrap());
    // Cells-weighted vs flops-weighted redundancy differ only through
    // per-stage flop weights; they must agree closely.
    let cell_extra = analysis.percent() / 100.0;
    assert!(
        (trace_extra - cell_extra).abs() < 0.02,
        "trace {trace_extra} vs analysis {cell_extra}"
    );
}

/// Useful flops are strategy-independent; sustained Gflop/s follows the
/// simulated times in the right order.
#[test]
fn simulated_orderings_and_metrics() {
    let w = Workload {
        domain: Region3::of_extent(256, 128, 16),
        steps: 4,
        cache_bytes: 2 << 20,
    };
    let cfg = SimConfig::default();
    let machine = UvParams::uv2000(8).build();
    let orig_serial = estimate(
        &machine,
        &plan_original(&machine, &w, InitPolicy::SerialFirstTouch),
        &w,
        &cfg,
    )
    .unwrap()
    .total_seconds;
    let orig = estimate(
        &machine,
        &plan_original(&machine, &w, InitPolicy::ParallelFirstTouch),
        &w,
        &cfg,
    )
    .unwrap()
    .total_seconds;
    let fused = estimate(
        &machine,
        &plan_fused(&machine, &w, InitPolicy::ParallelFirstTouch).unwrap(),
        &w,
        &cfg,
    )
    .unwrap()
    .total_seconds;
    let islands = estimate(
        &machine,
        &plan_islands(&machine, &w, Variant::A).unwrap(),
        &w,
        &cfg,
    )
    .unwrap()
    .total_seconds;

    // The paper's ordering on 8 sockets.
    assert!(islands < orig, "islands {islands} vs original {orig}");
    assert!(orig < fused, "original {orig} vs fused {fused} at P=8");
    assert!(
        fused < orig_serial,
        "fused {fused} vs serial-init {orig_serial}"
    );

    // Metrics layer agrees with raw times.
    let g_islands = sustained_gflops(w.domain, w.steps, islands);
    let g_orig = sustained_gflops(w.domain, w.steps, orig);
    assert!(g_islands > g_orig);
    assert!(useful_flops(w.domain, w.steps) > 0.0);
}

/// The analytic traffic model and the simulator agree on the original
/// version's DRAM byte count (the simulator moves exactly the bytes the
/// planner emits, which implement the analytic formula).
#[test]
fn traffic_model_matches_simulated_bytes() {
    let machine = UvParams::uv2000(2).build();
    let w = Workload {
        domain: Region3::of_extent(64, 32, 8),
        steps: 1,
        cache_bytes: 1 << 20,
    };
    let ts = plan_original(&machine, &w, InitPolicy::ParallelFirstTouch);
    let cfg = SimConfig::default();
    let est = estimate(&machine, &ts, &w, &cfg).unwrap();
    let simulated = est.report.mem_local_bytes + est.report.mem_remote_bytes;
    let (graph, _) = mpdata_graph();
    let analytic = original_traffic(&graph, w.domain, 1).bytes_per_step;
    let rel = (simulated - analytic).abs() / analytic;
    assert!(
        rel < 0.01,
        "simulated {simulated} vs analytic {analytic} ({rel})"
    );
}

/// End-to-end paper smoke test at reduced scale: every strategy runs,
/// islands wins at P = 14, and S_pr exceeds S_ov, mirroring Table 3's
/// structure.
#[test]
fn paper_smoke_reduced_scale() {
    let w = Workload {
        domain: Region3::of_extent(256, 128, 16),
        steps: 2,
        cache_bytes: 2 << 20,
    };
    let cfg = SimConfig::default();
    let machine = UvParams::uv2000(14).build();
    let orig = estimate(
        &machine,
        &plan_original(&machine, &w, InitPolicy::ParallelFirstTouch),
        &w,
        &cfg,
    )
    .unwrap()
    .total_seconds;
    let fused = estimate(
        &machine,
        &plan_fused(&machine, &w, InitPolicy::ParallelFirstTouch).unwrap(),
        &w,
        &cfg,
    )
    .unwrap()
    .total_seconds;
    let islands = estimate(
        &machine,
        &plan_islands(&machine, &w, Variant::A).unwrap(),
        &w,
        &cfg,
    )
    .unwrap()
    .total_seconds;
    let s_pr = fused / islands;
    let s_ov = orig / islands;
    assert!(islands < orig && islands < fused);
    assert!(s_pr > s_ov, "S_pr {s_pr} must exceed S_ov {s_ov} at P=14");
}

/// The real-thread executors stay bitwise-equal over multi-step runs
/// with the machine-derived layout (regression net for the whole
/// pipeline).
#[test]
fn multi_step_full_stack_equivalence() {
    let machine = UvParams::uv2000(2).build();
    let pool = WorkerPool::new(machine.core_count());
    let layout = IslandLayout::per_socket(&machine);
    let domain = Region3::of_extent(32, 16, 8);
    let mut a = mpdata::rotating_cone(domain, 0.3);
    let mut b = a.clone();
    IslandsExecutor::new(&pool, layout.team_spec(), Variant::A.axis())
        .cache_bytes(256 * 1024)
        .run(&mut a, 5)
        .unwrap();
    ReferenceExecutor::new().run(&mut b, 5);
    assert_eq!(a.x.max_abs_diff(&b.x), 0.0);
}
