//! Regression pins for the paper-scale *analytic* results — quantities
//! that are exact arithmetic (no simulation, no timing) and must never
//! drift. If a refactor changes any of these, it changed the
//! reproduction itself.

use islands_of_cores::islands::{extra_elements, Partition, Variant};
use islands_of_cores::mpdata::{flops_per_cell, mpdata_graph, MpdataProblem};
use islands_of_cores::numa::UvParams;
use islands_of_cores::stencil::Region3;

/// Table 2 at paper scale, variant A: exact percentages (compare with
/// the paper's 0.25/1.48/3.21 — same shape, our kernel formulation's
/// constant).
#[test]
fn table2_variant_a_values_pinned() {
    let (g, _) = mpdata_graph();
    let d = Region3::of_extent(1024, 512, 64);
    let pct = |n: usize| extra_elements(&g, &Partition::one_d(d, Variant::A, n).unwrap()).percent();
    assert!((pct(2) - 0.218_290_441_176_470_6).abs() < 1e-12);
    assert!((pct(7) - 1.309_742_647_058_823_6).abs() < 1e-12);
    assert!((pct(14) - 2.837_775_735_294_117_8).abs() < 1e-12);
    // Variant B is exactly 2 × variant A on this grid (interior cuts).
    let b2 = extra_elements(&g, &Partition::one_d(d, Variant::B, 2).unwrap()).percent();
    assert!((b2 - 2.0 * pct(2)).abs() < 1e-12);
}

/// The arithmetic intensity of the implemented kernels (drives every
/// Gflop/s figure).
#[test]
fn flops_per_cell_pinned() {
    assert_eq!(flops_per_cell(), 235.0);
    assert_eq!(MpdataProblem::with_iord(1).flops_per_cell(), 22.0);
    assert_eq!(MpdataProblem::with_iord(3).flops_per_cell(), 448.0);
}

/// Theoretical peaks of Table 4 row 1.
#[test]
fn table4_peaks_pinned() {
    for (p, peak) in [(1, 105.6), (4, 422.4), (12, 1267.2), (14, 1478.4)] {
        assert!((UvParams::uv2000(p).peak_gflops() - peak).abs() < 1e-9);
    }
}

/// Cumulative i-halo structure of the 17-stage graph: total span 38
/// slices (the source of variant A's 0.218 %/cut — the paper's ≈43
/// implies 0.247 %/cut).
#[test]
fn cumulative_halo_span_pinned() {
    let (g, _) = mpdata_graph();
    let total: i64 = g.cumulative_halos().iter().map(|h| h.i_neg + h.i_pos).sum();
    assert_eq!(total, 38);
}

/// Fig. 1's counts from the region machinery.
#[test]
fn fig1_counts_pinned() {
    use islands_of_cores::stencil::{
        Axis, FieldRole, FieldTable, StageDef, StageGraph, StageId, StencilPattern,
    };
    let mut t = FieldTable::new();
    let x = t.add("x", FieldRole::External);
    let a = t.add("A", FieldRole::Intermediate);
    let b = t.add("B", FieldRole::Intermediate);
    let c = t.add("C", FieldRole::Output);
    let p = || StencilPattern::from_offsets([(-1, 0, 0), (0, 0, 0), (1, 0, 0)]);
    let g = StageGraph::build(
        t,
        vec![
            StageDef {
                id: StageId(0),
                name: "s1".into(),
                outputs: vec![a],
                inputs: vec![(x, p())],
                flops_per_cell: 1.0,
            },
            StageDef {
                id: StageId(1),
                name: "s2".into(),
                outputs: vec![b],
                inputs: vec![(a, p())],
                flops_per_cell: 1.0,
            },
            StageDef {
                id: StageId(2),
                name: "s3".into(),
                outputs: vec![c],
                inputs: vec![(b, p())],
                flops_per_cell: 1.0,
            },
        ],
    )
    .unwrap();
    let domain = Region3::of_extent(8, 1, 1);
    let whole: usize = g
        .required_regions(domain, domain)
        .iter()
        .map(|r| r.cells())
        .sum();
    let split: usize = domain
        .split(Axis::I, 2)
        .into_iter()
        .map(|h| {
            g.required_regions(h, domain)
                .iter()
                .map(|r| r.cells())
                .sum::<usize>()
        })
        .sum();
    assert_eq!(split - whole, 6, "Fig. 1(c)'s extra updates");
}
