//! Determinism guarantees: identical inputs produce identical outputs —
//! for the simulator (bit-exact event schedules), for the real threaded
//! executors (independent of thread interleaving), and for the planners
//! (stable traces).

use islands_of_cores::islands::{
    estimate, plan_fused, plan_islands, plan_original, InitPolicy, Variant, Workload,
};
use islands_of_cores::mpdata::{rotating_cone, IslandsExecutor, OriginalExecutor};
use islands_of_cores::numa::{SimConfig, UvParams};
use islands_of_cores::scheduler::{TeamSpec, WorkerPool};
use islands_of_cores::stencil::{Axis, Region3};

#[test]
fn simulator_is_deterministic() {
    let machine = UvParams::uv2000(4).build();
    let w = Workload {
        domain: Region3::of_extent(128, 64, 16),
        steps: 1,
        cache_bytes: 1 << 20,
    };
    let cfg = SimConfig::default();
    for mk in [
        plan_original(&machine, &w, InitPolicy::SerialFirstTouch),
        plan_original(&machine, &w, InitPolicy::ParallelFirstTouch),
        plan_fused(&machine, &w, InitPolicy::ParallelFirstTouch).unwrap(),
        plan_islands(&machine, &w, Variant::A).unwrap(),
    ] {
        let a = estimate(&machine, &mk, &w, &cfg).unwrap();
        let b = estimate(&machine, &mk, &w, &cfg).unwrap();
        assert_eq!(a.total_seconds, b.total_seconds, "simulation must be bit-exact");
        assert_eq!(a.report.mem_remote_bytes, b.report.mem_remote_bytes);
        assert_eq!(a.report.barrier_episodes, b.report.barrier_episodes);
    }
}

#[test]
fn planners_are_deterministic() {
    let machine = UvParams::uv2000(3).build();
    let w = Workload {
        domain: Region3::of_extent(96, 48, 8),
        steps: 1,
        cache_bytes: 512 * 1024,
    };
    let a = plan_islands(&machine, &w, Variant::B).unwrap();
    let b = plan_islands(&machine, &w, Variant::B).unwrap();
    assert_eq!(a.op_count(), b.op_count());
    for (sa, sb) in a.ops.iter().zip(&b.ops) {
        assert_eq!(sa, sb, "trace streams must match op for op");
    }
}

#[test]
fn threaded_executors_are_schedule_independent() {
    // Ten repetitions under the OS scheduler's whims: every run must be
    // bitwise identical (disjoint writes + barriers leave no room for
    // interleaving effects).
    let d = Region3::of_extent(24, 16, 6);
    let fields = rotating_cone(d, 0.3);
    let pool = WorkerPool::new(8);
    let islands = IslandsExecutor::new(&pool, TeamSpec::even(8, 4), Axis::I)
        .cache_bytes(128 * 1024);
    let original = OriginalExecutor::new(&pool);
    let first_i = islands.step(&fields).unwrap();
    let first_o = original.step(&fields);
    for run in 0..10 {
        assert_eq!(
            islands.step(&fields).unwrap().max_abs_diff(&first_i),
            0.0,
            "islands run {run} diverged"
        );
        assert_eq!(
            original.step(&fields).max_abs_diff(&first_o),
            0.0,
            "original run {run} diverged"
        );
    }
}
