//! Determinism guarantees: identical inputs produce identical outputs —
//! for the simulator (bit-exact event schedules), for the real threaded
//! executors (independent of thread interleaving), and for the planners
//! (stable traces).

use islands_of_cores::islands::{
    estimate, plan_fused, plan_islands, plan_original, InitPolicy, Variant, Workload,
};
use islands_of_cores::mpdata::{
    gaussian_pulse, random_fields, rotating_cone, IslandsExecutor, OriginalExecutor,
};
use islands_of_cores::numa::{SimConfig, UvParams};
use islands_of_cores::scheduler::{TeamSpec, WorkerPool};
use islands_of_cores::stencil::rng::{hash_f64_slice, Xoshiro256pp};
use islands_of_cores::stencil::{Axis, Region3};

/// Field generators are a pure function of the seed: two generators
/// built from identical seeds produce bit-identical fields, and the
/// fingerprints are pinned so a silent change to the in-repo PRNG (or
/// to the generators) fails loudly here rather than shifting every
/// randomized test in the suite.
#[test]
fn field_generators_are_seed_deterministic() {
    let d = Region3::of_extent(16, 12, 8);

    // gaussian_pulse takes no RNG, but its output feeds the same
    // fingerprinting path — pin it alongside.
    let ga = gaussian_pulse(d, (0.2, 0.1, 0.0));
    let gb = gaussian_pulse(d, (0.2, 0.1, 0.0));
    assert_eq!(
        hash_f64_slice(ga.x.as_slice()),
        hash_f64_slice(gb.x.as_slice())
    );
    assert_eq!(hash_f64_slice(ga.x.as_slice()), 0x4420_7820_76A4_26FA);

    let mut rng_a = Xoshiro256pp::seed_from_u64(0xD2A7_2026);
    let mut rng_b = Xoshiro256pp::seed_from_u64(0xD2A7_2026);
    let fa = random_fields(&mut rng_a, d, 0.8);
    let fb = random_fields(&mut rng_b, d, 0.8);
    let pins: [(u64, &str); 5] = [
        (0xD86D_A5B5_D342_67A9, "x"),
        (0x0B08_FB3C_DF26_84BF, "u1"),
        (0x2693_AE8C_E202_78D6, "u2"),
        (0x6D59_B406_066E_92C6, "u3"),
        (0x9536_D1BC_CF8E_C717, "h"),
    ];
    let fields_a = [&fa.x, &fa.u1, &fa.u2, &fa.u3, &fa.h];
    let fields_b = [&fb.x, &fb.u1, &fb.u2, &fb.u3, &fb.h];
    for ((a, b), (pin, name)) in fields_a.iter().zip(fields_b).zip(pins) {
        let ha = hash_f64_slice(a.as_slice());
        assert_eq!(
            ha,
            hash_f64_slice(b.as_slice()),
            "field {name} must be a pure function of the seed"
        );
        assert_eq!(ha, pin, "field {name} drifted from its pinned fingerprint");
    }
}

#[test]
fn simulator_is_deterministic() {
    let machine = UvParams::uv2000(4).build();
    let w = Workload {
        domain: Region3::of_extent(128, 64, 16),
        steps: 1,
        cache_bytes: 1 << 20,
    };
    let cfg = SimConfig::default();
    for mk in [
        plan_original(&machine, &w, InitPolicy::SerialFirstTouch),
        plan_original(&machine, &w, InitPolicy::ParallelFirstTouch),
        plan_fused(&machine, &w, InitPolicy::ParallelFirstTouch).unwrap(),
        plan_islands(&machine, &w, Variant::A).unwrap(),
    ] {
        let a = estimate(&machine, &mk, &w, &cfg).unwrap();
        let b = estimate(&machine, &mk, &w, &cfg).unwrap();
        assert_eq!(
            a.total_seconds, b.total_seconds,
            "simulation must be bit-exact"
        );
        assert_eq!(a.report.mem_remote_bytes, b.report.mem_remote_bytes);
        assert_eq!(a.report.barrier_episodes, b.report.barrier_episodes);
    }
}

#[test]
fn planners_are_deterministic() {
    let machine = UvParams::uv2000(3).build();
    let w = Workload {
        domain: Region3::of_extent(96, 48, 8),
        steps: 1,
        cache_bytes: 512 * 1024,
    };
    let a = plan_islands(&machine, &w, Variant::B).unwrap();
    let b = plan_islands(&machine, &w, Variant::B).unwrap();
    assert_eq!(a.op_count(), b.op_count());
    for (sa, sb) in a.ops.iter().zip(&b.ops) {
        assert_eq!(sa, sb, "trace streams must match op for op");
    }
}

#[test]
fn threaded_executors_are_schedule_independent() {
    // Ten repetitions under the OS scheduler's whims: every run must be
    // bitwise identical (disjoint writes + barriers leave no room for
    // interleaving effects).
    let d = Region3::of_extent(24, 16, 6);
    let fields = rotating_cone(d, 0.3);
    let pool = WorkerPool::new(8);
    let islands =
        IslandsExecutor::new(&pool, TeamSpec::even(8, 4), Axis::I).cache_bytes(128 * 1024);
    let original = OriginalExecutor::new(&pool);
    let first_i = islands.step(&fields).unwrap();
    let first_o = original.step(&fields);
    for run in 0..10 {
        assert_eq!(
            islands.step(&fields).unwrap().max_abs_diff(&first_i),
            0.0,
            "islands run {run} diverged"
        );
        assert_eq!(
            original.step(&fields).max_abs_diff(&first_o),
            0.0,
            "original run {run} diverged"
        );
    }
}
