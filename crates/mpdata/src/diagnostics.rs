//! Solution diagnostics: error norms and CFL validation.

use crate::fields::MpdataFields;
use std::error::Error;
use std::fmt;
use stencil_engine::Array3;

/// L1/L2/L∞ error norms between two fields on the intersection of their
/// regions.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct ErrorNorms {
    /// Mean absolute error.
    pub l1: f64,
    /// Root-mean-square error.
    pub l2: f64,
    /// Largest absolute error.
    pub linf: f64,
}

/// Computes the error norms of `a` against `b`.
pub fn error_norms(a: &Array3, b: &Array3) -> ErrorNorms {
    let r = a.region().intersect(b.region());
    let n = r.cells();
    if n == 0 {
        return ErrorNorms::default();
    }
    let mut l1 = 0.0;
    let mut l2 = 0.0;
    let mut linf = 0.0_f64;
    for (i, j, k) in r.points() {
        let d = (a.get(i, j, k) - b.get(i, j, k)).abs();
        l1 += d;
        l2 += d * d;
        linf = linf.max(d);
    }
    ErrorNorms {
        l1: l1 / n as f64,
        l2: (l2 / n as f64).sqrt(),
        linf,
    }
}

/// A violation of MPDATA's stability preconditions.
#[derive(Clone, Debug, PartialEq)]
pub enum CflViolation {
    /// The scalar field has a negative value (MPDATA is positive
    /// definite: inputs must be non-negative).
    NegativeScalar {
        /// The offending minimum.
        min: f64,
    },
    /// The density is not strictly positive somewhere.
    NonPositiveDensity {
        /// The offending minimum.
        min: f64,
    },
    /// The donor-cell positivity bound `Σ_faces outflow ≤ h` can be
    /// exceeded at some cell.
    CourantTooLarge {
        /// The largest observed `Σ outflow / h`.
        worst: f64,
    },
}

impl fmt::Display for CflViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CflViolation::NegativeScalar { min } => {
                write!(f, "scalar field has negative values (min {min})")
            }
            CflViolation::NonPositiveDensity { min } => {
                write!(f, "density must be strictly positive (min {min})")
            }
            CflViolation::CourantTooLarge { worst } => {
                write!(
                    f,
                    "donor-cell positivity bound exceeded (worst Σ|out|/h = {worst})"
                )
            }
        }
    }
}

impl Error for CflViolation {}

impl MpdataFields {
    /// The largest per-cell outflow Courant sum `Σ_faces outflow / h`
    /// over the domain — must stay ≤ 1 for the upwind pass to be
    /// positivity-preserving.
    pub fn max_outflow_courant(&self) -> f64 {
        let d = self.domain();
        let face = |a: &Array3, i: i64, j: i64, k: i64| {
            a.get(
                i.clamp(d.i.lo, d.i.hi - 1),
                j.clamp(d.j.lo, d.j.hi - 1),
                k.clamp(d.k.lo, d.k.hi - 1),
            )
        };
        let mut worst = 0.0_f64;
        for (i, j, k) in d.points() {
            let out = face(&self.u1, i + 1, j, k).max(0.0) - face(&self.u1, i, j, k).min(0.0)
                + face(&self.u2, i, j + 1, k).max(0.0)
                - face(&self.u2, i, j, k).min(0.0)
                + face(&self.u3, i, j, k + 1).max(0.0)
                - face(&self.u3, i, j, k).min(0.0);
            worst = worst.max(out / self.h.get(i, j, k));
        }
        worst
    }

    /// Validates the stability preconditions.
    ///
    /// # Errors
    ///
    /// Returns the first [`CflViolation`] found: negative scalar input,
    /// non-positive density, or an outflow Courant sum above 1.
    pub fn validate(&self) -> Result<(), CflViolation> {
        let min_x = self.x.min();
        if min_x < 0.0 {
            return Err(CflViolation::NegativeScalar { min: min_x });
        }
        let min_h = self.h.min();
        if min_h <= 0.0 {
            return Err(CflViolation::NonPositiveDensity { min: min_h });
        }
        let worst = self.max_outflow_courant();
        if worst > 1.0 {
            return Err(CflViolation::CourantTooLarge { worst });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::{gaussian_pulse, random_fields};
    use stencil_engine::rng::Xoshiro256pp;
    use stencil_engine::Region3;

    #[test]
    fn norms_of_identical_fields_are_zero() {
        let d = Region3::of_extent(6, 5, 4);
        let a = Array3::from_fn(d, |i, j, k| (i + j + k) as f64);
        let n = error_norms(&a, &a.clone());
        assert_eq!(n, ErrorNorms::default());
    }

    #[test]
    fn norms_orderings() {
        let d = Region3::of_extent(4, 4, 4);
        let a = Array3::filled(d, 1.0);
        let mut b = Array3::filled(d, 1.0);
        b.set(0, 0, 0, 3.0); // one outlier of 2
        let n = error_norms(&a, &b);
        assert!(n.l1 < n.l2 && n.l2 < n.linf, "{n:?}");
        assert_eq!(n.linf, 2.0);
        assert!((n.l1 - 2.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_generators() {
        let d = Region3::of_extent(8, 6, 4);
        gaussian_pulse(d, (0.2, 0.1, 0.05)).validate().unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        random_fields(&mut rng, d, 0.9).validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_inputs() {
        let d = Region3::of_extent(4, 4, 4);
        let mut f = gaussian_pulse(d, (0.2, 0.0, 0.0));
        f.x.set(1, 1, 1, -0.5);
        assert!(matches!(
            f.validate(),
            Err(CflViolation::NegativeScalar { .. })
        ));

        let mut f = gaussian_pulse(d, (0.2, 0.0, 0.0));
        f.h.set(0, 0, 0, 0.0);
        assert!(matches!(
            f.validate(),
            Err(CflViolation::NonPositiveDensity { .. })
        ));

        let mut f = gaussian_pulse(d, (0.2, 0.0, 0.0));
        // Diverging flow at one cell: both i-faces flow outward hard.
        f.u1.set(2, 2, 2, -0.8);
        f.u1.set(3, 2, 2, 0.8);
        let err = f.validate().unwrap_err();
        assert!(matches!(err, CflViolation::CourantTooLarge { worst } if worst > 1.0));
    }

    #[test]
    fn max_outflow_matches_uniform_flow() {
        let d = Region3::of_extent(6, 6, 6);
        let f = gaussian_pulse(d, (0.3, 0.2, 0.1));
        // Uniform interior flow: outflow per cell = 0.3 + 0.2 + 0.1.
        assert!((f.max_outflow_courant() - 0.6).abs() < 1e-12);
    }
}
