//! `mpdata-run` — command-line driver for the MPDATA executors.
//!
//! ```text
//! mpdata-run [--domain NI,NJ,NK] [--steps N] [--strategy reference|original|fused|islands|exchange]
//!            [--workers W] [--islands P] [--iord N] [--boundary open|periodic]
//!            [--problem gaussian|cone|random] [--cache BYTES] [--verify]
//!            [--trace OUT.json] [--metrics]
//! ```
//!
//! Example: advect a rotating cone for 50 steps on 2 islands × 2 cores
//! and verify bitwise against the serial reference:
//!
//! ```text
//! cargo run --release -p mpdata --bin mpdata-run -- \
//!     --problem cone --steps 50 --strategy islands --workers 4 --islands 2 --verify
//! ```
//!
//! `--trace out.json` records the timed run with the `islands-trace`
//! recorder and writes a Chrome trace-event file (open in
//! `chrome://tracing` or Perfetto); `--metrics` prints the per-island
//! phase breakdown (kernel / barrier / swap time, redundant cells).
//! Both only affect the timed run — the `--verify` reference pass is
//! never traced.

use mpdata::{
    gaussian_pulse, random_fields, rotating_cone, Boundary, FusedExecutor, IslandsExecutor,
    MpdataFields, MpdataProblem, OriginalExecutor, ReferenceExecutor,
};
use std::process::ExitCode;
use std::time::Instant;
use stencil_engine::rng::Xoshiro256pp;
use stencil_engine::{Axis, Region3};
use work_scheduler::{TeamSpec, WorkerPool};

#[derive(Debug)]
struct Args {
    domain: (usize, usize, usize),
    steps: usize,
    strategy: String,
    workers: usize,
    islands: usize,
    iord: usize,
    boundary: Boundary,
    problem: String,
    cache: usize,
    verify: bool,
    trace: Option<String>,
    metrics: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            domain: (64, 32, 16),
            steps: 20,
            strategy: "islands".into(),
            workers: 4,
            islands: 2,
            iord: 2,
            boundary: Boundary::Open,
            problem: "gaussian".into(),
            cache: 1 << 20,
            verify: false,
            trace: None,
            metrics: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--domain" => {
                let v = val()?;
                let parts: Vec<usize> = v
                    .split(',')
                    .map(|p| p.parse().map_err(|e| format!("bad --domain: {e}")))
                    .collect::<Result<_, _>>()?;
                if parts.len() != 3 || parts.contains(&0) {
                    return Err("--domain needs NI,NJ,NK (all positive)".into());
                }
                a.domain = (parts[0], parts[1], parts[2]);
            }
            "--steps" => a.steps = val()?.parse().map_err(|e| format!("bad --steps: {e}"))?,
            "--strategy" => a.strategy = val()?,
            "--workers" => a.workers = val()?.parse().map_err(|e| format!("bad --workers: {e}"))?,
            "--islands" => a.islands = val()?.parse().map_err(|e| format!("bad --islands: {e}"))?,
            "--iord" => a.iord = val()?.parse().map_err(|e| format!("bad --iord: {e}"))?,
            "--boundary" => {
                a.boundary = match val()?.as_str() {
                    "open" => Boundary::Open,
                    "periodic" => Boundary::Periodic,
                    other => return Err(format!("unknown boundary {other:?}")),
                }
            }
            "--problem" => a.problem = val()?,
            "--cache" => a.cache = val()?.parse().map_err(|e| format!("bad --cache: {e}"))?,
            "--verify" => a.verify = true,
            "--trace" => a.trace = Some(val()?),
            "--metrics" => a.metrics = true,
            "--help" | "-h" => {
                println!(
                    "mpdata-run --domain NI,NJ,NK --steps N --strategy reference|original|fused|islands|exchange\n\
                     \x20          --workers W --islands P --iord N --boundary open|periodic\n\
                     \x20          --problem gaussian|cone|random --cache BYTES --verify\n\
                     \x20          --trace OUT.json --metrics"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if a.workers == 0 || a.islands == 0 || a.iord == 0 {
        return Err("--workers, --islands and --iord must be positive".into());
    }
    if a.workers % a.islands != 0 {
        return Err(format!(
            "--workers ({}) must be divisible by --islands ({})",
            a.workers, a.islands
        ));
    }
    Ok(a)
}

fn make_fields(a: &Args) -> MpdataFields {
    let d = Region3::of_extent(a.domain.0, a.domain.1, a.domain.2);
    match a.problem.as_str() {
        "cone" => rotating_cone(d, 0.35),
        "random" => random_fields(&mut Xoshiro256pp::seed_from_u64(7), d, 0.8),
        _ => {
            let mut f = gaussian_pulse(d, (0.3, 0.0, 0.0));
            if a.boundary == Boundary::Open {
                // keep the default open pulse
            } else {
                f.close_boundaries();
            }
            f
        }
    }
}

fn main() -> ExitCode {
    let a = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\nrun with --help for usage");
            return ExitCode::FAILURE;
        }
    };
    if a.boundary == Boundary::Periodic
        && matches!(a.strategy.as_str(), "fused" | "islands" | "exchange")
    {
        eprintln!(
            "error: --boundary periodic is only supported by --strategy reference|original\n\
             (cache-blocked schedules cannot express wrap-around dependencies)"
        );
        return ExitCode::FAILURE;
    }
    let problem = || MpdataProblem::with_iord(a.iord).with_boundary(a.boundary);
    let mut fields = make_fields(&a);
    let mass0 = fields.mass();
    let reference = a.verify.then(|| {
        let mut r = fields.clone();
        ReferenceExecutor::with_problem(problem()).run(&mut r, a.steps);
        r
    });

    let pool = WorkerPool::new(a.workers);
    let tracing = a.trace.is_some() || a.metrics;
    let session = tracing.then(|| {
        // Room for every event of the run: ~2 spans per (step, stage,
        // block) per worker, with generous slack so long runs do not
        // wrap the rings.
        islands_trace::set_ring_capacity((a.steps * 512).clamp(1 << 16, 1 << 21));
        islands_trace::Session::start()
    });
    let t0 = Instant::now();
    let run = match a.strategy.as_str() {
        "reference" => {
            ReferenceExecutor::with_problem(problem()).run(&mut fields, a.steps);
            Ok(())
        }
        "original" => {
            OriginalExecutor::with_problem(&pool, problem()).run(&mut fields, a.steps);
            Ok(())
        }
        "fused" => FusedExecutor::with_problem(&pool, problem())
            .cache_bytes(a.cache)
            .run(&mut fields, a.steps)
            .map_err(|e| e.to_string()),
        "islands" => IslandsExecutor::with_problem(
            &pool,
            TeamSpec::even(a.workers, a.islands),
            Axis::I,
            problem(),
        )
        .cache_bytes(a.cache)
        .run(&mut fields, a.steps)
        .map_err(|e| e.to_string()),
        "exchange" => {
            mpdata::ExchangeExecutor::with_problem(
                &pool,
                TeamSpec::even(a.workers, a.islands),
                Axis::I,
                problem(),
            )
            .run(&mut fields, a.steps);
            Ok(())
        }
        other => Err(format!("unknown strategy {other:?}")),
    };
    if let Err(e) = run {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let elapsed = t0.elapsed();
    let drained = session.map(islands_trace::Session::finish);

    println!(
        "strategy={} domain={}x{}x{} steps={} workers={} islands={} iord={} boundary={:?}",
        a.strategy,
        a.domain.0,
        a.domain.1,
        a.domain.2,
        a.steps,
        a.workers,
        a.islands,
        a.iord,
        a.boundary,
    );
    println!("elapsed      : {elapsed:.2?}");
    println!(
        "throughput   : {:.2} Mcells/s",
        (fields.domain().cells() * a.steps) as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!("mass drift   : {:+.3e}", fields.mass() / mass0 - 1.0);
    println!(
        "min / max    : {:+.4e} / {:+.4e}",
        fields.x.min(),
        fields.x.max()
    );
    if let Some(r) = reference {
        let diff = fields.x.max_abs_diff(&r.x);
        println!("verify       : max |Δ| vs reference = {diff:.3e}");
        if diff != 0.0 {
            eprintln!("error: strategy diverged from the reference");
            return ExitCode::FAILURE;
        }
    }
    if let Some(drained) = drained {
        if a.metrics {
            let metrics = islands_trace::metrics::RunMetrics::aggregate(&drained);
            print!("{}", metrics.render());
        }
        if let Some(path) = &a.trace {
            let graph = problem().graph().clone();
            let names: Vec<&str> = graph.stages().iter().map(|st| st.name.as_str()).collect();
            let text = islands_trace::chrome::export(&drained, &names);
            // Self-check the artifact with the in-repo validator before
            // writing it, so a broken trace fails loudly here rather
            // than in a viewer.
            if let Err(e) = islands_trace::chrome::validate(&text) {
                eprintln!("error: generated trace failed validation: {e}");
                return ExitCode::FAILURE;
            }
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "trace        : {} events ({} dropped) -> {path}",
                drained.events.len(),
                drained.dropped
            );
        }
    }
    ExitCode::SUCCESS
}
