//! `mpdata-run` — command-line driver for the MPDATA executors.
//!
//! ```text
//! mpdata-run [--domain NI,NJ,NK] [--steps N] [--strategy reference|original|fused|islands|exchange]
//!            [--workers W] [--islands P] [--iord N] [--boundary open|periodic]
//!            [--problem gaussian|cone|random] [--cache BYTES] [--verify]
//!            [--balance uniform|model|measured] [--self-schedule N]
//!            [--fuse-steps K] [--tile auto|TIxTJ] [--trace OUT.json] [--metrics]
//!            [--metrics-json OUT.json] [--serve-metrics ADDR] [--metrics-interval SECS]
//! ```
//!
//! Example: advect a rotating cone for 50 steps on 2 islands × 2 cores
//! and verify bitwise against the serial reference:
//!
//! ```text
//! cargo run --release -p mpdata --bin mpdata-run -- \
//!     --problem cone --steps 50 --strategy islands --workers 4 --islands 2 --verify
//! ```
//!
//! `--trace out.json` records the timed run with the `islands-trace`
//! recorder and writes a Chrome trace-event file (open in
//! `chrome://tracing` or Perfetto); `--metrics` prints the per-island
//! phase breakdown (kernel / barrier / swap time, redundant cells,
//! per-worker imbalance summary). Both only affect the timed run — the
//! `--verify` reference pass is never traced. `--metrics-json OUT.json`
//! writes the same per-step/per-island breakdown as a strict JSON
//! document (self-validated through the in-repo parser before the file
//! is written).
//!
//! The *live* telemetry plane: `--serve-metrics ADDR` attaches a
//! background collector that drains the trace rings mid-run into an
//! atomic metrics registry and serves it over plain HTTP —
//! `GET /metrics` (Prometheus text exposition) and `GET /metrics.json`
//! (strict JSON snapshot) — from a std-only thread-per-connection
//! listener. `--metrics-interval SECS` prints a one-line registry
//! snapshot to stderr on that cadence. Both imply tracing; neither
//! perturbs the workers beyond the wait-free ring writes they already
//! do.
//!
//! `--balance` (islands strategy only) picks the island cut positions:
//! `uniform` splits the axis evenly, `model` solves non-uniform cuts
//! that equalize the static cost model's per-island cost (interior plus
//! redundant halo cells, stage-weighted), and `measured` first runs a
//! few *untraced-output* probe steps on cloned fields under the uniform
//! cuts, feeds the observed per-island kernel rates back into the
//! model, and re-cuts. `--self-schedule N` splits each barrier-fenced
//! epoch into N chunks per rank that the island's workers claim
//! dynamically (islands and fused strategies). `--fuse-steps K` fuses
//! K whole time steps into one replay epoch (temporal blocking):
//! islands widen their halos by K cumulative stencil radii and pay the
//! global-barrier pair once per K steps — still bit-identical under
//! `--verify` (islands and fused strategies). `--tile auto|TIxTJ`
//! switches those strategies to tile-fused execution: each island's
//! part is cut into (i, j) column tiles and every tile's whole stage
//! chain replays back to back against rank-private scratch shrunk to
//! the tile's halo footprint, so intermediates stay cache-resident
//! instead of streaming through main memory once per stage. `auto`
//! sizes tiles from `--cache`; an explicit `TIxTJ` (e.g. `8x16`)
//! forces the extents. Also bit-identical under `--verify`.

use mpdata::{
    gaussian_pulse, random_fields, rotating_cone, Boundary, FusedExecutor, IslandsExecutor,
    MpdataFields, MpdataProblem, OriginalExecutor, ReferenceExecutor, TileMode,
};
use std::process::ExitCode;
use std::time::Instant;
use stencil_engine::rng::Xoshiro256pp;
use stencil_engine::{balanced_cuts, measured_plane_scale, Axis, CostModel, Region3};
use work_scheduler::{TeamSpec, WorkerPool};

#[derive(Debug)]
struct Args {
    domain: (usize, usize, usize),
    steps: usize,
    strategy: String,
    workers: usize,
    islands: usize,
    iord: usize,
    boundary: Boundary,
    problem: String,
    cache: usize,
    verify: bool,
    balance: String,
    self_schedule: usize,
    fuse_steps: usize,
    tile: TileMode,
    trace: Option<String>,
    metrics: bool,
    metrics_json: Option<String>,
    serve_metrics: Option<String>,
    metrics_interval: Option<u64>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            domain: (64, 32, 16),
            steps: 20,
            strategy: "islands".into(),
            workers: 4,
            islands: 2,
            iord: 2,
            boundary: Boundary::Open,
            problem: "gaussian".into(),
            cache: 1 << 20,
            verify: false,
            balance: "uniform".into(),
            self_schedule: 0,
            fuse_steps: 1,
            tile: TileMode::Off,
            trace: None,
            metrics: false,
            metrics_json: None,
            serve_metrics: None,
            metrics_interval: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--domain" => {
                let v = val()?;
                let parts: Vec<usize> = v
                    .split(',')
                    .map(|p| p.parse().map_err(|e| format!("bad --domain: {e}")))
                    .collect::<Result<_, _>>()?;
                if parts.len() != 3 || parts.contains(&0) {
                    return Err("--domain needs NI,NJ,NK (all positive)".into());
                }
                a.domain = (parts[0], parts[1], parts[2]);
            }
            "--steps" => a.steps = val()?.parse().map_err(|e| format!("bad --steps: {e}"))?,
            "--strategy" => a.strategy = val()?,
            "--workers" => a.workers = val()?.parse().map_err(|e| format!("bad --workers: {e}"))?,
            "--islands" => a.islands = val()?.parse().map_err(|e| format!("bad --islands: {e}"))?,
            "--iord" => a.iord = val()?.parse().map_err(|e| format!("bad --iord: {e}"))?,
            "--boundary" => {
                a.boundary = match val()?.as_str() {
                    "open" => Boundary::Open,
                    "periodic" => Boundary::Periodic,
                    other => return Err(format!("unknown boundary {other:?}")),
                }
            }
            "--problem" => a.problem = val()?,
            "--cache" => a.cache = val()?.parse().map_err(|e| format!("bad --cache: {e}"))?,
            "--verify" => a.verify = true,
            "--balance" => a.balance = val()?,
            "--self-schedule" => {
                a.self_schedule = val()?
                    .parse()
                    .map_err(|e| format!("bad --self-schedule: {e}"))?;
                if a.self_schedule == 0 {
                    return Err("--self-schedule needs at least 1 chunk per rank".into());
                }
            }
            "--fuse-steps" => {
                a.fuse_steps = val()?
                    .parse()
                    .map_err(|e| format!("bad --fuse-steps: {e}"))?;
                if a.fuse_steps == 0 {
                    return Err("--fuse-steps needs at least 1".into());
                }
            }
            "--tile" => {
                let v = val()?;
                a.tile = if v == "auto" {
                    TileMode::Auto
                } else {
                    let (ti, tj) = v
                        .split_once('x')
                        .ok_or_else(|| format!("bad --tile {v:?}; use auto or TIxTJ"))?;
                    let ti: usize = ti.parse().map_err(|e| format!("bad --tile: {e}"))?;
                    let tj: usize = tj.parse().map_err(|e| format!("bad --tile: {e}"))?;
                    if ti == 0 || tj == 0 {
                        return Err("--tile extents must be positive".into());
                    }
                    TileMode::Fixed { ti, tj }
                };
            }
            "--trace" => a.trace = Some(val()?),
            "--metrics" => a.metrics = true,
            "--metrics-json" => a.metrics_json = Some(val()?),
            "--serve-metrics" => a.serve_metrics = Some(val()?),
            "--metrics-interval" => {
                let secs: u64 = val()?
                    .parse()
                    .map_err(|e| format!("bad --metrics-interval: {e}"))?;
                if secs == 0 {
                    return Err("--metrics-interval needs at least 1 second".into());
                }
                a.metrics_interval = Some(secs);
            }
            "--help" | "-h" => {
                println!(
                    "mpdata-run --domain NI,NJ,NK --steps N --strategy reference|original|fused|islands|exchange\n\
                     \x20          --workers W --islands P --iord N --boundary open|periodic\n\
                     \x20          --problem gaussian|cone|random --cache BYTES --verify\n\
                     \x20          --balance uniform|model|measured --self-schedule N\n\
                     \x20          --fuse-steps K --tile auto|TIxTJ --trace OUT.json --metrics\n\
                     \x20          --metrics-json OUT.json --serve-metrics ADDR --metrics-interval SECS"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if a.workers == 0 || a.islands == 0 || a.iord == 0 {
        return Err("--workers, --islands and --iord must be positive".into());
    }
    if a.workers % a.islands != 0 {
        return Err(format!(
            "--workers ({}) must be divisible by --islands ({})",
            a.workers, a.islands
        ));
    }
    if !matches!(a.balance.as_str(), "uniform" | "model" | "measured") {
        return Err(format!(
            "unknown --balance {:?}; use uniform|model|measured",
            a.balance
        ));
    }
    if a.balance != "uniform" && a.strategy != "islands" {
        return Err("--balance model|measured only applies to --strategy islands".into());
    }
    if a.self_schedule > 0 && !matches!(a.strategy.as_str(), "islands" | "fused") {
        return Err("--self-schedule only applies to --strategy islands|fused".into());
    }
    if a.fuse_steps > 1 && !matches!(a.strategy.as_str(), "islands" | "fused") {
        return Err("--fuse-steps only applies to --strategy islands|fused".into());
    }
    if a.tile != TileMode::Off && !matches!(a.strategy.as_str(), "islands" | "fused") {
        return Err("--tile only applies to --strategy islands|fused".into());
    }
    Ok(a)
}

fn make_fields(a: &Args) -> MpdataFields {
    let d = Region3::of_extent(a.domain.0, a.domain.1, a.domain.2);
    match a.problem.as_str() {
        "cone" => rotating_cone(d, 0.35),
        "random" => random_fields(&mut Xoshiro256pp::seed_from_u64(7), d, 0.8),
        _ => {
            let mut f = gaussian_pulse(d, (0.3, 0.0, 0.0));
            if a.boundary == Boundary::Open {
                // keep the default open pulse
            } else {
                f.close_boundaries();
            }
            f
        }
    }
}

/// Solves the island cut positions for `--balance model|measured`.
///
/// `measured` runs a short traced probe on cloned fields under the
/// uniform cuts and scales the cost model's per-plane weights by the
/// observed per-island kernel rates before re-cutting.
fn balanced_partition(
    a: &Args,
    pool: &WorkerPool,
    domain: Region3,
    mode: &str,
    problem: impl Fn() -> MpdataProblem,
) -> Result<Vec<Region3>, String> {
    let prob = problem();
    let graph = prob.graph();
    let mut model = CostModel::from_graph(graph);
    if mode == "measured" {
        const PROBE_STEPS: usize = 3;
        let uniform = domain.split(Axis::I, a.islands);
        let probe = IslandsExecutor::with_problem(
            pool,
            TeamSpec::even(a.workers, a.islands),
            Axis::I,
            problem(),
        )
        .cache_bytes(a.cache)
        .with_partition(uniform.clone());
        let mut f = make_fields(a);
        probe
            .run(&mut f, 1)
            .map_err(|e| format!("balance probe: {e}"))?; // plan build
        let session = islands_trace::Session::start();
        let run = probe.run(&mut f, PROBE_STEPS);
        let totals = islands_trace::metrics::RunMetrics::aggregate(&session.finish()).totals();
        run.map_err(|e| format!("balance probe: {e}"))?;
        let mut stats = vec![(0_u64, 0_u64); a.islands];
        for m in &totals {
            if m.island != islands_trace::NO_ISLAND && (m.island as usize) < a.islands {
                stats[m.island as usize] = (m.kernel_ns, m.computed_cells);
            }
        }
        let scale = measured_plane_scale(&uniform, Axis::I, domain.range(Axis::I), &stats);
        model = model.with_plane_scale(scale);
    }
    Ok(balanced_cuts(
        graph,
        domain,
        domain,
        Axis::I,
        a.islands,
        &model,
    ))
}

fn main() -> ExitCode {
    let a = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\nrun with --help for usage");
            return ExitCode::FAILURE;
        }
    };
    if a.boundary == Boundary::Periodic
        && matches!(a.strategy.as_str(), "fused" | "islands" | "exchange")
    {
        eprintln!(
            "error: --boundary periodic is only supported by --strategy reference|original\n\
             (cache-blocked schedules cannot express wrap-around dependencies)"
        );
        return ExitCode::FAILURE;
    }
    let problem = || MpdataProblem::with_iord(a.iord).with_boundary(a.boundary);
    let mut fields = make_fields(&a);
    let mass0 = fields.mass();
    // `--verify` snapshots the initial fields here but runs the serial
    // reference pass only after the timed run: the live telemetry
    // endpoint comes up with the run, not after a full serial pass a
    // scraper would see as `connection refused`.
    let initial = a.verify.then(|| fields.clone());

    let mut pool = WorkerPool::new(a.workers);
    // Non-uniform island cuts are solved before the timed run (and
    // before the trace session opens — the `measured` probe drives its
    // own short session, which must finish first).
    let balanced_parts = match a.balance.as_str() {
        "uniform" => None,
        mode => match balanced_partition(&a, &pool, fields.domain(), mode, problem) {
            Ok(parts) => {
                let widths: Vec<usize> = parts.iter().map(|p| p.range(Axis::I).len()).collect();
                println!("balance      : {mode}, island widths {widths:?}");
                Some(parts)
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let live = a.serve_metrics.is_some() || a.metrics_interval.is_some();
    let tracing = a.trace.is_some() || a.metrics || a.metrics_json.is_some() || live;
    let session = tracing.then(|| {
        // Room for every event of the run: ~2 spans per (step, stage,
        // block) per worker, with generous slack so long runs do not
        // wrap the rings.
        islands_trace::set_ring_capacity((a.steps * 512).clamp(1 << 16, 1 << 21));
        islands_trace::Session::start()
    });
    // The live telemetry plane: a background collector drains the trace
    // rings into an atomic registry mid-run; the registry is served
    // over TCP (`--serve-metrics`) and/or printed on a fixed cadence
    // (`--metrics-interval`).
    let registry =
        live.then(|| std::sync::Arc::new(islands_trace::registry::MetricsRegistry::new(a.islands)));
    let mut server = None;
    let mut ticker: Option<(std::sync::mpsc::Sender<()>, std::thread::JoinHandle<()>)> = None;
    if let Some(registry) = &registry {
        pool.attach_telemetry(
            std::sync::Arc::clone(registry),
            std::time::Duration::from_millis(20),
        );
        if let Some(addr) = &a.serve_metrics {
            match islands_trace::serve::MetricsServer::bind(addr, std::sync::Arc::clone(registry)) {
                Ok(s) => {
                    println!("metrics      : http://{}/metrics", s.local_addr());
                    server = Some(s);
                }
                Err(e) => {
                    eprintln!("error: cannot bind --serve-metrics {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(secs) = a.metrics_interval {
            let reg = std::sync::Arc::clone(registry);
            let (tx, rx) = std::sync::mpsc::channel::<()>();
            let handle = std::thread::Builder::new()
                .name("islands-metrics-tick".into())
                .spawn(move || {
                    let period = std::time::Duration::from_secs(secs);
                    // Stops the moment the run sends the shutdown tick.
                    while rx.recv_timeout(period).is_err() {
                        let s = reg.snapshot();
                        eprintln!(
                            "telemetry    : step {} | {:.2} Mcells/s | {} events | {} dropped | p99 step {} ns",
                            s.current_step,
                            s.cells_per_second() / 1e6,
                            s.events_folded,
                            s.dropped_events,
                            s.step_ns.quantile(0.99),
                        );
                    }
                })
                .expect("spawn metrics ticker");
            ticker = Some((tx, handle));
        }
    }
    let t0 = Instant::now();
    let run = match a.strategy.as_str() {
        "reference" => {
            ReferenceExecutor::with_problem(problem()).run(&mut fields, a.steps);
            Ok(())
        }
        "original" => {
            OriginalExecutor::with_problem(&pool, problem()).run(&mut fields, a.steps);
            Ok(())
        }
        "fused" => {
            let mut exec = FusedExecutor::with_problem(&pool, problem())
                .cache_bytes(a.cache)
                .fuse_steps(a.fuse_steps)
                .tile(a.tile);
            if a.self_schedule > 0 {
                exec = exec.schedule(mpdata::SchedulePolicy::Dynamic {
                    chunks_per_rank: a.self_schedule,
                });
            }
            exec.run(&mut fields, a.steps).map_err(|e| e.to_string())
        }
        "islands" => {
            let mut exec = IslandsExecutor::with_problem(
                &pool,
                TeamSpec::even(a.workers, a.islands),
                Axis::I,
                problem(),
            )
            .cache_bytes(a.cache)
            .fuse_steps(a.fuse_steps)
            .tile(a.tile);
            if let Some(parts) = balanced_parts {
                exec = exec.with_partition(parts);
            }
            if a.self_schedule > 0 {
                exec = exec.self_schedule(a.self_schedule);
            }
            exec.run(&mut fields, a.steps).map_err(|e| e.to_string())
        }
        "exchange" => {
            mpdata::ExchangeExecutor::with_problem(
                &pool,
                TeamSpec::even(a.workers, a.islands),
                Axis::I,
                problem(),
            )
            .run(&mut fields, a.steps);
            Ok(())
        }
        other => Err(format!("unknown strategy {other:?}")),
    };
    if let Err(e) = run {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    let elapsed = t0.elapsed();
    // Live-plane shutdown, in dependency order: stop the periodic
    // printer, then the collector (its final pass folds every span the
    // run recorded); the server stays up to serve the final registry
    // state until it drops at the end of `main`.
    if let Some((tx, handle)) = ticker.take() {
        let _ = tx.send(());
        let _ = handle.join();
    }
    pool.detach_telemetry();
    let drained = session.map(islands_trace::Session::finish);

    println!(
        "strategy={} domain={}x{}x{} steps={} workers={} islands={} iord={} boundary={:?}",
        a.strategy,
        a.domain.0,
        a.domain.1,
        a.domain.2,
        a.steps,
        a.workers,
        a.islands,
        a.iord,
        a.boundary,
    );
    println!("elapsed      : {elapsed:.2?}");
    println!(
        "throughput   : {:.2} Mcells/s",
        (fields.domain().cells() * a.steps) as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!("mass drift   : {:+.3e}", fields.mass() / mass0 - 1.0);
    println!(
        "min / max    : {:+.4e} / {:+.4e}",
        fields.x.min(),
        fields.x.max()
    );
    if let Some(mut r) = initial {
        // Post-run and post-finish, so the reference pass is untraced.
        ReferenceExecutor::with_problem(problem()).run(&mut r, a.steps);
        let diff = fields.x.max_abs_diff(&r.x);
        println!("verify       : max |Δ| vs reference = {diff:.3e}");
        if diff != 0.0 {
            eprintln!("error: strategy diverged from the reference");
            return ExitCode::FAILURE;
        }
    }
    if let Some(drained) = drained {
        if a.metrics || a.metrics_json.is_some() {
            let metrics = islands_trace::metrics::RunMetrics::aggregate(&drained);
            if a.metrics {
                print!("{}", metrics.render());
            }
            if let Some(path) = &a.metrics_json {
                let doc = metrics.to_json();
                // Self-validate through the strict renderer/parser pair
                // before writing: a non-finite number or a render/parse
                // mismatch fails loudly here, not in downstream tooling.
                let text = match doc.render() {
                    Ok(text) => text,
                    Err(e) => {
                        eprintln!("error: metrics JSON failed validation: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                match islands_trace::json::parse(&text) {
                    Ok(back) if back == doc => {}
                    Ok(_) => {
                        eprintln!("error: metrics JSON did not round-trip");
                        return ExitCode::FAILURE;
                    }
                    Err(e) => {
                        eprintln!("error: metrics JSON failed self-parse: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                if let Err(e) = std::fs::write(path, &text) {
                    eprintln!("error: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!(
                    "metrics json : {} steps ({} dropped) -> {path}",
                    metrics.steps.len(),
                    metrics.dropped_events
                );
            }
        }
        if let Some(path) = &a.trace {
            let graph = problem().graph().clone();
            let names: Vec<&str> = graph.stages().iter().map(|st| st.name.as_str()).collect();
            let text = islands_trace::chrome::export(&drained, &names);
            // Self-check the artifact with the in-repo validator before
            // writing it, so a broken trace fails loudly here rather
            // than in a viewer.
            if let Err(e) = islands_trace::chrome::validate(&text) {
                eprintln!("error: generated trace failed validation: {e}");
                return ExitCode::FAILURE;
            }
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "trace        : {} events ({} dropped) -> {path}",
                drained.events.len(),
                drained.dropped
            );
        }
    }
    // The metrics server (if any) stayed up through the drain so late
    // scrapes see the final registry state; it shuts down here.
    drop(server);
    ExitCode::SUCCESS
}
