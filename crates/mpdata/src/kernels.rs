//! The numerics of the 17 MPDATA stages.
//!
//! Each kernel writes one region of its output array(s), reading inputs
//! at the offsets declared by the matching [`crate::graph`] stage —
//! a correspondence enforced by the `kernel_patterns` test below, which
//! perturbs inputs outside the declared pattern and asserts the output
//! is unaffected.
//!
//! Boundary handling: reads are clamped to the domain box (zero-gradient
//! extension). Combined with [`crate::fields::MpdataFields::close_boundaries`]
//! this makes the scheme exactly conservative in a closed box, and —
//! crucially for the reproduction — makes every execution strategy
//! (reference, original, (3+1)D, islands) produce **bitwise identical**
//! results, because a redundantly recomputed cell always sees exactly
//! the same operands.

use crate::fields::EPS;
use crate::graph::StageKind;
use stencil_engine::{Array3, Region3};

/// How reads beyond the domain box resolve.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Boundary {
    /// Zero-gradient extension: out-of-domain indices are projected onto
    /// the nearest face (the paper's setting; all executors support it).
    #[default]
    Open,
    /// Periodic wrap-around. Supported by the reference and original
    /// executors; the cache-blocked executors reject it because the
    /// box-shaped requirement analysis cannot express wrap dependencies.
    Periodic,
}

/// Boundary-resolved read.
#[inline(always)]
fn rd_bc(a: &Array3, d: Region3, bc: Boundary, i: i64, j: i64, k: i64) -> f64 {
    match bc {
        Boundary::Open => a.get(
            i.clamp(d.i.lo, d.i.hi - 1),
            j.clamp(d.j.lo, d.j.hi - 1),
            k.clamp(d.k.lo, d.k.hi - 1),
        ),
        Boundary::Periodic => a.get(
            d.i.lo + (i - d.i.lo).rem_euclid(d.i.len() as i64),
            d.j.lo + (j - d.j.lo).rem_euclid(d.j.len() as i64),
            d.k.lo + (k - d.k.lo).rem_euclid(d.k.len() as i64),
        ),
    }
}

/// Donor-cell (upwind) flux through a face with Courant number `u`,
/// upstream value `xl`, downstream value `xr`.
#[inline(always)]
fn donor(xl: f64, xr: f64, u: f64) -> f64 {
    u.max(0.0) * xl + u.min(0.0) * xr
}

/// Applies a kernel of the given [`StageKind`] over `region`.
///
/// `inputs` and `outputs` must follow the field order declared by the
/// corresponding [`crate::graph::MpdataProblem`] stage.
///
/// # Panics
///
/// Panics if the number of inputs/outputs does not match the kind, or
/// (in debug builds) if an array does not cover an accessed cell.
pub fn apply_kind(
    kind: StageKind,
    domain: Region3,
    bc: Boundary,
    inputs: &[&Array3],
    outputs: &mut [&mut Array3],
    region: Region3,
) {
    // Streaming kinds run a clamp-free row fast path wherever the
    // stencil provably stays inside the domain; the remaining boundary
    // shells fall back to the scalar kernels. Both paths evaluate the
    // same expressions in the same order, so the split is invisible —
    // bitwise — to callers.
    if bc == Boundary::Open {
        if let Some(safe) = fast_safe_domain(kind, domain) {
            let fast = region.intersect(safe);
            if !fast.is_empty() {
                apply_fast(kind, inputs, outputs, fast);
                region.subtract_each(fast, |shell| {
                    apply_kind_scalar(kind, domain, bc, inputs, outputs, shell);
                });
                return;
            }
        }
    }
    apply_kind_scalar(kind, domain, bc, inputs, outputs, region);
}

/// The sub-box of `domain` on which `kind`'s reads need no boundary
/// treatment, or `None` for kinds without a fast path.
fn fast_safe_domain(kind: StageKind, domain: Region3) -> Option<Region3> {
    use stencil_engine::{Axis, Range1};
    let shrink_lo = |r: Range1| Range1::new(r.lo + 1, r.hi);
    let shrink_hi = |r: Range1| Range1::new(r.lo, r.hi - 1);
    let shrink_both = |r: Range1| Range1::new(r.lo + 1, r.hi - 1);
    let d = domain;
    match kind {
        StageKind::FluxI | StageKind::LimFluxI => Some(d.with_range(Axis::I, shrink_lo(d.i))),
        StageKind::FluxJ | StageKind::LimFluxJ => Some(d.with_range(Axis::J, shrink_lo(d.j))),
        StageKind::FluxK | StageKind::LimFluxK => Some(d.with_range(Axis::K, shrink_lo(d.k))),
        StageKind::Update | StageKind::BetaUp | StageKind::BetaDn => {
            Some(Region3::new(shrink_hi(d.i), shrink_hi(d.j), shrink_hi(d.k)))
        }
        StageKind::AntidiffI => Some(Region3::new(
            shrink_lo(d.i),
            shrink_both(d.j),
            shrink_both(d.k),
        )),
        StageKind::AntidiffJ => Some(Region3::new(
            shrink_both(d.i),
            shrink_lo(d.j),
            shrink_both(d.k),
        )),
        StageKind::AntidiffK => Some(Region3::new(
            shrink_both(d.i),
            shrink_both(d.j),
            shrink_lo(d.k),
        )),
        StageKind::MinMax => Some(Region3::new(
            shrink_both(d.i),
            shrink_both(d.j),
            shrink_both(d.k),
        )),
    }
}

/// Dispatches to the row fast path (region must lie in the kind's safe
/// domain).
fn apply_fast(kind: StageKind, inputs: &[&Array3], outputs: &mut [&mut Array3], region: Region3) {
    use crate::kernels_fast as fast;
    match kind {
        StageKind::FluxI => fast::flux_axis_rows(inputs[0], inputs[1], &mut *outputs[0], region, 0),
        StageKind::FluxJ => fast::flux_axis_rows(inputs[0], inputs[1], &mut *outputs[0], region, 1),
        StageKind::FluxK => fast::flux_axis_rows(inputs[0], inputs[1], &mut *outputs[0], region, 2),
        StageKind::Update => fast::update_rows(
            inputs[0],
            inputs[1],
            inputs[2],
            inputs[3],
            inputs[4],
            &mut *outputs[0],
            region,
        ),
        StageKind::LimFluxI => {
            fast::lim_flux_rows(inputs[0], inputs[1], inputs[2], &mut *outputs[0], region, 0)
        }
        StageKind::LimFluxJ => {
            fast::lim_flux_rows(inputs[0], inputs[1], inputs[2], &mut *outputs[0], region, 1)
        }
        StageKind::LimFluxK => {
            fast::lim_flux_rows(inputs[0], inputs[1], inputs[2], &mut *outputs[0], region, 2)
        }
        StageKind::AntidiffI => fast::antidiff_rows(
            inputs[0],
            inputs[1],
            inputs[2],
            inputs[3],
            inputs[4],
            &mut *outputs[0],
            region,
            0,
        ),
        StageKind::AntidiffJ => fast::antidiff_rows(
            inputs[0],
            inputs[1],
            inputs[2],
            inputs[3],
            inputs[4],
            &mut *outputs[0],
            region,
            1,
        ),
        StageKind::AntidiffK => fast::antidiff_rows(
            inputs[0],
            inputs[1],
            inputs[2],
            inputs[3],
            inputs[4],
            &mut *outputs[0],
            region,
            2,
        ),
        StageKind::MinMax => {
            let (mx, rest) = outputs.split_first_mut().expect("two outputs");
            fast::minmax_rows(inputs[0], inputs[1], mx, &mut *rest[0], region)
        }
        StageKind::BetaUp => fast::beta_rows(
            inputs[0],
            inputs[1],
            inputs[2],
            inputs[3],
            inputs[4],
            inputs[5],
            &mut *outputs[0],
            region,
            true,
        ),
        StageKind::BetaDn => fast::beta_rows(
            inputs[0],
            inputs[1],
            inputs[2],
            inputs[3],
            inputs[4],
            inputs[5],
            &mut *outputs[0],
            region,
            false,
        ),
    }
}

/// The clamp-everywhere scalar kernels — the reference implementation
/// [`apply_kind`] is pinned against (bitwise). Exposed so downstream
/// code and benchmarks can compare the two paths.
///
/// # Panics
///
/// Same conditions as [`apply_kind`].
pub fn apply_kind_scalar(
    kind: StageKind,
    domain: Region3,
    bc: Boundary,
    inputs: &[&Array3],
    outputs: &mut [&mut Array3],
    region: Region3,
) {
    match kind {
        StageKind::FluxI => flux_axis(domain, bc, inputs, outputs, region, AxisDir::I),
        StageKind::FluxJ => flux_axis(domain, bc, inputs, outputs, region, AxisDir::J),
        StageKind::FluxK => flux_axis(domain, bc, inputs, outputs, region, AxisDir::K),
        StageKind::Update => low_order(domain, bc, inputs, outputs, region),
        StageKind::AntidiffI => antidiff(domain, bc, inputs, outputs, region, AxisDir::I),
        StageKind::AntidiffJ => antidiff(domain, bc, inputs, outputs, region, AxisDir::J),
        StageKind::AntidiffK => antidiff(domain, bc, inputs, outputs, region, AxisDir::K),
        StageKind::MinMax => minmax(domain, bc, inputs, outputs, region),
        StageKind::BetaUp => beta(domain, bc, inputs, outputs, region, Beta::Up),
        StageKind::BetaDn => beta(domain, bc, inputs, outputs, region, Beta::Down),
        StageKind::LimFluxI => lim_flux(domain, bc, inputs, outputs, region, AxisDir::I),
        StageKind::LimFluxJ => lim_flux(domain, bc, inputs, outputs, region, AxisDir::J),
        StageKind::LimFluxK => lim_flux(domain, bc, inputs, outputs, region, AxisDir::K),
    }
}

/// Applies stage `stage` (0-based) of the *17-stage* graph over
/// `region` — the index-based convenience wrapper around
/// [`apply_kind`].
///
/// # Panics
///
/// Panics if `stage >= 17`, if the number of inputs/outputs does not
/// match the stage, or (in debug builds) if an array does not cover an
/// accessed cell.
pub fn apply_stage(
    stage: usize,
    domain: Region3,
    inputs: &[&Array3],
    outputs: &mut [&mut Array3],
    region: Region3,
) {
    assert!(
        stage < crate::graph::STAGE_COUNT,
        "MPDATA has 17 stages; stage {stage} does not exist"
    );
    apply_kind(
        crate::graph::STANDARD_KINDS[stage],
        domain,
        Boundary::Open,
        inputs,
        outputs,
        region,
    );
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum AxisDir {
    I,
    J,
    K,
}

impl AxisDir {
    /// Unit offset along the axis.
    #[inline(always)]
    fn d(self) -> (i64, i64, i64) {
        match self {
            AxisDir::I => (1, 0, 0),
            AxisDir::J => (0, 1, 0),
            AxisDir::K => (0, 0, 1),
        }
    }
}

/// Stages 1–3 and 9–11: donor-cell flux through the low face along one
/// axis. `inputs = [scalar, velocity]`, `outputs = [flux]`. 5 flops.
fn flux_axis(
    domain: Region3,
    bc: Boundary,
    inputs: &[&Array3],
    outputs: &mut [&mut Array3],
    region: Region3,
    axis: AxisDir,
) {
    assert_eq!(inputs.len(), 2, "flux stage takes [scalar, velocity]");
    assert_eq!(outputs.len(), 1, "flux stage writes one flux array");
    let (x, u) = (inputs[0], inputs[1]);
    let f = &mut *outputs[0];
    let (di, dj, dk) = axis.d();
    for i in region.i.lo..region.i.hi {
        for j in region.j.lo..region.j.hi {
            for k in region.k.lo..region.k.hi {
                let xl = rd_bc(x, domain, bc, i - di, j - dj, k - dk);
                let xr = rd_bc(x, domain, bc, i, j, k);
                let uu = rd_bc(u, domain, bc, i, j, k);
                f.set(i, j, k, donor(xl, xr, uu));
            }
        }
    }
}

/// Stage 4: first-order update ψ* = ψ − div(F)/h.
/// `inputs = [x, f1, f2, f3, h]`, `outputs = [xp]`. 7 flops.
fn low_order(
    domain: Region3,
    bc: Boundary,
    inputs: &[&Array3],
    outputs: &mut [&mut Array3],
    region: Region3,
) {
    assert_eq!(inputs.len(), 5, "low_order takes [x, f1, f2, f3, h]");
    assert_eq!(outputs.len(), 1);
    let (x, f1, f2, f3, h) = (inputs[0], inputs[1], inputs[2], inputs[3], inputs[4]);
    let xp = &mut *outputs[0];
    for i in region.i.lo..region.i.hi {
        for j in region.j.lo..region.j.hi {
            for k in region.k.lo..region.k.hi {
                let div = (rd_bc(f1, domain, bc, i + 1, j, k) - rd_bc(f1, domain, bc, i, j, k))
                    + (rd_bc(f2, domain, bc, i, j + 1, k) - rd_bc(f2, domain, bc, i, j, k))
                    + (rd_bc(f3, domain, bc, i, j, k + 1) - rd_bc(f3, domain, bc, i, j, k));
                let v = rd_bc(x, domain, bc, i, j, k) - div / rd_bc(h, domain, bc, i, j, k);
                xp.set(i, j, k, v);
            }
        }
    }
}

/// Stages 5–7: antidiffusive pseudo-velocity through the low face along
/// `axis` (Smolarkiewicz's second-order correction with the two cross
/// terms). `inputs = [xp, u_axis, u_crossA, u_crossB, h]`,
/// `outputs = [v_axis]`. 36 flops.
fn antidiff(
    domain: Region3,
    bc: Boundary,
    inputs: &[&Array3],
    outputs: &mut [&mut Array3],
    region: Region3,
    axis: AxisDir,
) {
    assert_eq!(inputs.len(), 5, "antidiff takes [xp, u_a, u_b, u_c, h]");
    assert_eq!(outputs.len(), 1);
    let (xp, ua, ub, uc, h) = (inputs[0], inputs[1], inputs[2], inputs[3], inputs[4]);
    let v = &mut *outputs[0];
    // `m` = unit offset along the face axis; `p`, `q` = the two cross
    // axes (b ↔ p, c ↔ q to match the graph's input ordering).
    let (m, p, q) = match axis {
        AxisDir::I => ((1, 0, 0), (0, 1, 0), (0, 0, 1)),
        AxisDir::J => ((0, 1, 0), (1, 0, 0), (0, 0, 1)),
        AxisDir::K => ((0, 0, 1), (1, 0, 0), (0, 1, 0)),
    };
    let at = |a: &Array3, base: (i64, i64, i64), off: (i64, i64, i64), scale: i64| {
        rd_bc(
            a,
            domain,
            bc,
            base.0 + scale * off.0,
            base.1 + scale * off.1,
            base.2 + scale * off.2,
        )
    };
    for i in region.i.lo..region.i.hi {
        for j in region.j.lo..region.j.hi {
            for k in region.k.lo..region.k.hi {
                let c = (i, j, k);
                let cm = (i - m.0, j - m.1, k - m.2);
                let xc = rd_bc(xp, domain, bc, c.0, c.1, c.2);
                let xm = rd_bc(xp, domain, bc, cm.0, cm.1, cm.2);
                let a = (xc - xm) / (xc + xm + EPS);
                // Cross-derivative term along p.
                let xpp = at(xp, c, p, 1) + at(xp, cm, p, 1);
                let xpm = at(xp, c, p, -1) + at(xp, cm, p, -1);
                let b_p = 0.5 * (xpp - xpm) / (xpp + xpm + EPS);
                // Cross-derivative term along q.
                let xqp = at(xp, c, q, 1) + at(xp, cm, q, 1);
                let xqm = at(xp, c, q, -1) + at(xp, cm, q, -1);
                let b_q = 0.5 * (xqp - xqm) / (xqp + xqm + EPS);
                let u = rd_bc(ua, domain, bc, i, j, k);
                // Cross velocities averaged to this face.
                let ub_bar = 0.25
                    * (rd_bc(ub, domain, bc, c.0, c.1, c.2)
                        + rd_bc(ub, domain, bc, cm.0, cm.1, cm.2)
                        + at(ub, c, p, 1)
                        + at(ub, cm, p, 1));
                let uc_bar = 0.25
                    * (rd_bc(uc, domain, bc, c.0, c.1, c.2)
                        + rd_bc(uc, domain, bc, cm.0, cm.1, cm.2)
                        + at(uc, c, q, 1)
                        + at(uc, cm, q, 1));
                let hbar = 0.5
                    * (rd_bc(h, domain, bc, c.0, c.1, c.2)
                        + rd_bc(h, domain, bc, cm.0, cm.1, cm.2));
                let val =
                    u.abs() * (1.0 - u.abs() / hbar) * a - u * (ub_bar * b_p + uc_bar * b_q) / hbar;
                v.set(i, j, k, val);
            }
        }
    }
}

/// Stage 8: local extrema over ψ and ψ* (7-point neighbourhoods).
/// `inputs = [x, xp]`, `outputs = [mx, mn]`. 26 flops.
fn minmax(
    domain: Region3,
    bc: Boundary,
    inputs: &[&Array3],
    outputs: &mut [&mut Array3],
    region: Region3,
) {
    assert_eq!(inputs.len(), 2, "minmax takes [x, xp]");
    assert_eq!(outputs.len(), 2, "minmax writes [mx, mn]");
    let (x, xp) = (inputs[0], inputs[1]);
    let (mx_arr, rest) = outputs.split_first_mut().expect("two outputs");
    let mn_arr = &mut *rest[0];
    const OFFS: [(i64, i64, i64); 7] = [
        (0, 0, 0),
        (-1, 0, 0),
        (1, 0, 0),
        (0, -1, 0),
        (0, 1, 0),
        (0, 0, -1),
        (0, 0, 1),
    ];
    for i in region.i.lo..region.i.hi {
        for j in region.j.lo..region.j.hi {
            for k in region.k.lo..region.k.hi {
                let mut hi = f64::NEG_INFINITY;
                let mut lo = f64::INFINITY;
                for (di, dj, dk) in OFFS {
                    let a = rd_bc(x, domain, bc, i + di, j + dj, k + dk);
                    let b = rd_bc(xp, domain, bc, i + di, j + dj, k + dk);
                    hi = hi.max(a).max(b);
                    lo = lo.min(a).min(b);
                }
                mx_arr.set(i, j, k, hi);
                mn_arr.set(i, j, k, lo);
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Beta {
    Up,
    Down,
}

/// Stages 12–13: the non-oscillatory β limiters.
/// `inputs = [extreme(mx|mn), xp, g1, g2, g3, h]`, `outputs = [bu|bd]`.
/// 15 flops.
fn beta(
    domain: Region3,
    bc: Boundary,
    inputs: &[&Array3],
    outputs: &mut [&mut Array3],
    region: Region3,
    which: Beta,
) {
    assert_eq!(inputs.len(), 6, "beta takes [extreme, xp, g1, g2, g3, h]");
    assert_eq!(outputs.len(), 1);
    let (ext, xp, g1, g2, g3, h) = (
        inputs[0], inputs[1], inputs[2], inputs[3], inputs[4], inputs[5],
    );
    let out = &mut *outputs[0];
    for i in region.i.lo..region.i.hi {
        for j in region.j.lo..region.j.hi {
            for k in region.k.lo..region.k.hi {
                let (num, den) = match which {
                    Beta::Up => {
                        // Inflow: positive parts of low-face fluxes minus
                        // negative parts of high-face fluxes.
                        let inflow = rd_bc(g1, domain, bc, i, j, k).max(0.0)
                            - rd_bc(g1, domain, bc, i + 1, j, k).min(0.0)
                            + rd_bc(g2, domain, bc, i, j, k).max(0.0)
                            - rd_bc(g2, domain, bc, i, j + 1, k).min(0.0)
                            + rd_bc(g3, domain, bc, i, j, k).max(0.0)
                            - rd_bc(g3, domain, bc, i, j, k + 1).min(0.0);
                        (
                            rd_bc(ext, domain, bc, i, j, k) - rd_bc(xp, domain, bc, i, j, k),
                            inflow,
                        )
                    }
                    Beta::Down => {
                        let outflow = rd_bc(g1, domain, bc, i + 1, j, k).max(0.0)
                            - rd_bc(g1, domain, bc, i, j, k).min(0.0)
                            + rd_bc(g2, domain, bc, i, j + 1, k).max(0.0)
                            - rd_bc(g2, domain, bc, i, j, k).min(0.0)
                            + rd_bc(g3, domain, bc, i, j, k + 1).max(0.0)
                            - rd_bc(g3, domain, bc, i, j, k).min(0.0);
                        (
                            rd_bc(xp, domain, bc, i, j, k) - rd_bc(ext, domain, bc, i, j, k),
                            outflow,
                        )
                    }
                };
                out.set(i, j, k, num * rd_bc(h, domain, bc, i, j, k) / (den + EPS));
            }
        }
    }
}

/// Stages 14–16: monotone limiting of the pseudo flux along `axis`.
/// `inputs = [g, bu, bd]`, `outputs = [f_limited]`. 9 flops.
fn lim_flux(
    domain: Region3,
    bc: Boundary,
    inputs: &[&Array3],
    outputs: &mut [&mut Array3],
    region: Region3,
    axis: AxisDir,
) {
    assert_eq!(inputs.len(), 3, "lim_flux takes [g, bu, bd]");
    assert_eq!(outputs.len(), 1);
    let (g, bu, bd) = (inputs[0], inputs[1], inputs[2]);
    let out = &mut *outputs[0];
    let (di, dj, dk) = axis.d();
    for i in region.i.lo..region.i.hi {
        for j in region.j.lo..region.j.hi {
            for k in region.k.lo..region.k.hi {
                let gv = rd_bc(g, domain, bc, i, j, k);
                // A positive flux leaves the low cell and enters this one.
                let cp = 1.0_f64
                    .min(rd_bc(bd, domain, bc, i - di, j - dj, k - dk))
                    .min(rd_bc(bu, domain, bc, i, j, k));
                let cn = 1.0_f64
                    .min(rd_bc(bu, domain, bc, i - di, j - dj, k - dk))
                    .min(rd_bc(bd, domain, bc, i, j, k));
                out.set(i, j, k, cp * gv.max(0.0) + cn * gv.min(0.0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::mpdata_graph;
    use stencil_engine::{FieldRole, Range1};

    /// The row fast paths must be bit-identical to the scalar kernels on
    /// every supported kind, over a region including all boundary
    /// shells, on irregular (non-origin) array regions.
    #[test]
    fn fast_paths_bitwise_equal() {
        use crate::graph::MpdataProblem;
        let domain = Region3::new(Range1::new(3, 14), Range1::new(-2, 7), Range1::new(5, 18));
        let p = MpdataProblem::standard();
        for st in p.graph().stages() {
            let kind = p.kind(st.id);
            if fast_safe_domain(kind, domain).is_none() {
                continue;
            }
            let ins: Vec<Array3> = (0..st.inputs.len())
                .map(|n| {
                    Array3::from_fn(domain, |i, j, k| {
                        0.7 + 0.013 * n as f64 + 0.001 * ((i * 37 + j * 11 + k * 3) % 97) as f64
                            - 0.0005 * ((i + 2 * j + 3 * k) % 13) as f64
                    })
                })
                .collect();
            let in_refs: Vec<&Array3> = ins.iter().collect();
            let mut fast_out: Vec<Array3> = st
                .outputs
                .iter()
                .map(|_| Array3::filled(domain, -9.0))
                .collect();
            let mut scalar_out: Vec<Array3> = st
                .outputs
                .iter()
                .map(|_| Array3::filled(domain, -9.0))
                .collect();
            {
                let mut o: Vec<&mut Array3> = fast_out.iter_mut().collect();
                apply_kind(kind, domain, Boundary::Open, &in_refs, &mut o, domain);
            }
            {
                let mut o: Vec<&mut Array3> = scalar_out.iter_mut().collect();
                apply_kind_scalar(kind, domain, Boundary::Open, &in_refs, &mut o, domain);
            }
            for (f, s) in fast_out.iter().zip(&scalar_out) {
                assert_eq!(
                    f.max_abs_diff(s),
                    0.0,
                    "{:?} ({}) fast path diverged from scalar",
                    kind,
                    st.name
                );
            }
        }
    }

    #[test]
    fn fast_safe_domains_shrink_correct_side() {
        let d = Region3::of_extent(8, 8, 8);
        let s = fast_safe_domain(StageKind::FluxI, d).unwrap();
        assert_eq!((s.i.lo, s.i.hi), (1, 8));
        assert_eq!(s.j, d.j);
        let s = fast_safe_domain(StageKind::Update, d).unwrap();
        assert_eq!((s.i.hi, s.j.hi, s.k.hi), (7, 7, 7));
        let s = fast_safe_domain(StageKind::AntidiffI, d).unwrap();
        assert_eq!((s.i.lo, s.i.hi), (1, 8));
        assert_eq!((s.j.lo, s.j.hi), (1, 7));
        assert_eq!((s.k.lo, s.k.hi), (1, 7));
        let s = fast_safe_domain(StageKind::MinMax, d).unwrap();
        assert_eq!((s.i.lo, s.i.hi, s.j.lo, s.k.hi), (1, 7, 1, 7));
        // Degenerate domains collapse the safe box to empty.
        let thin = Region3::of_extent(1, 8, 8);
        assert!(fast_safe_domain(StageKind::FluxI, thin).unwrap().is_empty());
    }

    #[test]
    fn donor_cell_upwinds() {
        assert_eq!(donor(2.0, 5.0, 0.5), 1.0);
        assert_eq!(donor(2.0, 5.0, -0.5), -2.5);
        assert_eq!(donor(2.0, 5.0, 0.0), 0.0);
    }

    #[test]
    fn clamped_read_projects_to_faces() {
        let d = Region3::of_extent(3, 3, 3);
        let a = Array3::from_fn(d, |i, j, k| (i * 9 + j * 3 + k) as f64);
        let bc = Boundary::Open;
        assert_eq!(rd_bc(&a, d, bc, -5, 1, 1), a.get(0, 1, 1));
        assert_eq!(rd_bc(&a, d, bc, 1, 7, 1), a.get(1, 2, 1));
        assert_eq!(rd_bc(&a, d, bc, 2, 2, 2), a.get(2, 2, 2));
    }

    #[test]
    fn periodic_read_wraps() {
        let d = Region3::of_extent(3, 3, 3);
        let a = Array3::from_fn(d, |i, j, k| (i * 9 + j * 3 + k) as f64);
        let bc = Boundary::Periodic;
        assert_eq!(rd_bc(&a, d, bc, -1, 0, 0), a.get(2, 0, 0));
        assert_eq!(rd_bc(&a, d, bc, 3, 1, 1), a.get(0, 1, 1));
        assert_eq!(rd_bc(&a, d, bc, -4, 5, 7), a.get(2, 2, 1));
        assert_eq!(rd_bc(&a, d, bc, 1, 1, 1), a.get(1, 1, 1));
    }

    #[test]
    fn flux_stage_writes_exact_region() {
        let d = Region3::of_extent(6, 4, 4);
        let x = Array3::filled(d, 3.0);
        let u = Array3::filled(d, 0.5);
        let mut f = Array3::filled(d, -1.0);
        let region = Region3::new(Range1::new(2, 4), d.j, d.k);
        apply_stage(0, d, &[&x, &u], &mut [&mut f], region);
        assert_eq!(f.get(2, 0, 0), 1.5);
        assert_eq!(f.get(3, 3, 3), 1.5);
        assert_eq!(f.get(1, 0, 0), -1.0, "outside region untouched");
        assert_eq!(f.get(4, 0, 0), -1.0);
    }

    #[test]
    fn constant_field_is_fixed_point_of_low_order() {
        // With uniform x and divergence-free u (uniform here), ψ* = ψ.
        let d = Region3::of_extent(5, 5, 5);
        let x = Array3::filled(d, 4.0);
        let u = Array3::filled(d, 0.3);
        let h = Array3::filled(d, 1.0);
        let mut f1 = Array3::zeros(d);
        let mut f2 = Array3::zeros(d);
        let mut f3 = Array3::zeros(d);
        apply_stage(0, d, &[&x, &u], &mut [&mut f1], d);
        apply_stage(1, d, &[&x, &u], &mut [&mut f2], d);
        apply_stage(2, d, &[&x, &u], &mut [&mut f3], d);
        let mut xp = Array3::zeros(d);
        apply_stage(3, d, &[&x, &f1, &f2, &f3, &h], &mut [&mut xp], d);
        // Interior cells: flux divergence of a constant field is zero.
        assert_eq!(xp.get(2, 2, 2), 4.0);
    }

    #[test]
    fn antidiff_vanishes_for_constant_field() {
        let d = Region3::of_extent(5, 5, 5);
        let xp = Array3::filled(d, 2.0);
        let u = Array3::filled(d, 0.4);
        let h = Array3::filled(d, 1.0);
        let mut v = Array3::filled(d, 9.0);
        apply_stage(4, d, &[&xp, &u, &u, &u, &h], &mut [&mut v], d);
        // A and B terms vanish ⇒ v = 0 everywhere.
        for (_, _, _, val) in v.iter_indexed() {
            assert!(val.abs() < 1e-12);
        }
    }

    #[test]
    fn minmax_brackets_the_field() {
        let d = Region3::of_extent(4, 4, 4);
        let x = Array3::from_fn(d, |i, j, k| (i + j + k) as f64);
        let xp = Array3::from_fn(d, |i, j, k| (i * j * k) as f64);
        let mut mx = Array3::zeros(d);
        let mut mn = Array3::zeros(d);
        apply_stage(7, d, &[&x, &xp], &mut [&mut mx, &mut mn], d);
        for (i, j, k) in d.points() {
            assert!(mx.get(i, j, k) >= x.get(i, j, k).max(xp.get(i, j, k)));
            assert!(mn.get(i, j, k) <= x.get(i, j, k).min(xp.get(i, j, k)));
        }
    }

    #[test]
    fn beta_is_nonnegative_for_bracketed_xp() {
        let d = Region3::of_extent(4, 4, 4);
        let xp = Array3::filled(d, 1.0);
        let mx = Array3::filled(d, 2.0);
        let g = Array3::filled(d, 0.1);
        let h = Array3::filled(d, 1.0);
        let mut bu = Array3::zeros(d);
        apply_stage(11, d, &[&mx, &xp, &g, &g, &g, &h], &mut [&mut bu], d);
        for (_, _, _, v) in bu.iter_indexed() {
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn lim_flux_clamps_but_preserves_sign() {
        let d = Region3::of_extent(4, 1, 1);
        let g = Array3::from_fn(d, |i, _, _| if i % 2 == 0 { 0.5 } else { -0.5 });
        let big = Array3::filled(d, 5.0); // β ≥ 1 ⇒ no limiting
        let mut f = Array3::zeros(d);
        apply_stage(13, d, &[&g, &big, &big], &mut [&mut f], d);
        assert_eq!(f.max_abs_diff(&g), 0.0);
        let zero = Array3::filled(d, 0.0); // β = 0 ⇒ flux fully limited
        let mut f2 = Array3::zeros(d);
        apply_stage(13, d, &[&g, &zero, &zero], &mut [&mut f2], d);
        assert_eq!(f2.sum(), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_stage_panics() {
        let d = Region3::of_extent(2, 2, 2);
        let a = Array3::zeros(d);
        let mut o = Array3::zeros(d);
        apply_stage(17, d, &[&a], &mut [&mut o], d);
    }

    /// The declared patterns in the graph are sound: perturbing an input
    /// cell *outside* the declared pattern of a stage never changes the
    /// kernel's output at the probe cell. (Completeness — that every
    /// declared offset is actually read — is deliberately not required:
    /// a pattern may over-approximate.)
    #[test]
    fn kernel_patterns_are_sound() {
        let (g, _) = mpdata_graph();
        let d = Region3::of_extent(7, 7, 7);
        let probe = (3, 3, 3);
        let probe_region = Region3::new(Range1::new(3, 4), Range1::new(3, 4), Range1::new(3, 4));
        for st in g.stages() {
            let n_in = st.inputs.len();
            // Baseline arrays: smooth positive values, all distinct.
            let base: Vec<Array3> = (0..n_in)
                .map(|n| {
                    Array3::from_fn(d, |i, j, k| {
                        1.5 + 0.01 * (n as f64) + 0.003 * (i * 49 + j * 7 + k) as f64
                    })
                })
                .collect();
            let run = |inputs: &[Array3]| -> Vec<f64> {
                let refs: Vec<&Array3> = inputs.iter().collect();
                let mut outs: Vec<Array3> = st.outputs.iter().map(|_| Array3::zeros(d)).collect();
                {
                    let mut out_refs: Vec<&mut Array3> = outs.iter_mut().collect();
                    apply_stage(st.id.index(), d, &refs, &mut out_refs, probe_region);
                }
                outs.iter()
                    .map(|o| o.get(probe.0, probe.1, probe.2))
                    .collect()
            };
            let baseline = run(&base);
            for (slot, (_, pattern)) in st.inputs.iter().enumerate() {
                // Perturb each offset in a ring around the probe that is
                // NOT in the declared pattern (and also not reachable by
                // another declared read of the same field in this stage —
                // pattern_for unions duplicates).
                let full = st
                    .inputs
                    .iter()
                    .filter(|(f2, _)| *f2 == st.inputs[slot].0)
                    .fold(pattern.clone(), |acc, (_, p)| acc.union(p));
                for di in -2..=2_i64 {
                    for dj in -2..=2_i64 {
                        for dk in -2..=2_i64 {
                            if full.contains(stencil_engine::Offset3::new(di, dj, dk)) {
                                continue;
                            }
                            let mut tweaked = base.clone();
                            // Perturb every slot bound to the same field.
                            for (s2, (f2, _)) in st.inputs.iter().enumerate() {
                                if *f2 == st.inputs[slot].0 {
                                    let old =
                                        tweaked[s2].get(probe.0 + di, probe.1 + dj, probe.2 + dk);
                                    tweaked[s2].set(
                                        probe.0 + di,
                                        probe.1 + dj,
                                        probe.2 + dk,
                                        old + 7.0,
                                    );
                                }
                            }
                            let out = run(&tweaked);
                            assert_eq!(
                                baseline, out,
                                "stage {} ({}) reads undeclared offset ({di},{dj},{dk}) of input {}",
                                st.id.index(),
                                st.name,
                                slot
                            );
                        }
                    }
                }
            }
        }
        // Sanity: the graph must know its externals.
        assert_eq!(g.fields().with_role(FieldRole::External).len(), 5);
    }
}
