//! MPDATA stage graphs: the 17-stage time step of the paper, and its
//! generalization to an arbitrary number of corrective iterations.
//!
//! Every MPDATA time step performs the same heterogeneous stencil
//! stages (paper §3.1): the first-order upwind pass (4 stages: three
//! donor-cell fluxes and the update), then one *corrective iteration*
//! per additional order — 13 stages each: antidiffusive
//! pseudo-velocities (3), local extrema (1), pseudo fluxes (3), the
//! non-oscillatory β limiters of Smolarkiewicz & Grabowski (2), the
//! limited fluxes (3) and the corrective update (1). The paper's
//! configuration is `iord = 2`: 4 + 13 = **17 stages**.
//!
//! Stage *kinds* ([`StageKind`]) identify the kernel arithmetic; the
//! graph's declared patterns are the single source of truth for all
//! dependency analysis, and the kernel implementations in
//! [`crate::kernels`] are tested against them.

use crate::kernels::Boundary;
use stencil_engine::{
    FieldId, FieldRole, FieldTable, StageDef, StageGraph, StageId, StencilPattern,
};

/// Number of stages in the paper's (`iord = 2`) MPDATA time step.
pub const STAGE_COUNT: usize = 17;

/// The kernel arithmetic of one stage.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StageKind {
    /// Donor-cell flux through low-`i` faces.
    FluxI,
    /// Donor-cell flux through low-`j` faces.
    FluxJ,
    /// Donor-cell flux through low-`k` faces.
    FluxK,
    /// `ψ' = ψ − div(F)/h` (both the low-order and corrective updates).
    Update,
    /// Antidiffusive pseudo-velocity through low-`i` faces.
    AntidiffI,
    /// Antidiffusive pseudo-velocity through low-`j` faces.
    AntidiffJ,
    /// Antidiffusive pseudo-velocity through low-`k` faces.
    AntidiffK,
    /// Local 7-point extrema of two fields.
    MinMax,
    /// β↑ in-flow limiter.
    BetaUp,
    /// β↓ out-flow limiter.
    BetaDn,
    /// Monotone limiting of an `i`-face flux.
    LimFluxI,
    /// Monotone limiting of a `j`-face flux.
    LimFluxJ,
    /// Monotone limiting of a `k`-face flux.
    LimFluxK,
}

impl StageKind {
    /// Floating-point operations per updated cell, as implemented by
    /// [`crate::kernels::apply_kind`] (comparisons and `abs` count one
    /// flop, divisions one flop — the convention behind the paper's
    /// ≈230 flop/cell/step arithmetic intensity).
    pub fn flops_per_cell(self) -> f64 {
        match self {
            StageKind::FluxI | StageKind::FluxJ | StageKind::FluxK => 5.0,
            StageKind::Update => 7.0,
            StageKind::AntidiffI | StageKind::AntidiffJ | StageKind::AntidiffK => 36.0,
            StageKind::MinMax => 26.0,
            StageKind::BetaUp | StageKind::BetaDn => 15.0,
            StageKind::LimFluxI | StageKind::LimFluxJ | StageKind::LimFluxK => 9.0,
        }
    }
}

/// The stage kinds of the paper's 17-stage time step, in order.
pub const STANDARD_KINDS: [StageKind; STAGE_COUNT] = [
    StageKind::FluxI,
    StageKind::FluxJ,
    StageKind::FluxK,
    StageKind::Update,
    StageKind::AntidiffI,
    StageKind::AntidiffJ,
    StageKind::AntidiffK,
    StageKind::MinMax,
    StageKind::FluxI, // pseudo fluxes reuse the donor-cell kernel
    StageKind::FluxJ,
    StageKind::FluxK,
    StageKind::BetaUp,
    StageKind::BetaDn,
    StageKind::LimFluxI,
    StageKind::LimFluxJ,
    StageKind::LimFluxK,
    StageKind::Update,
];

/// Flops per cell of each stage of the 17-stage graph, in stage order.
pub const STAGE_FLOPS: [f64; STAGE_COUNT] = [
    5.0, 5.0, 5.0, 7.0, 36.0, 36.0, 36.0, 26.0, 5.0, 5.0, 5.0, 15.0, 15.0, 9.0, 9.0, 9.0, 7.0,
];

/// Total flops per cell of one full time step with `iord = 2`.
pub fn flops_per_cell() -> f64 {
    STAGE_FLOPS.iter().sum()
}

/// The external input fields of any MPDATA problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExternalIds {
    /// Advected scalar.
    pub x: FieldId,
    /// Courant number through low-`i` faces.
    pub u1: FieldId,
    /// Courant number through low-`j` faces.
    pub u2: FieldId,
    /// Courant number through low-`k` faces.
    pub u3: FieldId,
    /// Density / Jacobian.
    pub h: FieldId,
}

/// A complete MPDATA problem description: the stage graph for a given
/// number of passes, the kernel kind of every stage, and the field
/// handles the executors bind.
#[derive(Clone, Debug)]
pub struct MpdataProblem {
    graph: StageGraph,
    kinds: Vec<StageKind>,
    ext: ExternalIds,
    xout: FieldId,
    iord: usize,
    boundary: Boundary,
}

impl MpdataProblem {
    /// Builds the MPDATA problem with `iord` passes: 1 = pure upwind
    /// (4 stages), 2 = the paper's configuration (17 stages), `n` adds
    /// 13 stages per extra corrective iteration.
    ///
    /// # Panics
    ///
    /// Panics if `iord == 0`.
    pub fn with_iord(iord: usize) -> Self {
        assert!(iord >= 1, "MPDATA needs at least the upwind pass");
        let mut t = FieldTable::new();
        let x = t.add("x", FieldRole::External);
        let u1 = t.add("u1", FieldRole::External);
        let u2 = t.add("u2", FieldRole::External);
        let u3 = t.add("u3", FieldRole::External);
        let h = t.add("h", FieldRole::External);
        let ext = ExternalIds { x, u1, u2, u3, h };

        let point = StencilPattern::point;
        let don = |axis: usize| {
            let mut o = [0_i64; 3];
            o[axis] = -1;
            StencilPattern::from_offsets([(0, 0, 0), (o[0], o[1], o[2])])
        };
        let div = |axis: usize| {
            let mut o = [0_i64; 3];
            o[axis] = 1;
            StencilPattern::from_offsets([(0, 0, 0), (o[0], o[1], o[2])])
        };

        let mut stages: Vec<StageDef> = Vec::new();
        let mut kinds: Vec<StageKind> = Vec::new();
        let mut next_id = 0u32;
        let mut push = |stages: &mut Vec<StageDef>,
                        kinds: &mut Vec<StageKind>,
                        kind: StageKind,
                        name: String,
                        outputs: Vec<FieldId>,
                        inputs: Vec<(FieldId, StencilPattern)>| {
            stages.push(StageDef {
                id: StageId(next_id),
                name,
                outputs,
                inputs,
                flops_per_cell: kind.flops_per_cell(),
            });
            kinds.push(kind);
            next_id += 1;
        };

        // ---- Pass 1: upwind ------------------------------------------
        let last_pass = iord == 1;
        let role = |last: bool| {
            if last {
                FieldRole::Output
            } else {
                FieldRole::Intermediate
            }
        };
        let f1 = t.add("f1", FieldRole::Intermediate);
        let f2 = t.add("f2", FieldRole::Intermediate);
        let f3 = t.add("f3", FieldRole::Intermediate);
        let xp = t.add(if last_pass { "xout" } else { "xp" }, role(last_pass));
        push(
            &mut stages,
            &mut kinds,
            StageKind::FluxI,
            "flux_i".into(),
            vec![f1],
            vec![(x, don(0)), (u1, point())],
        );
        push(
            &mut stages,
            &mut kinds,
            StageKind::FluxJ,
            "flux_j".into(),
            vec![f2],
            vec![(x, don(1)), (u2, point())],
        );
        push(
            &mut stages,
            &mut kinds,
            StageKind::FluxK,
            "flux_k".into(),
            vec![f3],
            vec![(x, don(2)), (u3, point())],
        );
        push(
            &mut stages,
            &mut kinds,
            StageKind::Update,
            "low_order".into(),
            vec![xp],
            vec![
                (x, point()),
                (f1, div(0)),
                (f2, div(1)),
                (f3, div(2)),
                (h, point()),
            ],
        );

        // ---- Corrective iterations -----------------------------------
        // Velocities transporting iteration k: the physical Courant
        // numbers for k = 2, the previous iteration's antidiffusive
        // velocities for k ≥ 3 (standard MPDATA recursion).
        let mut scalar_prev = xp;
        let mut vel_prev = (u1, u2, u3);
        for k in 2..=iord {
            let last = k == iord;
            let sfx = if k == 2 {
                String::new()
            } else {
                format!("_{k}")
            };
            let nm = |base: &str| format!("{base}{sfx}");

            let (pu1, pu2, pu3) = vel_prev;
            // ψ* reads of the antidiffusive velocity along each axis.
            let xp_anti = |m: usize, p: usize, q: usize| {
                let mut offs: Vec<(i64, i64, i64)> = Vec::new();
                let mk = |ax: usize, s: i64| {
                    let mut o = [0_i64; 3];
                    o[ax] = s;
                    (o[0], o[1], o[2])
                };
                for base in [[0_i64; 3], {
                    let mut o = [0_i64; 3];
                    o[m] = -1;
                    o
                }] {
                    offs.push((base[0], base[1], base[2]));
                    for (ax, s) in [(p, 1_i64), (p, -1), (q, 1), (q, -1)] {
                        let d = mk(ax, s);
                        offs.push((base[0] + d.0, base[1] + d.1, base[2] + d.2));
                    }
                }
                StencilPattern::from_offsets(offs)
            };
            // Cross-velocity averages at a low-`m` face: the four
            // surrounding faces along axis `c`.
            let cross = |m: usize, c: usize| {
                let mut o_m = [0_i64; 3];
                o_m[m] = -1;
                let mut o_c = [0_i64; 3];
                o_c[c] = 1;
                StencilPattern::from_offsets([
                    (0, 0, 0),
                    (o_m[0], o_m[1], o_m[2]),
                    (o_c[0], o_c[1], o_c[2]),
                    (o_m[0] + o_c[0], o_m[1] + o_c[1], o_m[2] + o_c[2]),
                ])
            };

            let v1 = t.add(&nm("v1"), FieldRole::Intermediate);
            let v2 = t.add(&nm("v2"), FieldRole::Intermediate);
            let v3 = t.add(&nm("v3"), FieldRole::Intermediate);
            push(
                &mut stages,
                &mut kinds,
                StageKind::AntidiffI,
                nm("antidiff_i"),
                vec![v1],
                vec![
                    (scalar_prev, xp_anti(0, 1, 2)),
                    (pu1, point()),
                    (pu2, cross(0, 1)),
                    (pu3, cross(0, 2)),
                    (h, don(0)),
                ],
            );
            push(
                &mut stages,
                &mut kinds,
                StageKind::AntidiffJ,
                nm("antidiff_j"),
                vec![v2],
                vec![
                    (scalar_prev, xp_anti(1, 0, 2)),
                    (pu2, point()),
                    (pu1, cross(1, 0)),
                    (pu3, cross(1, 2)),
                    (h, don(1)),
                ],
            );
            push(
                &mut stages,
                &mut kinds,
                StageKind::AntidiffK,
                nm("antidiff_k"),
                vec![v3],
                vec![
                    (scalar_prev, xp_anti(2, 0, 1)),
                    (pu3, point()),
                    (pu1, cross(2, 0)),
                    (pu2, cross(2, 1)),
                    (h, don(2)),
                ],
            );

            let mx = t.add(&nm("mx"), FieldRole::Intermediate);
            let mn = t.add(&nm("mn"), FieldRole::Intermediate);
            push(
                &mut stages,
                &mut kinds,
                StageKind::MinMax,
                nm("minmax"),
                vec![mx, mn],
                vec![
                    (x, StencilPattern::seven_point()),
                    (scalar_prev, StencilPattern::seven_point()),
                ],
            );

            let g1 = t.add(&nm("g1"), FieldRole::Intermediate);
            let g2 = t.add(&nm("g2"), FieldRole::Intermediate);
            let g3 = t.add(&nm("g3"), FieldRole::Intermediate);
            push(
                &mut stages,
                &mut kinds,
                StageKind::FluxI,
                nm("pflux_i"),
                vec![g1],
                vec![(scalar_prev, don(0)), (v1, point())],
            );
            push(
                &mut stages,
                &mut kinds,
                StageKind::FluxJ,
                nm("pflux_j"),
                vec![g2],
                vec![(scalar_prev, don(1)), (v2, point())],
            );
            push(
                &mut stages,
                &mut kinds,
                StageKind::FluxK,
                nm("pflux_k"),
                vec![g3],
                vec![(scalar_prev, don(2)), (v3, point())],
            );

            let bu = t.add(&nm("bu"), FieldRole::Intermediate);
            let bd = t.add(&nm("bd"), FieldRole::Intermediate);
            let beta_inputs = |ex: FieldId| {
                vec![
                    (ex, point()),
                    (scalar_prev, point()),
                    (g1, div(0)),
                    (g2, div(1)),
                    (g3, div(2)),
                    (h, point()),
                ]
            };
            push(
                &mut stages,
                &mut kinds,
                StageKind::BetaUp,
                nm("beta_up"),
                vec![bu],
                beta_inputs(mx),
            );
            push(
                &mut stages,
                &mut kinds,
                StageKind::BetaDn,
                nm("beta_dn"),
                vec![bd],
                beta_inputs(mn),
            );

            let f1l = t.add(&nm("f1l"), FieldRole::Intermediate);
            let f2l = t.add(&nm("f2l"), FieldRole::Intermediate);
            let f3l = t.add(&nm("f3l"), FieldRole::Intermediate);
            push(
                &mut stages,
                &mut kinds,
                StageKind::LimFluxI,
                nm("lim_flux_i"),
                vec![f1l],
                vec![(g1, point()), (bu, don(0)), (bd, don(0))],
            );
            push(
                &mut stages,
                &mut kinds,
                StageKind::LimFluxJ,
                nm("lim_flux_j"),
                vec![f2l],
                vec![(g2, point()), (bu, don(1)), (bd, don(1))],
            );
            push(
                &mut stages,
                &mut kinds,
                StageKind::LimFluxK,
                nm("lim_flux_k"),
                vec![f3l],
                vec![(g3, point()), (bu, don(2)), (bd, don(2))],
            );

            let xk_name = if last { "xout".to_string() } else { nm("xc") };
            let xk = t.add(&xk_name, role(last));
            push(
                &mut stages,
                &mut kinds,
                StageKind::Update,
                nm("update"),
                vec![xk],
                vec![
                    (scalar_prev, point()),
                    (f1l, div(0)),
                    (f2l, div(1)),
                    (f3l, div(2)),
                    (h, point()),
                ],
            );

            scalar_prev = xk;
            vel_prev = (v1, v2, v3);
        }

        let xout = scalar_prev;
        let graph = StageGraph::build(t, stages).expect("MPDATA stage graph is well-formed");
        MpdataProblem {
            graph,
            kinds,
            ext,
            xout,
            iord,
            boundary: Boundary::Open,
        }
    }

    /// Changes the boundary treatment (default [`Boundary::Open`]).
    pub fn with_boundary(mut self, boundary: Boundary) -> Self {
        self.boundary = boundary;
        self
    }

    /// The boundary treatment.
    pub fn boundary(&self) -> Boundary {
        self.boundary
    }

    /// The paper's configuration: one corrective iteration (17 stages).
    pub fn standard() -> Self {
        Self::with_iord(2)
    }

    /// The stage graph.
    pub fn graph(&self) -> &StageGraph {
        &self.graph
    }

    /// The kernel kind of `stage`.
    pub fn kind(&self, stage: StageId) -> StageKind {
        self.kinds[stage.index()]
    }

    /// Kernel kinds in stage order.
    pub fn kinds(&self) -> &[StageKind] {
        &self.kinds
    }

    /// Handles to the five external inputs.
    pub fn ext(&self) -> ExternalIds {
        self.ext
    }

    /// The output field.
    pub fn xout(&self) -> FieldId {
        self.xout
    }

    /// The number of passes.
    pub fn iord(&self) -> usize {
        self.iord
    }

    /// Total flops per cell of one time step of this problem.
    pub fn flops_per_cell(&self) -> f64 {
        self.kinds.iter().map(|k| k.flops_per_cell()).sum()
    }
}

/// Handles to the fields of the 17-stage MPDATA graph, in registration
/// order (legacy layout kept for the analysis layer and tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MpdataFieldIds {
    /// Advected scalar (external input).
    pub x: FieldId,
    /// Courant numbers (external inputs).
    pub u1: FieldId,
    /// See [`MpdataFieldIds::u1`].
    pub u2: FieldId,
    /// See [`MpdataFieldIds::u1`].
    pub u3: FieldId,
    /// Density / Jacobian (external input).
    pub h: FieldId,
    /// Upwind fluxes.
    pub f1: FieldId,
    /// See [`MpdataFieldIds::f1`].
    pub f2: FieldId,
    /// See [`MpdataFieldIds::f1`].
    pub f3: FieldId,
    /// First-order (low order) solution ψ*.
    pub xp: FieldId,
    /// Antidiffusive pseudo-velocities.
    pub v1: FieldId,
    /// See [`MpdataFieldIds::v1`].
    pub v2: FieldId,
    /// See [`MpdataFieldIds::v1`].
    pub v3: FieldId,
    /// Local maxima ψ^max.
    pub mx: FieldId,
    /// Local minima ψ^min.
    pub mn: FieldId,
    /// Pseudo fluxes of the corrective pass.
    pub g1: FieldId,
    /// See [`MpdataFieldIds::g1`].
    pub g2: FieldId,
    /// See [`MpdataFieldIds::g1`].
    pub g3: FieldId,
    /// β↑ limiter.
    pub bu: FieldId,
    /// β↓ limiter.
    pub bd: FieldId,
    /// Limited (monotone) fluxes.
    pub f1l: FieldId,
    /// See [`MpdataFieldIds::f1l`].
    pub f2l: FieldId,
    /// See [`MpdataFieldIds::f1l`].
    pub f3l: FieldId,
    /// Final advected scalar (output).
    pub xout: FieldId,
}

/// Builds the paper's 17-stage MPDATA graph and returns the legacy
/// field handles with it.
pub fn mpdata_graph() -> (StageGraph, MpdataFieldIds) {
    let p = MpdataProblem::standard();
    let t = p.graph().fields();
    let find = |n: &str| t.find(n).expect("standard graph field");
    let ids = MpdataFieldIds {
        x: find("x"),
        u1: find("u1"),
        u2: find("u2"),
        u3: find("u3"),
        h: find("h"),
        f1: find("f1"),
        f2: find("f2"),
        f3: find("f3"),
        xp: find("xp"),
        v1: find("v1"),
        v2: find("v2"),
        v3: find("v3"),
        mx: find("mx"),
        mn: find("mn"),
        g1: find("g1"),
        g2: find("g2"),
        g3: find("g3"),
        bu: find("bu"),
        bd: find("bd"),
        f1l: find("f1l"),
        f2l: find("f2l"),
        f3l: find("f3l"),
        xout: find("xout"),
    };
    (p.graph().clone(), ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_engine::Region3;

    #[test]
    fn graph_has_17_stages_5_inputs_1_output() {
        let (g, ids) = mpdata_graph();
        assert_eq!(g.stage_count(), STAGE_COUNT);
        assert_eq!(g.external_fields().len(), 5);
        assert_eq!(g.output_fields(), vec![ids.xout]);
        assert_eq!(g.fields().len(), 23);
    }

    #[test]
    fn stage_names_are_unique_and_ordered() {
        let (g, _) = mpdata_graph();
        let mut names: Vec<&str> = g.stages().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names[0], "flux_i");
        assert_eq!(names[16], "update");
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), STAGE_COUNT);
    }

    #[test]
    fn flops_per_cell_matches_paper_ballpark() {
        // The paper's sustained numbers imply ≈230 flop/cell/step.
        let f = flops_per_cell();
        assert!((200.0..260.0).contains(&f), "flops/cell = {f}");
        assert_eq!(f, MpdataProblem::standard().flops_per_cell());
    }

    #[test]
    fn standard_kinds_match_graph_order() {
        let p = MpdataProblem::standard();
        assert_eq!(p.kinds(), &STANDARD_KINDS);
        assert_eq!(p.iord(), 2);
        for (n, st) in p.graph().stages().iter().enumerate() {
            assert_eq!(st.flops_per_cell, STAGE_FLOPS[n]);
        }
    }

    #[test]
    fn iord_scaling() {
        assert_eq!(MpdataProblem::with_iord(1).graph().stage_count(), 4);
        assert_eq!(MpdataProblem::with_iord(2).graph().stage_count(), 17);
        assert_eq!(MpdataProblem::with_iord(3).graph().stage_count(), 30);
        assert_eq!(MpdataProblem::with_iord(4).graph().stage_count(), 43);
        // Output is always the single output field.
        for iord in 1..=4 {
            let p = MpdataProblem::with_iord(iord);
            assert_eq!(p.graph().output_fields(), vec![p.xout()]);
            assert_eq!(p.graph().external_fields().len(), 5);
        }
    }

    #[test]
    fn iord3_chains_velocities() {
        let p = MpdataProblem::with_iord(3);
        let t = p.graph().fields();
        // Third-pass antidiffusive velocity reads the second pass's.
        let v1_3 = t.find("v1_3").expect("third-pass velocity");
        let anti3 = p
            .graph()
            .stages()
            .iter()
            .find(|s| s.outputs == vec![v1_3])
            .unwrap();
        let v1_2 = t.find("v1").unwrap();
        assert!(
            anti3.reads(v1_2),
            "pass 3 must transport with pass-2 velocities"
        );
        // And the second corrective update feeds the third pass (the
        // k = 2 iterate carries no suffix, like the other k = 2 names).
        let xc2 = t.find("xc").expect("intermediate iterate");
        assert!(anti3.reads(xc2), "pass 3 must advect the pass-2 iterate");
    }

    #[test]
    fn cumulative_i_halos_are_small_and_monotone() {
        let (g, _) = mpdata_graph();
        let h = g.cumulative_halos();
        assert!(h[0].i_neg >= h[16].i_neg);
        assert_eq!(h[16].i_neg, 0);
        assert_eq!(h[16].i_pos, 0);
        for (n, halo) in h.iter().enumerate() {
            assert!(halo.i_neg <= 4 && halo.i_pos <= 4, "stage {n}: {halo:?}");
        }
    }

    #[test]
    fn deeper_iord_reaches_farther() {
        let h2 = MpdataProblem::with_iord(2).graph().cumulative_halos();
        let h3 = MpdataProblem::with_iord(3).graph().cumulative_halos();
        assert!(
            h3[0].i_neg > h2[0].i_neg,
            "more passes ⇒ deeper dependencies"
        );
    }

    #[test]
    fn whole_domain_requires_every_stage_everywhere() {
        let (g, _) = mpdata_graph();
        let d = Region3::of_extent(16, 8, 8);
        let rr = g.required_regions(d, d);
        for (n, r) in rr.iter().enumerate() {
            assert_eq!(*r, d, "stage {n} must cover the whole domain");
        }
    }

    #[test]
    fn extra_updates_scale_linearly_in_cuts() {
        let (g, _) = mpdata_graph();
        let d = Region3::of_extent(64, 16, 8);
        let whole: usize = g.required_regions(d, d).iter().map(|r| r.cells()).sum();
        let mut extras = Vec::new();
        for parts in [2usize, 4, 8] {
            let total: usize = d
                .split(stencil_engine::Axis::I, parts)
                .into_iter()
                .map(|p| {
                    g.required_regions(p, d)
                        .iter()
                        .map(|r| r.cells())
                        .sum::<usize>()
                })
                .sum();
            extras.push(total - whole);
        }
        assert!(extras[0] > 0);
        let per_cut = extras[0] as f64;
        assert!((extras[1] as f64 - 3.0 * per_cut).abs() / (3.0 * per_cut) < 0.05);
        assert!((extras[2] as f64 - 7.0 * per_cut).abs() / (7.0 * per_cut) < 0.05);
    }
}
