//! The islands-of-cores executor — the paper's contribution, as real
//! threaded code.
//!
//! The domain is partitioned into one part per work team (island). Each
//! island runs the (3+1)D decomposition on its part, computing every
//! stage on the *enlarged* regions from the backward requirement
//! analysis: the handful of boundary cells whose values would otherwise
//! have to be fetched from a neighbouring island are simply recomputed
//! (the paper's "extra elements", Table 2). Within a time step islands
//! synchronize only among their own cores (team barriers between
//! stages); all islands meet once per step when the team run joins.

use crate::fields::MpdataFields;
use crate::graph::MpdataProblem;
use crate::plan::{plan_run, plan_step, PartitionKind, SchedulePolicy, StepPlan, TileMode};
use std::sync::Mutex;
use stencil_engine::{Array3, Axis, PlanBlocksError, Region3, StageGraph};
use work_scheduler::{TeamSpec, WorkerPool};

/// Parallel islands-of-cores MPDATA executor.
///
/// # Examples
///
/// ```
/// use mpdata::{gaussian_pulse, IslandsExecutor, ReferenceExecutor};
/// use stencil_engine::{Axis, Region3};
/// use work_scheduler::{TeamSpec, WorkerPool};
///
/// let pool = WorkerPool::new(4);
/// let teams = TeamSpec::even(4, 2); // two islands of two cores
/// let domain = Region3::of_extent(24, 8, 4);
/// let fields = gaussian_pulse(domain, (0.3, 0.0, 0.0));
/// let islands = IslandsExecutor::new(&pool, teams, Axis::I)
///     .cache_bytes(64 * 1024)
///     .step(&fields)?;
/// let reference = ReferenceExecutor::new().step(&fields);
/// assert_eq!(islands.max_abs_diff(&reference), 0.0);
/// # Ok::<(), stencil_engine::PlanBlocksError>(())
/// ```
/// Parallel islands-of-cores MPDATA executor (see the crate docs and
/// the example above the struct's builder methods).
#[derive(Debug)]
pub struct IslandsExecutor<'p> {
    pool: &'p WorkerPool,
    teams: TeamSpec,
    problem: MpdataProblem,
    cache_bytes: usize,
    partition: PartitionKind,
    /// Axis along which a team splits each stage sweep among its cores.
    split_axis: Axis,
    /// How epoch work units are handed to ranks (static slices or
    /// self-scheduled chunks).
    schedule: SchedulePolicy,
    /// Time steps fused into one replay epoch (temporal blocking; 1 =
    /// classic per-step global synchronization).
    fuse_steps: usize,
    /// Cache-tiled stage fusion ([`TileMode::Off`] by default).
    tile: TileMode,
    /// Cached execution plan, rebuilt whenever its key (domain,
    /// partition, cache budget, split axis, schedule, fuse depth,
    /// tile mode) stops matching.
    plan: Mutex<Option<StepPlan>>,
}

impl<'p> IslandsExecutor<'p> {
    /// Creates the executor: one island per team of `teams`, partitioning
    /// the domain along `partition_axis`.
    pub fn new(pool: &'p WorkerPool, teams: TeamSpec, partition_axis: Axis) -> Self {
        Self::with_problem(pool, teams, partition_axis, MpdataProblem::standard())
    }

    /// Creates the executor for an arbitrary MPDATA problem.
    pub fn with_problem(
        pool: &'p WorkerPool,
        teams: TeamSpec,
        partition_axis: Axis,
        problem: MpdataProblem,
    ) -> Self {
        IslandsExecutor {
            pool,
            teams,
            problem,
            cache_bytes: crate::fused::DEFAULT_CACHE_BYTES,
            partition: PartitionKind::Axis(partition_axis),
            split_axis: Axis::J,
            schedule: SchedulePolicy::Static,
            fuse_steps: 1,
            tile: TileMode::Off,
            plan: Mutex::new(None),
        }
    }

    /// Replaces the 1-D axis split with an explicit partition: one part
    /// per team, in team order (2-D island grids, uneven splits, …).
    /// Parts must disjointly cover every domain this executor is run on;
    /// [`IslandsExecutor::step`] asserts the cover per call.
    pub fn with_partition(mut self, parts: Vec<Region3>) -> Self {
        assert_eq!(
            parts.len(),
            self.teams.team_count(),
            "one part per team required"
        );
        self.partition = PartitionKind::Explicit(parts);
        self
    }

    /// Sets the per-block cache budget of each island.
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Sets the axis along which a team splits stage sweeps internally.
    pub fn split_axis(mut self, axis: Axis) -> Self {
        self.split_axis = axis;
        self
    }

    /// Sets the intra-island schedule policy (static rank slices by
    /// default).
    pub fn schedule(mut self, policy: SchedulePolicy) -> Self {
        self.schedule = policy;
        self
    }

    /// Shorthand for [`SchedulePolicy::Dynamic`]: every epoch is split
    /// into `chunks_per_rank` chunks per rank, claimed from a
    /// preallocated per-epoch queue. Bit-identical to the static
    /// schedule — chunk boundaries, not claim order, determine every
    /// written value.
    pub fn self_schedule(self, chunks_per_rank: usize) -> Self {
        self.schedule(SchedulePolicy::Dynamic { chunks_per_rank })
    }

    /// Fuses `k` whole time steps into one replay epoch (temporal
    /// blocking): each island's per-step targets are enlarged backwards
    /// by one cumulative stencil halo per fused step, intermediate
    /// advected fields ping-pong through team-private buffers, and
    /// [`IslandsExecutor::run`] pays the global-barrier pair once per
    /// `k` steps instead of once per step. Bit-identical to `k = 1` for
    /// any step count (a trailing partial epoch replays only its last
    /// sections). Values below 1 are treated as 1.
    pub fn fuse_steps(mut self, k: usize) -> Self {
        self.fuse_steps = k.max(1);
        self
    }

    /// Enables cache-tiled stage fusion: each fused-step target is cut
    /// into `(i, j)` tiles sized so a tile's scratch (tile plus
    /// cumulative halo) stays cache-resident, and the whole 17-stage
    /// chain of one tile runs back-to-back on the executing rank's
    /// private scratch. Intermediates stop round-tripping through main
    /// memory and the per-stage team barriers collapse to one per fused
    /// step, at the price of redundant halo recomputation along tile
    /// faces. Bit-identical to the untiled replay for every tile size,
    /// schedule and fuse depth (the kernels are pointwise in their
    /// declared neighborhoods).
    pub fn tile(mut self, mode: TileMode) -> Self {
        self.tile = mode;
        self
    }

    /// The stage graph.
    pub fn graph(&self) -> &StageGraph {
        self.problem.graph()
    }

    /// The island partition of `domain`: one part per team.
    ///
    /// # Panics
    ///
    /// Panics if an explicit partition does not disjointly cover
    /// `domain`.
    pub fn partition(&self, domain: Region3) -> Vec<Region3> {
        self.partition.parts(domain, self.teams.team_count())
    }

    /// Performs one time step.
    ///
    /// # Errors
    ///
    /// Returns [`PlanBlocksError`] when an island's block does not fit
    /// the cache budget.
    pub fn step(&self, fields: &MpdataFields) -> Result<Array3, PlanBlocksError> {
        self.check_boundary();
        let mut slot = self.plan.lock().unwrap_or_else(|e| e.into_inner());
        plan_step(
            self.pool,
            &self.teams,
            &self.problem,
            &mut slot,
            &self.partition,
            self.cache_bytes,
            self.split_axis,
            self.schedule,
            self.fuse_steps,
            self.tile,
            fields,
        )
    }

    fn check_boundary(&self) {
        assert_eq!(
            self.problem.boundary(),
            crate::kernels::Boundary::Open,
            "the islands executor requires open boundaries: periodic wrap \
             dependencies cannot be expressed by box-shaped island regions"
        );
    }

    /// Advances `fields.x` by `steps` time steps.
    ///
    /// # Errors
    ///
    /// Returns [`PlanBlocksError`] when an island's block does not fit
    /// the cache budget.
    pub fn run(&self, fields: &mut MpdataFields, steps: usize) -> Result<(), PlanBlocksError> {
        self.check_boundary();
        let mut slot = self.plan.lock().unwrap_or_else(|e| e.into_inner());
        plan_run(
            self.pool,
            &self.teams,
            &self.problem,
            &mut slot,
            &self.partition,
            self.cache_bytes,
            self.split_axis,
            self.schedule,
            self.fuse_steps,
            self.tile,
            fields,
            steps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::{gaussian_pulse, random_fields, rotating_cone};
    use crate::reference::ReferenceExecutor;
    use stencil_engine::rng::Xoshiro256pp;

    #[test]
    fn matches_reference_bitwise_variant_a() {
        let d = Region3::of_extent(24, 9, 5);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let f = random_fields(&mut rng, d, 0.7);
        let expect = ReferenceExecutor::new().step(&f);
        for (workers, teams) in [(2, 2), (4, 2), (6, 3), (8, 4)] {
            let pool = WorkerPool::new(workers);
            let spec = TeamSpec::even(workers, teams);
            let got = IslandsExecutor::new(&pool, spec, Axis::I)
                .cache_bytes(64 * 1024)
                .step(&f)
                .unwrap();
            assert_eq!(
                got.max_abs_diff(&expect),
                0.0,
                "{workers} workers / {teams} islands diverged"
            );
        }
    }

    #[test]
    fn matches_reference_bitwise_variant_b() {
        let d = Region3::of_extent(12, 18, 4);
        let f = gaussian_pulse(d, (0.2, 0.2, 0.0));
        let expect = ReferenceExecutor::new().step(&f);
        let pool = WorkerPool::new(6);
        let got = IslandsExecutor::new(&pool, TeamSpec::even(6, 3), Axis::J)
            .cache_bytes(48 * 1024)
            .step(&f)
            .unwrap();
        assert_eq!(got.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn multi_step_matches_reference() {
        let d = Region3::of_extent(20, 10, 4);
        let mut f1 = rotating_cone(d, 0.25);
        let mut f2 = f1.clone();
        let pool = WorkerPool::new(4);
        IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I)
            .cache_bytes(48 * 1024)
            .run(&mut f1, 3)
            .unwrap();
        ReferenceExecutor::new().run(&mut f2, 3);
        assert_eq!(f1.x.max_abs_diff(&f2.x), 0.0);
    }

    #[test]
    fn single_island_equals_fused() {
        let d = Region3::of_extent(16, 8, 4);
        let f = gaussian_pulse(d, (0.3, 0.0, 0.0));
        let pool = WorkerPool::new(4);
        let islands = IslandsExecutor::new(&pool, TeamSpec::even(4, 1), Axis::I)
            .cache_bytes(64 * 1024)
            .step(&f)
            .unwrap();
        let fused = crate::fused::FusedExecutor::new(&pool)
            .cache_bytes(64 * 1024)
            .step(&f)
            .unwrap();
        assert_eq!(islands.max_abs_diff(&fused), 0.0);
    }

    #[test]
    fn explicit_2d_partition_matches_reference() {
        // A 2×2 island grid — the paper's future-work shape — executed
        // with real threads.
        let d = Region3::of_extent(16, 16, 4);
        let f = gaussian_pulse(d, (0.2, 0.2, 0.0));
        let expect = ReferenceExecutor::new().step(&f);
        let pool = WorkerPool::new(4);
        let mut parts = Vec::new();
        for half_i in d.split(Axis::I, 2) {
            parts.extend(half_i.split(Axis::J, 2));
        }
        let got = IslandsExecutor::new(&pool, TeamSpec::even(4, 4), Axis::I)
            .with_partition(parts)
            .cache_bytes(64 * 1024)
            .step(&f)
            .unwrap();
        assert_eq!(got.max_abs_diff(&expect), 0.0);
    }

    #[test]
    #[should_panic]
    fn explicit_partition_must_cover_domain() {
        let d = Region3::of_extent(8, 8, 4);
        let f = gaussian_pulse(d, (0.1, 0.0, 0.0));
        let pool = WorkerPool::new(2);
        let half = d.split(Axis::I, 2)[0];
        let _ = IslandsExecutor::new(&pool, TeamSpec::even(2, 2), Axis::I)
            .with_partition(vec![half, half]) // overlapping, not covering
            .step(&f);
    }

    #[test]
    fn self_schedule_matches_reference_bitwise() {
        // Dynamic claiming must not change a single bit: the chunk
        // regions, not the claim order, determine every written value.
        let d = Region3::of_extent(24, 9, 5);
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let f = random_fields(&mut rng, d, 0.7);
        let expect = ReferenceExecutor::new().step(&f);
        for chunks in [1, 2, 4] {
            let pool = WorkerPool::new(4);
            let got = IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I)
                .cache_bytes(64 * 1024)
                .self_schedule(chunks)
                .step(&f)
                .unwrap();
            assert_eq!(
                got.max_abs_diff(&expect),
                0.0,
                "self_schedule({chunks}) diverged"
            );
        }
    }

    #[test]
    fn self_schedule_multi_step_matches_reference() {
        let d = Region3::of_extent(20, 10, 4);
        let mut f1 = rotating_cone(d, 0.25);
        let mut f2 = f1.clone();
        let pool = WorkerPool::new(4);
        IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I)
            .cache_bytes(48 * 1024)
            .self_schedule(3)
            .run(&mut f1, 4)
            .unwrap();
        ReferenceExecutor::new().run(&mut f2, 4);
        assert_eq!(f1.x.max_abs_diff(&f2.x), 0.0);
    }

    #[test]
    fn balanced_nonuniform_partition_matches_reference() {
        // Cost-model cuts produce unequal slab widths; any disjoint
        // cover must stay bitwise exact, statically and dynamically.
        let d = Region3::of_extent(30, 10, 4);
        let f = gaussian_pulse(d, (0.2, 0.1, 0.0));
        let expect = ReferenceExecutor::new().step(&f);
        let pool = WorkerPool::new(4);
        let problem = MpdataProblem::standard();
        let model = stencil_engine::CostModel::from_graph(problem.graph());
        let parts = stencil_engine::balanced_cuts(problem.graph(), d, d, Axis::I, 4, &model);
        let widths: Vec<usize> = parts.iter().map(|p| p.i.len()).collect();
        assert!(
            widths.iter().any(|&w| w != widths[0]),
            "cuts unexpectedly uniform: {widths:?}"
        );
        for dynamic in [false, true] {
            let exec = IslandsExecutor::new(&pool, TeamSpec::even(4, 4), Axis::I)
                .with_partition(parts.clone())
                .cache_bytes(64 * 1024);
            let exec = if dynamic { exec.self_schedule(2) } else { exec };
            let got = exec.step(&f).unwrap();
            assert_eq!(got.max_abs_diff(&expect), 0.0, "dynamic={dynamic} diverged");
        }
    }

    #[test]
    fn one_cell_wide_island_matches_reference() {
        // Degenerate non-uniform partition: a single-plane island next
        // to a fat one.
        let d = Region3::of_extent(17, 8, 4);
        let f = gaussian_pulse(d, (0.2, 0.0, 0.0));
        let expect = ReferenceExecutor::new().step(&f);
        let pool = WorkerPool::new(2);
        let thin = d.with_range(Axis::I, stencil_engine::Range1::new(0, 1));
        let fat = d.with_range(Axis::I, stencil_engine::Range1::new(1, 17));
        let got = IslandsExecutor::new(&pool, TeamSpec::even(2, 2), Axis::I)
            .with_partition(vec![thin, fat])
            .cache_bytes(64 * 1024)
            .step(&f)
            .unwrap();
        assert_eq!(got.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn fused_epochs_match_reference_bitwise() {
        // Temporal blocking must not change a single bit: every fused
        // step computes the same kernels over (enlarged) regions, and
        // region shape never enters the arithmetic of a cell.
        let d = Region3::of_extent(20, 10, 4);
        let mut expect = rotating_cone(d, 0.25);
        ReferenceExecutor::new().run(&mut expect, 8);
        for k in [2, 3, 4] {
            let mut f = rotating_cone(d, 0.25);
            let pool = WorkerPool::new(4);
            IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I)
                .cache_bytes(48 * 1024)
                .fuse_steps(k)
                .run(&mut f, 8)
                .unwrap();
            assert_eq!(f.x.max_abs_diff(&expect.x), 0.0, "fuse_steps({k}) diverged");
        }
    }

    #[test]
    fn fused_remainder_steps_match_reference() {
        // steps not divisible by k: the trailing partial epoch replays
        // only the last sections of the table.
        let d = Region3::of_extent(18, 9, 4);
        let mut expect = rotating_cone(d, 0.2);
        ReferenceExecutor::new().run(&mut expect, 7);
        let mut f = rotating_cone(d, 0.2);
        let pool = WorkerPool::new(4);
        IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I)
            .cache_bytes(48 * 1024)
            .fuse_steps(3)
            .run(&mut f, 7)
            .unwrap();
        assert_eq!(f.x.max_abs_diff(&expect.x), 0.0);
    }

    #[test]
    fn fused_single_step_matches_reference() {
        // `step` on a fused plan replays the one-section tail — the
        // unenlarged last fused step — so it must equal k = 1 exactly.
        let d = Region3::of_extent(24, 9, 5);
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let f = random_fields(&mut rng, d, 0.7);
        let expect = ReferenceExecutor::new().step(&f);
        let pool = WorkerPool::new(4);
        let got = IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I)
            .cache_bytes(64 * 1024)
            .fuse_steps(3)
            .step(&f)
            .unwrap();
        assert_eq!(got.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn fused_self_schedule_matches_reference() {
        // Fusion × self-scheduling: chunk claim order stays irrelevant
        // inside every fused step.
        let d = Region3::of_extent(20, 10, 4);
        let mut expect = rotating_cone(d, 0.25);
        ReferenceExecutor::new().run(&mut expect, 6);
        let mut f = rotating_cone(d, 0.25);
        let pool = WorkerPool::new(4);
        IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I)
            .cache_bytes(48 * 1024)
            .self_schedule(3)
            .fuse_steps(2)
            .run(&mut f, 6)
            .unwrap();
        assert_eq!(f.x.max_abs_diff(&expect.x), 0.0);
    }

    #[test]
    fn fused_explicit_partition_matches_reference() {
        // Fusion over a 2×2 island grid: the backward halo enlargement
        // is per-part, not per-axis.
        let d = Region3::of_extent(16, 16, 4);
        let mut expect = gaussian_pulse(d, (0.2, 0.2, 0.0));
        ReferenceExecutor::new().run(&mut expect, 5);
        let mut f = gaussian_pulse(d, (0.2, 0.2, 0.0));
        let pool = WorkerPool::new(4);
        let mut parts = Vec::new();
        for half_i in d.split(Axis::I, 2) {
            parts.extend(half_i.split(Axis::J, 2));
        }
        IslandsExecutor::new(&pool, TeamSpec::even(4, 4), Axis::I)
            .with_partition(parts)
            .cache_bytes(64 * 1024)
            .fuse_steps(2)
            .run(&mut f, 5)
            .unwrap();
        assert_eq!(f.x.max_abs_diff(&expect.x), 0.0);
    }

    #[test]
    fn fused_interleaves_with_unfused_runs() {
        // Changing the fuse depth mid-flight must replan (PlanKey keys
        // on k) and stay exact.
        let d = Region3::of_extent(16, 8, 4);
        let mut expect = rotating_cone(d, 0.2);
        ReferenceExecutor::new().run(&mut expect, 6);
        let mut f = rotating_cone(d, 0.2);
        let pool = WorkerPool::new(4);
        let exec = IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I)
            .cache_bytes(48 * 1024)
            .fuse_steps(3);
        exec.run(&mut f, 3).unwrap();
        exec.run(&mut f, 3).unwrap();
        assert_eq!(f.x.max_abs_diff(&expect.x), 0.0);
    }

    #[test]
    fn tiled_matches_reference_bitwise_across_tile_sizes() {
        // Tile fusion must not change a single bit: per-stage tile
        // regions come from the same backward requirement analysis as
        // blocks, and region shape never enters a cell's arithmetic.
        // Sweep 1-wide slivers, prime extents, tiles larger than the
        // whole part, and the cache-driven auto sizer.
        let d = Region3::of_extent(23, 11, 5);
        let mut rng = Xoshiro256pp::seed_from_u64(23);
        let f = random_fields(&mut rng, d, 0.7);
        let expect = ReferenceExecutor::new().step(&f);
        let pool = WorkerPool::new(4);
        let modes = [
            TileMode::Fixed { ti: 1, tj: 1 },
            TileMode::Fixed { ti: 1, tj: 64 },
            TileMode::Fixed { ti: 64, tj: 1 },
            TileMode::Fixed { ti: 3, tj: 5 },
            TileMode::Fixed { ti: 64, tj: 64 },
            TileMode::Auto,
        ];
        for mode in modes {
            let got = IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I)
                .cache_bytes(64 * 1024)
                .tile(mode)
                .step(&f)
                .unwrap();
            assert_eq!(got.max_abs_diff(&expect), 0.0, "{mode:?} diverged");
        }
    }

    #[test]
    fn tiled_fused_epochs_match_reference_bitwise() {
        // Tiling × temporal blocking: tiles partition each enlarged
        // fused-step target and the x slots ping-pong exactly as in the
        // untiled replay.
        let d = Region3::of_extent(20, 10, 4);
        let mut expect = rotating_cone(d, 0.25);
        ReferenceExecutor::new().run(&mut expect, 7);
        for k in [2, 3] {
            for mode in [TileMode::Fixed { ti: 4, tj: 3 }, TileMode::Auto] {
                let mut f = rotating_cone(d, 0.25);
                let pool = WorkerPool::new(4);
                IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I)
                    .cache_bytes(48 * 1024)
                    .fuse_steps(k)
                    .tile(mode)
                    .run(&mut f, 7)
                    .unwrap();
                assert_eq!(
                    f.x.max_abs_diff(&expect.x),
                    0.0,
                    "fuse_steps({k}) × {mode:?} diverged"
                );
            }
        }
    }

    #[test]
    fn tiled_self_schedule_matches_reference_bitwise() {
        // Dynamic tile claiming: the claim order is irrelevant — tiles
        // own disjoint output regions and all scratch is rank-private.
        let d = Region3::of_extent(24, 9, 5);
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        let f = random_fields(&mut rng, d, 0.7);
        let expect = ReferenceExecutor::new().step(&f);
        for chunks in [1, 3] {
            let pool = WorkerPool::new(4);
            let got = IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I)
                .cache_bytes(64 * 1024)
                .self_schedule(chunks)
                .tile(TileMode::Fixed { ti: 5, tj: 4 })
                .step(&f)
                .unwrap();
            assert_eq!(
                got.max_abs_diff(&expect),
                0.0,
                "self_schedule({chunks}) tiled diverged"
            );
        }
    }

    #[test]
    fn tiled_dynamic_fused_multi_step_matches_reference() {
        // The full composition: tiling × self-scheduling × temporal
        // blocking × a step count that leaves a partial tail epoch.
        let d = Region3::of_extent(20, 10, 4);
        let mut expect = rotating_cone(d, 0.25);
        ReferenceExecutor::new().run(&mut expect, 7);
        let mut f = rotating_cone(d, 0.25);
        let pool = WorkerPool::new(4);
        IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I)
            .cache_bytes(48 * 1024)
            .self_schedule(2)
            .fuse_steps(3)
            .tile(TileMode::Fixed { ti: 3, tj: 4 })
            .run(&mut f, 7)
            .unwrap();
        assert_eq!(f.x.max_abs_diff(&expect.x), 0.0);
    }

    #[test]
    fn tiled_more_islands_than_slabs_still_correct() {
        // Empty parts get empty tile tables and still synchronize
        // consistently.
        let d = Region3::of_extent(5, 6, 4);
        let f = gaussian_pulse(d, (0.2, 0.1, 0.0));
        let pool = WorkerPool::new(8);
        let got = IslandsExecutor::new(&pool, TeamSpec::even(8, 8), Axis::I)
            .cache_bytes(64 * 1024)
            .tile(TileMode::Fixed { ti: 2, tj: 2 })
            .step(&f)
            .unwrap();
        let expect = ReferenceExecutor::new().step(&f);
        assert_eq!(got.max_abs_diff(&expect), 0.0);
    }

    #[test]
    #[should_panic]
    fn tiled_periodic_boundaries_still_rejected() {
        // Tiling keeps the box-shaped requirement analysis, so the
        // periodic rejection contract is unchanged.
        let d = Region3::of_extent(12, 8, 4);
        let f = gaussian_pulse(d, (0.2, 0.0, 0.0));
        let pool = WorkerPool::new(2);
        let problem = MpdataProblem::standard().with_boundary(crate::kernels::Boundary::Periodic);
        let _ = IslandsExecutor::with_problem(&pool, TeamSpec::even(2, 2), Axis::I, problem)
            .tile(TileMode::Auto)
            .step(&f);
    }

    #[test]
    fn more_islands_than_slabs_still_correct() {
        let d = Region3::of_extent(5, 6, 4);
        let f = gaussian_pulse(d, (0.2, 0.1, 0.0));
        let pool = WorkerPool::new(8);
        let got = IslandsExecutor::new(&pool, TeamSpec::even(8, 8), Axis::I)
            .cache_bytes(64 * 1024)
            .step(&f)
            .unwrap();
        let expect = ReferenceExecutor::new().step(&f);
        assert_eq!(got.max_abs_diff(&expect), 0.0);
    }
}
