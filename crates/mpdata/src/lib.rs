//! # mpdata
//!
//! A full 3-D implementation of the Multidimensional Positive Definite
//! Advection Transport Algorithm (MPDATA) — donor-cell first pass plus
//! one antidiffusive corrective iteration with the non-oscillatory
//! option — decomposed into the 17 heterogeneous stencil stages studied
//! by the islands-of-cores paper (Szustak, Wyrzykowski & Jakl,
//! PaCT 2017).
//!
//! Four executors share the same kernels and the same declared stage
//! graph, so their results are **bitwise identical** (asserted by the
//! test suite):
//!
//! * [`ReferenceExecutor`] — serial, full-size intermediates.
//! * [`OriginalExecutor`] — the paper's "Original": per-stage parallel
//!   sweeps with intermediates in main memory.
//! * [`FusedExecutor`] — the pure (3+1)D decomposition: cache-sized
//!   blocks, all 17 stages fused per block, all cores share each block.
//! * [`IslandsExecutor`] — the contribution: one island (work team) per
//!   processor, each running (3+1)D on its part and *recomputing* halo
//!   elements instead of communicating within a time step.
//!
//! ## Quickstart
//!
//! ```
//! use mpdata::{gaussian_pulse, ReferenceExecutor};
//! use stencil_engine::Region3;
//!
//! let domain = Region3::of_extent(32, 16, 8);
//! let mut fields = gaussian_pulse(domain, (0.3, 0.0, 0.0));
//! fields.close_boundaries();
//! ReferenceExecutor::new().run(&mut fields, 10);
//! assert!(fields.x.min() >= 0.0); // positive definite
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod diagnostics;
mod exchange;
mod exec;
mod fields;
mod fused;
mod graph;
mod islands;
mod kernels;
mod kernels_fast;
mod original;
mod plan;
mod reference;

pub use diagnostics::{error_norms, CflViolation, ErrorNorms};
pub use exchange::ExchangeExecutor;
pub use exec::rank_slice;
pub use fields::{gaussian_pulse, random_fields, rotating_cone, MpdataFields, EPS};
pub use fused::{FusedExecutor, DEFAULT_CACHE_BYTES};
pub use graph::{
    flops_per_cell, mpdata_graph, ExternalIds, MpdataFieldIds, MpdataProblem, StageKind,
    STAGE_COUNT, STAGE_FLOPS, STANDARD_KINDS,
};
pub use islands::IslandsExecutor;
pub use kernels::{apply_kind, apply_kind_scalar, apply_stage, Boundary};
pub use original::OriginalExecutor;
pub use plan::{SchedulePolicy, TileMode};
pub use reference::ReferenceExecutor;
