//! The serial reference executor ("original version", one core).
//!
//! Runs every stage over the full domain, stage after stage, with
//! full-size intermediate arrays — the ground truth against which every
//! parallel strategy is verified bitwise.

use crate::exec::SerialStore;
use crate::fields::MpdataFields;
use crate::graph::MpdataProblem;
use stencil_engine::{Array3, StageGraph};

/// Serial, full-array MPDATA executor.
///
/// # Examples
///
/// ```
/// use mpdata::{gaussian_pulse, ReferenceExecutor};
/// use stencil_engine::Region3;
///
/// let domain = Region3::of_extent(16, 8, 8);
/// let mut fields = gaussian_pulse(domain, (0.2, 0.0, 0.0));
/// fields.close_boundaries();
/// let mass_before = fields.mass();
/// let mut exec = ReferenceExecutor::new();
/// exec.run(&mut fields, 3);
/// assert!((fields.mass() - mass_before).abs() < 1e-9 * mass_before);
/// ```
#[derive(Debug)]
pub struct ReferenceExecutor {
    problem: MpdataProblem,
}

impl Default for ReferenceExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl ReferenceExecutor {
    /// Creates the executor for the paper's 17-stage configuration.
    pub fn new() -> Self {
        Self::with_problem(MpdataProblem::standard())
    }

    /// Creates the executor for an arbitrary MPDATA problem (e.g.
    /// `MpdataProblem::with_iord(3)` for a third-order scheme).
    pub fn with_problem(problem: MpdataProblem) -> Self {
        ReferenceExecutor { problem }
    }

    /// The stage graph (shared by analyses and other executors' tests).
    pub fn graph(&self) -> &StageGraph {
        self.problem.graph()
    }

    /// The problem description.
    pub fn problem(&self) -> &MpdataProblem {
        &self.problem
    }

    /// Performs one time step and returns the advected scalar.
    pub fn step(&self, fields: &MpdataFields) -> Array3 {
        let domain = fields.domain();
        let graph = self.problem.graph();
        let mut store = SerialStore::new(graph.fields().len(), fields, self.problem.ext());
        for st in graph.stages() {
            for &out in &st.outputs {
                store.alloc(out, domain);
            }
            store.apply(
                st,
                self.problem.kind(st.id),
                domain,
                self.problem.boundary(),
                domain,
            );
        }
        store.take(self.problem.xout())
    }

    /// Advances `fields.x` by `steps` time steps.
    pub fn run(&self, fields: &mut MpdataFields, steps: usize) {
        for _ in 0..steps {
            fields.x = self.step(fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::{gaussian_pulse, random_fields, rotating_cone};
    use stencil_engine::rng::Xoshiro256pp;
    use stencil_engine::Region3;

    #[test]
    fn constant_field_is_preserved() {
        // Uniform flow with open (clamped) boundaries is divergence-free
        // everywhere, so a constant field is a fixed point: fluxes
        // telescope and the antidiffusive velocities vanish.
        let d = Region3::of_extent(8, 8, 8);
        let mut f = gaussian_pulse(d, (0.2, 0.1, 0.05));
        f.x.fill(3.0);
        let exec = ReferenceExecutor::new();
        let out = exec.step(&f);
        for (_, _, _, v) in out.iter_indexed() {
            assert!((v - 3.0).abs() < 1e-12, "v = {v}");
        }
    }

    #[test]
    fn mass_is_conserved_in_closed_box() {
        let d = Region3::of_extent(12, 10, 6);
        let mut f = rotating_cone(d, 0.3);
        let m0 = f.mass();
        let exec = ReferenceExecutor::new();
        exec.run(&mut f, 5);
        let m1 = f.mass();
        assert!(
            (m1 - m0).abs() < 1e-10 * m0.abs(),
            "mass drifted: {m0} → {m1}"
        );
    }

    #[test]
    fn positivity_is_preserved() {
        let d = Region3::of_extent(8, 8, 8);
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut f = random_fields(&mut rng, d, 0.8);
        let exec = ReferenceExecutor::new();
        exec.run(&mut f, 4);
        assert!(
            f.x.min() >= -1e-13,
            "positivity violated: min = {}",
            f.x.min()
        );
    }

    #[test]
    fn monotone_solution_stays_bracketed() {
        // The non-oscillatory option guarantees no new extrema under a
        // divergence-free flow (uniform flow, open boundaries).
        let d = Region3::of_extent(16, 8, 4);
        let mut f = gaussian_pulse(d, (0.25, 0.1, 0.0));
        let (lo, hi) = (f.x.min(), f.x.max());
        let exec = ReferenceExecutor::new();
        exec.run(&mut f, 6);
        assert!(f.x.min() >= lo - 1e-10, "min {} < {lo}", f.x.min());
        assert!(f.x.max() <= hi + 1e-10, "max {} > {hi}", f.x.max());
    }

    #[test]
    fn pulse_moves_downstream() {
        let d = Region3::of_extent(32, 8, 8);
        let mut f = gaussian_pulse(d, (0.4, 0.0, 0.0));
        let centroid = |x: &stencil_engine::Array3| -> f64 {
            let mut num = 0.0;
            let mut den = 0.0;
            for (i, _, _, v) in x.iter_indexed() {
                let w = (v - 2.0).max(0.0); // remove the background
                num += w * (i as f64);
                den += w;
            }
            num / den
        };
        let c0 = centroid(&f.x);
        let exec = ReferenceExecutor::new();
        exec.run(&mut f, 10);
        let c1 = centroid(&f.x);
        // 10 steps at Courant 0.4 ⇒ the pulse should travel ≈ 4 cells.
        assert!(
            (c1 - c0 - 4.0).abs() < 0.5,
            "centroid moved {} cells, expected ≈ 4",
            c1 - c0
        );
    }

    #[test]
    fn corrective_pass_beats_pure_upwind() {
        // MPDATA's raison d'être: less numerical diffusion than donor
        // cell. Advect a pulse and compare peak retention against a
        // first-order-only run (emulated by zeroing the pseudo fluxes —
        // here simply by measuring that the peak decays slower than the
        // upwind bound for a few steps).
        let d = Region3::of_extent(32, 8, 8);
        let mut f = gaussian_pulse(d, (0.3, 0.0, 0.0));
        let peak0 = f.x.max();
        let exec = ReferenceExecutor::new();

        // Pure upwind comparison: the iord = 1 problem.
        let mut upwind = f.clone();
        let upwind_exec =
            ReferenceExecutor::with_problem(crate::graph::MpdataProblem::with_iord(1));
        upwind_exec.run(&mut upwind, 6);

        exec.run(&mut f, 6);
        assert!(
            f.x.max() > upwind.x.max(),
            "MPDATA peak {} should beat upwind peak {} (initial {peak0})",
            f.x.max(),
            upwind.x.max()
        );
    }
}
