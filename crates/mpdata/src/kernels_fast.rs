//! Row-based fast paths for the streaming kernels.
//!
//! The scalar kernels in [`crate::kernels`] clamp every read — simple
//! and correct everywhere, but branchy and opaque to the
//! auto-vectorizer. For cells whose stencil reads provably stay inside
//! the domain, the donor-cell fluxes, the updates and the limited
//! fluxes (the bandwidth-bound kinds the paper's AVX kernels care most
//! about) can instead run over contiguous `k`-rows with no clamping.
//!
//! **Bitwise contract**: each fast kernel evaluates *exactly the same
//! expression in the same order* as its scalar twin, so results are
//! bit-identical — enforced by the `fast_paths_bitwise_equal` test.
//! Dispatch (interior → fast, boundary shells → scalar) lives in
//! [`crate::kernels::apply_kind`].

use stencil_engine::{Array3, Range1, Region3};

#[inline(always)]
fn donor(xl: f64, xr: f64, u: f64) -> f64 {
    u.max(0.0) * xl + u.min(0.0) * xr
}

/// Unit offset per axis index (0 = i, 1 = j, 2 = k).
#[inline]
fn unit(axis: usize) -> (i64, i64) {
    match axis {
        0 => (1, 0),
        1 => (0, 1),
        _ => unreachable!("k is handled by the shifted-row path"),
    }
}

/// Donor-cell flux along axis `m` (0 = i, 1 = j, 2 = k) over an
/// interior region: `f = donor(x[-1_m], x, u)`.
pub(crate) fn flux_axis_rows(x: &Array3, u: &Array3, f: &mut Array3, region: Region3, m: usize) {
    let kr = region.k;
    for i in region.i.lo..region.i.hi {
        for j in region.j.lo..region.j.hi {
            let ur = u.row(i, j, kr);
            let out = f.row_mut(i, j, kr);
            if m == 2 {
                // Shifted row: xs[k] is x at k-1, xs[k+1] at k.
                let xs = x.row(i, j, Range1::new(kr.lo - 1, kr.hi));
                for (n, o) in out.iter_mut().enumerate() {
                    *o = donor(xs[n], xs[n + 1], ur[n]);
                }
            } else {
                let (di, dj) = unit(m);
                let xl = x.row(i - di, j - dj, kr);
                let xr = x.row(i, j, kr);
                for (n, o) in out.iter_mut().enumerate() {
                    *o = donor(xl[n], xr[n], ur[n]);
                }
            }
        }
    }
}

/// Update `out = x − div(f)/h` over an interior region (reads the +1
/// neighbour of every flux).
#[allow(clippy::too_many_arguments)]
pub(crate) fn update_rows(
    x: &Array3,
    f1: &Array3,
    f2: &Array3,
    f3: &Array3,
    h: &Array3,
    out: &mut Array3,
    region: Region3,
) {
    let kr = region.k;
    for i in region.i.lo..region.i.hi {
        for j in region.j.lo..region.j.hi {
            let xr = x.row(i, j, kr);
            let hr = h.row(i, j, kr);
            let f1a = f1.row(i, j, kr);
            let f1b = f1.row(i + 1, j, kr);
            let f2a = f2.row(i, j, kr);
            let f2b = f2.row(i, j + 1, kr);
            let f3s = f3.row(i, j, Range1::new(kr.lo, kr.hi + 1));
            let o = out.row_mut(i, j, kr);
            for n in 0..o.len() {
                // Same association order as the scalar kernel.
                let div = (f1b[n] - f1a[n]) + (f2b[n] - f2a[n]) + (f3s[n + 1] - f3s[n]);
                o[n] = xr[n] - div / hr[n];
            }
        }
    }
}

/// Row fetch at an `(i, j)` offset with a `k` shift: returns the slice
/// whose index `n` corresponds to global `k = kr.lo + n + kshift`.
#[inline]
fn row_at(a: &Array3, i: i64, j: i64, kr: Range1, di: i64, dj: i64, kshift: i64) -> &[f64] {
    a.row(i + di, j + dj, Range1::new(kr.lo + kshift, kr.hi + kshift))
}

/// Antidiffusive pseudo-velocity along axis `m` (0/1/2) over an interior
/// region — same expression order as the scalar kernel.
#[allow(clippy::too_many_arguments)] // mirrors the stage's declared inputs
pub(crate) fn antidiff_rows(
    xp: &Array3,
    ua: &Array3,
    ub: &Array3,
    uc: &Array3,
    h: &Array3,
    v: &mut Array3,
    region: Region3,
    m: usize,
) {
    use crate::fields::EPS;
    // Unit offsets of the face axis and the two cross axes as
    // (di, dj, kshift) triples.
    let unit3 = |ax: usize| -> (i64, i64, i64) {
        match ax {
            0 => (1, 0, 0),
            1 => (0, 1, 0),
            _ => (0, 0, 1),
        }
    };
    let (p, q) = match m {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    };
    let um = unit3(m);
    let up = unit3(p);
    let uq = unit3(q);
    let kr = region.k;
    for i in region.i.lo..region.i.hi {
        for j in region.j.lo..region.j.hi {
            // A closure cannot express the borrow-through lifetime, so
            // use a macro for the offset-row fetch.
            macro_rules! r {
                ($a:expr, $o:expr) => {{
                    let o: (i64, i64, i64) = $o;
                    row_at($a, i, j, kr, o.0, o.1, o.2)
                }};
            }
            let add = |a: (i64, i64, i64), b: (i64, i64, i64)| (a.0 + b.0, a.1 + b.1, a.2 + b.2);
            let neg = |a: (i64, i64, i64)| (-a.0, -a.1, -a.2);
            let zero = (0, 0, 0);
            let xc = r!(xp, zero);
            let xm = r!(xp, neg(um));
            let xpp_c = r!(xp, up);
            let xpp_m = r!(xp, add(neg(um), up));
            let xpm_c = r!(xp, neg(up));
            let xpm_m = r!(xp, add(neg(um), neg(up)));
            let xqp_c = r!(xp, uq);
            let xqp_m = r!(xp, add(neg(um), uq));
            let xqm_c = r!(xp, neg(uq));
            let xqm_m = r!(xp, add(neg(um), neg(uq)));
            let ua_r = r!(ua, zero);
            let ub_c = r!(ub, zero);
            let ub_m = r!(ub, neg(um));
            let ub_cp = r!(ub, up);
            let ub_mp = r!(ub, add(neg(um), up));
            let uc_c = r!(uc, zero);
            let uc_m = r!(uc, neg(um));
            let uc_cq = r!(uc, uq);
            let uc_mq = r!(uc, add(neg(um), uq));
            let h_c = r!(h, zero);
            let h_m = r!(h, neg(um));
            let out = v.row_mut(i, j, kr);
            for (n, ov) in out.iter_mut().enumerate() {
                let a = (xc[n] - xm[n]) / (xc[n] + xm[n] + EPS);
                let xpp = xpp_c[n] + xpp_m[n];
                let xpm = xpm_c[n] + xpm_m[n];
                let b_p = 0.5 * (xpp - xpm) / (xpp + xpm + EPS);
                let xqp = xqp_c[n] + xqp_m[n];
                let xqm = xqm_c[n] + xqm_m[n];
                let b_q = 0.5 * (xqp - xqm) / (xqp + xqm + EPS);
                let u = ua_r[n];
                let ub_bar = 0.25 * (ub_c[n] + ub_m[n] + ub_cp[n] + ub_mp[n]);
                let uc_bar = 0.25 * (uc_c[n] + uc_m[n] + uc_cq[n] + uc_mq[n]);
                let hbar = 0.5 * (h_c[n] + h_m[n]);
                *ov =
                    u.abs() * (1.0 - u.abs() / hbar) * a - u * (ub_bar * b_p + uc_bar * b_q) / hbar;
            }
        }
    }
}

/// Local 7-point extrema over an interior region.
pub(crate) fn minmax_rows(
    x: &Array3,
    xp: &Array3,
    mx: &mut Array3,
    mn: &mut Array3,
    region: Region3,
) {
    let kr = region.k;
    for i in region.i.lo..region.i.hi {
        for j in region.j.lo..region.j.hi {
            // Rows for the 7 face offsets of both fields; k-offsets are
            // handled by a shifted window.
            let xs = x.row(i, j, Range1::new(kr.lo - 1, kr.hi + 1));
            let xps = xp.row(i, j, Range1::new(kr.lo - 1, kr.hi + 1));
            let xim = x.row(i - 1, j, kr);
            let xip = x.row(i + 1, j, kr);
            let xjm = x.row(i, j - 1, kr);
            let xjp = x.row(i, j + 1, kr);
            let pim = xp.row(i - 1, j, kr);
            let pip = xp.row(i + 1, j, kr);
            let pjm = xp.row(i, j - 1, kr);
            let pjp = xp.row(i, j + 1, kr);
            let mxo = mx.row_mut(i, j, kr);
            for (n, o) in mxo.iter_mut().enumerate() {
                // Same accumulation order as the scalar kernel: per
                // offset, x then xp; offsets in the OFFS order
                // (centre, -i, +i, -j, +j, -k, +k).
                let mut hi = f64::NEG_INFINITY;
                hi = hi.max(xs[n + 1]).max(xps[n + 1]);
                hi = hi.max(xim[n]).max(pim[n]);
                hi = hi.max(xip[n]).max(pip[n]);
                hi = hi.max(xjm[n]).max(pjm[n]);
                hi = hi.max(xjp[n]).max(pjp[n]);
                hi = hi.max(xs[n]).max(xps[n]);
                hi = hi.max(xs[n + 2]).max(xps[n + 2]);
                *o = hi;
            }
            let mno = mn.row_mut(i, j, kr);
            for (n, o) in mno.iter_mut().enumerate() {
                let mut lo = f64::INFINITY;
                lo = lo.min(xs[n + 1]).min(xps[n + 1]);
                lo = lo.min(xim[n]).min(pim[n]);
                lo = lo.min(xip[n]).min(pip[n]);
                lo = lo.min(xjm[n]).min(pjm[n]);
                lo = lo.min(xjp[n]).min(pjp[n]);
                lo = lo.min(xs[n]).min(xps[n]);
                lo = lo.min(xs[n + 2]).min(xps[n + 2]);
                *o = lo;
            }
        }
    }
}

/// β limiter over an interior region (`up = true` for β↑).
#[allow(clippy::too_many_arguments)]
pub(crate) fn beta_rows(
    ext: &Array3,
    xp: &Array3,
    g1: &Array3,
    g2: &Array3,
    g3: &Array3,
    h: &Array3,
    out: &mut Array3,
    region: Region3,
    up: bool,
) {
    use crate::fields::EPS;
    let kr = region.k;
    for i in region.i.lo..region.i.hi {
        for j in region.j.lo..region.j.hi {
            let e = ext.row(i, j, kr);
            let xr = xp.row(i, j, kr);
            let hr = h.row(i, j, kr);
            let g1a = g1.row(i, j, kr);
            let g1b = g1.row(i + 1, j, kr);
            let g2a = g2.row(i, j, kr);
            let g2b = g2.row(i, j + 1, kr);
            let g3s = g3.row(i, j, Range1::new(kr.lo, kr.hi + 1));
            let o = out.row_mut(i, j, kr);
            for n in 0..o.len() {
                let (num, den) = if up {
                    let inflow = g1a[n].max(0.0) - g1b[n].min(0.0) + g2a[n].max(0.0)
                        - g2b[n].min(0.0)
                        + g3s[n].max(0.0)
                        - g3s[n + 1].min(0.0);
                    (e[n] - xr[n], inflow)
                } else {
                    let outflow = g1b[n].max(0.0) - g1a[n].min(0.0) + g2b[n].max(0.0)
                        - g2a[n].min(0.0)
                        + g3s[n + 1].max(0.0)
                        - g3s[n].min(0.0);
                    (xr[n] - e[n], outflow)
                };
                o[n] = num * hr[n] / (den + EPS);
            }
        }
    }
}

/// Monotone flux limiting along axis `m` over an interior region:
/// `out = min(1, bd[-1_m], bu) · g⁺ + min(1, bu[-1_m], bd) · g⁻`.
pub(crate) fn lim_flux_rows(
    g: &Array3,
    bu: &Array3,
    bd: &Array3,
    out: &mut Array3,
    region: Region3,
    m: usize,
) {
    let kr = region.k;
    for i in region.i.lo..region.i.hi {
        for j in region.j.lo..region.j.hi {
            let gr = g.row(i, j, kr);
            let o = out.row_mut(i, j, kr);
            if m == 2 {
                let bus = bu.row(i, j, Range1::new(kr.lo - 1, kr.hi));
                let bds = bd.row(i, j, Range1::new(kr.lo - 1, kr.hi));
                for (n, ov) in o.iter_mut().enumerate() {
                    let gv = gr[n];
                    let cp = 1.0_f64.min(bds[n]).min(bus[n + 1]);
                    let cn = 1.0_f64.min(bus[n]).min(bds[n + 1]);
                    *ov = cp * gv.max(0.0) + cn * gv.min(0.0);
                }
            } else {
                let (di, dj) = unit(m);
                let bum = bu.row(i - di, j - dj, kr);
                let bdm = bd.row(i - di, j - dj, kr);
                let bur = bu.row(i, j, kr);
                let bdr = bd.row(i, j, kr);
                for (n, ov) in o.iter_mut().enumerate() {
                    let gv = gr[n];
                    let cp = 1.0_f64.min(bdm[n]).min(bur[n]);
                    let cn = 1.0_f64.min(bum[n]).min(bdr[n]);
                    *ov = cp * gv.max(0.0) + cn * gv.min(0.0);
                }
            }
        }
    }
}
