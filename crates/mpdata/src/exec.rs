//! Shared execution plumbing: field storage and region slicing.

use crate::fields::MpdataFields;
use crate::graph::{ExternalIds, StageKind};
use crate::kernels::{apply_kind, Boundary};
use stencil_engine::{Array3, Axis, FieldId, Region3, StageDef};
use work_scheduler::{AccessTracker, DisjointCell, InlineVec};

/// Upper bound on a stage's argument-list length (inputs plus outputs).
/// The executors' hot loops assemble input/output reference lists in
/// fixed-capacity [`InlineVec`]s of this size so the steady state never
/// allocates; `graph.rs` pins the bound against both the iord = 2 and
/// iord = 3 graphs.
pub(crate) const MAX_STAGE_ARGS: usize = 16;

/// The share of `region` that rank `rank` of `size` computes, cutting
/// along `axis` (empty when the region is thinner than the team).
///
/// Public so that plan-time analyses (the `islands-analysis`
/// disjointness checker) can reproduce the executors' work split
/// bit-for-bit instead of re-deriving it.
pub fn rank_slice(region: Region3, axis: Axis, rank: usize, size: usize) -> Region3 {
    region.split(axis, size)[rank]
}

/// Borrowed views of the five external input arrays, resolved once per
/// call into the store instead of borrowing the whole field set for the
/// store's lifetime — that borrow is what kept `ParStore` from living
/// across steps (and across `run`'s buffer swaps).
#[derive(Clone, Copy)]
pub(crate) struct ExtFields<'a> {
    pub x: &'a Array3,
    pub u1: &'a Array3,
    pub u2: &'a Array3,
    pub u3: &'a Array3,
    pub h: &'a Array3,
}

impl<'a> ExtFields<'a> {
    pub(crate) fn new(fields: &'a MpdataFields) -> Self {
        ExtFields {
            x: &fields.x,
            u1: &fields.u1,
            u2: &fields.u2,
            u3: &fields.u3,
            h: &fields.h,
        }
    }

    /// The external array behind `f`, or `None` for store-held fields.
    fn get(&self, ids: &ExternalIds, f: FieldId) -> Option<&'a Array3> {
        if f == ids.x {
            Some(self.x)
        } else if f == ids.u1 {
            Some(self.u1)
        } else if f == ids.u2 {
            Some(self.u2)
        } else if f == ids.u3 {
            Some(self.u3)
        } else if f == ids.h {
            Some(self.h)
        } else {
            None
        }
    }
}

/// Serial storage: externals borrowed from the field set, intermediates
/// and the output owned.
pub(crate) struct SerialStore<'a> {
    fields: &'a MpdataFields,
    ids: ExternalIds,
    owned: Vec<Option<Array3>>,
}

impl<'a> SerialStore<'a> {
    pub(crate) fn new(field_count: usize, fields: &'a MpdataFields, ids: ExternalIds) -> Self {
        SerialStore {
            fields,
            ids,
            owned: (0..field_count).map(|_| None).collect(),
        }
    }

    pub(crate) fn alloc(&mut self, f: FieldId, region: Region3) {
        self.owned[f.index()] = Some(Array3::zeros(region));
    }

    pub(crate) fn take(&mut self, f: FieldId) -> Array3 {
        self.owned[f.index()].take().expect("buffer present")
    }

    fn external(&self, f: FieldId) -> Option<&'a Array3> {
        ExtFields::new(self.fields).get(&self.ids, f)
    }

    fn get(&self, f: FieldId) -> &Array3 {
        if let Some(e) = self.external(f) {
            e
        } else {
            self.owned[f.index()].as_ref().expect("buffer present")
        }
    }

    /// Applies `stage` (with kernel `kind`) over `region` (no-op when
    /// empty).
    pub(crate) fn apply(
        &mut self,
        stage: &StageDef,
        kind: StageKind,
        domain: Region3,
        bc: Boundary,
        region: Region3,
    ) {
        if region.is_empty() {
            return;
        }
        let mut outs: Vec<Array3> = stage.outputs.iter().map(|&f| self.take(f)).collect();
        {
            let ins: Vec<&Array3> = stage.inputs.iter().map(|(f, _)| self.get(*f)).collect();
            let mut out_refs: Vec<&mut Array3> = outs.iter_mut().collect();
            apply_kind(kind, domain, bc, &ins, &mut out_refs, region);
        }
        for (f, a) in stage.outputs.iter().zip(outs) {
            self.owned[f.index()] = Some(a);
        }
    }
}

/// One active region claim in the debug overlap guard.
#[cfg(debug_assertions)]
#[derive(Clone, Debug)]
struct Claim {
    token: u64,
    field: FieldId,
    region: Region3,
    write: bool,
    label: String,
}

/// The per-store collection of field buffers, each in a [`DisjointCell`]
/// so team ranks can write disjoint regions concurrently.
///
/// Debug builds additionally keep a *claim table*: every
/// [`ParStore::apply`] registers the regions it is about to write (its
/// outputs over the rank slice) and read (its non-external inputs over
/// the halo-expanded slice) before touching the buffers, and a write
/// claim that overlaps any concurrent claim of the same field panics
/// with both stage names. Claims are retired when their guard drops, so
/// a store reused across steps (the persistent-plan path) starts every
/// epoch with a clean table — reuse never looks like a leaked claim.
/// The table is compiled out of release builds.
pub(crate) struct FieldCells {
    cells: Vec<DisjointCell<Option<Array3>>>,
    #[cfg(debug_assertions)]
    claims: std::sync::Mutex<(u64, Vec<Claim>)>,
}

impl FieldCells {
    fn new(field_count: usize) -> Self {
        FieldCells {
            cells: (0..field_count).map(|_| DisjointCell::new(None)).collect(),
            #[cfg(debug_assertions)]
            claims: std::sync::Mutex::new((0, Vec::new())),
        }
    }

    fn cell(&self, f: FieldId) -> &DisjointCell<Option<Array3>> {
        &self.cells[f.index()]
    }

    fn cell_mut(&mut self, f: FieldId) -> &mut DisjointCell<Option<Array3>> {
        &mut self.cells[f.index()]
    }

    /// Registers the `(field, region, is_write)` triples and returns an
    /// RAII guard that retires them. Panics (debug builds only) when a
    /// write claim overlaps a concurrent read-or-write claim of the same
    /// field: two such accesses are only sound when a barrier or join
    /// separates them, and a live claim proves there was none.
    #[cfg(debug_assertions)]
    fn claim(&self, wanted: &[(FieldId, Region3, bool)], label: &str) -> ClaimGuard<'_> {
        // A panicking claimant poisons the mutex; recover the table so
        // sibling workers report the overlap instead of the poison.
        let mut table = self.claims.lock().unwrap_or_else(|e| e.into_inner());
        let (next, active) = &mut *table;
        for &(field, region, write) in wanted {
            for c in active.iter() {
                if c.field == field && (write || c.write) && c.region.overlaps(region) {
                    panic!(
                        "field access overlap: `{label}` {} field #{} over {:?} while \
                         `{}` holds a {} over {:?} — a barrier or join must separate them",
                        if write { "writes" } else { "reads" },
                        field.index(),
                        region,
                        c.label,
                        if c.write { "write" } else { "read" },
                        c.region,
                    );
                }
            }
        }
        let base = *next;
        for (n, &(field, region, write)) in wanted.iter().enumerate() {
            active.push(Claim {
                token: base + n as u64,
                field,
                region,
                write,
                label: label.to_string(),
            });
        }
        *next += wanted.len() as u64;
        ClaimGuard {
            cells: self,
            tokens: base..*next,
        }
    }
}

/// RAII token for one batch of claims (see [`FieldCells::claim`]).
#[cfg(debug_assertions)]
pub(crate) struct ClaimGuard<'a> {
    cells: &'a FieldCells,
    tokens: std::ops::Range<u64>,
}

#[cfg(debug_assertions)]
impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        let mut table = self.cells.claims.lock().unwrap_or_else(|e| e.into_inner());
        table.1.retain(|c| !self.tokens.contains(&c.token));
    }
}

/// Parallel storage: every non-external field buffer sits in a
/// [`DisjointCell`] (grouped in [`FieldCells`]) so team ranks can write
/// disjoint regions concurrently.
///
/// The store owns no borrow of the field set — externals arrive as an
/// [`ExtFields`] view per call — so one store can persist across time
/// steps while `run` swaps its input/output arrays underneath.
pub(crate) struct ParStore {
    ids: ExternalIds,
    cells: FieldCells,
}

impl ParStore {
    pub(crate) fn new(field_count: usize, ids: ExternalIds) -> Self {
        ParStore {
            ids,
            cells: FieldCells::new(field_count),
        }
    }

    /// Installs a zeroed buffer for `f` (single-threaded setup phase).
    pub(crate) fn alloc(&mut self, f: FieldId, region: Region3) {
        *self.cells.cell_mut(f).get_mut_exclusive() = Some(Array3::zeros(region));
    }

    /// Removes the buffer for `f` (single-threaded teardown phase).
    pub(crate) fn take(&mut self, f: FieldId) -> Array3 {
        self.cells
            .cell_mut(f)
            .get_mut_exclusive()
            .take()
            .expect("buffer present")
    }

    /// Re-targets `f`'s buffer at `region`, reusing its allocation
    /// ([`Array3::rebase`]) — the per-tile scratch shrink of the
    /// tile-fused replay, which must stay allocation-free.
    ///
    /// The buffer's previous contents become meaningless at the new
    /// indexing; callers re-zero exactly what the tile chain reads
    /// before writing (its plan-time `must_zero` set — empty for the
    /// real MPDATA graphs, whose chains cover every read).
    ///
    /// # Safety contract (internal)
    ///
    /// The store must be *rank-private*: no other thread may access it
    /// concurrently. The tiled executors allocate one store per team
    /// rank and never share them, so the claim below can never collide.
    pub(crate) fn rebase(&self, f: FieldId, region: Region3) {
        #[cfg(debug_assertions)]
        let _claim = self.cells.claim(&[(f, region, true)], "tile-rebase");
        let _tracker = self.cells.cell(f).track_write();
        // SAFETY: see the contract above — the store is rank-private.
        unsafe { self.cells.cell(f).get_mut() }
            .as_mut()
            .expect("buffer present")
            .rebase(region);
    }

    /// Zeroes `region` of `f` in place — the per-step refill for
    /// persistent stores, covering exactly the cells a plan's coverage
    /// analysis proves are read before they are written.
    ///
    /// # Safety contract (internal)
    ///
    /// Concurrent callers must target disjoint `(f, region)` pairs, and
    /// a barrier or join must separate this from any overlapping access
    /// — the same contract as [`ParStore::apply`] writes.
    pub(crate) fn zero_region(&self, f: FieldId, region: Region3) {
        if region.is_empty() {
            return;
        }
        #[cfg(debug_assertions)]
        let _claim = self.cells.claim(&[(f, region, true)], "zero-refill");
        let _tracker = self.cells.cell(f).track_write();
        // SAFETY: see the contract above.
        let buf = unsafe { self.cells.cell(f).get_mut() }
            .as_mut()
            .expect("buffer present");
        for i in region.i.lo..region.i.hi {
            for j in region.j.lo..region.j.hi {
                for v in buf.row_mut(i, j, region.k) {
                    *v = 0.0;
                }
            }
        }
    }

    /// Applies `stage` over `region` from one worker, resolving external
    /// inputs through `ext`.
    ///
    /// # Safety contract (internal)
    ///
    /// Concurrent callers must pass mutually disjoint `region`s for the
    /// same stage, and stages must be separated by a barrier or join.
    /// Both are guaranteed by the executors: regions come from
    /// [`rank_slice`] and stages are fenced by broadcasts/team barriers.
    pub(crate) fn apply(
        &self,
        stage: &StageDef,
        kind: StageKind,
        domain: Region3,
        bc: Boundary,
        region: Region3,
        ext: ExtFields<'_>,
    ) {
        if region.is_empty() {
            return;
        }
        let ids = &self.ids;
        // Debug overlap guard: claim the regions this call touches
        // (outputs written over `region`, store-held inputs read over the
        // halo-expanded slice — periodic wraps are under-claimed, which
        // only weakens, never falsifies, the check) and track the cells.
        #[cfg(debug_assertions)]
        let _claims = {
            let wanted: Vec<(FieldId, Region3, bool)> = stage
                .outputs
                .iter()
                .map(|&f| (f, region, true))
                .chain(
                    stage
                        .inputs
                        .iter()
                        .filter(|(f, _)| ext.get(ids, *f).is_none())
                        .map(|(f, pat)| (*f, region.expand(pat.halo()).intersect(domain), false)),
                )
                .collect();
            self.cells.claim(&wanted, &stage.name)
        };
        let mut trackers: InlineVec<AccessTracker<'_, Option<Array3>>, MAX_STAGE_ARGS> =
            InlineVec::new();
        for (f, _) in &stage.inputs {
            if ext.get(ids, *f).is_none() {
                trackers.push(self.cells.cell(*f).track_read());
            }
        }
        for &f in &stage.outputs {
            trackers.push(self.cells.cell(f).track_write());
        }
        let mut ins: InlineVec<&Array3, MAX_STAGE_ARGS> = InlineVec::new();
        for (f, _) in &stage.inputs {
            ins.push(ext.get(ids, *f).unwrap_or_else(|| {
                // SAFETY: inputs of a stage are never written during
                // that stage (the graph is SSA and validated), and
                // prior writes are fenced by a barrier/join.
                unsafe { self.cells.cell(*f).get_ref() }
                    .as_ref()
                    .expect("buffer present")
            }));
        }
        let mut outs: InlineVec<&mut Array3, MAX_STAGE_ARGS> = InlineVec::new();
        for &f in &stage.outputs {
            // SAFETY: concurrent callers write disjoint regions (see
            // the contract above), and no caller reads an output of
            // the stage it is executing.
            outs.push(
                unsafe { self.cells.cell(f).get_mut() }
                    .as_mut()
                    .expect("buffer present"),
            );
        }
        apply_kind(kind, domain, bc, &ins, &mut outs, region);
        drop(trackers);
    }

    /// Copies `region` of `f` out of the store (shared access only —
    /// safe to run while other threads also read this store).
    ///
    /// # Safety contract (internal)
    ///
    /// No concurrent writer may overlap `region` of `f`; callers
    /// separate extraction and mutation phases with joins.
    pub(crate) fn extract(&self, f: FieldId, region: Region3) -> Array3 {
        #[cfg(debug_assertions)]
        let _claim = self.cells.claim(&[(f, region, false)], "extract");
        let _tracker = self.cells.cell(f).track_read();
        // SAFETY: see the contract above.
        let src = unsafe { self.cells.cell(f).get_ref() }
            .as_ref()
            .expect("buffer present");
        let mut out = Array3::zeros(region);
        out.copy_region_from(src, region);
        out
    }

    /// Copies `piece` into `f`'s buffer (exclusive access).
    pub(crate) fn blit(&mut self, f: FieldId, piece: &Array3) {
        let dst = self
            .cells
            .cell_mut(f)
            .get_mut_exclusive()
            .as_mut()
            .expect("buffer present");
        dst.copy_region_from(piece, piece.region());
    }

    /// Applies a single-output `stage` over `region`, writing into the
    /// caller-supplied buffer instead of a store slot (used by the
    /// islands executor to write the final stage straight into the
    /// shared output array). Same disjointness contract as
    /// [`ParStore::apply`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn apply_into(
        &self,
        stage: &StageDef,
        kind: StageKind,
        domain: Region3,
        bc: Boundary,
        region: Region3,
        out: &mut Array3,
        ext: ExtFields<'_>,
    ) {
        if region.is_empty() {
            return;
        }
        assert_eq!(stage.outputs.len(), 1, "apply_into takes one output");
        let ids = &self.ids;
        #[cfg(debug_assertions)]
        let _claims = {
            let wanted: Vec<(FieldId, Region3, bool)> = stage
                .inputs
                .iter()
                .filter(|(f, _)| ext.get(ids, *f).is_none())
                .map(|(f, pat)| (*f, region.expand(pat.halo()).intersect(domain), false))
                .collect();
            self.cells.claim(&wanted, &stage.name)
        };
        let mut trackers: InlineVec<AccessTracker<'_, Option<Array3>>, MAX_STAGE_ARGS> =
            InlineVec::new();
        for (f, _) in &stage.inputs {
            if ext.get(ids, *f).is_none() {
                trackers.push(self.cells.cell(*f).track_read());
            }
        }
        let mut ins: InlineVec<&Array3, MAX_STAGE_ARGS> = InlineVec::new();
        for (f, _) in &stage.inputs {
            ins.push(ext.get(ids, *f).unwrap_or_else(|| {
                // SAFETY: see `apply`.
                unsafe { self.cells.cell(*f).get_ref() }
                    .as_ref()
                    .expect("buffer present")
            }));
        }
        apply_kind(kind, domain, bc, &ins, &mut [out], region);
        drop(trackers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::gaussian_pulse;
    use crate::graph::MpdataProblem;
    use stencil_engine::Range1;

    #[test]
    fn rank_slice_partitions() {
        let r = Region3::of_extent(10, 7, 3);
        let total: usize = (0..4).map(|w| rank_slice(r, Axis::J, w, 4).cells()).sum();
        assert_eq!(total, r.cells());
        assert!(rank_slice(r, Axis::K, 3, 4).is_empty());
    }

    #[test]
    fn serial_store_roundtrip() {
        let p = MpdataProblem::standard();
        let g = p.graph();
        let d = Region3::of_extent(6, 6, 6);
        let f = gaussian_pulse(d, (0.1, 0.0, 0.0));
        let f1 = g.fields().find("f1").unwrap();
        let mut store = SerialStore::new(g.fields().len(), &f, p.ext());
        store.alloc(f1, d);
        store.apply(
            &g.stages()[0],
            p.kind(g.stages()[0].id),
            d,
            Boundary::Open,
            d,
        );
        let f1a = store.take(f1);
        // Positive velocity ⇒ flux equals 0.1 × upstream value > 0.
        assert!(f1a.get(3, 3, 3) > 0.0);
    }

    #[test]
    fn par_store_matches_serial_for_stage0() {
        let p = MpdataProblem::standard();
        let g = p.graph();
        let d = Region3::of_extent(6, 6, 6);
        let f = gaussian_pulse(d, (0.1, 0.0, 0.0));
        let f1 = g.fields().find("f1").unwrap();
        let kind = p.kind(g.stages()[0].id);
        let mut s = SerialStore::new(g.fields().len(), &f, p.ext());
        s.alloc(f1, d);
        s.apply(&g.stages()[0], kind, d, Boundary::Open, d);
        let serial = s.take(f1);

        let ext = ExtFields::new(&f);
        let mut ps = ParStore::new(g.fields().len(), p.ext());
        ps.alloc(f1, d);
        // Two "workers", disjoint halves, sequential here (the pool tests
        // exercise true concurrency).
        ps.apply(
            &g.stages()[0],
            kind,
            d,
            Boundary::Open,
            Region3::new(Range1::new(0, 3), d.j, d.k),
            ext,
        );
        ps.apply(
            &g.stages()[0],
            kind,
            d,
            Boundary::Open,
            Region3::new(Range1::new(3, 6), d.j, d.k),
            ext,
        );
        let par = ps.extract(f1, d);
        assert_eq!(par.max_abs_diff(&serial), 0.0);
    }

    #[test]
    fn zero_region_clears_exactly_the_region() {
        let mut ps = ParStore::new(1, MpdataProblem::standard().ext());
        let f = FieldId(0);
        let d = Region3::of_extent(4, 4, 4);
        *ps.cells.cell_mut(f).get_mut_exclusive() = Some(Array3::filled(d, 7.0));
        let sub = Region3::new(Range1::new(1, 3), Range1::new(0, 4), Range1::new(2, 4));
        ps.zero_region(f, sub);
        let arr = ps.extract(f, d);
        for (i, j, k, v) in arr.iter_indexed() {
            let inside = sub.contains(i, j, k);
            assert_eq!(v, if inside { 0.0 } else { 7.0 }, "at ({i},{j},{k})");
        }
        // Empty regions are a no-op, not a panic.
        ps.zero_region(f, Region3::empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    fn claims_allow_disjoint_writes_and_shared_reads() {
        let cells = FieldCells::new(2);
        let f = FieldId(0);
        let d = Region3::of_extent(6, 4, 4);
        let left = Region3::new(Range1::new(0, 3), d.j, d.k);
        let right = Region3::new(Range1::new(3, 6), d.j, d.k);
        let _a = cells.claim(&[(f, left, true)], "rank0");
        let _b = cells.claim(&[(f, right, true)], "rank1");
        let g = FieldId(1);
        let _c = cells.claim(&[(g, left, false)], "reader0");
        let _d = cells.claim(&[(g, left, false)], "reader1");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn dropped_claims_are_retired() {
        let cells = FieldCells::new(1);
        let f = FieldId(0);
        let r = Region3::of_extent(4, 4, 4);
        {
            let _a = cells.claim(&[(f, r, true)], "stage-a");
        }
        let _b = cells.claim(&[(f, r, true)], "stage-b");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "field access overlap")]
    fn overlapping_write_and_read_claims_panic() {
        let cells = FieldCells::new(1);
        let f = FieldId(0);
        let r = Region3::of_extent(4, 4, 4);
        let _a = cells.claim(&[(f, r, false)], "reader");
        let _b = cells.claim(&[(f, r, true)], "writer");
    }

    #[test]
    fn empty_region_is_noop() {
        let p = MpdataProblem::standard();
        let g = p.graph();
        let d = Region3::of_extent(4, 4, 4);
        let f = gaussian_pulse(d, (0.1, 0.0, 0.0));
        let f1 = g.fields().find("f1").unwrap();
        let mut s = SerialStore::new(g.fields().len(), &f, p.ext());
        s.alloc(f1, d);
        s.apply(
            &g.stages()[0],
            p.kind(g.stages()[0].id),
            d,
            Boundary::Open,
            Region3::empty(),
        );
        assert_eq!(s.take(f1).sum(), 0.0);
    }
}
