//! The pure (3+1)D decomposition executor.
//!
//! The domain is cut into cache-sized blocks along the first dimension;
//! blocks are processed one after another, and within a block all 17
//! stages run back-to-back on block-local scratch arrays (the "+1"
//! dimension), each stage split among *all* workers of the pool. This is
//! the strategy that shines on one socket and collapses on many NUMA
//! nodes — the per-stage halo reads between workers become remote-cache
//! traffic, which the `islands-core` planner charges accordingly.
//!
//! Block boundaries along the cut axis are handled by overlapped tiling:
//! each block computes every stage on the region returned by the backward
//! requirement analysis, recomputing a few boundary cells instead of
//! keeping state between blocks.

use crate::fields::MpdataFields;
use crate::graph::MpdataProblem;
use crate::plan::{plan_run, plan_step, PartitionKind, SchedulePolicy, StepPlan, TileMode};
use std::sync::Mutex;
use stencil_engine::{Array3, Axis, PlanBlocksError, StageGraph};
use work_scheduler::{TeamSpec, WorkerPool};

/// Default cache budget per block: the 16 MiB L3 of the paper's Xeon
/// E5-4627v2.
pub const DEFAULT_CACHE_BYTES: usize = 16 << 20;

/// Parallel (3+1)D-decomposition MPDATA executor.
///
/// # Examples
///
/// ```
/// use mpdata::{gaussian_pulse, FusedExecutor, ReferenceExecutor};
/// use stencil_engine::Region3;
/// use work_scheduler::WorkerPool;
///
/// let pool = WorkerPool::new(2);
/// let domain = Region3::of_extent(24, 8, 4);
/// let fields = gaussian_pulse(domain, (0.3, 0.0, 0.0));
/// let fused = FusedExecutor::new(&pool).cache_bytes(64 * 1024).step(&fields)?;
/// let reference = ReferenceExecutor::new().step(&fields);
/// assert_eq!(fused.max_abs_diff(&reference), 0.0);
/// # Ok::<(), stencil_engine::PlanBlocksError>(())
/// ```
#[derive(Debug)]
pub struct FusedExecutor<'p> {
    pool: &'p WorkerPool,
    problem: MpdataProblem,
    cache_bytes: usize,
    split_axis: Axis,
    /// All workers as one team: the fused executor is the degenerate
    /// single-island schedule, so it shares the islands' plan-cache and
    /// buffer-reuse path verbatim.
    team: TeamSpec,
    /// How epoch work units are handed to workers.
    schedule: SchedulePolicy,
    /// Time steps fused into one replay epoch (1 = per-step sync).
    fuse_steps: usize,
    /// Cache-tiled stage fusion ([`TileMode::Off`] by default).
    tile: TileMode,
    /// Cached execution plan, rebuilt whenever its key (domain, cache
    /// budget, split axis, schedule, fuse depth, tile mode) stops
    /// matching.
    plan: Mutex<Option<StepPlan>>,
}

impl<'p> FusedExecutor<'p> {
    /// Creates the executor on `pool` with the default cache budget.
    pub fn new(pool: &'p WorkerPool) -> Self {
        Self::with_problem(pool, MpdataProblem::standard())
    }

    /// Creates the executor for an arbitrary MPDATA problem.
    pub fn with_problem(pool: &'p WorkerPool, problem: MpdataProblem) -> Self {
        FusedExecutor {
            team: TeamSpec::even(pool.len(), 1),
            pool,
            problem,
            cache_bytes: DEFAULT_CACHE_BYTES,
            split_axis: Axis::J,
            schedule: SchedulePolicy::Static,
            fuse_steps: 1,
            tile: TileMode::Off,
            plan: Mutex::new(None),
        }
    }

    /// Sets the per-block cache budget (the block depth follows from it).
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Sets the axis along which each stage sweep is split among workers
    /// (default `J`: blocks are thin in `I`).
    pub fn split_axis(mut self, axis: Axis) -> Self {
        self.split_axis = axis;
        self
    }

    /// Sets the schedule policy (static rank slices by default); see
    /// [`SchedulePolicy::Dynamic`] for intra-team self-scheduling.
    pub fn schedule(mut self, policy: SchedulePolicy) -> Self {
        self.schedule = policy;
        self
    }

    /// Fuses `k` whole time steps into one replay epoch; see
    /// [`crate::IslandsExecutor::fuse_steps`]. With a single team the
    /// halo enlargement clips to the domain, so the win is purely the
    /// k× fewer global barrier pairs in [`FusedExecutor::run`].
    pub fn fuse_steps(mut self, k: usize) -> Self {
        self.fuse_steps = k.max(1);
        self
    }

    /// Enables cache-tiled stage fusion; see
    /// [`crate::IslandsExecutor::tile`]. Replaces the wavefront block
    /// sweep with `(i, j)` tiles whose whole stage chain runs on
    /// rank-private cache-resident scratch.
    pub fn tile(mut self, mode: TileMode) -> Self {
        self.tile = mode;
        self
    }

    /// The stage graph.
    pub fn graph(&self) -> &StageGraph {
        self.problem.graph()
    }

    /// Performs one time step.
    ///
    /// # Errors
    ///
    /// Returns [`PlanBlocksError`] when no block fits the cache budget.
    pub fn step(&self, fields: &MpdataFields) -> Result<Array3, PlanBlocksError> {
        self.check_boundary();
        let mut slot = self.plan.lock().unwrap_or_else(|e| e.into_inner());
        plan_step(
            self.pool,
            &self.team,
            &self.problem,
            &mut slot,
            &PartitionKind::Whole,
            self.cache_bytes,
            self.split_axis,
            self.schedule,
            self.fuse_steps,
            self.tile,
            fields,
        )
    }

    fn check_boundary(&self) {
        assert_eq!(
            self.problem.boundary(),
            crate::kernels::Boundary::Open,
            "the (3+1)D executor requires open boundaries: periodic wrap \
             dependencies cannot be expressed by box-shaped block regions"
        );
    }

    /// Advances `fields.x` by `steps` time steps.
    ///
    /// # Errors
    ///
    /// Returns [`PlanBlocksError`] when no block fits the cache budget.
    pub fn run(&self, fields: &mut MpdataFields, steps: usize) -> Result<(), PlanBlocksError> {
        self.check_boundary();
        let mut slot = self.plan.lock().unwrap_or_else(|e| e.into_inner());
        plan_run(
            self.pool,
            &self.team,
            &self.problem,
            &mut slot,
            &PartitionKind::Whole,
            self.cache_bytes,
            self.split_axis,
            self.schedule,
            self.fuse_steps,
            self.tile,
            fields,
            steps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::{gaussian_pulse, random_fields, rotating_cone};
    use crate::reference::ReferenceExecutor;
    use stencil_engine::rng::Xoshiro256pp;
    use stencil_engine::{BlockPlanner, Region3};

    #[test]
    fn matches_reference_bitwise_across_block_sizes() {
        let d = Region3::of_extent(20, 7, 5);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let f = random_fields(&mut rng, d, 0.7);
        let expect = ReferenceExecutor::new().step(&f);
        let pool = WorkerPool::new(3);
        for cache in [64 * 1024, 256 * 1024, 16 << 20] {
            let got = FusedExecutor::new(&pool)
                .cache_bytes(cache)
                .step(&f)
                .unwrap();
            assert_eq!(got.max_abs_diff(&expect), 0.0, "cache {cache} diverged");
        }
    }

    #[test]
    fn single_block_equals_whole_domain() {
        let d = Region3::of_extent(8, 6, 4);
        let f = gaussian_pulse(d, (0.2, 0.1, 0.0));
        let pool = WorkerPool::new(2);
        let exec = FusedExecutor::new(&pool); // 16 MiB ≫ domain
        let blocking = BlockPlanner::new(exec.cache_bytes)
            .plan(exec.problem.graph(), d, d)
            .unwrap();
        assert_eq!(blocking.len(), 1);
        let got = exec.step(&f).unwrap();
        let expect = ReferenceExecutor::new().step(&f);
        assert_eq!(got.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn multi_step_matches_reference() {
        let d = Region3::of_extent(16, 8, 4);
        let mut f1 = rotating_cone(d, 0.25);
        let mut f2 = f1.clone();
        let pool = WorkerPool::new(4);
        FusedExecutor::new(&pool)
            .cache_bytes(48 * 1024)
            .run(&mut f1, 3)
            .unwrap();
        ReferenceExecutor::new().run(&mut f2, 3);
        assert_eq!(f1.x.max_abs_diff(&f2.x), 0.0);
    }

    #[test]
    fn self_schedule_matches_reference_bitwise() {
        let d = Region3::of_extent(20, 7, 5);
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let f = random_fields(&mut rng, d, 0.7);
        let expect = ReferenceExecutor::new().step(&f);
        let pool = WorkerPool::new(3);
        let got = FusedExecutor::new(&pool)
            .cache_bytes(64 * 1024)
            .schedule(SchedulePolicy::Dynamic { chunks_per_rank: 3 })
            .step(&f)
            .unwrap();
        assert_eq!(got.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn fused_epochs_match_reference_bitwise() {
        let d = Region3::of_extent(16, 8, 4);
        let mut expect = rotating_cone(d, 0.25);
        ReferenceExecutor::new().run(&mut expect, 7);
        for k in [2, 3] {
            let mut f = rotating_cone(d, 0.25);
            let pool = WorkerPool::new(4);
            FusedExecutor::new(&pool)
                .cache_bytes(48 * 1024)
                .fuse_steps(k)
                .run(&mut f, 7)
                .unwrap();
            assert_eq!(f.x.max_abs_diff(&expect.x), 0.0, "fuse_steps({k}) diverged");
        }
    }

    #[test]
    fn tiled_matches_reference_bitwise() {
        // Whole-domain tiling: one team, every rank chewing tiles of
        // the full domain on private scratch.
        let d = Region3::of_extent(20, 7, 5);
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let f = random_fields(&mut rng, d, 0.7);
        let expect = ReferenceExecutor::new().step(&f);
        let pool = WorkerPool::new(3);
        for mode in [
            TileMode::Fixed { ti: 4, tj: 4 },
            TileMode::Fixed { ti: 1, tj: 7 },
            TileMode::Auto,
        ] {
            let got = FusedExecutor::new(&pool)
                .cache_bytes(64 * 1024)
                .tile(mode)
                .step(&f)
                .unwrap();
            assert_eq!(got.max_abs_diff(&expect), 0.0, "{mode:?} diverged");
        }
    }

    #[test]
    fn tiled_fused_epochs_match_reference_bitwise() {
        let d = Region3::of_extent(16, 8, 4);
        let mut expect = rotating_cone(d, 0.25);
        ReferenceExecutor::new().run(&mut expect, 7);
        let mut f = rotating_cone(d, 0.25);
        let pool = WorkerPool::new(4);
        FusedExecutor::new(&pool)
            .cache_bytes(48 * 1024)
            .fuse_steps(2)
            .tile(TileMode::Auto)
            .run(&mut f, 7)
            .unwrap();
        assert_eq!(f.x.max_abs_diff(&expect.x), 0.0);
    }

    #[test]
    fn tiled_tiny_cache_still_runs() {
        // Unlike the wavefront planner, the tile sizer degrades to 1×1
        // tiles instead of erroring: halo recompute explodes but the
        // result stays exact.
        let d = Region3::of_extent(12, 6, 4);
        let f = gaussian_pulse(d, (0.1, 0.0, 0.0));
        let pool = WorkerPool::new(2);
        let got = FusedExecutor::new(&pool)
            .cache_bytes(1024)
            .tile(TileMode::Auto)
            .step(&f)
            .unwrap();
        let expect = ReferenceExecutor::new().step(&f);
        assert_eq!(got.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn tiny_cache_reports_error() {
        let d = Region3::of_extent(64, 64, 64);
        let f = gaussian_pulse(d, (0.1, 0.0, 0.0));
        let pool = WorkerPool::new(1);
        let r = FusedExecutor::new(&pool).cache_bytes(1024).step(&f);
        assert!(matches!(r, Err(PlanBlocksError::CacheTooSmall { .. })));
    }
}
