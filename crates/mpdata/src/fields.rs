//! MPDATA field sets and problem generators.
//!
//! A time step of MPDATA consumes five external arrays — the advected
//! scalar `x`, the three C-grid Courant-number components `u1, u2, u3`
//! (defined on the low faces of each cell) and the density/Jacobian `h` —
//! and produces the advected scalar for the next step. [`MpdataFields`]
//! owns these arrays; the generators below build the standard test
//! problems used throughout the test suite and the examples.

use stencil_engine::rng::Rng64;
use stencil_engine::{Array3, Region3};

/// Small constant preventing division by zero in antidiffusive velocities
/// and limiters (standard MPDATA epsilon for double precision).
pub const EPS: f64 = 1e-15;

/// The external inputs of an MPDATA time step.
#[derive(Clone, Debug)]
pub struct MpdataFields {
    /// The advected non-negative scalar field.
    pub x: Array3,
    /// Courant number through the low-`i` face of each cell.
    pub u1: Array3,
    /// Courant number through the low-`j` face of each cell.
    pub u2: Array3,
    /// Courant number through the low-`k` face of each cell.
    pub u3: Array3,
    /// Density / Jacobian (≥ some positive floor).
    pub h: Array3,
}

impl MpdataFields {
    /// The domain all five arrays cover.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the arrays disagree on their region.
    pub fn domain(&self) -> Region3 {
        debug_assert_eq!(self.x.region(), self.u1.region());
        debug_assert_eq!(self.x.region(), self.h.region());
        self.x.region()
    }

    /// Total mass `Σ x·h` — the quantity MPDATA conserves in a closed
    /// box.
    pub fn mass(&self) -> f64 {
        let d = self.domain();
        let mut m = 0.0;
        for (i, j, k) in d.points() {
            m += self.x.get(i, j, k) * self.h.get(i, j, k);
        }
        m
    }

    /// Zeroes the face velocities on the domain boundary, closing the box
    /// so mass is conserved exactly. `u1[lo_i]` faces are set to zero and
    /// likewise for the other axes; the high faces lie outside the stored
    /// arrays (face `n` of cell `n` is read from the clamped cell `n-1`…
    /// `n`), so zeroing the *last* stored face too keeps the boundary
    /// consistent under clamped reads.
    pub fn close_boundaries(&mut self) {
        let d = self.domain();
        for j in d.j.lo..d.j.hi {
            for k in d.k.lo..d.k.hi {
                self.u1.set(d.i.lo, j, k, 0.0);
                self.u1.set(d.i.hi - 1, j, k, 0.0);
            }
        }
        for i in d.i.lo..d.i.hi {
            for k in d.k.lo..d.k.hi {
                self.u2.set(i, d.j.lo, k, 0.0);
                self.u2.set(i, d.j.hi - 1, k, 0.0);
            }
        }
        for i in d.i.lo..d.i.hi {
            for j in d.j.lo..d.j.hi {
                self.u3.set(i, j, d.k.lo, 0.0);
                self.u3.set(i, j, d.k.hi - 1, 0.0);
            }
        }
    }
}

/// A Gaussian pulse advected by a uniform flow — the canonical
/// quickstart problem.
///
/// `courant` is the per-axis Courant number of the uniform flow; keep
/// `|c1| + |c2| + |c3| < 1` for stability.
pub fn gaussian_pulse(domain: Region3, courant: (f64, f64, f64)) -> MpdataFields {
    let (ci, cj, ck) = courant;
    let c = (
        (domain.i.lo + domain.i.hi) as f64 / 2.0,
        (domain.j.lo + domain.j.hi) as f64 / 2.0,
        (domain.k.lo + domain.k.hi) as f64 / 2.0,
    );
    let sigma = (domain
        .i
        .len()
        .min(domain.j.len())
        .min(domain.k.len())
        .max(4)) as f64
        / 6.0;
    let x = Array3::from_fn(domain, |i, j, k| {
        let di = i as f64 + 0.5 - c.0;
        let dj = j as f64 + 0.5 - c.1;
        let dk = k as f64 + 0.5 - c.2;
        2.0 + 10.0 * (-(di * di + dj * dj + dk * dk) / (2.0 * sigma * sigma)).exp()
    });
    MpdataFields {
        x,
        u1: Array3::filled(domain, ci),
        u2: Array3::filled(domain, cj),
        u3: Array3::filled(domain, ck),
        h: Array3::filled(domain, 1.0),
    }
}

/// A rotating flow in the `i–j` plane around the domain centre carrying
/// a cone (the classic rotating-cone benchmark). The angular velocity
/// is solid-body out to 0.40 of the smaller planar extent and tapers
/// smoothly to zero by 0.48 — for any radial profile `f(r)`, the field
/// `(−f(r)·y, f(r)·x)` is exactly divergence-free, so the flow never
/// presses mass against the walls. `max_courant` bounds the largest
/// face Courant number.
pub fn rotating_cone(domain: Region3, max_courant: f64) -> MpdataFields {
    let ci = (domain.i.lo + domain.i.hi) as f64 / 2.0;
    let cj = (domain.j.lo + domain.j.hi) as f64 / 2.0;
    let planar = (domain.i.len().min(domain.j.len())) as f64;
    let r0 = 0.40 * planar;
    let r1 = 0.48 * planar;
    let omega = max_courant / r1.max(1.0);
    let profile = move |y: f64, x_: f64| -> f64 {
        let r = (x_ * x_ + y * y).sqrt();
        let t = ((r1 - r) / (r1 - r0)).clamp(0.0, 1.0);
        omega * t
    };
    // Cone centred at 1/4 of the i-extent, small enough to stay inside
    // the solid-body radius.
    let cone_i = domain.i.lo as f64 + domain.i.len() as f64 / 4.0;
    let cone_r = planar / 10.0 + 1.0;
    let x = Array3::from_fn(domain, |i, j, k| {
        let _ = k;
        let d = (((i as f64 + 0.5) - cone_i).powi(2) + ((j as f64 + 0.5) - cj).powi(2)).sqrt();
        1.0 + (4.0 * (1.0 - d / cone_r)).max(0.0)
    });
    // u1 at face (i-1/2, j): velocity −f(r)(y−cj); u2 at face
    // (i, j-1/2): f(r)(x−ci), each evaluated at its face centre.
    let u1 = Array3::from_fn(domain, |i, j, _| {
        let y = (j as f64 + 0.5) - cj;
        let x_ = i as f64 - ci;
        -profile(y, x_) * y
    });
    let u2 = Array3::from_fn(domain, |i, j, _| {
        let y = j as f64 - cj;
        let x_ = (i as f64 + 0.5) - ci;
        profile(y, x_) * x_
    });
    let mut f = MpdataFields {
        x,
        u1,
        u2,
        u3: Array3::filled(domain, 0.0),
        h: Array3::filled(domain, 1.0),
    };
    f.close_boundaries();
    f
}

/// Random CFL-safe fields for property testing: positive scalar, face
/// Courant numbers bounded so the donor-cell positivity condition
/// `Σ_faces outflow ≤ max_total · h` holds for every cell even when all
/// six faces flow outward, closed boundaries, and a mildly varying
/// density with `h ≥ 0.8`.
pub fn random_fields<R: Rng64>(rng: &mut R, domain: Region3, max_total: f64) -> MpdataFields {
    const H_MIN: f64 = 0.8;
    let per_axis = max_total * H_MIN / 6.0;
    let mut f = MpdataFields {
        x: Array3::from_fn(domain, |_, _, _| rng.range_f64(0.0, 10.0)),
        u1: Array3::from_fn(domain, |_, _, _| rng.range_f64(-per_axis, per_axis)),
        u2: Array3::from_fn(domain, |_, _, _| rng.range_f64(-per_axis, per_axis)),
        u3: Array3::from_fn(domain, |_, _, _| rng.range_f64(-per_axis, per_axis)),
        h: Array3::from_fn(domain, |_, _, _| rng.range_f64(H_MIN, 1.2)),
    };
    f.close_boundaries();
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_engine::rng::Xoshiro256pp;

    #[test]
    fn gaussian_pulse_is_positive_and_peaked() {
        let d = Region3::of_extent(16, 16, 8);
        let f = gaussian_pulse(d, (0.2, 0.1, 0.0));
        assert!(f.x.min() >= 2.0);
        assert!(f.x.max() > 10.0);
        assert_eq!(f.domain(), d);
        assert!(f.mass() > 0.0);
    }

    #[test]
    fn close_boundaries_zeroes_normal_faces() {
        let d = Region3::of_extent(8, 8, 8);
        let mut f = gaussian_pulse(d, (0.3, 0.3, 0.3));
        f.close_boundaries();
        assert_eq!(f.u1.get(0, 3, 3), 0.0);
        assert_eq!(f.u1.get(7, 3, 3), 0.0);
        assert_eq!(f.u2.get(3, 0, 3), 0.0);
        assert_eq!(f.u3.get(3, 3, 7), 0.0);
        // Interior untouched.
        assert_eq!(f.u1.get(3, 3, 3), 0.3);
    }

    #[test]
    fn rotating_cone_is_closed_and_cfl_safe() {
        let d = Region3::of_extent(32, 32, 4);
        let f = rotating_cone(d, 0.4);
        let mut max_c: f64 = 0.0;
        for (i, j, k) in d.points() {
            max_c = max_c
                .max(f.u1.get(i, j, k).abs())
                .max(f.u2.get(i, j, k).abs());
        }
        assert!(max_c <= 0.4 + 1e-12);
        assert_eq!(f.u1.get(0, 5, 0), 0.0, "boundary closed");
        assert!(f.x.min() >= 1.0);
    }

    #[test]
    fn random_fields_bounded() {
        let d = Region3::of_extent(6, 5, 4);
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let f = random_fields(&mut rng, d, 0.9);
        for (i, j, k) in d.points() {
            let tot = f.u1.get(i, j, k).abs() + f.u2.get(i, j, k).abs() + f.u3.get(i, j, k).abs();
            assert!(2.0 * tot / f.h.get(i, j, k) <= 0.9);
            assert!(f.x.get(i, j, k) >= 0.0);
            assert!(f.h.get(i, j, k) >= 0.8);
        }
    }
}
