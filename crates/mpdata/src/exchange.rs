//! The halo-exchange executor — Fig. 1's **scenario 1** as real code.
//!
//! Islands own disjoint parts and *communicate*: each island's scratch
//! arrays cover its part plus a one-cell halo margin, every stage is
//! computed on exactly the island's own cells, and after each stage the
//! freshly written boundary planes are copied from the neighbouring
//! islands' scratches into the margins (with machine-wide
//! synchronization on both sides of the copy). This is the strategy the
//! islands-of-cores approach replaces with redundant computation; having
//! both as real executors lets the test suite pin them against each
//! other bitwise and lets the benches weigh their host-side costs.

use crate::exec::{rank_slice, ExtFields, ParStore};
use crate::fields::MpdataFields;
use crate::graph::MpdataProblem;
use stencil_engine::{Array3, Axis, Halo3, Region3, StageGraph};
use work_scheduler::{DisjointCell, TeamSpec, WorkerPool};

/// Parallel halo-exchange (scenario 1) MPDATA executor.
///
/// # Examples
///
/// ```
/// use mpdata::{gaussian_pulse, ExchangeExecutor, ReferenceExecutor};
/// use stencil_engine::{Axis, Region3};
/// use work_scheduler::{TeamSpec, WorkerPool};
///
/// let pool = WorkerPool::new(4);
/// let domain = Region3::of_extent(24, 8, 4);
/// let fields = gaussian_pulse(domain, (0.3, 0.0, 0.0));
/// let got = ExchangeExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I).step(&fields);
/// let expect = ReferenceExecutor::new().step(&fields);
/// assert_eq!(got.max_abs_diff(&expect), 0.0);
/// ```
#[derive(Debug)]
pub struct ExchangeExecutor<'p> {
    pool: &'p WorkerPool,
    teams: TeamSpec,
    problem: MpdataProblem,
    partition_axis: Axis,
    split_axis: Axis,
}

impl<'p> ExchangeExecutor<'p> {
    /// Creates the executor: one island per team, parts cut along
    /// `partition_axis`.
    pub fn new(pool: &'p WorkerPool, teams: TeamSpec, partition_axis: Axis) -> Self {
        Self::with_problem(pool, teams, partition_axis, MpdataProblem::standard())
    }

    /// Creates the executor for an arbitrary MPDATA problem (open
    /// boundaries only — see [`crate::Boundary`]).
    pub fn with_problem(
        pool: &'p WorkerPool,
        teams: TeamSpec,
        partition_axis: Axis,
        problem: MpdataProblem,
    ) -> Self {
        ExchangeExecutor {
            pool,
            teams,
            problem,
            partition_axis,
            split_axis: Axis::J,
        }
    }

    /// The stage graph.
    pub fn graph(&self) -> &StageGraph {
        self.problem.graph()
    }

    /// Performs one time step.
    ///
    /// # Panics
    ///
    /// Panics for periodic problems (wrap-around halo exchange is not
    /// implemented) and propagates worker panics.
    pub fn step(&self, fields: &MpdataFields) -> Array3 {
        self.step_traced(fields, 0)
    }

    /// [`ExchangeExecutor::step`] with an explicit step index for trace
    /// tagging (used by [`ExchangeExecutor::run`]).
    fn step_traced(&self, fields: &MpdataFields, step_no: u32) -> Array3 {
        assert_eq!(
            self.problem.boundary(),
            crate::kernels::Boundary::Open,
            "the exchange executor requires open boundaries"
        );
        let domain = fields.domain();
        let graph = self.problem.graph();
        let n_teams = self.teams.team_count();
        let parts = domain.split(self.partition_axis, n_teams);
        // One-cell margins suffice: every individual stage's input halo
        // is at most one cell in each direction (asserted below).
        let margin = graph
            .stages()
            .iter()
            .fold(Halo3::ZERO, |h, st| h.max(st.input_halo()));
        assert!(
            margin.i_neg <= 1
                && margin.i_pos <= 1
                && margin.j_neg <= 1
                && margin.j_pos <= 1
                && margin.k_neg <= 1
                && margin.k_pos <= 1,
            "single-stage halos wider than one cell need wider margins"
        );
        let scratch_regions: Vec<Region3> = parts
            .iter()
            .map(|p| p.expand(Halo3::uniform(1)).intersect(domain))
            .collect();

        let out = DisjointCell::new(Array3::zeros(domain));
        let extf = ExtFields::new(fields);
        let stores: Vec<DisjointCell<Option<ParStore>>> =
            (0..n_teams).map(|_| DisjointCell::new(None)).collect();
        let staging: Vec<DisjointCell<Vec<(stencil_engine::FieldId, Array3)>>> = (0..n_teams)
            .map(|_| DisjointCell::new(Vec::new()))
            .collect();
        let xout = self.problem.xout();
        let bc = self.problem.boundary();

        // Phase A: allocate island scratches (margins included).
        self.pool.run_teams(&self.teams, |ctx| {
            if ctx.rank == 0 && !parts[ctx.team].is_empty() {
                // SAFETY: rank-0-only write, published by the run_teams
                // join before any other phase reads it.
                let slot = unsafe { stores[ctx.team].get_mut() };
                let mut store = ParStore::new(graph.fields().len(), self.problem.ext());
                for st in graph.stages() {
                    for &o in &st.outputs {
                        if o != xout {
                            store.alloc(o, scratch_regions[ctx.team]);
                        }
                    }
                }
                *slot = Some(store);
            }
        });

        // Phase B: one run_teams per stage — compute, join (the global
        // barrier), then exchange, join again. The joins between
        // broadcasts provide the machine-wide synchronization scenario 1
        // requires.
        for (s, st) in graph.stages().iter().enumerate() {
            let kind = self.problem.kind(st.id);
            // B1: every island computes exactly its own cells.
            self.pool.run_teams(&self.teams, |ctx| {
                let part = parts[ctx.team];
                if part.is_empty() {
                    return;
                }
                islands_trace::set_island_rank(ctx.team as u32, ctx.rank as u32);
                islands_trace::set_step(step_no);
                let mine = rank_slice(part, self.split_axis, ctx.rank, ctx.size);
                let t0 = if mine.is_empty() {
                    None
                } else {
                    islands_trace::now()
                };
                if st.outputs == [xout] {
                    if !mine.is_empty() {
                        // SAFETY: disjoint regions across all writers.
                        let out_arr = unsafe { out.get_mut() };
                        let store = unsafe { stores[ctx.team].get_ref() }
                            .as_ref()
                            .expect("store");
                        store.apply_into(st, kind, domain, bc, mine, out_arr, extf);
                    }
                } else {
                    // SAFETY: disjoint regions across this team's ranks.
                    let store = unsafe { stores[ctx.team].get_ref() }
                        .as_ref()
                        .expect("store");
                    store.apply(st, kind, domain, bc, mine, extf);
                }
                if let Some(t0) = t0 {
                    // Scenario 1 computes no halo cells: redundant = 0.
                    islands_trace::record(
                        islands_trace::SpanKind::Kernel,
                        t0,
                        islands_trace::now_ns(),
                        s.min(usize::from(u16::MAX)) as u16,
                        0,
                        [mine.cells() as u64, 0, 0],
                    );
                }
            });
            if st.outputs == [xout] {
                continue; // the final output needs no halo exchange
            }
            // B2a: every island (rank 0) *reads* the boundary planes it
            // needs from its neighbours' scratches into a private
            // staging buffer. All stores are only read in this phase, so
            // the shared references are sound.
            self.pool.run_teams(&self.teams, |ctx| {
                if ctx.rank != 0 || parts[ctx.team].is_empty() {
                    return;
                }
                islands_trace::set_island_rank(ctx.team as u32, ctx.rank as u32);
                islands_trace::set_step(step_no);
                let t0 = islands_trace::now();
                let my_scratch = scratch_regions[ctx.team];
                let mut pieces: Vec<(stencil_engine::FieldId, Array3)> = Vec::new();
                for (other, &other_part) in parts.iter().enumerate() {
                    if other == ctx.team || other_part.is_empty() {
                        continue;
                    }
                    let need = my_scratch.intersect(other_part);
                    if need.is_empty() {
                        continue;
                    }
                    for &f in &st.outputs {
                        // SAFETY: B2a only reads stores (no writer exists
                        // until the next run_teams join).
                        let src = unsafe { stores[other].get_ref() }.as_ref().expect("store");
                        pieces.push((f, src.extract(f, need)));
                    }
                }
                // SAFETY: each island writes only its own staging slot.
                *unsafe { staging[ctx.team].get_mut() } = pieces;
                if let Some(t0) = t0 {
                    islands_trace::record(
                        islands_trace::SpanKind::Exchange,
                        t0,
                        islands_trace::now_ns(),
                        s.min(usize::from(u16::MAX)) as u16,
                        0,
                        [0; 3],
                    );
                }
            });
            // B2b: every island writes its staged planes into its own
            // margins (exclusive access to its own store).
            self.pool.run_teams(&self.teams, |ctx| {
                if ctx.rank != 0 || parts[ctx.team].is_empty() {
                    return;
                }
                islands_trace::set_island_rank(ctx.team as u32, ctx.rank as u32);
                islands_trace::set_step(step_no);
                let t0 = islands_trace::now();
                // SAFETY: own-slot access, fenced by the joins around
                // this phase.
                let pieces = std::mem::take(unsafe { staging[ctx.team].get_mut() });
                let store = unsafe { stores[ctx.team].get_mut() }
                    .as_mut()
                    .expect("store");
                for (f, piece) in &pieces {
                    store.blit(*f, piece);
                }
                if let Some(t0) = t0 {
                    islands_trace::record(
                        islands_trace::SpanKind::Exchange,
                        t0,
                        islands_trace::now_ns(),
                        s.min(usize::from(u16::MAX)) as u16,
                        0,
                        [0; 3],
                    );
                }
            });
        }
        out.into_inner()
    }

    /// Advances `fields.x` by `steps` time steps.
    pub fn run(&self, fields: &mut MpdataFields, steps: usize) {
        for step in 0..steps {
            fields.x = self.step_traced(fields, step as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::{gaussian_pulse, random_fields, rotating_cone};
    use crate::reference::ReferenceExecutor;
    use stencil_engine::rng::Xoshiro256pp;

    #[test]
    fn matches_reference_bitwise() {
        let d = Region3::of_extent(20, 9, 5);
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let f = random_fields(&mut rng, d, 0.7);
        let expect = ReferenceExecutor::new().step(&f);
        for (workers, teams) in [(2, 2), (4, 2), (6, 3), (8, 4)] {
            let pool = WorkerPool::new(workers);
            let got =
                ExchangeExecutor::new(&pool, TeamSpec::even(workers, teams), Axis::I).step(&f);
            assert_eq!(
                got.max_abs_diff(&expect),
                0.0,
                "{teams} exchange islands diverged"
            );
        }
    }

    #[test]
    fn matches_reference_variant_b() {
        let d = Region3::of_extent(10, 18, 4);
        let f = gaussian_pulse(d, (0.15, 0.25, 0.0));
        let expect = ReferenceExecutor::new().step(&f);
        let pool = WorkerPool::new(6);
        let got = ExchangeExecutor::new(&pool, TeamSpec::even(6, 3), Axis::J).step(&f);
        assert_eq!(got.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn multi_step_matches_recompute_islands() {
        // Scenario 1 (exchange) and scenario 2 (recompute) must agree
        // with each other exactly — the paper's two parallelizations of
        // the same computation.
        let d = Region3::of_extent(16, 12, 4);
        let mut a = rotating_cone(d, 0.3);
        let mut b = a.clone();
        let pool = WorkerPool::new(4);
        ExchangeExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I).run(&mut a, 4);
        crate::islands::IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I)
            .cache_bytes(128 * 1024)
            .run(&mut b, 4)
            .unwrap();
        assert_eq!(a.x.max_abs_diff(&b.x), 0.0);
    }

    #[test]
    fn more_islands_than_slabs_is_fine() {
        let d = Region3::of_extent(3, 8, 4);
        let f = gaussian_pulse(d, (0.2, 0.1, 0.0));
        let pool = WorkerPool::new(6);
        let got = ExchangeExecutor::new(&pool, TeamSpec::even(6, 6), Axis::I).step(&f);
        let expect = ReferenceExecutor::new().step(&f);
        assert_eq!(got.max_abs_diff(&expect), 0.0);
    }
}
