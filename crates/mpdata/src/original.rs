//! The parallel "original version": stage-by-stage sweeps over the full
//! domain with full-size intermediates, the work of each stage split
//! among *all* workers of the pool.
//!
//! This is the baseline the paper's Table 1/3 calls *Original*: simple,
//! memory-traffic-heavy (every intermediate round-trips through main
//! memory) but, with parallel first-touch initialization, reasonably
//! scalable on NUMA machines.

use crate::exec::{rank_slice, ExtFields, ParStore};
use crate::fields::MpdataFields;
use crate::graph::MpdataProblem;
use stencil_engine::{Array3, Axis};
use work_scheduler::WorkerPool;

/// Parallel per-stage MPDATA executor.
///
/// # Examples
///
/// ```
/// use mpdata::{gaussian_pulse, OriginalExecutor, ReferenceExecutor};
/// use stencil_engine::Region3;
/// use work_scheduler::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let domain = Region3::of_extent(16, 8, 8);
/// let fields = gaussian_pulse(domain, (0.2, 0.1, 0.0));
/// let par = OriginalExecutor::new(&pool).step(&fields);
/// let ser = ReferenceExecutor::new().step(&fields);
/// assert_eq!(par.max_abs_diff(&ser), 0.0); // bitwise identical
/// ```
#[derive(Debug)]
pub struct OriginalExecutor<'p> {
    pool: &'p WorkerPool,
    problem: MpdataProblem,
    split_axis: Axis,
}

impl<'p> OriginalExecutor<'p> {
    /// Creates the executor on `pool`, splitting each stage along the
    /// first dimension.
    pub fn new(pool: &'p WorkerPool) -> Self {
        Self::with_problem(pool, MpdataProblem::standard())
    }

    /// Creates the executor for an arbitrary MPDATA problem.
    pub fn with_problem(pool: &'p WorkerPool, problem: MpdataProblem) -> Self {
        OriginalExecutor {
            pool,
            problem,
            split_axis: Axis::I,
        }
    }

    /// Changes the axis along which each stage's sweep is split.
    pub fn split_axis(mut self, axis: Axis) -> Self {
        self.split_axis = axis;
        self
    }

    /// Performs one time step and returns the advected scalar.
    pub fn step(&self, fields: &MpdataFields) -> Array3 {
        let domain = fields.domain();
        let graph = self.problem.graph();
        let ext = ExtFields::new(fields);
        let mut store = ParStore::new(graph.fields().len(), self.problem.ext());
        for st in graph.stages() {
            for &out in &st.outputs {
                store.alloc(out, domain);
            }
        }
        let workers = self.pool.len();
        for st in graph.stages() {
            // One broadcast per stage: the join is the inter-stage
            // barrier.
            self.pool.broadcast(|ctx| {
                let mine = rank_slice(domain, self.split_axis, ctx.worker, workers);
                store.apply(
                    st,
                    self.problem.kind(st.id),
                    domain,
                    self.problem.boundary(),
                    mine,
                    ext,
                );
            });
        }
        store.take(self.problem.xout())
    }

    /// Advances `fields.x` by `steps` time steps.
    pub fn run(&self, fields: &mut MpdataFields, steps: usize) {
        for _ in 0..steps {
            fields.x = self.step(fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::{gaussian_pulse, random_fields, rotating_cone};
    use crate::reference::ReferenceExecutor;
    use stencil_engine::rng::Xoshiro256pp;
    use stencil_engine::Region3;

    #[test]
    fn matches_reference_bitwise_various_pools() {
        let d = Region3::of_extent(12, 9, 5);
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let f = random_fields(&mut rng, d, 0.7);
        let expect = ReferenceExecutor::new().step(&f);
        for workers in [1, 2, 3, 5, 8] {
            let pool = WorkerPool::new(workers);
            let got = OriginalExecutor::new(&pool).step(&f);
            assert_eq!(got.max_abs_diff(&expect), 0.0, "{workers} workers diverged");
        }
    }

    #[test]
    fn matches_reference_when_split_along_j() {
        let d = Region3::of_extent(8, 16, 4);
        let f = gaussian_pulse(d, (0.1, 0.2, 0.05));
        let expect = ReferenceExecutor::new().step(&f);
        let pool = WorkerPool::new(4);
        let got = OriginalExecutor::new(&pool).split_axis(Axis::J).step(&f);
        assert_eq!(got.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn multi_step_run_matches_reference() {
        let d = Region3::of_extent(10, 8, 6);
        let mut f1 = rotating_cone(d, 0.3);
        let mut f2 = f1.clone();
        let pool = WorkerPool::new(3);
        OriginalExecutor::new(&pool).run(&mut f1, 4);
        ReferenceExecutor::new().run(&mut f2, 4);
        assert_eq!(f1.x.max_abs_diff(&f2.x), 0.0);
    }

    #[test]
    fn more_workers_than_slabs_is_fine() {
        let d = Region3::of_extent(3, 4, 4);
        let f = gaussian_pulse(d, (0.2, 0.0, 0.0));
        let pool = WorkerPool::new(8);
        let got = OriginalExecutor::new(&pool).step(&f);
        let expect = ReferenceExecutor::new().step(&f);
        assert_eq!(got.max_abs_diff(&expect), 0.0);
    }
}
