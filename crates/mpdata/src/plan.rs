//! Persistent execution plans: plan once, replay every step.
//!
//! `IslandsExecutor::step` used to re-partition the domain, re-run the
//! wavefront block planner per island, re-create (and zero-fill) every
//! scratch store, and allocate a fresh full-domain output array on
//! *every* time step. Once blocking amortizes memory traffic, that
//! churn — plus per-stage dispatch — dominates the per-sweep cost. A
//! [`StepPlan`] hoists all of it out of the loop:
//!
//! * the partition, per-island blocking, stage→region tables and
//!   work-unit slices are computed once and keyed by [`PlanKey`] — any
//!   change of domain, partition, cache budget, split axis, schedule
//!   policy or fuse depth rebuilds the plan;
//! * the island [`ParStore`]s persist across steps. Instead of
//!   re-zeroing whole scratches, the builder runs the same coverage
//!   analysis as the `islands-analysis` `uncovered-read` rule and
//!   records exactly the cells each team reads before writing; the
//!   replay re-zeroes only those (none, for the real MPDATA graphs);
//! * `run` ping-pongs two persistent full-domain arrays (`cur`/`out`)
//!   by pointer swap under the once-per-epoch global barrier, instead
//!   of allocating `Array3::zeros(domain)` and copying back per step.
//!
//! # Temporal blocking (`fuse_steps = k`)
//!
//! With `fuse_steps = k > 1` the plan fuses k whole time steps into one
//! replay epoch, so `run` pays the global-barrier pair once per k steps
//! instead of once per step. Each team's epoch table then holds k
//! *fused-step* sections: the last section computes the island's own
//! part of the final step; every earlier section's target is enlarged
//! backwards by one cumulative stencil halo
//! (`StageGraph::external_read_regions` on the advected field), so a
//! team can compute step s+1 of its enlarged region entirely from its
//! *own* step-s values — no other island's output is ever read between
//! global barriers. Intermediate advected fields ping-pong through two
//! team-private x-slot buffers (`TeamPlan::xslots`), sized to the first
//! (widest) fused step; the last fused step writes the shared output
//! exactly as before. A `run` whose step count is not a multiple of k
//! replays a tail epoch made of the *last* `steps mod k` sections,
//! which keeps every section's enlargement exactly right; `step` is the
//! one-section tail, identical to an unfused plan.
//!
//! Replay is bit-identical to the allocate-per-step path for every k:
//! the kernels are pointwise in their declared neighborhoods, so
//! computing a cell inside an enlarged region produces the same bits as
//! computing it as somebody's "own" cell; covered scratch reads see the
//! same in-step values, uncovered reads see zeros either way (the
//! refill runs before every fused step), and the output cells not
//! covered by final-stage writes (`out_gaps` — empty for any covering
//! partition) are re-zeroed at swap time.

use crate::exec::{rank_slice, ExtFields, ParStore};
use crate::graph::{MpdataProblem, StageKind};
use crate::kernels::Boundary;
use std::fmt;
use stencil_engine::{
    choose_tile, tile_grid, Array3, Axis, BlockPlanner, FieldId, FieldRole, PlanBlocksError,
    Region3, StageDef, StageGraph,
};
use work_scheduler::{ChunkQueue, DisjointCell, TeamCtx, TeamSpec, WorkerPool};

/// How each epoch's work units are assigned to the ranks of a team.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SchedulePolicy {
    /// One fixed slice per rank (the paper's schedule): zero scheduling
    /// overhead, optimal for homogeneous stages.
    #[default]
    Static,
    /// Intra-island self-scheduling: every epoch is pre-split into
    /// `ranks × chunks_per_rank` slices and ranks claim them from a
    /// per-epoch [`ChunkQueue`] until drained. The chunks are computed
    /// at plan time and the queue reset is one atomic store, so the
    /// steady-state replay stays allocation-free; epoch fencing is
    /// unchanged, so plan-time disjointness still proves the schedule
    /// for *any* claim order.
    Dynamic {
        /// Chunks per rank per epoch (clamped to at least 1). More
        /// chunks → finer-grained stealing, more claim traffic.
        chunks_per_rank: usize,
    },
}

impl SchedulePolicy {
    /// Work units per epoch for a team of `ranks`.
    fn units_for(self, ranks: usize) -> usize {
        match self {
            SchedulePolicy::Static => ranks,
            SchedulePolicy::Dynamic { chunks_per_rank } => ranks * chunks_per_rank.max(1),
        }
    }
}

/// Cache-tiled stage fusion: how (and whether) each fused-step target
/// is cut into `(i, j)` tiles whose whole stage chain runs back-to-back
/// on tile-local scratch.
///
/// Untiled replay sweeps each stage across the island's full part,
/// round-tripping every intermediate array through main memory between
/// stages. Tiled replay instead partitions the target into tiles sized
/// so one tile's scratch (tile + cumulative halo, times the peak live
/// buffer count) stays resident in L2, and executes all 17 stages of
/// one tile before moving to the next: intermediates never leave cache,
/// and the per-stage team barriers collapse to one per fused step. Tile
/// faces pay redundant halo recomputation — the same overlapped-tiling
/// trade the (3+1)D blocks make along `I`, here in both `I` and `J`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TileMode {
    /// Per-stage sweeps (the classic replay; the default).
    #[default]
    Off,
    /// Tile extents chosen from the plan's cache budget by
    /// [`stencil_engine::choose_tile`].
    Auto,
    /// Explicit tile extents along `I` and `J` (clamped to ≥ 1).
    Fixed {
        /// Tile extent along `I`.
        ti: usize,
        /// Tile extent along `J`.
        tj: usize,
    },
}

/// How the domain is divided among islands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum PartitionKind {
    /// 1-D split along an axis (variant A = `I`, variant B = `J`).
    Axis(Axis),
    /// Explicit parts, one per team in order (e.g. 2-D island grids).
    Explicit(Vec<Region3>),
    /// The whole domain as a single part (the fused (3+1)D executor:
    /// one team spanning every worker).
    Whole,
}

impl PartitionKind {
    /// The island partition of `domain`: one part per team.
    ///
    /// # Panics
    ///
    /// Panics if an explicit partition does not disjointly cover
    /// `domain` or disagrees with `team_count`.
    pub(crate) fn parts(&self, domain: Region3, team_count: usize) -> Vec<Region3> {
        match self {
            PartitionKind::Axis(axis) => domain.split(*axis, team_count),
            PartitionKind::Whole => {
                assert_eq!(team_count, 1, "Whole partition is single-team");
                vec![domain]
            }
            PartitionKind::Explicit(parts) => {
                assert_eq!(parts.len(), team_count, "one part per team required");
                let covered: usize = parts.iter().map(|p| p.cells()).sum();
                assert_eq!(covered, domain.cells(), "partition must cover the domain");
                for (n, a) in parts.iter().enumerate() {
                    assert!(domain.contains_region(*a), "part {n} outside domain");
                    for b in &parts[n + 1..] {
                        assert!(!a.overlaps(*b), "parts overlap");
                    }
                }
                parts.clone()
            }
        }
    }
}

/// Everything a cached [`StepPlan`] depends on. A `step`/`run` call
/// whose inputs no longer match the cached key rebuilds the plan; the
/// comparison itself ([`PlanKey::matches`]) is allocation-free so cache
/// hits cost a few field compares.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct PlanKey {
    domain: Region3,
    partition: PartitionKind,
    cache_bytes: usize,
    split_axis: Axis,
    schedule: SchedulePolicy,
    /// Fused time steps per replay epoch (≥ 1; 1 = classic per-step
    /// synchronization). Keyed so flipping `--fuse-steps` replans.
    fuse_steps: usize,
    /// Tile-fused replay mode. Keyed so flipping `--tile` replans.
    tile: TileMode,
}

impl PlanKey {
    #[allow(clippy::too_many_arguments)]
    fn matches(
        &self,
        domain: Region3,
        partition: &PartitionKind,
        cache_bytes: usize,
        split_axis: Axis,
        schedule: SchedulePolicy,
        fuse_steps: usize,
        tile: TileMode,
    ) -> bool {
        self.domain == domain
            && self.cache_bytes == cache_bytes
            && self.split_axis == split_axis
            && self.schedule == schedule
            && self.fuse_steps == fuse_steps.max(1)
            && self.tile == tile
            && &self.partition == partition
    }
}

/// One barrier-fenced unit of a team's replay: one stage of one block,
/// with every work-unit slice precomputed (so the hot loop never calls
/// the allocating `Region3::split`). Under [`SchedulePolicy::Static`]
/// there is exactly one unit per rank (unit index = rank); under
/// [`SchedulePolicy::Dynamic`] there are `ranks × chunks_per_rank`
/// units claimed from the epoch's [`ChunkQueue`].
struct EpochPlan {
    /// Index into `graph.stages()`.
    stage: usize,
    /// The stage's kernel.
    kind: StageKind,
    /// Final stage: written straight into the step's x output — the
    /// shared output buffer for the last fused step, a team-private
    /// x slot for earlier ones.
    is_final: bool,
    /// Fused-step index within the plan's k-step table (0-based).
    step: u16,
    /// Block index within the island's wavefront blocking (trace tag).
    block: u16,
    /// The whole epoch region (the union of `units`, which slice it
    /// contiguously along the split axis).
    region: Region3,
    /// Slice per work unit (empty regions for surplus units).
    units: Vec<Region3>,
    /// Per unit: cells of the slice lying outside `part ∩
    /// region_s(domain)` — the redundant halo recomputation this
    /// epoch performs (fused steps before the last one recompute a
    /// whole widened halo band), precomputed so traced kernels can
    /// report it without any plan-time math on the hot path.
    units_extra: Vec<u64>,
}

/// One `(i, j)` tile of a fused-step target under [`TileMode`]: the
/// whole stage chain replayed back-to-back by one rank on that rank's
/// private scratch, rebased to this tile's footprint.
struct TileTask {
    /// The owned output region (tiles partition the fused-step target,
    /// so concurrent final-stage writes are disjoint by construction).
    tile: Region3,
    /// Per-stage compute regions from the backward requirement analysis
    /// (`required_regions(tile, domain)`): every intra-chain read of an
    /// intermediate resolves to a cell this chain computed earlier.
    stage_regions: Vec<Region3>,
    /// Per scratch field, the region the rank store is rebased to
    /// before the chain runs — the producing stage's region, which
    /// contains every later read of the field.
    field_regions: Vec<(FieldId, Region3)>,
    /// Scratch cells the chain reads before writing them, zeroed after
    /// the rebase (rebased scratch holds *stale* cells of the previous
    /// tile, not zeros, so coverage must be exact). Empty for the real
    /// MPDATA graphs — the chain-coverage analysis proves it per tile.
    must_zero: Vec<(FieldId, Region3)>,
    /// Per-stage redundant cells beyond `tile ∩ part ∩ base_regions[s]`
    /// (trace attribution, mirroring `EpochPlan::units_extra`).
    stage_extra: Vec<u64>,
}

/// One team's replay schedule.
struct TeamPlan {
    epochs: Vec<EpochPlan>,
    /// Epoch index range per fused step: `epochs[step_bounds[s].0 ..
    /// step_bounds[s].1]` are fused step `s`'s epochs (all `(0, 0)` for
    /// empty islands).
    step_bounds: Vec<(usize, usize)>,
    /// One preallocated work queue per epoch (dynamic schedules only;
    /// empty for static). Reset between steps by one relaxed store per
    /// epoch, inside the serial sections the barriers already fence —
    /// so self-scheduling adds no allocation to the steady state.
    queues: Vec<ChunkQueue>,
    /// Scratch regions this team reads before writing them in one fused
    /// step — the cells the refill must re-zero *before every fused
    /// step* so scratch reuse stays bit-identical to freshly zeroed
    /// stores. Empty for the real MPDATA graphs (the `uncovered-read`
    /// analysis proves per-step coverage).
    must_zero: Vec<(FieldId, Region3)>,
    /// Team-private ping-pong buffers for the advected field between
    /// fused steps (`None` when `fuse_steps == 1`): fused step `s < k-1`
    /// writes slot `s % 2`, fused step `s > 0` reads slot `(s-1) % 2`.
    /// Sized to the first (widest) fused step's target, which contains
    /// every later step's writes and reads.
    xslots: Option<[DisjointCell<Array3>; 2]>,
    /// Tile tables, one `Vec<TileTask>` per fused step (tiled plans
    /// only; empty when `TileMode::Off`). Tiles of step `s` partition
    /// `fused_step_targets[s]`.
    tiles: Vec<Vec<TileTask>>,
    /// One preallocated claim queue per fused step over that step's
    /// tiles (dynamic tiled plans only). Same reset contract as
    /// `queues`.
    tile_queues: Vec<ChunkQueue>,
}

/// A fully materialized, reusable execution plan for one time step (or,
/// with `fuse_steps = k`, one k-step fused epoch).
///
/// Owns the per-island scratch stores and the two ping-pong domain
/// buffers, so steps 2..N of `run` allocate nothing at all.
pub(crate) struct StepPlan {
    key: PlanKey,
    teams: Vec<TeamPlan>,
    stores: Vec<ParStore>,
    /// Rank-private scratch stores for the tiled replay, indexed
    /// `[team][rank]` (empty when `TileMode::Off`). Each holds every
    /// scratch field at its worst-case tile footprint and is rebased
    /// tile by tile, so the steady state allocates nothing.
    tile_stores: Vec<Vec<ParStore>>,
    /// Stage kinds in stage order (the tiled replay walks the graph
    /// directly instead of through per-epoch tables).
    stage_kinds: Vec<StageKind>,
    /// Index of the final stage (the single writer of the advected
    /// output).
    final_stage: usize,
    /// Domain cells no final-stage write covers (empty for covering
    /// partitions); re-zeroed in the output buffer at swap time.
    out_gaps: Vec<Region3>,
    /// `run`'s current-input buffer (`x` of the step being computed).
    cur: DisjointCell<Array3>,
    /// The shared output buffer all teams write disjoint parts of.
    ///
    /// Invariant between steps: cells in `out_gaps` are zero.
    out: DisjointCell<Array3>,
}

impl fmt::Debug for StepPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StepPlan")
            .field("key", &self.key)
            .field("teams", &self.teams.len())
            .field(
                "epochs",
                &self.teams.iter().map(|t| t.epochs.len()).sum::<usize>(),
            )
            .finish_non_exhaustive()
    }
}

/// Removes `cut` from every region of `from`.
fn subtract_all(from: Vec<Region3>, cut: Region3) -> Vec<Region3> {
    from.into_iter().flat_map(|r| r.subtract(cut)).collect()
}

/// The scratch cells a team reads before any same-step write covers
/// them — mirror of the analyzer's `uncovered-read` rule, restricted to
/// intermediate fields (externals are inputs; the output is written,
/// never read). Regions are clamped to `hull`, the extent of the
/// team's scratch buffers.
fn uncovered_reads(
    graph: &StageGraph,
    epochs: &[EpochPlan],
    hull: Region3,
    domain: Region3,
) -> Vec<(FieldId, Region3)> {
    // Coverage is checked at *epoch* granularity: an epoch's units
    // slice `ep.region` contiguously along one axis, and halo
    // expansion distributes over a contiguous split, so the union of
    // the per-unit read hulls is exactly the epoch-region read hull —
    // same gap cells, far fewer region subtractions. Writes are
    // bucketed per field so each read only scans its own field's
    // history instead of one flat list (this analysis used to dominate
    // the first-step cost of whole-domain fused plans).
    let mut written: Vec<Vec<Region3>> = vec![Vec::new(); graph.fields().len()];
    let mut gaps: Vec<(FieldId, Region3)> = Vec::new();
    for ep in epochs {
        let st = &graph.stages()[ep.stage];
        if ep.region.is_empty() {
            continue;
        }
        for (f, pat) in &st.inputs {
            if graph.fields().role(*f) != FieldRole::Intermediate {
                continue;
            }
            let read = ep
                .region
                .expand(pat.halo())
                .intersect(domain)
                .intersect(hull);
            let mut remaining = vec![read];
            for &wr in &written[f.index()] {
                remaining = subtract_all(remaining, wr);
                if remaining.is_empty() {
                    break;
                }
            }
            gaps.extend(remaining.into_iter().map(|g| (*f, g)));
        }
        // Merge writes only after the epoch's reads: a same-epoch
        // write→read pair has no fence between them, so it cannot
        // provide coverage (matching the analyzer).
        if !ep.is_final {
            for &o in &st.outputs {
                written[o.index()].push(ep.region);
            }
        }
    }
    gaps
}

/// The per-fused-step targets for one island: index `k-1` is the
/// island's own `part`; each earlier step's target is the hull of the
/// advected-field reads the next step's target requires (clipped to
/// `domain`), i.e. one cumulative stencil halo wider per fused step.
/// Monotone: `targets[s] ⊇ targets[s+1]`.
pub(crate) fn fused_step_targets(
    graph: &StageGraph,
    x: FieldId,
    part: Region3,
    domain: Region3,
    fuse_steps: usize,
) -> Vec<Region3> {
    let k = fuse_steps.max(1);
    let mut targets = vec![part; k];
    for ts in (0..k.saturating_sub(1)).rev() {
        targets[ts] = graph
            .external_read_regions(targets[ts + 1], domain)
            .get(&x)
            .copied()
            .unwrap_or_else(Region3::empty);
    }
    targets
}

/// Builds one tile's chain table: per-stage compute regions from the
/// backward requirement analysis, the scratch footprints the rank store
/// is rebased to, and the chain-coverage obligations.
fn plan_tile(
    graph: &StageGraph,
    xout: FieldId,
    tile: Region3,
    part: Region3,
    domain: Region3,
    base_regions: &[Region3],
) -> TileTask {
    let regs = graph.required_regions(tile, domain);
    // Scratch footprint per field = the producing stage's region, which
    // (by the backward requirement invariant) contains every later read
    // of the field clipped to the domain.
    let mut scratch: Vec<Region3> = vec![Region3::empty(); graph.fields().len()];
    let mut field_regions = Vec::new();
    let mut stage_extra = vec![0u64; regs.len()];
    for st in graph.stages() {
        let r = regs[st.id.index()];
        let owned = r
            .intersect(tile)
            .intersect(part)
            .intersect(base_regions[st.id.index()]);
        stage_extra[st.id.index()] = (r.cells() - owned.cells()) as u64;
        if r.is_empty() {
            continue;
        }
        for &o in &st.outputs {
            if o != xout {
                scratch[o.index()] = r;
                field_regions.push((o, r));
            }
        }
    }
    // Chain coverage: the chain is serial on one rank, so each stage's
    // writes are visible to every later stage — merge after *each*
    // stage (unlike the epoch analysis, which merges only across
    // barrier fences). Rebased scratch holds stale cells of the
    // previous tile, not zeros, so any read the chain's own writes do
    // not cover must be zeroed first. Empty for the real MPDATA graphs:
    // the requirement regions cover every read by construction.
    let mut written: Vec<Vec<Region3>> = vec![Vec::new(); graph.fields().len()];
    let mut must_zero = Vec::new();
    for st in graph.stages() {
        let r = regs[st.id.index()];
        if r.is_empty() {
            continue;
        }
        for (f, pat) in &st.inputs {
            if graph.fields().role(*f) != FieldRole::Intermediate {
                continue;
            }
            let read = r.expand(pat.halo()).intersect(domain);
            debug_assert!(
                scratch[f.index()].contains_region(read),
                "tile chain read escapes the rebased scratch footprint"
            );
            let mut remaining = vec![read.intersect(scratch[f.index()])];
            for &wr in &written[f.index()] {
                remaining = subtract_all(remaining, wr);
                if remaining.is_empty() {
                    break;
                }
            }
            must_zero.extend(remaining.into_iter().map(|g| (*f, g)));
        }
        for &o in &st.outputs {
            if o != xout {
                written[o.index()].push(r);
            }
        }
    }
    TileTask {
        tile,
        stage_regions: regs,
        field_regions,
        must_zero,
        stage_extra,
    }
}

impl StepPlan {
    /// Builds the plan for `key`: partition, per-island and
    /// per-fused-step blocking, epoch tables with precomputed rank
    /// slices, persistent stores, and the refill/coverage facts. This
    /// is the only allocating phase.
    ///
    /// # Errors
    ///
    /// Returns [`PlanBlocksError`] when an island's block does not fit
    /// the cache budget.
    fn build(
        problem: &MpdataProblem,
        spec: &TeamSpec,
        key: PlanKey,
    ) -> Result<Self, PlanBlocksError> {
        let domain = key.domain;
        let k = key.fuse_steps.max(1);
        let parts = key.partition.parts(domain, spec.team_count());
        let graph = problem.graph();
        let xout = problem.xout();
        let x = problem.ext().x;
        let final_stage = graph
            .stages()
            .iter()
            .position(|st| st.outputs == [xout])
            .expect("the graph ends in the advected-output stage");
        let stage_kinds: Vec<StageKind> = graph
            .stages()
            .iter()
            .map(|st| problem.kind(st.id))
            .collect();
        // Tile extents for tiled plans (`Fixed` is clamped to ≥ 1, so a
        // degenerate request still partitions the target).
        let tile_extents = match key.tile {
            TileMode::Off => None,
            TileMode::Auto => Some(choose_tile(graph, domain, key.cache_bytes)),
            TileMode::Fixed { ti, tj } => Some((ti.max(1), tj.max(1))),
        };
        // Per-stage regions a zero-overlap schedule would compute —
        // the baseline against which each epoch's redundant halo
        // recomputation is measured (indexed by `StageId::index`).
        // Fused steps before the last one are measured against the
        // same baseline: everything beyond `part ∩ region_s(domain)`
        // is recomputation some island performs anyway.
        let base_regions = graph.required_regions(domain, domain);
        let mut teams = Vec::with_capacity(parts.len());
        let mut stores = Vec::with_capacity(parts.len());
        let mut tile_stores = Vec::with_capacity(parts.len());
        let mut out_gaps = vec![domain];
        for (t, &part) in parts.iter().enumerate() {
            let size = spec.members(t).len();
            let mut store = ParStore::new(graph.fields().len(), problem.ext());
            let mut rank_stores = Vec::new();
            let mut epochs = Vec::new();
            let mut step_bounds = vec![(0usize, 0usize); k];
            let mut xslots = None;
            let mut queues = Vec::new();
            let mut must_zero = Vec::new();
            let mut tiles: Vec<Vec<TileTask>> = Vec::new();
            let mut tile_queues = Vec::new();
            if !part.is_empty() {
                let step_parts = fused_step_targets(graph, x, part, domain, k);
                if let Some((ti, tj)) = tile_extents {
                    // Tiled: cut each fused-step target into the
                    // balanced (i, j) tile grid and table the whole
                    // chain per tile; no wavefront blocking and no
                    // shared scratch.
                    for (ts, &sp) in step_parts.iter().enumerate() {
                        let mut tasks = Vec::new();
                        for tile in tile_grid(sp, (ti, tj)) {
                            let task = plan_tile(graph, xout, tile, part, domain, &base_regions);
                            // Only the last fused step writes the
                            // shared output buffer. The final-stage
                            // requirement region of a tile is the
                            // tile itself, which is what makes
                            // concurrent output writes disjoint.
                            if ts + 1 == k {
                                let written =
                                    task.stage_regions[graph.stages()[final_stage].id.index()];
                                debug_assert_eq!(written, task.tile);
                                out_gaps = subtract_all(out_gaps, written);
                            }
                            tasks.push(task);
                        }
                        if let SchedulePolicy::Dynamic { .. } = key.schedule {
                            tile_queues.push(ChunkQueue::new(tasks.len()));
                        }
                        tiles.push(tasks);
                    }
                    // Every rank owns a private store sized for the
                    // fattest tile of any fused step; the replay
                    // rebases it tile by tile, so the steady state
                    // allocates nothing.
                    let mut widest: Vec<Option<(FieldId, Region3)>> =
                        vec![None; graph.fields().len()];
                    for task in tiles.iter().flatten() {
                        for &(f, r) in &task.field_regions {
                            let slot = &mut widest[f.index()];
                            if slot.is_none_or(|(_, w)| w.cells() < r.cells()) {
                                *slot = Some((f, r));
                            }
                        }
                    }
                    for _ in 0..size {
                        let mut rs = ParStore::new(graph.fields().len(), problem.ext());
                        for &(f, r) in widest.iter().flatten() {
                            rs.alloc(f, r);
                        }
                        rank_stores.push(rs);
                    }
                } else {
                    // One wavefront blocking per fused step; the scratch
                    // store spans the union of their hulls (steps reuse the
                    // same scratch, refilled before each fused step).
                    let mut blockings = Vec::with_capacity(k);
                    let mut hull = Region3::empty();
                    for &sp in &step_parts {
                        let blocking =
                            BlockPlanner::new(key.cache_bytes).plan_wavefront(graph, sp, domain)?;
                        hull = hull.hull(blocking.hull());
                        blockings.push(blocking);
                    }
                    if !hull.is_empty() {
                        for st in graph.stages() {
                            for &o in &st.outputs {
                                if o != xout {
                                    store.alloc(o, hull);
                                }
                            }
                        }
                    }
                    let n_units = key.schedule.units_for(size);
                    for (ts, blocking) in blockings.iter().enumerate() {
                        let start = epochs.len();
                        for (b, block) in blocking.blocks.iter().enumerate() {
                            for (s, st) in graph.stages().iter().enumerate() {
                                let region = block.stage_regions[st.id.index()];
                                let is_final = st.outputs == [xout];
                                // Only the last fused step writes the
                                // shared output buffer.
                                if is_final && ts + 1 == k {
                                    out_gaps = subtract_all(out_gaps, region);
                                }
                                let units: Vec<Region3> = (0..n_units)
                                    .map(|u| rank_slice(region, key.split_axis, u, n_units))
                                    .collect();
                                let needed = part.intersect(base_regions[st.id.index()]);
                                let units_extra = units
                                    .iter()
                                    .map(|&mine| {
                                        (mine.cells() - mine.intersect(needed).cells()) as u64
                                    })
                                    .collect();
                                epochs.push(EpochPlan {
                                    stage: s,
                                    kind: problem.kind(st.id),
                                    is_final,
                                    step: ts.min(usize::from(u16::MAX)) as u16,
                                    block: b.min(usize::from(u16::MAX)) as u16,
                                    region,
                                    units,
                                    units_extra,
                                });
                            }
                        }
                        step_bounds[ts] = (start, epochs.len());
                    }
                    // The refill reruns before *every* fused step, so the
                    // coverage analysis is per fused step (each step must
                    // cover its own scratch reads — stale values from the
                    // previous fused step are zeroed first, exactly like a
                    // fresh store).
                    for &(lo, hi) in &step_bounds {
                        must_zero.extend(uncovered_reads(graph, &epochs[lo..hi], hull, domain));
                    }
                    if let SchedulePolicy::Dynamic { .. } = key.schedule {
                        queues = epochs
                            .iter()
                            .map(|ep| ChunkQueue::new(ep.units.len()))
                            .collect();
                    }
                }
                if k > 1 {
                    // Ping-pong x buffers between fused steps, sized to
                    // the widest (first) step: every later step writes
                    // and reads inside it.
                    xslots = Some([
                        DisjointCell::new(Array3::zeros(step_parts[0])),
                        DisjointCell::new(Array3::zeros(step_parts[0])),
                    ]);
                }
            }
            teams.push(TeamPlan {
                epochs,
                step_bounds,
                queues,
                must_zero,
                xslots,
                tiles,
                tile_queues,
            });
            stores.push(store);
            tile_stores.push(rank_stores);
        }
        Ok(StepPlan {
            key,
            teams,
            stores,
            tile_stores,
            stage_kinds,
            final_stage,
            out_gaps,
            cur: DisjointCell::new(Array3::zeros(domain)),
            out: DisjointCell::new(Array3::zeros(domain)),
        })
    }

    /// The buffer fused step `ts`'s final stage writes: the shared
    /// output for the last fused step, the step's team-private x slot
    /// otherwise.
    fn final_dest_for<'a>(&'a self, team: &'a TeamPlan, ts: usize) -> &'a DisjointCell<Array3> {
        if ts + 1 == self.key.fuse_steps.max(1) {
            &self.out
        } else {
            &team.xslots.as_ref().expect("fused plans allocate x slots")[ts % 2]
        }
    }

    /// The buffer an epoch's final stage writes.
    fn final_dest<'a>(&'a self, team: &'a TeamPlan, ep: &EpochPlan) -> &'a DisjointCell<Array3> {
        self.final_dest_for(team, usize::from(ep.step))
    }

    /// Replays one fused epoch of `epoch_len ∈ 1..=k` time steps for
    /// the calling worker's team — the *last* `epoch_len` fused-step
    /// sections of the table, so a tail epoch keeps each section's halo
    /// enlargement exact. Per fused step: scratch refill (rank 0, only
    /// when the coverage analysis demands it), then every `(block,
    /// stage)` epoch fenced by the team barrier; the team barrier
    /// ending one fused step fences its x-slot writes from the next
    /// step's reads. `base_step` numbers the trace spans, so per-step
    /// attribution survives fusion. Allocation-free in release builds —
    /// including with tracing compiled in but disabled, where every
    /// instrumentation site below reduces to one relaxed load and a
    /// branch.
    #[allow(clippy::too_many_arguments)]
    fn replay(
        &self,
        ctx: &TeamCtx,
        ext: ExtFields<'_>,
        domain: Region3,
        bc: Boundary,
        graph: &StageGraph,
        base_step: u32,
        epoch_len: usize,
    ) {
        islands_trace::set_island_rank(ctx.team as u32, ctx.rank as u32);
        if self.key.tile != TileMode::Off {
            return self.replay_tiled(ctx, ext, domain, bc, graph, base_step, epoch_len);
        }
        let k = self.key.fuse_steps.max(1);
        debug_assert!((1..=k).contains(&epoch_len));
        let first_ts = k - epoch_len;
        let team = &self.teams[ctx.team];
        let store = &self.stores[ctx.team];
        for ts in first_ts..k {
            islands_trace::set_step(base_step + (ts - first_ts) as u32);
            if !team.must_zero.is_empty() {
                if ctx.rank == 0 {
                    let t0 = islands_trace::now();
                    for &(f, r) in &team.must_zero {
                        store.zero_region(f, r);
                    }
                    if let Some(t0) = t0 {
                        islands_trace::record(
                            islands_trace::SpanKind::Refill,
                            t0,
                            islands_trace::now_ns(),
                            0,
                            0,
                            [0; 3],
                        );
                    }
                }
                // Publish the refill to the other ranks.
                ctx.team_barrier();
            }
            // The advected input of this fused step: the shared buffer
            // for the epoch's first step, afterwards the team-private
            // slot the previous fused step just produced.
            let mut _slot_read = None;
            let step_ext = if ts == first_ts {
                ext
            } else {
                let slots = team.xslots.as_ref().expect("fused plans allocate x slots");
                let slot = &slots[(ts - 1) % 2];
                _slot_read = Some(slot.track_read());
                ExtFields {
                    // SAFETY: the team barrier ending fused step ts-1
                    // fences its slot writes; within this step the slot
                    // is only read (this step writes the *other* slot
                    // or the shared output).
                    x: unsafe { slot.get_ref() },
                    ..ext
                }
            };
            let (lo, hi) = team.step_bounds.get(ts).copied().unwrap_or((0, 0));
            match self.key.schedule {
                SchedulePolicy::Static => {
                    for ep in &team.epochs[lo..hi] {
                        let st = &graph.stages()[ep.stage];
                        let dest = self.final_dest(team, ep);
                        // Static: unit index = rank, exactly one per epoch.
                        self.run_unit(ep, st, store, ctx.rank, step_ext, domain, bc, dest);
                        // Intra-island synchronization only — this is the
                        // whole point of the approach.
                        ctx.team_barrier();
                    }
                }
                SchedulePolicy::Dynamic { .. } => {
                    for (ep, q) in team.epochs[lo..hi].iter().zip(&team.queues[lo..hi]) {
                        let st = &graph.stages()[ep.stage];
                        let dest = self.final_dest(team, ep);
                        // Self-schedule: claim precomputed chunks until the
                        // epoch drains. Any claim order is race-free — the
                        // chunks are pairwise disjoint and the epoch still
                        // ends at the same team barrier.
                        while let Some(u) = q.claim() {
                            self.run_unit(ep, st, store, u, step_ext, domain, bc, dest);
                        }
                        ctx.team_barrier();
                    }
                }
            }
        }
    }

    /// Tiled replay of one fused epoch: each tile of each fused-step
    /// target runs its *whole* stage chain back-to-back on the calling
    /// rank's private scratch, so intermediates stay cache-resident and
    /// the per-stage team barriers collapse to one per fused step (the
    /// barrier fences step `ts`'s x-slot and output-tile writes from
    /// step `ts+1`'s reads; the dispatch join or global barrier fences
    /// the last step). Static schedules stride tiles round-robin by
    /// rank; dynamic schedules claim tiles from the step's
    /// [`ChunkQueue`]. Allocation-free in release builds: the only
    /// per-tile bookkeeping is rebasing the rank store's arrays.
    #[allow(clippy::too_many_arguments)]
    fn replay_tiled(
        &self,
        ctx: &TeamCtx,
        ext: ExtFields<'_>,
        domain: Region3,
        bc: Boundary,
        graph: &StageGraph,
        base_step: u32,
        epoch_len: usize,
    ) {
        let k = self.key.fuse_steps.max(1);
        debug_assert!((1..=k).contains(&epoch_len));
        let first_ts = k - epoch_len;
        let team = &self.teams[ctx.team];
        // Empty islands allocate no rank stores (and no tiles).
        let rank_stores = &self.tile_stores[ctx.team];
        for ts in first_ts..k {
            islands_trace::set_step(base_step + (ts - first_ts) as u32);
            // The advected input of this fused step: the shared buffer
            // for the epoch's first step, afterwards the team-private
            // slot the previous fused step just produced.
            let mut _slot_read = None;
            let step_ext = if ts == first_ts {
                ext
            } else {
                let slots = team.xslots.as_ref().expect("fused plans allocate x slots");
                let slot = &slots[(ts - 1) % 2];
                _slot_read = Some(slot.track_read());
                ExtFields {
                    // SAFETY: the team barrier ending fused step ts-1
                    // fences its slot writes; within this step the slot
                    // is only read (this step writes the *other* slot
                    // or the shared output).
                    x: unsafe { slot.get_ref() },
                    ..ext
                }
            };
            let tasks = team.tiles.get(ts).map_or(&[][..], |v| v.as_slice());
            if !tasks.is_empty() {
                let store = &rank_stores[ctx.rank];
                let dest = self.final_dest_for(team, ts);
                match self.key.schedule {
                    SchedulePolicy::Static => {
                        let mut n = ctx.rank;
                        while n < tasks.len() {
                            self.run_tile(&tasks[n], n, store, graph, step_ext, domain, bc, dest);
                            n += ctx.size;
                        }
                    }
                    SchedulePolicy::Dynamic { .. } => {
                        // Self-schedule whole tiles: any claim order is
                        // race-free — tiles own disjoint output regions
                        // and all scratch is rank-private.
                        let q = &team.tile_queues[ts];
                        while let Some(n) = q.claim() {
                            self.run_tile(&tasks[n], n, store, graph, step_ext, domain, bc, dest);
                        }
                    }
                }
            }
            // One team barrier per fused step (the whole synchronization
            // saving of tile fusion); the last step is fenced by the
            // caller's join or global barrier instead.
            if ts + 1 < k {
                ctx.team_barrier();
            }
        }
    }

    /// Runs one tile's whole stage chain on `store` (the calling rank's
    /// private scratch): rebase every scratch field to the tile
    /// footprint, zero the (normally empty) uncovered reads, then apply
    /// each stage over its requirement region — the final stage straight
    /// into `dest`, everything else into the rebased scratch.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn run_tile(
        &self,
        task: &TileTask,
        n: usize,
        store: &ParStore,
        graph: &StageGraph,
        ext: ExtFields<'_>,
        domain: Region3,
        bc: Boundary,
        dest: &DisjointCell<Array3>,
    ) {
        for &(f, r) in &task.field_regions {
            store.rebase(f, r);
        }
        for &(f, r) in &task.must_zero {
            store.zero_region(f, r);
        }
        for (s, st) in graph.stages().iter().enumerate() {
            let mine = task.stage_regions[st.id.index()];
            if mine.is_empty() {
                continue;
            }
            let t0 = islands_trace::now();
            if s == self.final_stage {
                let _wt = dest.track_write();
                // SAFETY: tiles partition the fused-step target, so
                // concurrent final-stage writes (this tile region) are
                // pairwise disjoint; earlier steps' x slots are
                // team-private.
                let out_arr = unsafe { dest.get_mut() };
                store.apply_into(st, self.stage_kinds[s], domain, bc, mine, out_arr, ext);
            } else {
                store.apply(st, self.stage_kinds[s], domain, bc, mine, ext);
            }
            if let Some(t0) = t0 {
                islands_trace::record(
                    islands_trace::SpanKind::Kernel,
                    t0,
                    islands_trace::now_ns(),
                    s.min(usize::from(u16::MAX)) as u16,
                    n.min(usize::from(u16::MAX)) as u16,
                    [mine.cells() as u64, task.stage_extra[st.id.index()], 0],
                );
            }
        }
    }

    /// Executes one work unit of one epoch: the kernel over the unit's
    /// slice, routed to the scratch store or (for final stages) `dest`
    /// — the step's x output buffer — with the kernel trace span
    /// attached.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn run_unit(
        &self,
        ep: &EpochPlan,
        st: &StageDef,
        store: &ParStore,
        unit: usize,
        ext: ExtFields<'_>,
        domain: Region3,
        bc: Boundary,
        dest: &DisjointCell<Array3>,
    ) {
        let mine = ep.units[unit];
        let t0 = if mine.is_empty() {
            None
        } else {
            islands_trace::now()
        };
        if ep.is_final {
            // Final stage: write straight into the step's x output.
            // Blocks of different islands are disjoint on the shared
            // output, units split disjointly, and x slots are
            // team-private.
            if !mine.is_empty() {
                let _wt = dest.track_write();
                // SAFETY: all concurrent writers cover mutually
                // disjoint regions.
                let out_arr = unsafe { dest.get_mut() };
                store.apply_into(st, ep.kind, domain, bc, mine, out_arr, ext);
            }
        } else {
            store.apply(st, ep.kind, domain, bc, mine, ext);
        }
        if let Some(t0) = t0 {
            islands_trace::record(
                islands_trace::SpanKind::Kernel,
                t0,
                islands_trace::now_ns(),
                ep.stage.min(usize::from(u16::MAX)) as u16,
                ep.block,
                [mine.cells() as u64, ep.units_extra[unit], 0],
            );
        }
    }

    /// Rewinds every dynamic epoch queue to full (one relaxed store
    /// per epoch; no-op for static plans). Callers must hold exclusive
    /// access or be in a barrier-fenced serial section.
    fn reset_queues(&self) {
        for team in &self.teams {
            for q in &team.queues {
                q.reset();
            }
            for q in &team.tile_queues {
                q.reset();
            }
        }
    }
}

/// Returns the cached plan when `(domain, partition, cache_bytes,
/// split_axis, schedule, fuse_steps)` still match its key, else
/// rebuilds it (dropping the stale plan first). A planning failure
/// leaves the slot empty.
#[allow(clippy::too_many_arguments)]
fn ensure_plan<'s>(
    slot: &'s mut Option<StepPlan>,
    problem: &MpdataProblem,
    spec: &TeamSpec,
    domain: Region3,
    partition: &PartitionKind,
    cache_bytes: usize,
    split_axis: Axis,
    schedule: SchedulePolicy,
    fuse_steps: usize,
    tile: TileMode,
) -> Result<&'s mut StepPlan, PlanBlocksError> {
    let hit = slot.as_ref().is_some_and(|p| {
        p.key.matches(
            domain,
            partition,
            cache_bytes,
            split_axis,
            schedule,
            fuse_steps,
            tile,
        )
    });
    if !hit {
        *slot = None;
        let key = PlanKey {
            domain,
            partition: partition.clone(),
            cache_bytes,
            split_axis,
            schedule,
            fuse_steps: fuse_steps.max(1),
            tile,
        };
        *slot = Some(StepPlan::build(problem, spec, key)?);
    }
    Ok(slot.as_mut().expect("just ensured"))
}

/// Zeroes `region` of `arr` in place.
fn zero_region_of(arr: &mut Array3, region: Region3) {
    for i in region.i.lo..region.i.hi {
        for j in region.j.lo..region.j.hi {
            for v in arr.row_mut(i, j, region.k) {
                *v = 0.0;
            }
        }
    }
}

/// One time step through the plan cache: ensure the plan, lend it a
/// fresh zeroed output buffer, replay, and hand the buffer back. The
/// persistent `out` buffer (and its gap invariant) is untouched, so
/// `step` and `run` calls interleave freely. On a fused plan this
/// replays the one-section tail (the unenlarged last fused step), so a
/// single `step` stays bit-identical for every fuse depth.
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_step(
    pool: &WorkerPool,
    spec: &TeamSpec,
    problem: &MpdataProblem,
    slot: &mut Option<StepPlan>,
    partition: &PartitionKind,
    cache_bytes: usize,
    split_axis: Axis,
    schedule: SchedulePolicy,
    fuse_steps: usize,
    tile: TileMode,
    fields: &crate::fields::MpdataFields,
) -> Result<Array3, PlanBlocksError> {
    let domain = fields.domain();
    let plan = ensure_plan(
        slot,
        problem,
        spec,
        domain,
        partition,
        cache_bytes,
        split_axis,
        schedule,
        fuse_steps,
        tile,
    )?;
    // Rewind the self-scheduling queues before the dispatch sees them.
    plan.reset_queues();
    let mut result = Array3::zeros(domain);
    std::mem::swap(plan.out.get_mut_exclusive(), &mut result);
    let ext = ExtFields::new(fields);
    let graph = problem.graph();
    let bc = problem.boundary();
    let plan: &StepPlan = plan;
    pool.run_teams(spec, |ctx| plan.replay(&ctx, ext, domain, bc, graph, 0, 1));
    // `result` currently holds the plan's persistent buffer; swap the
    // freshly written output out and the persistent buffer back in.
    let plan = slot.as_mut().expect("ensured above");
    std::mem::swap(plan.out.get_mut_exclusive(), &mut result);
    Ok(result)
}

/// Advances `fields.x` by `steps` steps inside a *single* `run_teams`
/// dispatch: each fused epoch (k steps; the final epoch may be
/// shorter) is one replay, one global barrier, one leader-side
/// `cur`/`out` pointer swap, and one more global barrier — the paper's
/// once-per-step global synchronization, now paid once per k steps,
/// with zero heap allocations from the second step on (and none at all
/// on a plan-cache hit, beyond the pool dispatch itself).
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_run(
    pool: &WorkerPool,
    spec: &TeamSpec,
    problem: &MpdataProblem,
    slot: &mut Option<StepPlan>,
    partition: &PartitionKind,
    cache_bytes: usize,
    split_axis: Axis,
    schedule: SchedulePolicy,
    fuse_steps: usize,
    tile: TileMode,
    fields: &mut crate::fields::MpdataFields,
    steps: usize,
) -> Result<(), PlanBlocksError> {
    if steps == 0 {
        return Ok(());
    }
    let domain = fields.domain();
    let plan = ensure_plan(
        slot,
        problem,
        spec,
        domain,
        partition,
        cache_bytes,
        split_axis,
        schedule,
        fuse_steps,
        tile,
    )?;
    plan.reset_queues();
    // Lend `fields.x` to the plan's current-input slot; the plan's old
    // buffer parks in `fields.x` until the swap back below.
    std::mem::swap(&mut fields.x, plan.cur.get_mut_exclusive());
    let (u1, u2, u3, h) = (&fields.u1, &fields.u2, &fields.u3, &fields.h);
    let graph = problem.graph();
    let bc = problem.boundary();
    let k = fuse_steps.max(1);
    let plan: &StepPlan = plan;
    pool.run_teams(spec, |ctx| {
        let mut done = 0usize;
        while done < steps {
            // Every worker computes the same epoch lengths, so the
            // global-barrier counts agree without coordination.
            let epoch_len = k.min(steps - done);
            {
                let _xr = plan.cur.track_read();
                let ext = ExtFields {
                    // SAFETY: between the surrounding global barriers
                    // `cur` is only read; the leader's swap below is
                    // fenced off by both barriers.
                    x: unsafe { plan.cur.get_ref() },
                    u1,
                    u2,
                    u3,
                    h,
                };
                plan.replay(&ctx, ext, domain, bc, graph, done as u32, epoch_len);
            }
            // All teams done writing `out` / reading `cur`.
            if ctx.global_barrier() {
                let t0 = islands_trace::now();
                let _wc = plan.cur.track_write();
                let _wo = plan.out.track_write();
                // SAFETY: every other worker is parked between the two
                // global barriers; the serial worker has exclusive
                // access to both buffers.
                unsafe { std::mem::swap(plan.cur.get_mut(), plan.out.get_mut()) };
                // The next epoch's output buffer is the old input: its
                // gap cells (never written by final stages) carry stale
                // values and must read as zero, like a fresh buffer.
                let out_arr = unsafe { plan.out.get_mut() };
                for &g in &plan.out_gaps {
                    zero_region_of(out_arr, g);
                }
                // Refill the self-scheduling queues for the next epoch
                // while every other worker is parked between the two
                // global barriers (the release of the second barrier
                // publishes the relaxed stores).
                plan.reset_queues();
                if let Some(t0) = t0 {
                    islands_trace::record(
                        islands_trace::SpanKind::Swap,
                        t0,
                        islands_trace::now_ns(),
                        0,
                        0,
                        [0; 3],
                    );
                }
            }
            // Publish the swap before the next epoch reads `cur`.
            ctx.global_barrier();
            done += epoch_len;
        }
    });
    let plan = slot.as_mut().expect("ensured above");
    std::mem::swap(&mut fields.x, plan.cur.get_mut_exclusive());
    Ok(())
}
