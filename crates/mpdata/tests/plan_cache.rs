//! Plan-cache invalidation: a cached execution plan must be rebuilt —
//! not reused stale, not panic — whenever any input it was keyed on
//! changes between `step`/`run` calls.

use mpdata::{gaussian_pulse, FusedExecutor, IslandsExecutor, ReferenceExecutor};
use stencil_engine::{Axis, Region3};
use work_scheduler::{TeamSpec, WorkerPool};

/// One reference step for `domain`, pulled fresh each time.
fn reference(domain: Region3, v: (f64, f64, f64)) -> stencil_engine::Array3 {
    ReferenceExecutor::new().step(&gaussian_pulse(domain, v))
}

#[test]
fn domain_change_replans() {
    let pool = WorkerPool::new(4);
    let exec = IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I).cache_bytes(64 * 1024);
    let v = (0.2, 0.1, 0.0);
    // Three different extents through one executor: each must match the
    // reference for its own domain (a stale plan would index out of
    // bounds or write the wrong regions).
    for domain in [
        Region3::of_extent(20, 10, 4),
        Region3::of_extent(10, 20, 4),
        Region3::of_extent(20, 10, 4), // back to the first shape
    ] {
        let f = gaussian_pulse(domain, v);
        let got = exec.step(&f).unwrap();
        assert_eq!(
            got.max_abs_diff(&reference(domain, v)),
            0.0,
            "stale plan for {domain:?}"
        );
    }
}

#[test]
fn cache_budget_change_replans() {
    let pool = WorkerPool::new(4);
    let domain = Region3::of_extent(24, 10, 4);
    let v = (0.25, 0.0, 0.0);
    let f = gaussian_pulse(domain, v);
    let expect = reference(domain, v);
    let exec = IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I).cache_bytes(48 * 1024);
    assert_eq!(exec.step(&f).unwrap().max_abs_diff(&expect), 0.0);
    // The builder moves the executor — and its populated cache — with a
    // different budget; the next step must replan (different blocking),
    // still bit-identical.
    let exec = exec.cache_bytes(192 * 1024);
    assert_eq!(exec.step(&f).unwrap().max_abs_diff(&expect), 0.0);
}

#[test]
fn split_axis_change_replans() {
    let pool = WorkerPool::new(4);
    let domain = Region3::of_extent(16, 12, 6);
    let v = (0.1, 0.2, 0.0);
    let f = gaussian_pulse(domain, v);
    let expect = reference(domain, v);
    let exec = IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I).cache_bytes(64 * 1024);
    assert_eq!(exec.step(&f).unwrap().max_abs_diff(&expect), 0.0);
    let exec = exec.split_axis(Axis::K);
    assert_eq!(exec.step(&f).unwrap().max_abs_diff(&expect), 0.0);
}

#[test]
fn partition_change_replans() {
    let pool = WorkerPool::new(4);
    let domain = Region3::of_extent(16, 16, 4);
    let v = (0.2, 0.2, 0.0);
    let f = gaussian_pulse(domain, v);
    let expect = reference(domain, v);
    let exec = IslandsExecutor::new(&pool, TeamSpec::even(4, 4), Axis::I).cache_bytes(64 * 1024);
    assert_eq!(exec.step(&f).unwrap().max_abs_diff(&expect), 0.0);
    // Swap the 1-D axis split for an explicit 2×2 grid on the same
    // executor: the cached 4-slab plan must not be replayed.
    let mut parts = Vec::new();
    for half_i in domain.split(Axis::I, 2) {
        parts.extend(half_i.split(Axis::J, 2));
    }
    let exec = exec.with_partition(parts);
    assert_eq!(exec.step(&f).unwrap().max_abs_diff(&expect), 0.0);
}

#[test]
fn schedule_policy_change_replans() {
    // Toggling static ↔ self-scheduled on one executor must rebuild
    // the plan (the epoch tables change from one slice per rank to
    // chunked units); both must stay bit-identical to the reference.
    let pool = WorkerPool::new(4);
    let domain = Region3::of_extent(20, 12, 4);
    let v = (0.2, 0.1, 0.0);
    let f = gaussian_pulse(domain, v);
    let expect = reference(domain, v);
    let exec = IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I).cache_bytes(64 * 1024);
    assert_eq!(exec.step(&f).unwrap().max_abs_diff(&expect), 0.0);
    let exec = exec.self_schedule(4);
    assert_eq!(exec.step(&f).unwrap().max_abs_diff(&expect), 0.0);
    let exec = exec.schedule(mpdata::SchedulePolicy::Static);
    assert_eq!(exec.step(&f).unwrap().max_abs_diff(&expect), 0.0);
}

#[test]
fn fuse_depth_change_replans() {
    // Changing the temporal-blocking depth rekeys the plan: the epoch
    // tables gain per-step sections with enlarged rank slices and
    // x-slot scratch, so replaying a k=1 table at k=3 (or vice versa)
    // would compute garbage. Every depth must stay bit-identical to
    // the reference, including back at k=1 on the same executor.
    let pool = WorkerPool::new(4);
    let domain = Region3::of_extent(20, 12, 4);
    let v = (0.2, 0.1, 0.0);
    let mut expect = gaussian_pulse(domain, v);
    ReferenceExecutor::new().run(&mut expect, 6);
    let mut exec =
        IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I).cache_bytes(64 * 1024);
    for k in [1_usize, 3, 1] {
        exec = exec.fuse_steps(k);
        let mut f = gaussian_pulse(domain, v);
        exec.run(&mut f, 6).unwrap();
        assert_eq!(
            f.x.max_abs_diff(&expect.x),
            0.0,
            "stale plan at fuse depth {k}"
        );
    }
}

#[test]
fn empty_island_plan_is_not_reused_for_wider_domain() {
    // P > nx: on the narrow domain most islands own no slab (empty
    // parts, no scratch, no epochs). Widening the domain must rebuild
    // the plan so those islands get real work again.
    let pool = WorkerPool::new(8);
    let exec = IslandsExecutor::new(&pool, TeamSpec::even(8, 8), Axis::I).cache_bytes(64 * 1024);
    let v = (0.2, 0.1, 0.0);
    let narrow = Region3::of_extent(5, 6, 4);
    let wide = Region3::of_extent(24, 6, 4);
    for domain in [narrow, wide, narrow] {
        let f = gaussian_pulse(domain, v);
        let got = exec.step(&f).unwrap();
        assert_eq!(
            got.max_abs_diff(&reference(domain, v)),
            0.0,
            "stale plan for {domain:?}"
        );
    }
}

#[test]
fn step_and_run_interleave_on_one_cache() {
    // `step` borrows the plan's output buffer and hands it back; `run`
    // ping-pongs the same plan's cur/out pair. Interleaving them must
    // keep both paths bit-identical to the reference.
    let pool = WorkerPool::new(4);
    let domain = Region3::of_extent(20, 10, 4);
    let exec = IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I).cache_bytes(48 * 1024);
    let mut f1 = gaussian_pulse(domain, (0.25, 0.0, 0.0));
    let mut f2 = f1.clone();
    let r = ReferenceExecutor::new();

    let one = exec.step(&f1).unwrap();
    assert_eq!(one.max_abs_diff(&r.step(&f1)), 0.0);

    exec.run(&mut f1, 2).unwrap();
    r.run(&mut f2, 2);
    assert_eq!(f1.x.max_abs_diff(&f2.x), 0.0);

    let again = exec.step(&f1).unwrap();
    assert_eq!(again.max_abs_diff(&r.step(&f2)), 0.0);

    exec.run(&mut f1, 3).unwrap();
    r.run(&mut f2, 3);
    assert_eq!(f1.x.max_abs_diff(&f2.x), 0.0);
}

#[test]
fn fused_cache_invalidation_matches_reference() {
    let pool = WorkerPool::new(3);
    let v = (0.15, 0.1, 0.0);
    let exec = FusedExecutor::new(&pool).cache_bytes(64 * 1024);
    for domain in [Region3::of_extent(20, 8, 4), Region3::of_extent(8, 20, 4)] {
        let f = gaussian_pulse(domain, v);
        assert_eq!(
            exec.step(&f).unwrap().max_abs_diff(&reference(domain, v)),
            0.0,
            "stale fused plan for {domain:?}"
        );
    }
    let exec = exec.cache_bytes(256 * 1024);
    let domain = Region3::of_extent(20, 8, 4);
    let f = gaussian_pulse(domain, v);
    assert_eq!(
        exec.step(&f).unwrap().max_abs_diff(&reference(domain, v)),
        0.0
    );
    // Multi-step through the fused plan cache.
    let mut f1 = gaussian_pulse(domain, v);
    let mut f2 = f1.clone();
    exec.run(&mut f1, 3).unwrap();
    ReferenceExecutor::new().run(&mut f2, 3);
    assert_eq!(f1.x.max_abs_diff(&f2.x), 0.0);
}
