//! Zero-allocation steady state: after the first step has built the
//! execution plan, every further step of [`IslandsExecutor::run`] must
//! replay it without touching the heap.
//!
//! The pin works by installing a counting [`GlobalAlloc`] wrapper for
//! this test binary and comparing the allocation counts of a warmed
//! `run(1)` against a warmed `run(STEPS)`: both perform exactly one
//! pool dispatch, so any difference is per-step allocation. The strict
//! comparison only runs in release builds — debug builds intentionally
//! allocate access-tracker claim labels on every stage apply.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use mpdata::{gaussian_pulse, IslandsExecutor, TileMode};
use stencil_engine::{Axis, Region3};
use work_scheduler::{TeamSpec, WorkerPool};

/// Counts every allocating entry point; `dealloc` is free so the count
/// is monotone and race-free to sample.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> usize {
    ALLOCS.load(Ordering::SeqCst)
}

// Single test function: the libtest harness runs `#[test]`s on
// concurrent threads, so splitting the phases across tests would let
// their allocations pollute each other's counts.
#[test]
fn steady_state_steps_do_not_allocate() {
    // Seeded regression first: the counter must observe deliberate
    // allocations, or the zero pin below would pass vacuously.
    let before = allocs();
    for _ in 0..50 {
        std::hint::black_box(vec![0u8; 64]);
    }
    assert!(
        allocs() - before >= 50,
        "counting allocator missed seeded per-iteration allocations"
    );

    let mut pool = WorkerPool::new(4);
    let domain = Region3::of_extent(24, 12, 8);
    let exec = IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I).cache_bytes(64 * 1024);
    let mut fields = gaussian_pulse(domain, (0.2, 0.1, 0.0));

    // Cold call: building the plan (blocking, scratch stores, ping-pong
    // buffers) must hit the heap.
    let before = allocs();
    exec.run(&mut fields, 1).unwrap();
    let cold = allocs() - before;
    assert!(cold > 0, "cold run should build its plan on the heap");

    // One more warm-up so lazily initialized runtime paths (channel
    // blocks, thread locals) are settled before measuring.
    exec.run(&mut fields, 2).unwrap();

    let before = allocs();
    exec.run(&mut fields, 1).unwrap();
    let one = allocs() - before;

    const STEPS: usize = 51;
    let before = allocs();
    exec.run(&mut fields, STEPS).unwrap();
    let many = allocs() - before;

    // Both calls perform exactly one pool dispatch, so the extra
    // `STEPS - 1` steps of the second call must add nothing. A slack of
    // 4 absorbs channel block recycling in the dispatch itself; any
    // per-step allocation would add at least `STEPS - 1` ≫ 4.
    #[cfg(not(debug_assertions))]
    assert!(
        many <= one + 4,
        "steps 2..{STEPS} of a warmed run allocated: run({STEPS}) made {many} \
         allocations vs {one} for run(1)"
    );
    #[cfg(debug_assertions)]
    let _ = (one, many); // debug builds allocate claim labels per stage

    // Same pin for the self-scheduled replay: the chunk queues are
    // preallocated in the plan and the per-step reset is one relaxed
    // store per epoch, so dynamic claiming must add no allocations
    // either.
    let dyn_exec = IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I)
        .cache_bytes(64 * 1024)
        .self_schedule(2);
    let before = allocs();
    dyn_exec.run(&mut fields, 1).unwrap();
    let dyn_cold = allocs() - before;
    assert!(dyn_cold > 0, "cold dynamic run should build its plan");
    dyn_exec.run(&mut fields, 2).unwrap();

    let before = allocs();
    dyn_exec.run(&mut fields, 1).unwrap();
    let dyn_one = allocs() - before;

    let before = allocs();
    dyn_exec.run(&mut fields, STEPS).unwrap();
    let dyn_many = allocs() - before;

    #[cfg(not(debug_assertions))]
    assert!(
        dyn_many <= dyn_one + 4,
        "self-scheduled steps 2..{STEPS} allocated: run({STEPS}) made {dyn_many} \
         allocations vs {dyn_one} for run(1)"
    );
    #[cfg(debug_assertions)]
    let _ = (dyn_one, dyn_many);

    // Same pin with temporal blocking: the k=3 fused replay swaps
    // through the plan's preallocated x-slot ping-pong buffers and
    // re-zeros per-step gap lists in place, so fused epochs must add no
    // per-step (or per-epoch) allocations either. STEPS = 51 is a
    // multiple of 3, so the long run is pure full epochs.
    let fused_exec = IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I)
        .cache_bytes(64 * 1024)
        .fuse_steps(3);
    let before = allocs();
    fused_exec.run(&mut fields, 1).unwrap();
    let fused_cold = allocs() - before;
    assert!(fused_cold > 0, "cold fused run should build its plan");
    fused_exec.run(&mut fields, 2).unwrap();

    let before = allocs();
    fused_exec.run(&mut fields, 1).unwrap();
    let fused_one = allocs() - before;

    let before = allocs();
    fused_exec.run(&mut fields, STEPS).unwrap();
    let fused_many = allocs() - before;

    #[cfg(not(debug_assertions))]
    assert!(
        fused_many <= fused_one + 4,
        "fused (k=3) steps 2..{STEPS} allocated: run({STEPS}) made {fused_many} \
         allocations vs {fused_one} for run(1)"
    );
    #[cfg(debug_assertions)]
    let _ = (fused_one, fused_many);

    // Same pin for the tile-fused replay: the per-tile chain tables,
    // the rank-private scratch stores, and (for k>1) the x-slot
    // ping-pong buffers are all built into the plan, and the per-tile
    // rebase just re-aims the existing allocations — so replaying every
    // tile's whole chain must add no per-step allocations either.
    let tiled_exec = IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I)
        .cache_bytes(64 * 1024)
        .tile(TileMode::Fixed { ti: 5, tj: 4 })
        .fuse_steps(3);
    let before = allocs();
    tiled_exec.run(&mut fields, 1).unwrap();
    let tiled_cold = allocs() - before;
    assert!(tiled_cold > 0, "cold tiled run should build its plan");
    tiled_exec.run(&mut fields, 2).unwrap();

    let before = allocs();
    tiled_exec.run(&mut fields, 1).unwrap();
    let tiled_one = allocs() - before;

    let before = allocs();
    tiled_exec.run(&mut fields, STEPS).unwrap();
    let tiled_many = allocs() - before;

    #[cfg(not(debug_assertions))]
    assert!(
        tiled_many <= tiled_one + 4,
        "tiled (5x4, k=3) steps 2..{STEPS} allocated: run({STEPS}) made {tiled_many} \
         allocations vs {tiled_one} for run(1)"
    );
    #[cfg(debug_assertions)]
    let _ = (tiled_one, tiled_many);

    // Same pin with the live telemetry plane running: a trace session
    // open AND the background collector attached. Ring slots are
    // preallocated at registration, spans fold into the registry's
    // fixed counters/histograms, and the collector's ring/cursor
    // mirrors grow only when a new worker ring registers — which the
    // warm-up (plus a short settle so a few collector passes observe
    // the rings) forces to happen before the measured window.
    islands_trace::set_ring_capacity(1 << 16);
    let registry = std::sync::Arc::new(islands_trace::registry::MetricsRegistry::new(2));
    pool.attach_telemetry(
        std::sync::Arc::clone(&registry),
        std::time::Duration::from_millis(1),
    );
    let session = islands_trace::Session::start();
    let live_exec =
        IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I).cache_bytes(64 * 1024);
    let before = allocs();
    live_exec.run(&mut fields, 1).unwrap();
    let live_cold = allocs() - before;
    assert!(live_cold > 0, "cold traced run should build its plan");
    live_exec.run(&mut fields, 2).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(25));

    let before = allocs();
    live_exec.run(&mut fields, 1).unwrap();
    let live_one = allocs() - before;

    let before = allocs();
    live_exec.run(&mut fields, STEPS).unwrap();
    let live_many = allocs() - before;

    pool.detach_telemetry();
    let snap = registry.snapshot();
    assert!(snap.events_folded > 0, "collector never folded a live span");
    assert!(
        !session.finish().events.is_empty(),
        "quiescent drain saw no events despite the live collector"
    );

    #[cfg(not(debug_assertions))]
    assert!(
        live_many <= live_one + 4,
        "live-telemetry steps 2..{STEPS} of a warmed run allocated: run({STEPS}) made \
         {live_many} allocations vs {live_one} for run(1) with the collector attached"
    );
    #[cfg(debug_assertions)]
    let _ = (live_one, live_many);
}
