//! Property-based tests of the MPDATA numerics and the equivalence of
//! all execution strategies.
//!
//! Hermetic build: swept over deterministic, seeded random cases
//! (std-only) instead of the external `proptest` crate; `--features
//! proptest` widens the sweep roughly tenfold. Each case derives its
//! geometry and fields from a per-case seed, so a failure message's
//! case index reproduces exactly.

use mpdata::{
    random_fields, ExchangeExecutor, FusedExecutor, IslandsExecutor, MpdataProblem,
    OriginalExecutor, ReferenceExecutor,
};
use stencil_engine::rng::{Rng64, Xoshiro256pp};
use stencil_engine::{Axis, Region3};
use work_scheduler::{TeamSpec, WorkerPool};

fn cases(quick: usize) -> usize {
    if cfg!(feature = "proptest") {
        quick * 10
    } else {
        quick
    }
}

/// Positivity: MPDATA is positive definite under the CFL condition,
/// for arbitrary (closed-box) velocity and density fields.
#[test]
fn positive_definite() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x3DA7_0001);
    for case in 0..cases(24) {
        let ni = 4 + rng.below(8);
        let nj = 4 + rng.below(6);
        let nk = 2 + rng.below(4);
        let d = Region3::of_extent(ni, nj, nk);
        let mut f = random_fields(&mut rng, d, 0.85);
        ReferenceExecutor::new().run(&mut f, 3);
        assert!(
            f.x.min() >= -1e-12,
            "case {case} ({ni}×{nj}×{nk}): min = {}",
            f.x.min()
        );
    }
}

/// Conservation: total mass Σ x·h is exactly preserved in a closed
/// box (up to rounding), for arbitrary fields.
#[test]
fn conservative() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x3DA7_0002);
    for case in 0..cases(24) {
        let ni = 4 + rng.below(8);
        let nj = 4 + rng.below(6);
        let d = Region3::of_extent(ni, nj, 4);
        let mut f = random_fields(&mut rng, d, 0.8);
        let m0 = f.mass();
        ReferenceExecutor::new().run(&mut f, 3);
        let m1 = f.mass();
        assert!(
            (m1 - m0).abs() <= 1e-10 * m0.abs().max(1.0),
            "case {case} ({ni}×{nj}): mass {m0} → {m1}"
        );
    }
}

/// Strategy equivalence: original, (3+1)D and islands agree with the
/// serial reference bitwise on random fields and random geometry.
#[test]
fn all_strategies_bitwise_equal() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x3DA7_0003);
    for case in 0..cases(24) {
        let ni = 6 + rng.below(10);
        let nj = 4 + rng.below(6);
        let workers = 1 << (1 + rng.below(3)); // 2, 4, 8
        let teams_n = [1, 2, workers][rng.below(3)].min(workers);
        let variant_b = rng.next_bool();
        let d = Region3::of_extent(ni, nj, 4);
        let f = random_fields(&mut rng, d, 0.8);
        let label = format!(
            "case {case}: {ni}×{nj}, workers={workers}, teams={teams_n}, variant_b={variant_b}"
        );
        let expect = ReferenceExecutor::new().step(&f);

        let pool = WorkerPool::new(workers);
        let orig = OriginalExecutor::new(&pool).step(&f);
        assert_eq!(
            orig.max_abs_diff(&expect),
            0.0,
            "original diverged: {label}"
        );

        let fused = FusedExecutor::new(&pool)
            .cache_bytes(96 * 1024)
            .step(&f)
            .unwrap();
        assert_eq!(fused.max_abs_diff(&expect), 0.0, "fused diverged: {label}");

        if workers.is_multiple_of(teams_n) {
            let spec = TeamSpec::even(workers, teams_n);
            let axis = if variant_b { Axis::J } else { Axis::I };
            let isl = IslandsExecutor::new(&pool, spec.clone(), axis)
                .cache_bytes(96 * 1024)
                .step(&f)
                .unwrap();
            assert_eq!(isl.max_abs_diff(&expect), 0.0, "islands diverged: {label}");
            let exc = ExchangeExecutor::new(&pool, spec, axis).step(&f);
            assert_eq!(exc.max_abs_diff(&expect), 0.0, "exchange diverged: {label}");
        }
    }
}

/// Accuracy ladder: each extra corrective iteration reduces the
/// numerical diffusion of an advected pulse (peak retention grows with
/// `iord`), while positivity and conservation hold at every order.
#[test]
fn higher_iord_is_less_diffusive() {
    let d = Region3::of_extent(40, 8, 8);
    let steps = 12;
    let mut peaks = Vec::new();
    for iord in 1..=3 {
        let mut f = mpdata::gaussian_pulse(d, (0.35, 0.0, 0.0));
        let m0 = f.mass();
        let exec = ReferenceExecutor::with_problem(MpdataProblem::with_iord(iord));
        exec.run(&mut f, steps);
        assert!(f.x.min() >= -1e-12, "iord {iord} broke positivity");
        // Open boundaries: mass is only conserved up to in/outflow, so
        // check boundedness rather than exact conservation here.
        assert!(f.mass() <= m0 * 1.001);
        peaks.push(f.x.max());
    }
    assert!(
        peaks[1] > peaks[0] + 1e-6,
        "iord 2 ({}) must beat upwind ({})",
        peaks[1],
        peaks[0]
    );
    assert!(
        peaks[2] >= peaks[1] - 1e-9,
        "iord 3 ({}) must not be more diffusive than iord 2 ({})",
        peaks[2],
        peaks[1]
    );
}

/// All parallel strategies remain bitwise-equal to the reference for
/// the third-order scheme (30 stages) — the stage-kind machinery is
/// order-independent.
#[test]
fn iord3_strategies_bitwise_equal() {
    let d = Region3::of_extent(20, 10, 5);
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    let f = random_fields(&mut rng, d, 0.6);
    let problem = || MpdataProblem::with_iord(3);
    let expect = ReferenceExecutor::with_problem(problem()).step(&f);
    let pool = WorkerPool::new(4);
    let orig = OriginalExecutor::with_problem(&pool, problem()).step(&f);
    assert_eq!(orig.max_abs_diff(&expect), 0.0, "original/iord3 diverged");
    let fused = FusedExecutor::with_problem(&pool, problem())
        .cache_bytes(128 * 1024)
        .step(&f)
        .unwrap();
    assert_eq!(fused.max_abs_diff(&expect), 0.0, "fused/iord3 diverged");
    let isl = IslandsExecutor::with_problem(&pool, TeamSpec::even(4, 2), Axis::I, problem())
        .cache_bytes(128 * 1024)
        .step(&f)
        .unwrap();
    assert_eq!(isl.max_abs_diff(&expect), 0.0, "islands/iord3 diverged");
}

/// The classic rotating-cone benchmark: after a full revolution the
/// cone must return near its starting position with bounded shape
/// error — the standard MPDATA validation figure.
#[test]
fn rotating_cone_full_revolution() {
    use mpdata::error_norms;
    let d = Region3::of_extent(40, 40, 1);
    let f0 = mpdata::rotating_cone(d, 0.25);
    // The generator's rim Courant 0.25 sits at r1 = 0.48·40, so
    // ω = 0.25/r1 rad/step and a full revolution is 2π/ω steps.
    let r1 = 0.48 * 40.0;
    let steps = (2.0 * std::f64::consts::PI * r1 / 0.25).ceil() as usize;
    let mut f = f0.clone();
    ReferenceExecutor::new().run(&mut f, steps);
    let n = error_norms(&f.x, &f0.x);
    // The cone (peak 4 over background 1, radius ≈ 5 cells) diffuses
    // over ≈ 480 steps; second-order MPDATA retains ~25 % of the peak on
    // a grid this coarse — the published behaviour for small cones. The
    // bounds fail loudly for first-order-like diffusion (L∞ → 4) or any
    // dispersive ringing (background disturbance inflates L1/L2).
    assert!(n.linf < 3.6, "shape loss too large: {n:?}");
    assert!(n.l2 < 0.35, "L2 error too large: {n:?}");
    assert!(n.l1 < 0.12, "background disturbed: {n:?}");
    assert!(f.x.min() >= -1e-12);
    assert!(f.x.max() > 1.7, "peak must survive the revolution");
    assert!((f.mass() - f0.mass()).abs() < 1e-9 * f0.mass());
}

/// Long-run stability: 20 steps of a rotating cone keep the solution
/// bounded, positive and conservative.
#[test]
fn rotating_cone_long_run() {
    let d = Region3::of_extent(24, 24, 2);
    let mut f = mpdata::rotating_cone(d, 0.35);
    let m0 = f.mass();
    let hi0 = f.x.max();
    ReferenceExecutor::new().run(&mut f, 20);
    assert!((f.mass() - m0).abs() < 1e-9 * m0);
    assert!(f.x.min() >= -1e-12);
    // The closed box makes the flow compressive where it meets the
    // walls, so mass piles up there; assert boundedness, not
    // monotonicity (which only holds for divergence-free flow).
    assert!(
        f.x.max() <= hi0 * 2.0,
        "max grew from {hi0} to {}",
        f.x.max()
    );
}
