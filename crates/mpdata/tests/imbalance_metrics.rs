//! Imbalance metrics pin: a deliberately skewed island partition must
//! show up in [`RunMetrics::imbalance_summary`] as a per-worker kernel
//! ratio well above 1 and a positive imbalance excess.
//!
//! Lives in its own integration-test binary because the trace session
//! lock is process-wide and the timing assertions want the process to
//! themselves.
//!
//! [`RunMetrics::imbalance_summary`]: islands_trace::metrics::RunMetrics::imbalance_summary

use islands_trace::metrics::RunMetrics;
use islands_trace::Session;
use mpdata::{gaussian_pulse, IslandsExecutor};
use stencil_engine::{Axis, Range1, Region3};
use work_scheduler::{TeamSpec, WorkerPool};

const STEPS: usize = 5;

fn traced_run(exec: &IslandsExecutor, domain: Region3) -> RunMetrics {
    let mut fields = gaussian_pulse(domain, (0.2, 0.1, 0.0));
    // Warm the plan outside the session so only steady-state replay is
    // measured.
    exec.run(&mut fields, 1).unwrap();
    let session = Session::start();
    exec.run(&mut fields, STEPS).unwrap();
    RunMetrics::aggregate(&session.finish())
}

#[test]
fn skewed_partition_shows_up_in_the_imbalance_summary() {
    let pool = WorkerPool::new(4);
    let domain = Region3::of_extent(64, 32, 8);
    // 56/8 split along I: island 0 computes ~7× the cells of island 1
    // with the same team size, so its per-worker kernel time dominates.
    let parts = vec![
        domain.with_range(Axis::I, Range1::new(0, 56)),
        domain.with_range(Axis::I, Range1::new(56, 64)),
    ];
    let exec = IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I)
        .cache_bytes(256 * 1024)
        .with_partition(parts);
    let metrics = traced_run(&exec, domain);

    // The cell skew itself is deterministic: check it before trusting
    // any timing.
    let totals = metrics.totals();
    let cells: Vec<u64> = totals
        .iter()
        .filter(|m| m.island != islands_trace::NO_ISLAND)
        .map(|m| m.computed_cells)
        .collect();
    assert_eq!(cells.len(), 2, "expected two active islands: {totals:?}");
    assert!(
        cells[0] > 4 * cells[1],
        "island 0 should compute several times island 1's cells: {cells:?}"
    );

    let im = metrics
        .imbalance_summary()
        .expect("two active islands recorded kernels");
    assert_eq!(im.steps, STEPS);
    assert!(
        im.max_pw_ns >= im.mean_pw_ns,
        "max per-worker time below the mean: {im:?}"
    );
    // ~7× the work on one island leaves plenty of margin over timing
    // noise, even oversubscribed.
    assert!(
        im.ratio > 1.3,
        "skewed partition should show ratio well above 1: {im:?}"
    );
    assert!(
        im.excess_ns > 0.0,
        "skewed partition should lose worker time to imbalance: {im:?}"
    );
}
