//! Periodic-boundary validation: properties that hold *exactly* on a
//! torus make for unusually sharp numerics tests.
//!
//! Hermetic build: the randomized sweep is deterministic and std-only
//! (see `numerics_properties.rs`); `--features proptest` widens it.

use mpdata::{
    gaussian_pulse, random_fields, Boundary, MpdataFields, MpdataProblem, OriginalExecutor,
    ReferenceExecutor,
};
use stencil_engine::rng::{Rng64, Xoshiro256pp};
use stencil_engine::{Array3, Region3};
use work_scheduler::WorkerPool;

fn periodic_reference() -> ReferenceExecutor {
    ReferenceExecutor::with_problem(MpdataProblem::standard().with_boundary(Boundary::Periodic))
}

/// Circular shift of a field along `i` by `s` cells.
fn shift_i(a: &Array3, s: i64) -> Array3 {
    let d = a.region();
    let n = d.i.len() as i64;
    Array3::from_fn(d, |i, j, k| {
        a.get(d.i.lo + (i - d.i.lo - s).rem_euclid(n), j, k)
    })
}

/// At Courant number exactly 1, donor-cell transport is exact and the
/// antidiffusive velocities vanish — each step is an exact one-cell
/// circular shift.
#[test]
fn cfl_one_is_exact_shift() {
    let d = Region3::of_extent(24, 4, 4);
    let mut f = gaussian_pulse(d, (0.0, 0.0, 0.0));
    f.u1.fill(1.0);
    let exec = periodic_reference();
    let x0 = f.x.clone();
    exec.run(&mut f, 5);
    let expect = shift_i(&x0, 5);
    assert_eq!(
        f.x.max_abs_diff(&expect),
        0.0,
        "CFL = 1 advection must be an exact circular shift"
    );
}

/// The discrete operator commutes with circular shifts for uniform flow
/// on a torus — bitwise, because every cell sees identical operands.
#[test]
fn step_commutes_with_shift() {
    let d = Region3::of_extent(16, 6, 4);
    let mut rng = Xoshiro256pp::seed_from_u64(21);
    let base = random_fields(&mut rng, d, 0.6);
    // Make the flow uniform (random_fields closes boundaries, which
    // would break shift symmetry).
    let f = MpdataFields {
        x: base.x.clone(),
        u1: Array3::filled(d, 0.23),
        u2: Array3::filled(d, -0.11),
        u3: Array3::filled(d, 0.07),
        h: Array3::filled(d, 1.0),
    };
    let exec = periodic_reference();
    // step(shift(x)) == shift(step(x))
    let stepped = exec.step(&f);
    let shifted_then_stepped = exec.step(&MpdataFields {
        x: shift_i(&f.x, 3),
        ..f.clone()
    });
    let stepped_then_shifted = shift_i(&stepped, 3);
    assert_eq!(
        shifted_then_stepped.max_abs_diff(&stepped_then_shifted),
        0.0
    );
}

/// On a torus, Σ x·h is conserved exactly for *any* velocity field —
/// the flux divergence telescopes all the way around.
#[test]
fn periodic_conservation_any_flow() {
    let sweeps = if cfg!(feature = "proptest") { 160 } else { 16 };
    let mut rng = Xoshiro256pp::seed_from_u64(0x7013_0001);
    for case in 0..sweeps {
        let d = Region3::of_extent(8, 6, 4);
        // Do NOT close boundaries: the torus needs no walls.
        let mut f = random_fields(&mut rng, d, 0.7);
        f.u1 = Array3::from_fn(d, |_, _, _| rng.range_f64(-0.09, 0.09));
        f.u2 = Array3::from_fn(d, |_, _, _| rng.range_f64(-0.09, 0.09));
        f.u3 = Array3::from_fn(d, |_, _, _| rng.range_f64(-0.09, 0.09));
        let m0 = f.mass();
        periodic_reference().run(&mut f, 3);
        assert!(
            (f.mass() - m0).abs() <= 1e-11 * m0.abs().max(1.0),
            "case {case}: torus mass drifted: {m0} → {}",
            f.mass()
        );
        assert!(f.x.min() >= -1e-12, "case {case}");
    }
}

/// The original (parallel, full-sweep) executor supports periodic
/// boundaries and stays bitwise-equal to the reference.
#[test]
fn original_executor_periodic_matches_reference() {
    let d = Region3::of_extent(12, 8, 4);
    let mut rng = Xoshiro256pp::seed_from_u64(4);
    let f = random_fields(&mut rng, d, 0.6);
    let problem = || MpdataProblem::standard().with_boundary(Boundary::Periodic);
    let expect = ReferenceExecutor::with_problem(problem()).step(&f);
    let pool = WorkerPool::new(4);
    let got = OriginalExecutor::with_problem(&pool, problem()).step(&f);
    assert_eq!(got.max_abs_diff(&expect), 0.0);
}

/// The cache-blocked executors refuse periodic problems loudly instead
/// of computing garbage.
#[test]
#[should_panic(expected = "open boundaries")]
fn fused_rejects_periodic() {
    let d = Region3::of_extent(12, 8, 4);
    let f = gaussian_pulse(d, (0.2, 0.0, 0.0));
    let pool = WorkerPool::new(2);
    let _ = mpdata::FusedExecutor::with_problem(
        &pool,
        MpdataProblem::standard().with_boundary(Boundary::Periodic),
    )
    .step(&f);
}
