//! Barrier-wait accounting under deliberate load imbalance.
//!
//! Gives island 0 a sliver of the domain and island 1 the rest: the
//! idle island must show far more global-barrier wait than the loaded
//! one, and every barrier span's spin/yield/park phases must sum to
//! its duration exactly (the recorder timestamps only at phase
//! boundaries, so the invariant is bit-exact, not approximate).

use islands_trace::SpanKind;
use mpdata::{gaussian_pulse, IslandsExecutor, MpdataProblem};
use stencil_engine::{Axis, Range1, Region3};
use work_scheduler::{TeamSpec, WorkerPool};

#[test]
fn imbalanced_partition_charges_wait_to_the_idle_island() {
    let d = Region3::of_extent(60, 16, 8);
    // Island 0 updates 4 of 60 planes; island 1 carries the rest.
    let cut = 4;
    let j = Range1::new(0, 16);
    let k = Range1::new(0, 8);
    let parts = vec![
        Region3::new(Range1::new(0, cut), j, k),
        Region3::new(Range1::new(cut, 60), j, k),
    ];
    let pool = WorkerPool::new(4);
    let exec = IslandsExecutor::with_problem(
        &pool,
        TeamSpec::even(4, 2),
        Axis::I,
        MpdataProblem::with_iord(2),
    )
    .with_partition(parts);
    let mut fields = gaussian_pulse(d, (0.3, 0.0, 0.0));

    let session = islands_trace::Session::start();
    exec.run(&mut fields, 3).unwrap();
    let drained = session.finish();
    assert_eq!(drained.dropped, 0, "ring buffers wrapped");

    // Exact per-event phase accounting.
    let mut barrier_events = 0_usize;
    for t in &drained.events {
        if matches!(t.ev.kind, SpanKind::TeamBarrier | SpanKind::GlobalBarrier) {
            barrier_events += 1;
            assert_eq!(
                t.ev.aux.iter().sum::<u64>(),
                t.ev.dur_ns,
                "spin {} + yield {} + park {} must equal dur {}",
                t.ev.aux[0],
                t.ev.aux[1],
                t.ev.aux[2],
                t.ev.dur_ns
            );
        }
    }
    assert!(barrier_events > 0, "no barrier spans recorded");

    let totals = islands_trace::metrics::RunMetrics::aggregate(&drained).totals();
    let islands: Vec<_> = totals
        .iter()
        .filter(|m| m.island != islands_trace::NO_ISLAND)
        .collect();
    assert_eq!(islands.len(), 2);
    let (idle, loaded) = (islands[0], islands[1]);

    // The aggregate preserves the invariant: all barrier wait is
    // attributed to exactly one of spin / yield / park.
    for m in &islands {
        assert_eq!(
            m.spin_ns + m.yield_ns + m.park_ns,
            m.barrier_wait_ns(),
            "island {}: phase split diverges from total wait",
            m.island
        );
    }

    // The sliver island finishes each step long before the loaded one
    // and burns the difference at the global barrier. 2× is a loose
    // floor — the work ratio is 14:1 — chosen to stay robust on an
    // oversubscribed single-core CI machine.
    assert!(
        idle.global_barrier_ns > 2 * loaded.global_barrier_ns,
        "idle island waited {} ns, loaded island {} ns",
        idle.global_barrier_ns,
        loaded.global_barrier_ns
    );
    assert!(idle.kernel_ns < loaded.kernel_ns);
}
