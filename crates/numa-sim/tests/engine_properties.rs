//! Property tests for the discrete-event engine: time monotonicity,
//! conservation of bytes, and scaling sanity.
//!
//! Hermetic build: swept over deterministic, seeded random cases
//! (std-only) instead of the external `proptest` crate; `--features
//! proptest` widens the sweep roughly tenfold.

use numa_sim::{simulate, CoreId, NodeId, Op, SimConfig, TraceSet, UvParams};
use stencil_engine::rng::{Rng64, Xoshiro256pp};

fn cfg() -> SimConfig {
    SimConfig {
        quantum_bytes: 64.0 * 1024.0,
        ..SimConfig::default()
    }
}

fn cases(quick: usize) -> usize {
    if cfg!(feature = "proptest") {
        quick * 10
    } else {
        quick
    }
}

fn any_op(rng: &mut Xoshiro256pp, nodes: usize) -> Op {
    match rng.below(5) {
        0 => Op::Compute {
            flops: rng.range_f64(1e3, 1e9),
        },
        1 => Op::MemRead {
            node: NodeId(rng.below(nodes)),
            bytes: rng.range_f64(1e3, 1e7),
        },
        2 => Op::MemWrite {
            node: NodeId(rng.below(nodes)),
            bytes: rng.range_f64(1e3, 1e7),
        },
        3 => Op::CacheRead {
            node: NodeId(rng.below(nodes)),
            bytes: rng.range_f64(1e3, 1e6),
        },
        _ => Op::Stream {
            node: NodeId(rng.below(nodes)),
            bytes: rng.range_f64(1e3, 1e7),
            flops: rng.range_f64(1e3, 1e8),
            write: rng.next_bool(),
        },
    }
}

/// Makespan is at least every core's busy time and bytes are
/// conserved between the trace and the report.
#[test]
fn makespan_bounds_and_byte_conservation() {
    let machine = UvParams::uv2000(4).build();
    let mut rng = Xoshiro256pp::seed_from_u64(0x51D0_0001);
    for case in 0..cases(64) {
        let streams = 1 + rng.below(15);
        let mut traces = TraceSet::for_cores(machine.core_count());
        let mut total_bytes = 0.0;
        for c in 0..streams {
            let ops = rng.below(12);
            for _ in 0..ops {
                let op = any_op(&mut rng, 4);
                traces.push(CoreId(c), op);
                match op {
                    Op::MemRead { bytes, .. }
                    | Op::MemWrite { bytes, .. }
                    | Op::CacheRead { bytes, .. }
                    | Op::Stream { bytes, .. } => total_bytes += bytes,
                    Op::Compute { .. } | Op::Barrier { .. } => {}
                }
            }
        }
        let r = simulate(&machine, &traces, &cfg()).unwrap();
        assert!(r.makespan.is_finite(), "case {case}");
        assert!(r.makespan >= 0.0, "case {case}");
        for c in 0..machine.core_count() {
            let busy = r.core_compute[c] + r.core_transfer[c];
            assert!(
                busy <= r.makespan + 1e-9,
                "case {case}: core {c} busy {busy} > makespan {}",
                r.makespan
            );
        }
        let moved =
            r.mem_local_bytes + r.mem_remote_bytes + r.cache_local_bytes + r.cache_remote_bytes;
        assert!(
            (moved - total_bytes).abs() < 1.0,
            "case {case}: moved {moved} vs trace {total_bytes}"
        );
    }
}

/// Adding work to a core never reduces the makespan.
#[test]
fn monotone_in_work() {
    let machine = UvParams::uv2000(2).build();
    let mut rng = Xoshiro256pp::seed_from_u64(0x51D0_0002);
    for case in 0..cases(64) {
        let n = 1 + rng.below(7);
        let mut t1 = TraceSet::for_cores(machine.core_count());
        for _ in 0..n {
            t1.push(CoreId(0), any_op(&mut rng, 2));
        }
        let extra = any_op(&mut rng, 2);
        let mut t2 = t1.clone();
        t2.push(CoreId(0), extra);
        let r1 = simulate(&machine, &t1, &cfg()).unwrap();
        let r2 = simulate(&machine, &t2, &cfg()).unwrap();
        assert!(
            r2.makespan >= r1.makespan - 1e-12,
            "case {case}: {extra:?} shrank the makespan {} → {}",
            r1.makespan,
            r2.makespan
        );
    }
}

/// Splitting a read across two cores on the same socket never beats
/// the DRAM bandwidth limit.
#[test]
fn controller_bandwidth_is_respected() {
    let machine = UvParams::uv2000(1).build();
    let dram_bw = machine.nodes()[0].dram_bandwidth;
    let mut rng = Xoshiro256pp::seed_from_u64(0x51D0_0003);
    for case in 0..cases(32) {
        let bytes = rng.range_f64(1e8, 1e9);
        let mut t = TraceSet::for_cores(machine.core_count());
        for c in 0..8 {
            t.push(
                CoreId(c),
                Op::MemRead {
                    node: NodeId(0),
                    bytes,
                },
            );
        }
        let r = simulate(&machine, &t, &cfg()).unwrap();
        let lower_bound = 8.0 * bytes / dram_bw;
        assert!(
            r.makespan >= lower_bound * 0.99,
            "case {case}: makespan {} below controller bound {lower_bound}",
            r.makespan
        );
    }
}

/// Barrier cost grows with the interconnect span of the participants.
#[test]
fn barrier_cost_grows_with_spread() {
    let machine = UvParams::uv2000(8).build();
    let c = cfg();
    let time_for = |cores: Vec<CoreId>| {
        let mut t = TraceSet::for_cores(machine.core_count());
        let b = t.add_barrier(cores.clone());
        for core in cores {
            t.push(core, Op::Barrier { id: b });
        }
        simulate(&machine, &t, &c).unwrap().makespan
    };
    let same_socket = time_for(vec![CoreId(0), CoreId(7)]);
    let same_blade = time_for(vec![CoreId(0), CoreId(8)]);
    let cross_blade = time_for(vec![CoreId(0), CoreId(63)]);
    assert!(same_socket < same_blade);
    assert!(same_blade < cross_blade);
}

/// Barrier-coupled cores finish at the same simulated time.
#[test]
fn barrier_equalizes_finish_times() {
    let machine = UvParams::uv2000(2).build();
    let mut t = TraceSet::for_cores(machine.core_count());
    let participants: Vec<CoreId> = (0..16).map(CoreId).collect();
    let b = t.add_barrier(participants.clone());
    for (n, &c) in participants.iter().enumerate() {
        t.push(
            c,
            Op::Compute {
                flops: 1e6 * (n as f64 + 1.0),
            },
        );
        t.push(c, Op::Barrier { id: b });
    }
    let r = simulate(&machine, &t, &cfg()).unwrap();
    // Everyone ends at the barrier release; makespan equals slowest
    // compute plus the barrier cost, and every core's wait is
    // complementary to its compute time.
    let slowest = 16.0 * 1e6 / machine.nodes()[0].core.sustained_flops();
    assert!(r.makespan >= slowest);
    for (n, &c) in participants.iter().enumerate() {
        let compute = r.core_compute[c.index()];
        let wait = r.core_barrier_wait[c.index()];
        assert!(
            (compute + wait - r.makespan).abs() < 1e-9,
            "core {n}: compute {compute} + wait {wait} != makespan {}",
            r.makespan
        );
    }
}
