//! A set-associative cache simulator with LRU replacement.
//!
//! The trace-driven engine of this crate charges memory traffic at the
//! granularity of work items, *assuming* the (3+1)D decomposition's
//! premise: that a block's intermediates stay cache-resident. This
//! module lets that premise be **checked** instead of assumed: feed the
//! exact address stream of a schedule through a modelled cache and count
//! the misses (see `perf-model`'s cache study and experiment E11).

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// A 16 MiB, 16-way, 64 B-line cache — the UV 2000 socket's L3.
    pub fn uv2000_l3() -> Self {
        CacheConfig {
            capacity_bytes: 16 << 20,
            ways: 16,
            line_bytes: 64,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways/line, capacity
    /// not divisible into sets, or a non-power-of-two line size).
    pub fn sets(&self) -> usize {
        assert!(self.ways > 0 && self.line_bytes > 0, "degenerate cache");
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let per_set = self.ways * self.line_bytes;
        assert!(
            self.capacity_bytes >= per_set && self.capacity_bytes.is_multiple_of(per_set),
            "capacity must be a multiple of ways × line"
        );
        self.capacity_bytes / per_set
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (filled a line).
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]` (0 for an empty run).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Bytes fetched from the next level.
    pub fn miss_bytes(&self, line_bytes: usize) -> f64 {
        self.misses as f64 * line_bytes as f64
    }
}

/// A set-associative, LRU, single-level cache simulator.
///
/// # Examples
///
/// ```
/// use numa_sim::{CacheConfig, CacheSim};
/// let mut c = CacheSim::new(CacheConfig {
///     capacity_bytes: 4096,
///     ways: 4,
///     line_bytes: 64,
/// });
/// assert!(!c.access(0));   // cold miss
/// assert!(c.access(32));   // same line: hit
/// assert_eq!(c.stats().misses, 1);
/// ```
#[derive(Clone, Debug)]
pub struct CacheSim {
    config: CacheConfig,
    /// Per set: tags in MRU-first order.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
    line_shift: u32,
}

impl CacheSim {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (see [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        CacheSim {
            config,
            sets: vec![Vec::with_capacity(config.ways); sets],
            stats: CacheStats::default(),
            line_shift: config.line_bytes.trailing_zeros(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Touches the byte at `addr`; returns whether it hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        let line = addr >> self.line_shift;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            // Hit: move to MRU.
            let t = set.remove(pos);
            set.insert(0, t);
            self.stats.hits += 1;
            true
        } else {
            // Miss: fill, evicting LRU if full.
            if set.len() == self.config.ways {
                set.pop();
            }
            set.insert(0, line);
            self.stats.misses += 1;
            false
        }
    }

    /// The counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        CacheSim::new(CacheConfig {
            capacity_bytes: 1024,
            ways: 2,
            line_bytes: 64,
        }) // 8 sets × 2 ways
    }

    #[test]
    fn geometry() {
        assert_eq!(tiny().config().sets(), 8);
        assert_eq!(CacheConfig::uv2000_l3().sets(), 16384);
    }

    #[test]
    fn spatial_locality_hits_within_a_line() {
        let mut c = tiny();
        assert!(!c.access(128));
        for b in 129..192 {
            assert!(c.access(b), "byte {b} must hit the fetched line");
        }
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().accesses, 64);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0: lines 0, 8, 16 (8 sets).
        let a = 0u64;
        let b = 8 * 64;
        let d = 16 * 64;
        c.access(a); // miss
        c.access(b); // miss (set full)
        c.access(a); // hit → a is MRU
        c.access(d); // miss → evicts b (LRU)
        assert!(c.access(a), "a must survive");
        assert!(!c.access(b), "b must have been evicted");
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = tiny(); // 16 lines capacity
        let lines = 64u64;
        // Two sequential sweeps over 64 lines: zero reuse survives.
        for _ in 0..2 {
            for l in 0..lines {
                c.access(l * 64);
            }
        }
        assert_eq!(c.stats().misses, 2 * lines);
    }

    #[test]
    fn working_set_within_capacity_is_reused() {
        let mut c = tiny();
        let lines = 16u64; // exactly capacity, maps 2 per set
        for _ in 0..3 {
            for l in 0..lines {
                c.access(l * 64);
            }
        }
        // Cold misses only.
        assert_eq!(c.stats().misses, lines);
        assert_eq!(c.stats().hits, 2 * lines);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access(0), "reset cache must cold-miss");
    }

    #[test]
    fn stats_helpers() {
        let mut c = tiny();
        c.access(0);
        c.access(1);
        let s = c.stats();
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(s.miss_bytes(64), 64.0);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    #[should_panic]
    fn degenerate_geometry_panics() {
        let _ = CacheSim::new(CacheConfig {
            capacity_bytes: 100,
            ways: 3,
            line_bytes: 48,
        });
    }
}
