//! The discrete-event simulation engine.
//!
//! Cores are agents executing their [`Op`] streams; memory controllers,
//! shared-cache ports and directed interconnect links are *contended
//! resources*. The engine always advances the globally earliest runnable
//! core by one quantum, reserving capacity on every resource a transfer
//! crosses — so queueing delays, controller saturation and NUMAlink
//! bottlenecks emerge from the schedule instead of being closed-form
//! estimates.
//!
//! Modelling choices (see `DESIGN.md` §2):
//! * Transfers are split into quanta (default 1 MiB) so concurrent
//!   streams interleave fairly on shared resources.
//! * DRAM streams run at full route bandwidth (hardware prefetchers hide
//!   line latency) but each core alone is capped by
//!   [`SimConfig::per_core_mem_bandwidth`].
//! * Cache-to-cache reads across nodes are *latency-bound*: demand misses
//!   move one cache line per round trip with limited memory-level
//!   parallelism, which is precisely why the pure (3+1)D decomposition
//!   collapses on the UV 2000.

use crate::topology::{CoreId, Machine};
use crate::trace::{BarrierId, Op, TraceError, TraceSet};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// Tunable simulation parameters (machine-independent).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Transfer interleaving granularity in bytes.
    pub quantum_bytes: f64,
    /// Cache line size in bytes.
    pub cache_line_bytes: f64,
    /// Outstanding demand misses per core (memory-level parallelism).
    pub miss_concurrency: f64,
    /// Extra latency to extract a line from a *remote cache* beyond the
    /// wire latency (snoop + directory + cache pipeline), seconds.
    pub remote_cache_latency: f64,
    /// Fixed cost of a barrier episode among cores of one node, seconds.
    pub barrier_base: f64,
    /// Additional barrier cost per interconnect hop spanned, seconds.
    pub barrier_per_hop: f64,
    /// Ceiling on a single core's DRAM streaming rate, bytes/s.
    pub per_core_mem_bandwidth: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            quantum_bytes: 1024.0 * 1024.0,
            cache_line_bytes: 64.0,
            miss_concurrency: 8.0,
            remote_cache_latency: 400e-9,
            barrier_base: 1.2e-6,
            barrier_per_hop: 0.9e-6,
            per_core_mem_bandwidth: 11e9,
        }
    }
}

/// Aggregated outcome of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Wall-clock of the simulated execution (max core finish time), s.
    pub makespan: f64,
    /// Per-core total time spent computing, s.
    pub core_compute: Vec<f64>,
    /// Per-core total time spent in transfers, s.
    pub core_transfer: Vec<f64>,
    /// Per-core total time spent blocked at barriers, s.
    pub core_barrier_wait: Vec<f64>,
    /// Bytes streamed from/to local DRAM.
    pub mem_local_bytes: f64,
    /// Bytes streamed from/to remote DRAM (crossing at least one link).
    pub mem_remote_bytes: f64,
    /// Bytes pulled from remote caches (coherence traffic over links).
    pub cache_remote_bytes: f64,
    /// Bytes moved between caches within a node.
    pub cache_local_bytes: f64,
    /// Busy seconds per directed link resource.
    pub link_busy: Vec<f64>,
    /// Bytes per directed link resource.
    pub link_bytes: Vec<f64>,
    /// Busy seconds per node memory controller.
    pub memctrl_busy: Vec<f64>,
    /// Number of barrier episodes completed.
    pub barrier_episodes: usize,
}

impl SimReport {
    /// Total compute seconds across cores.
    pub fn total_compute(&self) -> f64 {
        self.core_compute.iter().sum()
    }

    /// Total transfer seconds across cores.
    pub fn total_transfer(&self) -> f64 {
        self.core_transfer.iter().sum()
    }

    /// Total barrier-blocked seconds across cores.
    pub fn total_barrier_wait(&self) -> f64 {
        self.core_barrier_wait.iter().sum()
    }
}

/// Error running a simulation.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The trace set failed validation.
    InvalidTrace(TraceError),
    /// All runnable cores are exhausted but some core is still blocked at
    /// a barrier that can never complete.
    BarrierDeadlock {
        /// The barrier that cannot be released.
        id: BarrierId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTrace(e) => write!(f, "invalid trace: {e}"),
            SimError::BarrierDeadlock { id } => {
                write!(f, "deadlock: barrier {} never releases", id.0)
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvalidTrace(e) => Some(e),
            SimError::BarrierDeadlock { .. } => None,
        }
    }
}

impl From<TraceError> for SimError {
    fn from(e: TraceError) -> Self {
        SimError::InvalidTrace(e)
    }
}

/// Min-heap key over f64 times.
#[derive(Clone, Copy, Debug, PartialEq)]
struct HeapEntry {
    time: f64,
    core: usize,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.core.cmp(&self.core))
    }
}

#[derive(Clone, Debug)]
struct CoreState {
    time: f64,
    /// Index of the current op.
    ip: usize,
    /// Bytes remaining in the current transfer op (0 when starting).
    bytes_left: f64,
    /// Whether the latency of the current transfer is already charged.
    latency_charged: bool,
    blocked: bool,
    done: bool,
}

#[derive(Clone, Debug, Default)]
struct BarrierState {
    arrivals: Vec<(usize, f64)>,
    episodes: usize,
}

/// Runs `traces` on `machine` under `config`.
///
/// # Errors
///
/// Returns [`SimError::InvalidTrace`] for malformed inputs and
/// [`SimError::BarrierDeadlock`] if a barrier can never be released.
pub fn simulate(
    machine: &Machine,
    traces: &TraceSet,
    config: &SimConfig,
) -> Result<SimReport, SimError> {
    traces.validate(machine.node_count(), machine.core_count())?;
    let cores = traces.ops.len();
    let n_links = machine.links().len() * 2;
    let n_nodes = machine.node_count();

    let mut report = SimReport {
        core_compute: vec![0.0; cores],
        core_transfer: vec![0.0; cores],
        core_barrier_wait: vec![0.0; cores],
        link_busy: vec![0.0; n_links],
        link_bytes: vec![0.0; n_links],
        memctrl_busy: vec![0.0; n_nodes],
        ..SimReport::default()
    };

    // Resource clocks.
    let mut link_free = vec![0.0_f64; n_links];
    let mut memctrl_free = vec![0.0_f64; n_nodes];
    let mut l3_free = vec![0.0_f64; n_nodes];

    let mut states: Vec<CoreState> = (0..cores)
        .map(|_| CoreState {
            time: 0.0,
            ip: 0,
            bytes_left: 0.0,
            latency_charged: false,
            blocked: false,
            done: false,
        })
        .collect();
    let mut barriers: Vec<BarrierState> = (0..traces.barriers.len())
        .map(|_| BarrierState::default())
        .collect();
    // Precompute barrier episode costs from the node spread.
    let barrier_cost: Vec<f64> = traces
        .barriers
        .iter()
        .map(|spec| {
            let mut max_hops = 0;
            for (n, &a) in spec.participants.iter().enumerate() {
                for &b in &spec.participants[n + 1..] {
                    max_hops = max_hops.max(machine.hops(machine.node_of(a), machine.node_of(b)));
                }
            }
            config.barrier_base + config.barrier_per_hop * max_hops as f64
        })
        .collect();

    let mut heap = BinaryHeap::new();
    for (c, stream) in traces.ops.iter().enumerate() {
        if stream.is_empty() {
            states[c].done = true;
        } else {
            heap.push(HeapEntry { time: 0.0, core: c });
        }
    }

    while let Some(HeapEntry { time, core }) = heap.pop() {
        let st = &mut states[core];
        if st.done || st.blocked || st.time > time {
            // Stale entry (core was re-pushed with a later time).
            continue;
        }
        let stream = &traces.ops[core];
        if st.ip >= stream.len() {
            st.done = true;
            report.makespan = report.makespan.max(st.time);
            continue;
        }
        let my_node = machine.node_of(CoreId(core));
        match stream[st.ip] {
            Op::Compute { flops } => {
                let rate = machine.nodes()[my_node.index()].core.sustained_flops();
                let dur = if rate > 0.0 { flops / rate } else { 0.0 };
                st.time += dur;
                report.core_compute[core] += dur;
                st.ip += 1;
            }
            Op::MemRead { node, bytes }
            | Op::MemWrite { node, bytes }
            | Op::Stream { node, bytes, .. } => {
                let (is_read, op_flops) = match stream[st.ip] {
                    Op::MemRead { .. } => (true, 0.0),
                    Op::MemWrite { .. } => (false, 0.0),
                    Op::Stream { flops, write, .. } => (!write, flops),
                    _ => unreachable!(),
                };
                if st.bytes_left == 0.0 {
                    st.bytes_left = bytes;
                    st.latency_charged = false;
                    if bytes == 0.0 {
                        // A pure-compute "stream": charge the flops.
                        if op_flops > 0.0 {
                            let rate = machine.nodes()[my_node.index()].core.sustained_flops();
                            let dur = if rate > 0.0 { op_flops / rate } else { 0.0 };
                            st.time += dur;
                            report.core_compute[core] += dur;
                        }
                        st.ip += 1;
                        heap.push(HeapEntry {
                            time: st.time,
                            core,
                        });
                        continue;
                    }
                }
                let q = st.bytes_left.min(config.quantum_bytes);
                // Data flows home→core for reads, core→home for writes.
                let (from, to) = if is_read {
                    (node, my_node)
                } else {
                    (my_node, node)
                };
                let route: Vec<_> = machine.route(from, to).to_vec();
                // Start when the core and all resources are available.
                let mut start = st.time;
                for &l in &route {
                    start = start.max(link_free[l.index()]);
                }
                start = start.max(memctrl_free[node.index()]);
                // Core-side duration: narrowest pipe, incl. per-core cap.
                let mut bw = config.per_core_mem_bandwidth;
                let dram_bw = machine.nodes()[node.index()].dram_bandwidth;
                if dram_bw > 0.0 {
                    bw = bw.min(dram_bw);
                }
                for &l in &route {
                    bw = bw.min(machine.link_bandwidth(l));
                }
                let xfer = q / bw;
                // Overlapped compute share of this quantum (Stream ops).
                let rate = machine.nodes()[my_node.index()].core.sustained_flops();
                let comp = if op_flops > 0.0 && rate > 0.0 {
                    (op_flops * q / bytes) / rate
                } else {
                    0.0
                };
                let mut dur = xfer.max(comp);
                if !st.latency_charged {
                    dur += machine.nodes()[node.index()].dram_latency
                        + machine.route_latency(from, to);
                    st.latency_charged = true;
                }
                // Reserve capacity on shared resources.
                for &l in &route {
                    let t = q / machine.link_bandwidth(l);
                    link_free[l.index()] = start + t;
                    report.link_busy[l.index()] += t;
                    report.link_bytes[l.index()] += q;
                }
                if dram_bw > 0.0 {
                    let t = q / dram_bw;
                    memctrl_free[node.index()] = start + t;
                    report.memctrl_busy[node.index()] += t;
                }
                // Attribute the quantum to whichever side dominates.
                if comp > xfer {
                    report.core_compute[core] += dur;
                    report.core_transfer[core] += start - st.time;
                } else {
                    report.core_transfer[core] += (start - st.time) + dur;
                }
                st.time = start + dur;
                st.bytes_left -= q;
                if route.is_empty() {
                    report.mem_local_bytes += q;
                } else {
                    report.mem_remote_bytes += q;
                }
                if st.bytes_left <= 0.0 {
                    st.bytes_left = 0.0;
                    st.ip += 1;
                }
            }
            Op::CacheRead { node, bytes } => {
                if st.bytes_left == 0.0 {
                    st.bytes_left = bytes;
                    st.latency_charged = false;
                    if bytes == 0.0 {
                        st.ip += 1;
                        heap.push(HeapEntry {
                            time: st.time,
                            core,
                        });
                        continue;
                    }
                }
                let q = st.bytes_left.min(config.quantum_bytes);
                let local = node == my_node;
                let route: Vec<_> = machine.route(node, my_node).to_vec();
                let mut start = st.time;
                for &l in &route {
                    start = start.max(link_free[l.index()]);
                }
                start = start.max(l3_free[node.index()]);
                let l3_bw = machine.nodes()[node.index()].l3_bandwidth.max(1.0);
                let dur = if local {
                    q / l3_bw
                } else {
                    // Latency-bound demand misses: `miss_concurrency`
                    // lines in flight per round trip.
                    let rtt =
                        2.0 * machine.route_latency(my_node, node) + config.remote_cache_latency;
                    let eff_bw = (config.cache_line_bytes * config.miss_concurrency / rtt).max(1.0);
                    let wire_bw = machine.route_bandwidth(node, my_node);
                    q / eff_bw.min(wire_bw)
                };
                for &l in &route {
                    let t = q / machine.link_bandwidth(l);
                    link_free[l.index()] = start + t;
                    report.link_busy[l.index()] += t;
                    report.link_bytes[l.index()] += q;
                }
                {
                    let t = q / l3_bw;
                    l3_free[node.index()] = start + t;
                }
                report.core_transfer[core] += (start - st.time) + dur;
                st.time = start + dur;
                st.bytes_left -= q;
                if local {
                    report.cache_local_bytes += q;
                } else {
                    report.cache_remote_bytes += q;
                }
                if st.bytes_left <= 0.0 {
                    st.bytes_left = 0.0;
                    st.ip += 1;
                }
            }
            Op::Barrier { id } => {
                let b = &mut barriers[id.index()];
                b.arrivals.push((core, st.time));
                st.ip += 1;
                let parties = traces.barriers[id.index()].participants.len();
                if b.arrivals.len() == parties {
                    let release = b.arrivals.iter().map(|&(_, t)| t).fold(0.0_f64, f64::max)
                        + barrier_cost[id.index()];
                    for &(c, arrived) in &b.arrivals {
                        report.core_barrier_wait[c] += release - arrived;
                        states[c].time = release;
                        states[c].blocked = false;
                        heap.push(HeapEntry {
                            time: release,
                            core: c,
                        });
                    }
                    barriers[id.index()].arrivals.clear();
                    barriers[id.index()].episodes += 1;
                    report.barrier_episodes += 1;
                    continue; // current core re-pushed above
                } else {
                    st.blocked = true;
                    continue; // do not re-push: released by last arrival
                }
            }
        }
        let st = &states[core];
        if st.ip >= stream.len() && st.bytes_left == 0.0 {
            states[core].done = true;
            report.makespan = report.makespan.max(states[core].time);
        } else {
            heap.push(HeapEntry {
                time: states[core].time,
                core,
            });
        }
    }

    // Any core still blocked means a barrier never filled.
    for (c, st) in states.iter().enumerate() {
        if st.blocked {
            // Find the barrier it is stuck on (ip - 1 was the barrier op).
            if let Op::Barrier { id } = traces.ops[c][st.ip - 1] {
                return Err(SimError::BarrierDeadlock { id });
            }
        }
        report.makespan = report.makespan.max(st.time);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{CoreSpec, LinkSpec, Machine, NodeId, NodeSpec};

    fn two_socket_machine() -> Machine {
        let socket = NodeSpec {
            cores: 2,
            core: CoreSpec {
                freq_hz: 1e9,
                flops_per_cycle: 1.0,
                efficiency: 1.0,
            },
            dram_bandwidth: 10e9,
            dram_latency: 100e-9,
            l3_bandwidth: 100e9,
            l3_bytes: 1 << 20,
        };
        Machine::build(
            vec![socket.clone(), socket],
            vec![LinkSpec {
                a: NodeId(0),
                b: NodeId(1),
                bandwidth: 1e9,
                latency: 1e-6,
            }],
        )
        .unwrap()
    }

    fn cfg() -> SimConfig {
        SimConfig {
            quantum_bytes: 1024.0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn compute_time_is_flops_over_rate() {
        let m = two_socket_machine();
        let mut t = TraceSet::for_cores(1);
        t.push(CoreId(0), Op::Compute { flops: 2e9 });
        let r = simulate(&m, &t, &cfg()).unwrap();
        assert!((r.makespan - 2.0).abs() < 1e-9);
        assert!((r.total_compute() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn local_read_uses_per_core_cap() {
        let m = two_socket_machine();
        let mut t = TraceSet::for_cores(1);
        // The per-core cap (11 GB/s) exceeds this machine's 10 GB/s DRAM,
        // so a single core streams at the controller rate.
        let bytes = 10e9; // one second at the DRAM bandwidth
        t.push(
            CoreId(0),
            Op::MemRead {
                node: NodeId(0),
                bytes,
            },
        );
        let mut c = cfg();
        c.quantum_bytes = 1e8;
        let r = simulate(&m, &t, &c).unwrap();
        assert!((r.makespan - 1.0).abs() < 0.01, "makespan {}", r.makespan);
        assert_eq!(r.mem_local_bytes, bytes);
        assert_eq!(r.mem_remote_bytes, 0.0);
    }

    #[test]
    fn contended_controller_halves_throughput() {
        // Two cores streaming from the same controller: aggregate limited
        // by DRAM bandwidth once per-core caps exceed it.
        let m = two_socket_machine(); // dram 10 GB/s, per-core cap 11
        let mut t = TraceSet::for_cores(2);
        for c in 0..2 {
            t.push(
                CoreId(c),
                Op::MemRead {
                    node: NodeId(0),
                    bytes: 5e9,
                },
            );
        }
        let mut c = cfg();
        c.quantum_bytes = 1e7;
        let r = simulate(&m, &t, &c).unwrap();
        // 10 GB total at 10 GB/s aggregate ⇒ ≈ 1 s (not 5e9/7.5e9 ≈ .67 s).
        assert!(
            r.makespan > 0.95 && r.makespan < 1.1,
            "makespan {}",
            r.makespan
        );
    }

    #[test]
    fn remote_read_crosses_link_and_is_slower() {
        let m = two_socket_machine();
        let bytes = 1e9;
        let mk = |node: usize| {
            let mut t = TraceSet::for_cores(1);
            t.push(
                CoreId(0),
                Op::MemRead {
                    node: NodeId(node),
                    bytes,
                },
            );
            t
        };
        let mut c = cfg();
        c.quantum_bytes = 1e7;
        let local = simulate(&m, &mk(0), &c).unwrap();
        let remote = simulate(&m, &mk(1), &c).unwrap();
        // Remote limited by the 1 GB/s link.
        assert!(remote.makespan > 0.95 && remote.makespan < 1.1);
        assert!(local.makespan < remote.makespan / 5.0);
        assert_eq!(remote.mem_remote_bytes, bytes);
        assert!(remote.link_bytes.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn remote_cache_read_is_latency_bound() {
        let m = two_socket_machine();
        let bytes = 64.0 * 1000.0; // 1000 lines
        let mut t = TraceSet::for_cores(1);
        t.push(
            CoreId(0),
            Op::CacheRead {
                node: NodeId(1),
                bytes,
            },
        );
        let c = cfg();
        let r = simulate(&m, &t, &c).unwrap();
        // rtt = 2 µs + 0.4 µs = 2.4 µs; eff bw = 64*8/2.4µs ≈ 213 MB/s.
        let expect = bytes / (64.0 * 8.0 / 2.4e-6);
        assert!(
            (r.makespan - expect).abs() / expect < 0.05,
            "makespan {} expect {}",
            r.makespan,
            expect
        );
        assert_eq!(r.cache_remote_bytes, bytes);
    }

    #[test]
    fn local_cache_read_is_fast() {
        let m = two_socket_machine();
        let mut t = TraceSet::for_cores(1);
        t.push(
            CoreId(0),
            Op::CacheRead {
                node: NodeId(0),
                bytes: 1e8,
            },
        );
        let r = simulate(&m, &t, &cfg()).unwrap();
        assert!((r.makespan - 1e8 / 100e9).abs() < 1e-6);
        assert_eq!(r.cache_local_bytes, 1e8);
    }

    #[test]
    fn stream_is_max_of_compute_and_transfer() {
        let m = two_socket_machine(); // 1 Gflop/s sustained per core
        let mut c = cfg();
        c.quantum_bytes = 1e7;
        // Compute-bound stream: 2 Gflop over 1e8 bytes (local read needs
        // 1e8/10e9 = 0.01 s; compute needs 2 s).
        let mut t = TraceSet::for_cores(1);
        t.push(
            CoreId(0),
            Op::Stream {
                node: NodeId(0),
                bytes: 1e8,
                flops: 2e9,
                write: false,
            },
        );
        let r = simulate(&m, &t, &c).unwrap();
        assert!((r.makespan - 2.0).abs() < 0.01, "makespan {}", r.makespan);
        assert!(r.total_compute() > r.total_transfer());

        // Transfer-bound stream: tiny flops, same bytes.
        let mut t2 = TraceSet::for_cores(1);
        t2.push(
            CoreId(0),
            Op::Stream {
                node: NodeId(0),
                bytes: 10e9,
                flops: 1e6,
                write: false,
            },
        );
        let r2 = simulate(&m, &t2, &c).unwrap();
        assert!((r2.makespan - 1.0).abs() < 0.02, "makespan {}", r2.makespan);
        assert!(r2.total_transfer() > r2.total_compute());
        assert_eq!(r2.mem_local_bytes, 10e9);
    }

    #[test]
    fn write_stream_uses_reverse_direction() {
        let m = two_socket_machine();
        let mut t = TraceSet::for_cores(1);
        t.push(
            CoreId(0),
            Op::Stream {
                node: NodeId(1),
                bytes: 1e9,
                flops: 0.0,
                write: true,
            },
        );
        let mut c = cfg();
        c.quantum_bytes = 1e7;
        let r = simulate(&m, &t, &c).unwrap();
        // Limited by the 1 GB/s link either way.
        assert!(r.makespan > 0.95 && r.makespan < 1.1);
        assert_eq!(r.mem_remote_bytes, 1e9);
    }

    #[test]
    fn barrier_synchronizes_and_charges_cost() {
        let m = two_socket_machine();
        let mut t = TraceSet::for_cores(2);
        let b = t.add_barrier(vec![CoreId(0), CoreId(1)]);
        t.push(CoreId(0), Op::Compute { flops: 1e9 }); // 1 s
        t.push(CoreId(0), Op::Barrier { id: b });
        t.push(CoreId(1), Op::Barrier { id: b });
        t.push(CoreId(1), Op::Compute { flops: 1e9 });
        let c = cfg();
        let r = simulate(&m, &t, &c).unwrap();
        // Core 1 waits 1 s, then both proceed; core 1 computes 1 s more.
        let cost = c.barrier_base; // same node? cores 0,1 are node 0 → base only
        assert!(
            (r.makespan - (2.0 + cost)).abs() < 1e-6,
            "makespan {}",
            r.makespan
        );
        assert!(r.core_barrier_wait[1] >= 1.0);
        assert_eq!(r.barrier_episodes, 1);
    }

    #[test]
    fn cross_node_barrier_costs_more() {
        let m = two_socket_machine();
        let mk = |cores: Vec<CoreId>| {
            let mut t = TraceSet::for_cores(4);
            let b = t.add_barrier(cores.clone());
            for c in cores {
                t.push(c, Op::Barrier { id: b });
            }
            t
        };
        let c = cfg();
        let same = simulate(&m, &mk(vec![CoreId(0), CoreId(1)]), &c).unwrap();
        let cross = simulate(&m, &mk(vec![CoreId(0), CoreId(2)]), &c).unwrap();
        assert!(cross.makespan > same.makespan);
    }

    #[test]
    fn deadlock_is_detected() {
        let m = two_socket_machine();
        let mut t = TraceSet::for_cores(2);
        let b = t.add_barrier(vec![CoreId(0), CoreId(1)]);
        // Only core 0 ever waits: validation catches unbalanced episodes,
        // so craft a sneaky one: both participate but core 1's stream is
        // empty — validation sees 1 vs 0 episodes and rejects. That IS the
        // unbalanced case, so expect InvalidTrace here.
        t.push(CoreId(0), Op::Barrier { id: b });
        let err = simulate(&m, &t, &cfg()).unwrap_err();
        assert!(matches!(err, SimError::InvalidTrace(_)));
    }

    #[test]
    fn empty_traces_finish_at_zero() {
        let m = two_socket_machine();
        let t = TraceSet::for_cores(4);
        let r = simulate(&m, &t, &cfg()).unwrap();
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.barrier_episodes, 0);
    }

    #[test]
    fn zero_byte_stream_still_charges_flops() {
        let m = two_socket_machine();
        let mut t = TraceSet::for_cores(1);
        t.push(
            CoreId(0),
            Op::Stream {
                node: NodeId(1),
                bytes: 0.0,
                flops: 3e9,
                write: false,
            },
        );
        let r = simulate(&m, &t, &cfg()).unwrap();
        assert!((r.makespan - 3.0).abs() < 1e-9);
        assert!((r.total_compute() - 3.0).abs() < 1e-9);
        assert_eq!(r.mem_remote_bytes, 0.0);
    }

    #[test]
    fn single_participant_barrier_is_instantaneous_plus_base() {
        let m = two_socket_machine();
        let mut t = TraceSet::for_cores(1);
        let b = t.add_barrier(vec![CoreId(0)]);
        t.push(CoreId(0), Op::Barrier { id: b });
        let c = cfg();
        let r = simulate(&m, &t, &c).unwrap();
        assert!((r.makespan - c.barrier_base).abs() < 1e-12);
        assert_eq!(r.barrier_episodes, 1);
    }

    #[test]
    fn ops_after_barrier_run_in_order() {
        // A core released from a barrier continues with its remaining
        // ops at the release time.
        let m = two_socket_machine();
        let mut t = TraceSet::for_cores(2);
        let b = t.add_barrier(vec![CoreId(0), CoreId(1)]);
        t.push(CoreId(0), Op::Barrier { id: b });
        t.push(CoreId(0), Op::Compute { flops: 1e9 });
        t.push(CoreId(1), Op::Compute { flops: 2e9 });
        t.push(CoreId(1), Op::Barrier { id: b });
        let c = cfg();
        let r = simulate(&m, &t, &c).unwrap();
        // Release at 2 s + base; core 0 computes 1 s after that.
        assert!(
            (r.makespan - (2.0 + c.barrier_base + 1.0)).abs() < 1e-9,
            "makespan {}",
            r.makespan
        );
    }

    #[test]
    fn barriers_are_reusable_across_episodes() {
        let m = two_socket_machine();
        let mut t = TraceSet::for_cores(2);
        let b = t.add_barrier(vec![CoreId(0), CoreId(1)]);
        for _ in 0..5 {
            t.push(CoreId(0), Op::Barrier { id: b });
            t.push(CoreId(1), Op::Barrier { id: b });
        }
        let r = simulate(&m, &t, &cfg()).unwrap();
        assert_eq!(r.barrier_episodes, 5);
    }
}
