//! Human-readable summaries of simulation reports — the simulator's
//! answer to the paper's `likwid-perfctr` runs.

use crate::engine::SimReport;
use crate::topology::Machine;
use std::fmt::Write as _;

/// Formats `report` as a per-resource utilization summary over the
/// simulated interval.
///
/// # Examples
///
/// ```
/// use numa_sim::{simulate, summarize, CoreId, NodeId, Op, SimConfig, TraceSet, UvParams};
/// let machine = UvParams::uv2000(2).build();
/// let mut t = TraceSet::for_cores(machine.core_count());
/// t.push(CoreId(0), Op::MemRead { node: NodeId(1), bytes: 1e8 });
/// let r = simulate(&machine, &t, &SimConfig::default())?;
/// let s = summarize(&machine, &r);
/// assert!(s.contains("makespan"));
/// assert!(s.contains("node0"));
/// # Ok::<(), numa_sim::SimError>(())
/// ```
pub fn summarize(machine: &Machine, report: &SimReport) -> String {
    let mut out = String::new();
    let span = report.makespan.max(1e-30);
    let _ = writeln!(out, "makespan: {:.6} s", report.makespan);
    let cores = report.core_compute.len().max(1) as f64;
    let _ = writeln!(
        out,
        "core time: {:.1}% compute, {:.1}% transfer, {:.1}% barrier wait",
        100.0 * report.total_compute() / (span * cores),
        100.0 * report.total_transfer() / (span * cores),
        100.0 * report.total_barrier_wait() / (span * cores),
    );
    let _ = writeln!(
        out,
        "DRAM bytes: {:.1} MB local, {:.1} MB remote; cache pulls: {:.1} MB local, {:.1} MB remote",
        report.mem_local_bytes / 1e6,
        report.mem_remote_bytes / 1e6,
        report.cache_local_bytes / 1e6,
        report.cache_remote_bytes / 1e6,
    );
    let _ = writeln!(out, "barrier episodes: {}", report.barrier_episodes);
    let _ = writeln!(out, "memory controllers (busy % of makespan):");
    for (n, busy) in report.memctrl_busy.iter().enumerate() {
        if machine.nodes()[n].dram_bandwidth > 0.0 {
            let _ = writeln!(out, "  node{n}: {:>5.1}%", 100.0 * busy / span);
        }
    }
    let _ = writeln!(out, "links (busy % of makespan, per direction):");
    for (l, link) in machine.links().iter().enumerate() {
        let fwd = report.link_busy.get(2 * l).copied().unwrap_or(0.0);
        let back = report.link_busy.get(2 * l + 1).copied().unwrap_or(0.0);
        let fb = report.link_bytes.get(2 * l).copied().unwrap_or(0.0);
        let bb = report.link_bytes.get(2 * l + 1).copied().unwrap_or(0.0);
        if fb > 0.0 || bb > 0.0 {
            let _ = writeln!(
                out,
                "  {} ↔ {}: {:>5.1}% / {:>5.1}%  ({:.1} / {:.1} MB)",
                link.a,
                link.b,
                100.0 * fwd / span,
                100.0 * back / span,
                fb / 1e6,
                bb / 1e6,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::presets::UvParams;
    use crate::topology::{CoreId, NodeId};
    use crate::trace::{Op, TraceSet};

    #[test]
    fn summary_mentions_busy_resources_only() {
        let machine = UvParams::uv2000(2).build();
        let mut t = TraceSet::for_cores(machine.core_count());
        t.push(
            CoreId(0),
            Op::MemRead {
                node: NodeId(1),
                bytes: 2e8,
            },
        );
        let r = simulate(&machine, &t, &SimConfig::default()).unwrap();
        let s = summarize(&machine, &r);
        assert!(s.contains("makespan:"));
        assert!(s.contains("node1")); // the accessed controller
        assert!(s.contains("↔")); // the crossed link
        assert!(s.contains("barrier episodes: 0"));
    }

    #[test]
    fn summary_percentages_are_bounded() {
        let machine = UvParams::uv2000(1).build();
        let mut t = TraceSet::for_cores(machine.core_count());
        for c in 0..8 {
            t.push(CoreId(c), Op::Compute { flops: 1e9 });
        }
        let r = simulate(&machine, &t, &SimConfig::default()).unwrap();
        let s = summarize(&machine, &r);
        // All cores compute the whole time: the compute share is ~100%.
        assert!(s.contains("100.0% compute"), "{s}");
    }
}
