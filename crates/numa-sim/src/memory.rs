//! NUMA memory placement: which node's DRAM holds which part of an array.
//!
//! The UV 2000 (like every ccNUMA Linux box) places a page on the node of
//! the core that *first touches* it. The paper's Table 1 shows the
//! consequences: with serial initialization every page of every array
//! lands on node 0 and all remote sockets hammer one controller; with
//! *parallel initialization* each thread first-touches the part it will
//! later compute on, so streaming is node-local.
//!
//! [`Placement`] captures the outcome of a first-touch policy at slab
//! granularity: a disjoint cover of an array's region by `(region, node)`
//! pairs. Trace generators query it to decide which controller a read
//! targets.

use crate::topology::NodeId;
use stencil_engine::{Axis, Region3, BYTES_PER_CELL};

/// Placement of one array's backing pages across NUMA nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct Placement {
    region: Region3,
    slabs: Vec<(Region3, NodeId)>,
}

impl Placement {
    /// Serial first touch: the whole array lives on `node` (the paper's
    /// "Original" row of Table 1, initialized by the master thread).
    pub fn serial(region: Region3, node: NodeId) -> Self {
        Placement {
            region,
            slabs: vec![(region, node)],
        }
    }

    /// Parallel first touch: the array is split along `axis` into one
    /// near-equal slab per entry of `nodes`, in order — each worker
    /// initializes (and therefore homes) the part it will compute on.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn first_touch_split(region: Region3, axis: Axis, nodes: &[NodeId]) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        let slabs = region
            .split(axis, nodes.len())
            .into_iter()
            .zip(nodes.iter().copied())
            .filter(|(r, _)| !r.is_empty())
            .collect();
        Placement { region, slabs }
    }

    /// Interleaved placement (the `numactl --interleave` baseline):
    /// slabs of `chunk` indices along `axis` are dealt round-robin to
    /// `nodes`. Spreads bandwidth across all controllers at the cost of
    /// making ~`(n-1)/n` of every thread's accesses remote.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty or `chunk == 0`.
    pub fn interleaved(region: Region3, axis: Axis, nodes: &[NodeId], chunk: usize) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        assert!(chunk > 0, "chunk must be positive");
        let slabs = region
            .chunks(axis, chunk)
            .into_iter()
            .enumerate()
            .map(|(n, r)| (r, nodes[n % nodes.len()]))
            .collect();
        Placement { region, slabs }
    }

    /// Explicit placement from a disjoint slab cover.
    ///
    /// # Panics
    ///
    /// Panics if the slabs overlap or do not exactly cover `region`
    /// (checked by cell counting).
    pub fn explicit(region: Region3, slabs: Vec<(Region3, NodeId)>) -> Self {
        let mut covered = 0usize;
        for (n, (a, _)) in slabs.iter().enumerate() {
            assert!(region.contains_region(*a), "slab outside region");
            covered += a.cells();
            for (b, _) in &slabs[n + 1..] {
                assert!(!a.overlaps(*b), "overlapping slabs");
            }
        }
        assert_eq!(covered, region.cells(), "slabs must cover the region");
        Placement { region, slabs }
    }

    /// The region this placement covers.
    pub fn region(&self) -> Region3 {
        self.region
    }

    /// The slab cover.
    pub fn slabs(&self) -> &[(Region3, NodeId)] {
        &self.slabs
    }

    /// The home node of the cell `(i, j, k)`, or `None` outside the
    /// region.
    pub fn node_of(&self, i: i64, j: i64, k: i64) -> Option<NodeId> {
        self.slabs
            .iter()
            .find(|(r, _)| r.contains(i, j, k))
            .map(|&(_, n)| n)
    }

    /// How many bytes of `sub` live on each node, as `(node, bytes)`
    /// pairs in slab order (nodes may repeat if they own several slabs).
    pub fn bytes_on(&self, sub: Region3) -> Vec<(NodeId, f64)> {
        self.slabs
            .iter()
            .filter_map(|&(r, n)| {
                let cells = r.intersect(sub).cells();
                if cells == 0 {
                    None
                } else {
                    Some((n, (cells * BYTES_PER_CELL) as f64))
                }
            })
            .collect()
    }

    /// Total bytes of the placed array.
    pub fn total_bytes(&self) -> f64 {
        (self.region.cells() * BYTES_PER_CELL) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_engine::Range1;

    #[test]
    fn serial_places_everything_on_one_node() {
        let r = Region3::of_extent(8, 4, 4);
        let p = Placement::serial(r, NodeId(3));
        assert_eq!(p.node_of(0, 0, 0), Some(NodeId(3)));
        assert_eq!(p.node_of(7, 3, 3), Some(NodeId(3)));
        assert_eq!(p.node_of(8, 0, 0), None);
        assert_eq!(p.bytes_on(r), vec![(NodeId(3), (8 * 4 * 4 * 8) as f64)]);
    }

    #[test]
    fn first_touch_split_is_balanced() {
        let r = Region3::of_extent(10, 4, 4);
        let p = Placement::first_touch_split(r, Axis::I, &[NodeId(0), NodeId(1)]);
        assert_eq!(p.node_of(0, 0, 0), Some(NodeId(0)));
        assert_eq!(p.node_of(5, 0, 0), Some(NodeId(1)));
        let total: f64 = p.bytes_on(r).iter().map(|(_, b)| b).sum();
        assert_eq!(total, p.total_bytes());
    }

    #[test]
    fn bytes_on_subregion_splits_at_boundary() {
        let r = Region3::of_extent(10, 1, 1);
        let p = Placement::first_touch_split(r, Axis::I, &[NodeId(0), NodeId(1)]);
        // Read cells 3..8: 2 on node 0, 3 on node 1.
        let sub = Region3::new(Range1::new(3, 8), r.j, r.k);
        let b = p.bytes_on(sub);
        assert_eq!(b, vec![(NodeId(0), 16.0), (NodeId(1), 24.0)]);
    }

    #[test]
    fn explicit_validates_cover() {
        let r = Region3::of_extent(4, 1, 1);
        let a = Region3::new(Range1::new(0, 2), r.j, r.k);
        let b = Region3::new(Range1::new(2, 4), r.j, r.k);
        let p = Placement::explicit(r, vec![(a, NodeId(0)), (b, NodeId(1))]);
        assert_eq!(p.slabs().len(), 2);
    }

    #[test]
    #[should_panic]
    fn explicit_rejects_gaps() {
        let r = Region3::of_extent(4, 1, 1);
        let a = Region3::new(Range1::new(0, 2), r.j, r.k);
        let _ = Placement::explicit(r, vec![(a, NodeId(0))]);
    }

    #[test]
    #[should_panic]
    fn explicit_rejects_overlap() {
        let r = Region3::of_extent(4, 1, 1);
        let a = Region3::new(Range1::new(0, 3), r.j, r.k);
        let b = Region3::new(Range1::new(2, 4), r.j, r.k);
        let _ = Placement::explicit(r, vec![(a, NodeId(0)), (b, NodeId(1))]);
    }

    #[test]
    fn interleaved_round_robins() {
        let r = Region3::of_extent(8, 2, 2);
        let p = Placement::interleaved(r, Axis::I, &[NodeId(0), NodeId(1)], 2);
        assert_eq!(p.node_of(0, 0, 0), Some(NodeId(0)));
        assert_eq!(p.node_of(2, 0, 0), Some(NodeId(1)));
        assert_eq!(p.node_of(4, 0, 0), Some(NodeId(0)));
        assert_eq!(p.node_of(6, 0, 0), Some(NodeId(1)));
        let total: f64 = p.bytes_on(r).iter().map(|(_, b)| b).sum();
        assert_eq!(total, p.total_bytes());
    }

    #[test]
    fn more_nodes_than_cells_leaves_empty_slabs_out() {
        let r = Region3::of_extent(2, 1, 1);
        let p = Placement::first_touch_split(r, Axis::I, &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(p.slabs().len(), 2);
        let total: f64 = p.bytes_on(r).iter().map(|(_, b)| b).sum();
        assert_eq!(total, 16.0);
    }
}
