//! # numa-sim
//!
//! A discrete-event simulator of SMP/NUMA machines, built as the hardware
//! substitute for the SGI UV 2000 server the islands-of-cores paper was
//! evaluated on (see `DESIGN.md` §2 for the substitution argument).
//!
//! The model has three layers:
//!
//! * [`Machine`] — topology: sockets with cores, shared caches and memory
//!   controllers; blade hubs; a NUMAlink-style backplane; shortest-path
//!   routes. [`UvParams::uv2000`] builds the paper's testbed.
//! * [`Placement`] — first-touch memory placement: which node's DRAM
//!   backs which slab of each array (serial vs. parallel initialization
//!   is exactly the paper's Table 1 distinction).
//! * [`simulate`] — the engine: per-core [`Op`] streams contend for
//!   controllers, cache ports and directed links; barriers couple cores.
//!   Local streaming, remote streaming, and latency-bound remote-cache
//!   pulls each behave qualitatively differently, which is what makes
//!   the original / (3+1)D / islands orderings come out of the model.
//!
//! ## Example
//!
//! ```
//! use numa_sim::{simulate, CoreId, NodeId, Op, SimConfig, TraceSet, UvParams};
//!
//! let machine = UvParams::uv2000(2).build();
//! let mut traces = TraceSet::for_cores(machine.core_count());
//! // Core 0 computes 1 Gflop, core 8 (other socket) reads 100 MB of
//! // node 0's memory across the blade.
//! traces.push(CoreId(0), Op::Compute { flops: 1e9 });
//! traces.push(CoreId(8), Op::MemRead { node: NodeId(0), bytes: 100e6 });
//! let report = simulate(&machine, &traces, &SimConfig::default())?;
//! assert!(report.makespan > 0.0);
//! assert_eq!(report.mem_remote_bytes, 100e6);
//! # Ok::<(), numa_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod engine;
mod memory;
mod presets;
mod report;
mod topology;
mod trace;

pub use cache::{CacheConfig, CacheSim, CacheStats};
pub use engine::{simulate, SimConfig, SimError, SimReport};
pub use memory::Placement;
pub use presets::{xeon_e5_2660v2, ScaleOutParams, UvParams};
pub use report::summarize;
pub use topology::{
    BuildMachineError, CoreId, CoreSpec, LinkId, LinkSpec, Machine, NodeId, NodeSpec,
};
pub use trace::{BarrierId, BarrierSpec, Op, TraceError, TraceSet};
