//! Calibrated machine presets.
//!
//! [`UvParams`] describes the SGI UV 2000 server of the IT4Innovations
//! centre used in the paper: up to 14 NUMA nodes (Intel Xeon E5-4627v2,
//! 8 cores @ 3.3 GHz), two sockets per blade behind a hub, blades joined
//! by a NUMAlink 6 backplane at 6.7 GB/s per direction. Theoretical peak
//! is 105.6 Gflop/s per socket (4 DP flop/cycle/core), 1478.4 Gflop/s for
//! the full configuration — matching Table 4 of the paper.

use crate::topology::{CoreSpec, LinkSpec, Machine, NodeId, NodeSpec};

/// Parameters of a UV 2000-like machine; defaults reproduce the paper's
/// testbed, the setters support sensitivity ablations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UvParams {
    /// Number of populated sockets (1..=14 on the paper's IRU).
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Core frequency, Hz.
    pub freq_hz: f64,
    /// Peak DP flops per cycle per core.
    pub flops_per_cycle: f64,
    /// Sustained fraction of peak for cache-resident MPDATA kernels.
    pub compute_efficiency: f64,
    /// Per-socket DRAM bandwidth, bytes/s.
    pub dram_bandwidth: f64,
    /// DRAM latency, s.
    pub dram_latency: f64,
    /// Intra-socket L3 bandwidth, bytes/s.
    pub l3_bandwidth: f64,
    /// L3 capacity per socket, bytes.
    pub l3_bytes: usize,
    /// Socket ↔ blade-hub link bandwidth (QPI-class), bytes/s.
    pub intra_blade_bandwidth: f64,
    /// Socket ↔ blade-hub link latency, s.
    pub intra_blade_latency: f64,
    /// Hub ↔ backplane NUMAlink 6 bandwidth per direction, bytes/s
    /// (each blade hub drives two NL6 channels, so the default is
    /// 2 × 6.7 GB/s).
    pub numalink_bandwidth: f64,
    /// Hub ↔ backplane latency, s.
    pub numalink_latency: f64,
}

impl UvParams {
    /// The paper's SGI UV 2000 with `sockets` populated sockets.
    ///
    /// # Panics
    ///
    /// Panics if `sockets` is 0 or exceeds 14.
    pub fn uv2000(sockets: usize) -> Self {
        assert!(
            (1..=14).contains(&sockets),
            "the paper's IRU hosts 1..=14 sockets, got {sockets}"
        );
        UvParams {
            sockets,
            cores_per_socket: 8,
            freq_hz: 3.3e9,
            flops_per_cycle: 4.0,
            compute_efficiency: 0.42,
            dram_bandwidth: 42e9,
            dram_latency: 90e-9,
            l3_bandwidth: 160e9,
            l3_bytes: 16 << 20,
            intra_blade_bandwidth: 16e9,
            intra_blade_latency: 120e-9,
            numalink_bandwidth: 13.4e9,
            numalink_latency: 280e-9,
        }
    }

    /// Scales both interconnect bandwidths by `factor` (sensitivity
    /// ablation A3).
    pub fn scale_interconnect(mut self, factor: f64) -> Self {
        self.intra_blade_bandwidth *= factor;
        self.numalink_bandwidth *= factor;
        self
    }

    /// Builds the [`Machine`].
    pub fn build(&self) -> Machine {
        let socket = NodeSpec {
            cores: self.cores_per_socket,
            core: CoreSpec {
                freq_hz: self.freq_hz,
                flops_per_cycle: self.flops_per_cycle,
                efficiency: self.compute_efficiency,
            },
            dram_bandwidth: self.dram_bandwidth,
            dram_latency: self.dram_latency,
            l3_bandwidth: self.l3_bandwidth,
            l3_bytes: self.l3_bytes,
        };
        let silent = NodeSpec {
            cores: 0,
            core: CoreSpec {
                freq_hz: 0.0,
                flops_per_cycle: 0.0,
                efficiency: 0.0,
            },
            dram_bandwidth: 0.0,
            dram_latency: 0.0,
            l3_bandwidth: 0.0,
            l3_bytes: 0,
        };

        let mut nodes = vec![socket; self.sockets];
        let mut links = Vec::new();
        if self.sockets == 1 {
            return Machine::build(nodes, links).expect("single-socket machine is valid");
        }
        let blades = self.sockets.div_ceil(2);
        // One hub node per blade.
        let hub_base = nodes.len();
        for _ in 0..blades {
            nodes.push(silent.clone());
        }
        for s in 0..self.sockets {
            links.push(LinkSpec {
                a: NodeId(s),
                b: NodeId(hub_base + s / 2),
                bandwidth: self.intra_blade_bandwidth,
                latency: self.intra_blade_latency,
            });
        }
        if blades > 1 {
            // Backplane switch joining the hubs.
            let backplane = nodes.len();
            nodes.push(silent);
            for h in 0..blades {
                links.push(LinkSpec {
                    a: NodeId(hub_base + h),
                    b: NodeId(backplane),
                    bandwidth: self.numalink_bandwidth,
                    latency: self.numalink_latency,
                });
            }
        }
        Machine::build(nodes, links).expect("preset topology is valid")
    }

    /// Theoretical peak of the configuration in Gflop/s (Table 4 row 1).
    pub fn peak_gflops(&self) -> f64 {
        self.sockets as f64 * self.cores_per_socket as f64 * self.freq_hz * self.flops_per_cycle
            / 1e9
    }
}

/// Parameters for a multi-IRU UV 2000 scale-out configuration — the
/// paper's §6 future-work direction ("extending the scalability of our
/// approach for much larger system configurations"). Each IRU is a full
/// [`UvParams`] machine; IRU backplanes are joined by a global NUMAlink
/// spine with higher latency and the same per-link bandwidth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaleOutParams {
    /// Number of individual rack units.
    pub irus: usize,
    /// The per-IRU configuration.
    pub iru: UvParams,
    /// IRU-backplane ↔ spine bandwidth per direction, bytes/s.
    pub spine_bandwidth: f64,
    /// IRU-backplane ↔ spine latency, s.
    pub spine_latency: f64,
}

impl ScaleOutParams {
    /// `irus` IRUs with `sockets_per_iru` sockets each.
    ///
    /// # Panics
    ///
    /// Panics if `irus == 0` or the per-IRU socket count is invalid.
    pub fn uv2000(irus: usize, sockets_per_iru: usize) -> Self {
        assert!(irus >= 1, "need at least one IRU");
        ScaleOutParams {
            irus,
            iru: UvParams::uv2000(sockets_per_iru),
            spine_bandwidth: 13.4e9,
            spine_latency: 700e-9,
        }
    }

    /// Total sockets across all IRUs.
    pub fn sockets(&self) -> usize {
        self.irus * self.iru.sockets
    }

    /// Theoretical peak in Gflop/s.
    pub fn peak_gflops(&self) -> f64 {
        self.irus as f64 * self.iru.peak_gflops()
    }

    /// Builds the multi-IRU machine. Socket numbering is IRU-major, so
    /// per-socket island layouts keep neighbouring parts on
    /// NUMA-adjacent processors across the whole system.
    pub fn build(&self) -> Machine {
        let p = &self.iru;
        let socket = NodeSpec {
            cores: p.cores_per_socket,
            core: CoreSpec {
                freq_hz: p.freq_hz,
                flops_per_cycle: p.flops_per_cycle,
                efficiency: p.compute_efficiency,
            },
            dram_bandwidth: p.dram_bandwidth,
            dram_latency: p.dram_latency,
            l3_bandwidth: p.l3_bandwidth,
            l3_bytes: p.l3_bytes,
        };
        let silent = NodeSpec {
            cores: 0,
            core: CoreSpec {
                freq_hz: 0.0,
                flops_per_cycle: 0.0,
                efficiency: 0.0,
            },
            dram_bandwidth: 0.0,
            dram_latency: 0.0,
            l3_bandwidth: 0.0,
            l3_bytes: 0,
        };
        // Sockets of all IRUs first (dense core numbering), then per-IRU
        // hubs and backplanes, then the spine.
        let total_sockets = self.sockets();
        let mut nodes = vec![socket; total_sockets];
        let mut links = Vec::new();
        let blades_per_iru = p.sockets.div_ceil(2);
        let mut backplanes = Vec::new();
        for iru in 0..self.irus {
            let socket0 = iru * p.sockets;
            let hub_base = nodes.len();
            for _ in 0..blades_per_iru {
                nodes.push(silent.clone());
            }
            for s in 0..p.sockets {
                links.push(LinkSpec {
                    a: NodeId(socket0 + s),
                    b: NodeId(hub_base + s / 2),
                    bandwidth: p.intra_blade_bandwidth,
                    latency: p.intra_blade_latency,
                });
            }
            let backplane = nodes.len();
            nodes.push(silent.clone());
            backplanes.push(backplane);
            for h in 0..blades_per_iru {
                links.push(LinkSpec {
                    a: NodeId(hub_base + h),
                    b: NodeId(backplane),
                    bandwidth: p.numalink_bandwidth,
                    latency: p.numalink_latency,
                });
            }
        }
        if self.irus > 1 {
            let spine = nodes.len();
            nodes.push(silent);
            for &b in &backplanes {
                links.push(LinkSpec {
                    a: NodeId(b),
                    b: NodeId(spine),
                    bandwidth: self.spine_bandwidth,
                    latency: self.spine_latency,
                });
            }
        }
        Machine::build(nodes, links).expect("scale-out topology is valid")
    }
}

/// The single-socket Intel Xeon E5-2660v2 used for the paper's §3.2
/// traffic measurement (10 cores @ 2.2 GHz, 25 MB L3).
pub fn xeon_e5_2660v2() -> Machine {
    let socket = NodeSpec {
        cores: 10,
        core: CoreSpec {
            freq_hz: 2.2e9,
            flops_per_cycle: 4.0,
            efficiency: 0.42,
        },
        dram_bandwidth: 48e9,
        dram_latency: 85e-9,
        l3_bandwidth: 180e9,
        l3_bytes: 25 << 20,
    };
    Machine::build(vec![socket], vec![]).expect("single socket is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeId;

    #[test]
    fn peak_matches_table4() {
        // Table 4: 105.6, 211.2, ..., 1478.4 Gflop/s.
        assert!((UvParams::uv2000(1).peak_gflops() - 105.6).abs() < 1e-9);
        assert!((UvParams::uv2000(4).peak_gflops() - 422.4).abs() < 1e-9);
        assert!((UvParams::uv2000(14).peak_gflops() - 1478.4).abs() < 1e-9);
    }

    #[test]
    fn full_machine_has_112_cores() {
        let m = UvParams::uv2000(14).build();
        assert_eq!(m.core_count(), 112);
        assert_eq!(m.compute_nodes().len(), 14);
        assert!((m.peak_flops() / 1e9 - 1478.4).abs() < 1e-6);
    }

    #[test]
    fn single_socket_has_no_links() {
        let m = UvParams::uv2000(1).build();
        assert_eq!(m.core_count(), 8);
        assert!(m.links().is_empty());
    }

    #[test]
    fn intra_blade_is_closer_than_inter_blade() {
        let m = UvParams::uv2000(4).build();
        // Sockets 0,1 share blade 0; sockets 2,3 share blade 1.
        assert!(m.hops(NodeId(0), NodeId(1)) < m.hops(NodeId(0), NodeId(2)));
        // Inter-blade bandwidth is pinched by NUMAlink.
        assert!(m.route_bandwidth(NodeId(0), NodeId(2)) < m.route_bandwidth(NodeId(0), NodeId(1)));
        assert!((m.route_bandwidth(NodeId(0), NodeId(2)) - 13.4e9).abs() < 1.0);
    }

    #[test]
    fn two_sockets_single_blade_skips_backplane() {
        let m = UvParams::uv2000(2).build();
        assert_eq!(m.hops(NodeId(0), NodeId(1)), 2); // via the blade hub
        assert!((m.route_bandwidth(NodeId(0), NodeId(1)) - 16e9).abs() < 1.0);
    }

    #[test]
    fn odd_socket_count_builds() {
        let m = UvParams::uv2000(7).build();
        assert_eq!(m.core_count(), 56);
        assert_eq!(m.compute_nodes().len(), 7);
    }

    #[test]
    fn interconnect_scaling() {
        let p = UvParams::uv2000(4).scale_interconnect(0.5);
        assert!((p.numalink_bandwidth - 6.7e9).abs() < 1.0);
        let m = p.build();
        assert!((m.route_bandwidth(NodeId(0), NodeId(2)) - 6.7e9).abs() < 1.0);
    }

    #[test]
    fn e5_2660v2_preset() {
        let m = xeon_e5_2660v2();
        assert_eq!(m.core_count(), 10);
        assert_eq!(m.nodes()[0].l3_bytes, 25 << 20);
    }

    #[test]
    #[should_panic]
    fn more_than_14_sockets_panics() {
        let _ = UvParams::uv2000(15);
    }

    #[test]
    fn scaleout_builds_multiple_irus() {
        let p = ScaleOutParams::uv2000(2, 14);
        assert_eq!(p.sockets(), 28);
        assert!((p.peak_gflops() - 2956.8).abs() < 1e-6);
        let m = p.build();
        assert_eq!(m.core_count(), 224);
        assert_eq!(m.compute_nodes().len(), 28);
        // Same-IRU sockets are closer than cross-IRU sockets.
        assert!(m.hops(NodeId(0), NodeId(13)) < m.hops(NodeId(0), NodeId(14)));
        // The cross-IRU route threads the spine: 6 hops
        // (socket-hub-backplane-spine-backplane-hub-socket).
        assert_eq!(m.hops(NodeId(0), NodeId(14)), 6);
    }

    #[test]
    fn scaleout_single_iru_matches_uv2000() {
        let a = ScaleOutParams::uv2000(1, 8).build();
        let b = UvParams::uv2000(8).build();
        assert_eq!(a.core_count(), b.core_count());
        assert_eq!(a.compute_nodes(), b.compute_nodes());
        assert_eq!(a.hops(NodeId(0), NodeId(7)), b.hops(NodeId(0), NodeId(7)));
    }
}
