//! Work traces: the per-core operation streams the engine executes.
//!
//! Execution planners (in `islands-core`) translate an execution strategy
//! — original, (3+1)D, islands-of-cores — into one [`CoreTrace`] per core
//! plus a set of [`BarrierSpec`]s. The trace granularity is a *work item*
//! (a stage applied to a region chunk, a slab streamed from memory), not
//! individual instructions: coarse enough to simulate 112 cores over a
//! full time step in milliseconds, fine enough that queueing on shared
//! memory controllers and NUMAlink ports reproduces the paper's
//! contention phenomena.

use crate::topology::{CoreId, NodeId};
use std::error::Error;
use std::fmt;

/// Identifier of a barrier within one [`TraceSet`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BarrierId(pub usize);

impl BarrierId {
    /// The index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// One operation of a core's trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// Execute `flops` floating-point operations from cache-resident data.
    Compute {
        /// Number of double-precision operations.
        flops: f64,
    },
    /// Stream `bytes` from the DRAM of `node` into this core's cache.
    MemRead {
        /// Home node of the data.
        node: NodeId,
        /// Bytes transferred.
        bytes: f64,
    },
    /// Stream `bytes` from this core's cache to the DRAM of `node`.
    MemWrite {
        /// Home node of the data.
        node: NodeId,
        /// Bytes transferred.
        bytes: f64,
    },
    /// Pull `bytes` that currently live in the *cache* of another node
    /// (coherence traffic). Far more expensive per byte than streaming
    /// DRAM: demand misses are limited by line-sized round trips.
    CacheRead {
        /// Node whose cache holds the data.
        node: NodeId,
        /// Bytes transferred.
        bytes: f64,
    },
    /// A streaming kernel: move `bytes` between this core and the DRAM
    /// of `node` while executing `flops` arithmetic. Hardware
    /// prefetching overlaps the two, so the core is busy for the
    /// *maximum* of the transfer time and the compute time — while the
    /// transfer still reserves controller and link capacity. This is the
    /// natural model for stencil sweeps, which are max(memory, compute)
    /// bound rather than the sum.
    Stream {
        /// Home node of the data.
        node: NodeId,
        /// Bytes transferred.
        bytes: f64,
        /// Overlapped double-precision operations.
        flops: f64,
        /// `true` when the stream writes to memory (data flows
        /// core → home), `false` for a read stream.
        write: bool,
    },
    /// Synchronize with the other participants of the barrier.
    Barrier {
        /// Which barrier.
        id: BarrierId,
    },
}

/// Participants of a reusable barrier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BarrierSpec {
    /// The cores that must all arrive to release an episode.
    pub participants: Vec<CoreId>,
}

/// A complete simulation input: one op stream per core (cores without
/// work simply have empty streams) and the barrier table.
#[derive(Clone, Debug, Default)]
pub struct TraceSet {
    /// `ops[c]` is the stream of core `c`.
    pub ops: Vec<Vec<Op>>,
    /// Barrier table indexed by [`BarrierId`].
    pub barriers: Vec<BarrierSpec>,
}

/// Error validating a [`TraceSet`] against a machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The trace set has streams for more cores than the machine has.
    TooManyCores {
        /// Streams provided.
        given: usize,
        /// Cores available.
        available: usize,
    },
    /// An op references a node outside the machine.
    BadNode {
        /// Core whose stream is invalid.
        core: CoreId,
        /// Index of the op.
        op: usize,
    },
    /// An op references a barrier outside the table, or a barrier lists a
    /// participant with no stream, or the episode counts of the
    /// participants of one barrier disagree.
    BadBarrier {
        /// The offending barrier.
        id: BarrierId,
    },
    /// A transfer has a negative or non-finite byte count / flop count.
    BadAmount {
        /// Core whose stream is invalid.
        core: CoreId,
        /// Index of the op.
        op: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::TooManyCores { given, available } => {
                write!(
                    f,
                    "trace has {given} core streams but machine has {available} cores"
                )
            }
            TraceError::BadNode { core, op } => write!(f, "{core} op {op} references a bad node"),
            TraceError::BadBarrier { id } => write!(f, "barrier {} is inconsistent", id.0),
            TraceError::BadAmount { core, op } => {
                write!(f, "{core} op {op} has a non-finite or negative amount")
            }
        }
    }
}

impl Error for TraceError {}

impl TraceSet {
    /// Creates an empty trace set for `cores` cores.
    pub fn for_cores(cores: usize) -> Self {
        TraceSet {
            ops: vec![Vec::new(); cores],
            barriers: Vec::new(),
        }
    }

    /// Registers a barrier over `participants` and returns its id.
    pub fn add_barrier(&mut self, participants: Vec<CoreId>) -> BarrierId {
        let id = BarrierId(self.barriers.len());
        self.barriers.push(BarrierSpec { participants });
        id
    }

    /// Appends `op` to the stream of `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn push(&mut self, core: CoreId, op: Op) {
        self.ops[core.index()].push(op);
    }

    /// Total ops across all cores.
    pub fn op_count(&self) -> usize {
        self.ops.iter().map(Vec::len).sum()
    }

    /// Validates the trace set against a machine with `node_count` nodes
    /// and `core_count` cores.
    ///
    /// # Errors
    ///
    /// See [`TraceError`].
    pub fn validate(&self, node_count: usize, core_count: usize) -> Result<(), TraceError> {
        if self.ops.len() > core_count {
            return Err(TraceError::TooManyCores {
                given: self.ops.len(),
                available: core_count,
            });
        }
        let mut episodes = vec![Vec::new(); self.barriers.len()];
        for (c, stream) in self.ops.iter().enumerate() {
            let core = CoreId(c);
            let mut my_episodes = vec![0usize; self.barriers.len()];
            for (n, op) in stream.iter().enumerate() {
                match *op {
                    Op::Compute { flops } => {
                        if !flops.is_finite() || flops < 0.0 {
                            return Err(TraceError::BadAmount { core, op: n });
                        }
                    }
                    Op::MemRead { node, bytes }
                    | Op::MemWrite { node, bytes }
                    | Op::CacheRead { node, bytes } => {
                        if node.index() >= node_count {
                            return Err(TraceError::BadNode { core, op: n });
                        }
                        if !bytes.is_finite() || bytes < 0.0 {
                            return Err(TraceError::BadAmount { core, op: n });
                        }
                    }
                    Op::Stream {
                        node, bytes, flops, ..
                    } => {
                        if node.index() >= node_count {
                            return Err(TraceError::BadNode { core, op: n });
                        }
                        if !bytes.is_finite() || bytes < 0.0 || !flops.is_finite() || flops < 0.0 {
                            return Err(TraceError::BadAmount { core, op: n });
                        }
                    }
                    Op::Barrier { id } => {
                        if id.index() >= self.barriers.len() {
                            return Err(TraceError::BadBarrier { id });
                        }
                        if !self.barriers[id.index()].participants.contains(&core) {
                            return Err(TraceError::BadBarrier { id });
                        }
                        my_episodes[id.index()] += 1;
                    }
                }
            }
            for (b, &count) in my_episodes.iter().enumerate() {
                if count > 0 {
                    episodes[b].push((core, count));
                }
            }
        }
        for (b, spec) in self.barriers.iter().enumerate() {
            let id = BarrierId(b);
            // Every participant must hit the barrier the same number of
            // times (possibly zero for an unused barrier), and only
            // participants may hit it (checked above).
            let counts: Vec<usize> = spec
                .participants
                .iter()
                .map(|p| {
                    episodes[b]
                        .iter()
                        .find(|(c, _)| c == p)
                        .map(|(_, n)| *n)
                        .unwrap_or(0)
                })
                .collect();
            if let Some(&first) = counts.first() {
                if counts.iter().any(|&c| c != first) {
                    return Err(TraceError::BadBarrier { id });
                }
            }
            for p in &spec.participants {
                if p.index() >= self.ops.len() {
                    return Err(TraceError::BadBarrier { id });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_count() {
        let mut t = TraceSet::for_cores(2);
        let b = t.add_barrier(vec![CoreId(0), CoreId(1)]);
        t.push(CoreId(0), Op::Compute { flops: 100.0 });
        t.push(CoreId(0), Op::Barrier { id: b });
        t.push(CoreId(1), Op::Barrier { id: b });
        assert_eq!(t.op_count(), 3);
        t.validate(1, 2).unwrap();
    }

    #[test]
    fn validate_rejects_bad_node() {
        let mut t = TraceSet::for_cores(1);
        t.push(
            CoreId(0),
            Op::MemRead {
                node: NodeId(5),
                bytes: 10.0,
            },
        );
        assert!(matches!(t.validate(2, 1), Err(TraceError::BadNode { .. })));
    }

    #[test]
    fn validate_rejects_negative_amounts() {
        let mut t = TraceSet::for_cores(1);
        t.push(CoreId(0), Op::Compute { flops: -1.0 });
        assert!(matches!(
            t.validate(1, 1),
            Err(TraceError::BadAmount { .. })
        ));
    }

    #[test]
    fn validate_rejects_unbalanced_barrier_episodes() {
        let mut t = TraceSet::for_cores(2);
        let b = t.add_barrier(vec![CoreId(0), CoreId(1)]);
        t.push(CoreId(0), Op::Barrier { id: b });
        t.push(CoreId(0), Op::Barrier { id: b });
        t.push(CoreId(1), Op::Barrier { id: b });
        assert_eq!(t.validate(1, 2), Err(TraceError::BadBarrier { id: b }));
    }

    #[test]
    fn validate_rejects_non_participant_wait() {
        let mut t = TraceSet::for_cores(2);
        let b = t.add_barrier(vec![CoreId(0)]);
        t.push(CoreId(1), Op::Barrier { id: b });
        assert_eq!(t.validate(1, 2), Err(TraceError::BadBarrier { id: b }));
    }

    #[test]
    fn validate_rejects_too_many_cores() {
        let t = TraceSet::for_cores(9);
        assert!(matches!(
            t.validate(1, 8),
            Err(TraceError::TooManyCores { .. })
        ));
    }
}
