//! Machine topology: cores, NUMA nodes, blades and interconnect links.
//!
//! A [`Machine`] is a graph of [`NodeSpec`]s (sockets with cores, a cache
//! and a memory controller, or core-less switch/hub nodes) connected by
//! full-duplex [`LinkSpec`]s. Routes between nodes are shortest paths
//! precomputed with BFS; the discrete-event engine charges transfers
//! against every link of the route, per direction.

use std::error::Error;
use std::fmt;

/// Identifier of a core, dense across the whole machine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct CoreId(pub usize);

impl CoreId {
    /// The index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifier of a NUMA node (socket, hub or switch).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifier of a directed link resource (`link.index * 2 + direction`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LinkId(pub usize);

impl LinkId {
    /// The index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Per-core execution parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoreSpec {
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    /// Peak double-precision flops per cycle (AVX without FMA: 4).
    pub flops_per_cycle: f64,
    /// Fraction of peak a cache-resident stencil kernel sustains
    /// (vectorization losses, dependency chains, divisions).
    pub efficiency: f64,
}

impl CoreSpec {
    /// Peak flop rate in flop/s.
    pub fn peak_flops(&self) -> f64 {
        self.freq_hz * self.flops_per_cycle
    }

    /// Sustained flop rate for compute-bound kernels in flop/s.
    pub fn sustained_flops(&self) -> f64 {
        self.peak_flops() * self.efficiency
    }
}

/// One NUMA node: a socket with cores, shared cache and a local memory
/// controller — or, with `cores == 0`, a core-less hub/switch.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSpec {
    /// Number of cores (0 for hubs/switches).
    pub cores: usize,
    /// Execution parameters of each core (ignored when `cores == 0`).
    pub core: CoreSpec,
    /// Local DRAM bandwidth in bytes/s (0 for memory-less hubs).
    pub dram_bandwidth: f64,
    /// DRAM access latency in seconds.
    pub dram_latency: f64,
    /// Intra-node shared-cache bandwidth in bytes/s, used for
    /// core-to-core traffic that stays inside the node.
    pub l3_bandwidth: f64,
    /// Shared last-level cache capacity in bytes (drives (3+1)D block
    /// sizing).
    pub l3_bytes: usize,
}

/// A full-duplex link between two nodes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Bandwidth per direction in bytes/s.
    pub bandwidth: f64,
    /// One-way latency in seconds.
    pub latency: f64,
}

/// Error building a [`Machine`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildMachineError {
    /// The machine has no cores anywhere.
    NoCores,
    /// A link references a node that does not exist.
    DanglingLink {
        /// Index of the offending link.
        link: usize,
    },
    /// Some pair of nodes has no connecting path.
    Disconnected {
        /// A node unreachable from node 0.
        node: NodeId,
    },
}

impl fmt::Display for BuildMachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildMachineError::NoCores => write!(f, "machine has no cores"),
            BuildMachineError::DanglingLink { link } => {
                write!(f, "link {link} references a missing node")
            }
            BuildMachineError::Disconnected { node } => {
                write!(f, "{node} is unreachable from node0")
            }
        }
    }
}

impl Error for BuildMachineError {}

/// An immutable machine description with precomputed routes.
#[derive(Clone, Debug)]
pub struct Machine {
    nodes: Vec<NodeSpec>,
    links: Vec<LinkSpec>,
    core_node: Vec<NodeId>,
    node_cores: Vec<Vec<CoreId>>,
    /// `routes[a][b]` = directed link resources along the path a → b.
    routes: Vec<Vec<Vec<LinkId>>>,
    hops: Vec<Vec<usize>>,
}

impl Machine {
    /// Validates and builds a machine, computing shortest routes.
    ///
    /// # Errors
    ///
    /// See [`BuildMachineError`].
    pub fn build(nodes: Vec<NodeSpec>, links: Vec<LinkSpec>) -> Result<Self, BuildMachineError> {
        let n = nodes.len();
        for (idx, l) in links.iter().enumerate() {
            if l.a.index() >= n || l.b.index() >= n {
                return Err(BuildMachineError::DanglingLink { link: idx });
            }
        }
        // Dense core numbering: node 0's cores first, then node 1's, ...
        let mut core_node = Vec::new();
        let mut node_cores = vec![Vec::new(); n];
        for (ni, node) in nodes.iter().enumerate() {
            for _ in 0..node.cores {
                let c = CoreId(core_node.len());
                node_cores[ni].push(c);
                core_node.push(NodeId(ni));
            }
        }
        if core_node.is_empty() {
            return Err(BuildMachineError::NoCores);
        }
        // Adjacency: (neighbour, link index, direction) where direction 0
        // means travelling a → b.
        let mut adj: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); n];
        for (idx, l) in links.iter().enumerate() {
            adj[l.a.index()].push((l.b.index(), idx, 0));
            adj[l.b.index()].push((l.a.index(), idx, 1));
        }
        // BFS from every node.
        let mut routes = vec![vec![Vec::new(); n]; n];
        let mut hops = vec![vec![0usize; n]; n];
        for src in 0..n {
            let mut prev: Vec<Option<(usize, usize, usize)>> = vec![None; n];
            let mut dist: Vec<Option<usize>> = vec![None; n];
            dist[src] = Some(0);
            let mut queue = std::collections::VecDeque::from([src]);
            while let Some(u) = queue.pop_front() {
                for &(v, link, dir) in &adj[u] {
                    if dist[v].is_none() {
                        dist[v] = Some(dist[u].unwrap() + 1);
                        prev[v] = Some((u, link, dir));
                        queue.push_back(v);
                    }
                }
            }
            for dst in 0..n {
                match dist[dst] {
                    None => return Err(BuildMachineError::Disconnected { node: NodeId(dst) }),
                    Some(d) => hops[src][dst] = d,
                }
                // Reconstruct the path dst → src, then reverse it.
                let mut path = Vec::new();
                let mut cur = dst;
                while cur != src {
                    let (p, link, dir) = prev[cur].expect("path exists");
                    path.push(LinkId(link * 2 + dir));
                    cur = p;
                }
                path.reverse();
                routes[src][dst] = path;
            }
        }
        Ok(Machine {
            nodes,
            links,
            core_node,
            node_cores,
            routes,
            hops,
        })
    }

    /// Node specifications.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Link specifications (undirected; each yields two directed
    /// resources).
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Total number of cores.
    pub fn core_count(&self) -> usize {
        self.core_node.len()
    }

    /// Number of nodes (including core-less hubs).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes that actually carry cores (sockets), in index order.
    pub fn compute_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&n| self.nodes[n].cores > 0)
            .map(NodeId)
            .collect()
    }

    /// The node hosting `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn node_of(&self, core: CoreId) -> NodeId {
        self.core_node[core.index()]
    }

    /// The cores of `node`.
    pub fn cores_of(&self, node: NodeId) -> &[CoreId] {
        &self.node_cores[node.index()]
    }

    /// Directed link resources along the shortest path `from → to`
    /// (empty when `from == to`).
    pub fn route(&self, from: NodeId, to: NodeId) -> &[LinkId] {
        &self.routes[from.index()][to.index()]
    }

    /// Hop count of the shortest path.
    pub fn hops(&self, from: NodeId, to: NodeId) -> usize {
        self.hops[from.index()][to.index()]
    }

    /// Bandwidth of a directed link resource in bytes/s.
    pub fn link_bandwidth(&self, link: LinkId) -> f64 {
        self.links[link.index() / 2].bandwidth
    }

    /// One-way latency of a directed link resource in seconds.
    pub fn link_latency(&self, link: LinkId) -> f64 {
        self.links[link.index() / 2].latency
    }

    /// Total latency along the route `from → to`.
    pub fn route_latency(&self, from: NodeId, to: NodeId) -> f64 {
        self.route(from, to)
            .iter()
            .map(|&l| self.link_latency(l))
            .sum()
    }

    /// Narrowest bandwidth along the route, or `f64::INFINITY` for the
    /// local route.
    pub fn route_bandwidth(&self, from: NodeId, to: NodeId) -> f64 {
        self.route(from, to)
            .iter()
            .map(|&l| self.link_bandwidth(l))
            .fold(f64::INFINITY, f64::min)
    }

    /// A compact human-readable description of the machine (an
    /// `lstopo`-style summary).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let sockets = self.compute_nodes();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "machine: {} cores on {} sockets ({} nodes incl. hubs), peak {:.1} Gflop/s",
            self.core_count(),
            sockets.len(),
            self.node_count(),
            self.peak_flops() / 1e9
        );
        for n in &sockets {
            let spec = &self.nodes[n.index()];
            let _ = writeln!(
                out,
                "  {}: {} cores @ {:.1} GHz, {:.0} GB/s DRAM, {} MiB L3",
                n,
                spec.cores,
                spec.core.freq_hz / 1e9,
                spec.dram_bandwidth / 1e9,
                spec.l3_bytes >> 20
            );
        }
        if !self.links.is_empty() {
            let far = sockets
                .iter()
                .flat_map(|a| sockets.iter().map(move |b| self.hops(*a, *b)))
                .max()
                .unwrap_or(0);
            let _ = writeln!(
                out,
                "  interconnect: {} links, max socket distance {} hops, narrowest socket-to-socket path {:.1} GB/s",
                self.links.len(),
                far,
                sockets
                    .iter()
                    .flat_map(|a| sockets
                        .iter()
                        .filter(move |b| *b != a)
                        .map(move |b| self.route_bandwidth(*a, *b)))
                    .fold(f64::INFINITY, f64::min)
                    / 1e9
            );
        }
        out
    }

    /// Renders the topology as a Graphviz `dot` graph: sockets as boxes
    /// (labelled with cores and bandwidth), hubs/switches as points,
    /// links labelled with per-direction GB/s.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("graph machine {\n  layout=neato;\n");
        for (n, node) in self.nodes.iter().enumerate() {
            if node.cores > 0 {
                let _ = writeln!(
                    out,
                    "  n{n} [shape=box, label=\"node{n}\\n{} cores\\n{:.0} GB/s DRAM\"];",
                    node.cores,
                    node.dram_bandwidth / 1e9
                );
            } else {
                let _ = writeln!(out, "  n{n} [shape=point, label=\"\"];");
            }
        }
        for l in &self.links {
            let _ = writeln!(
                out,
                "  n{} -- n{} [label=\"{:.1} GB/s\"];",
                l.a.index(),
                l.b.index(),
                l.bandwidth / 1e9
            );
        }
        out.push_str("}\n");
        out
    }

    /// Theoretical peak double-precision performance of all cores, flop/s.
    pub fn peak_flops(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.cores as f64 * n.core.peak_flops())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn socket(cores: usize) -> NodeSpec {
        NodeSpec {
            cores,
            core: CoreSpec {
                freq_hz: 3.3e9,
                flops_per_cycle: 4.0,
                efficiency: 0.5,
            },
            dram_bandwidth: 50e9,
            dram_latency: 90e-9,
            l3_bandwidth: 200e9,
            l3_bytes: 16 << 20,
        }
    }

    fn hub() -> NodeSpec {
        NodeSpec {
            cores: 0,
            core: CoreSpec {
                freq_hz: 0.0,
                flops_per_cycle: 0.0,
                efficiency: 0.0,
            },
            dram_bandwidth: 0.0,
            dram_latency: 0.0,
            l3_bandwidth: 0.0,
            l3_bytes: 0,
        }
    }

    fn link(a: usize, b: usize) -> LinkSpec {
        LinkSpec {
            a: NodeId(a),
            b: NodeId(b),
            bandwidth: 6.7e9,
            latency: 500e-9,
        }
    }

    #[test]
    fn dense_core_numbering() {
        let m = Machine::build(vec![socket(2), socket(3)], vec![link(0, 1)]).unwrap();
        assert_eq!(m.core_count(), 5);
        assert_eq!(m.node_of(CoreId(0)), NodeId(0));
        assert_eq!(m.node_of(CoreId(1)), NodeId(0));
        assert_eq!(m.node_of(CoreId(2)), NodeId(1));
        assert_eq!(m.cores_of(NodeId(1)), &[CoreId(2), CoreId(3), CoreId(4)]);
    }

    #[test]
    fn routes_via_hub() {
        // sockets 0,1 — hub 2 in the middle.
        let m = Machine::build(
            vec![socket(1), socket(1), hub()],
            vec![link(0, 2), link(1, 2)],
        )
        .unwrap();
        let r = m.route(NodeId(0), NodeId(1));
        assert_eq!(r.len(), 2);
        assert_eq!(m.hops(NodeId(0), NodeId(1)), 2);
        assert!(m.route(NodeId(0), NodeId(0)).is_empty());
        assert_eq!(m.hops(NodeId(1), NodeId(1)), 0);
        assert_eq!(m.compute_nodes(), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn directed_resources_differ_by_direction() {
        let m = Machine::build(vec![socket(1), socket(1)], vec![link(0, 1)]).unwrap();
        let fwd = m.route(NodeId(0), NodeId(1)).to_vec();
        let back = m.route(NodeId(1), NodeId(0)).to_vec();
        assert_ne!(fwd, back, "directions must map to distinct resources");
        assert_eq!(m.route_bandwidth(NodeId(0), NodeId(1)), 6.7e9);
        assert_eq!(m.route_latency(NodeId(0), NodeId(1)), 500e-9);
        assert_eq!(m.route_bandwidth(NodeId(0), NodeId(0)), f64::INFINITY);
    }

    #[test]
    fn build_errors() {
        assert_eq!(
            Machine::build(vec![hub()], vec![]).unwrap_err(),
            BuildMachineError::NoCores
        );
        assert_eq!(
            Machine::build(vec![socket(1)], vec![link(0, 3)]).unwrap_err(),
            BuildMachineError::DanglingLink { link: 0 }
        );
        assert_eq!(
            Machine::build(vec![socket(1), socket(1)], vec![]).unwrap_err(),
            BuildMachineError::Disconnected { node: NodeId(1) }
        );
    }

    #[test]
    fn peak_flops_sums_sockets() {
        let m = Machine::build(
            vec![socket(8), socket(8), hub()],
            vec![link(0, 2), link(1, 2)],
        )
        .unwrap();
        let per_socket = 8.0 * 3.3e9 * 4.0;
        assert!((m.peak_flops() - 2.0 * per_socket).abs() < 1.0);
    }

    #[test]
    fn summary_reports_key_facts() {
        let m = Machine::build(
            vec![socket(2), socket(2), hub()],
            vec![link(0, 2), link(1, 2)],
        )
        .unwrap();
        let s = m.summary();
        assert!(s.contains("4 cores on 2 sockets"));
        assert!(s.contains("3.3 GHz"));
        assert!(s.contains("max socket distance 2 hops"));
        assert!(s.contains("6.7 GB/s"));
        // Single-socket machines skip the interconnect line.
        let one = Machine::build(vec![socket(4)], vec![]).unwrap();
        assert!(!one.summary().contains("interconnect"));
    }

    #[test]
    fn dot_export_mentions_every_node_and_link() {
        let m = Machine::build(
            vec![socket(2), socket(2), hub()],
            vec![link(0, 2), link(1, 2)],
        )
        .unwrap();
        let dot = m.to_dot();
        assert!(dot.starts_with("graph machine {"));
        assert!(dot.contains("n0 [shape=box"));
        assert!(dot.contains("n2 [shape=point"));
        assert_eq!(dot.matches(" -- ").count(), 2);
        assert!(dot.contains("6.7 GB/s"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn core_spec_rates() {
        let c = CoreSpec {
            freq_hz: 3.3e9,
            flops_per_cycle: 4.0,
            efficiency: 0.5,
        };
        assert!((c.peak_flops() - 13.2e9).abs() < 1.0);
        assert!((c.sustained_flops() - 6.6e9).abs() < 1.0);
    }
}
