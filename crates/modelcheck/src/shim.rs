//! Drop-in synchronization primitives that route through the model.
//!
//! Each shim owns a *real* `std::sync` object plus a label. On a model
//! thread (spawned by [`crate::Checker`]) every operation is submitted
//! to the orchestrator, which serializes it, applies the modelled
//! memory semantics, and picks the (possibly stale) value the op
//! observes. Off a model thread — or while unwinding from an aborted
//! execution — the shim falls back to the real primitive, so the same
//! code runs unchanged in plain unit tests and in `Scenario::after`
//! property closures (where the real values reflect the final state).
//!
//! The real value is kept in sync after every granted write, so it
//! always holds the newest store of the modelled history.

use crate::exec::{current, OpKind, OpReq};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, LockResult, Mutex, MutexGuard, PoisonError};

fn key_of<T: ?Sized>(x: &T) -> usize {
    x as *const T as *const u8 as usize
}

/// Shimmed `AtomicU64`.
pub struct ModelAtomicU64 {
    real: AtomicU64,
    label: &'static str,
}

impl ModelAtomicU64 {
    pub fn new(v: u64) -> ModelAtomicU64 {
        Self::with_label(v, "atomic-u64")
    }

    pub fn with_label(v: u64, label: &'static str) -> ModelAtomicU64 {
        ModelAtomicU64 {
            real: AtomicU64::new(v),
            label,
        }
    }

    pub fn load(&self, ord: Ordering) -> u64 {
        match current() {
            Some((sh, tid)) => sh.submit(
                tid,
                OpReq {
                    loc_key: key_of(self),
                    label: self.label,
                    init: self.real.load(Ordering::Relaxed),
                    kind: OpKind::Load { ord },
                },
            ),
            None => self.real.load(ord),
        }
    }

    pub fn store(&self, v: u64, ord: Ordering) {
        match current() {
            Some((sh, tid)) => {
                sh.submit(
                    tid,
                    OpReq {
                        loc_key: key_of(self),
                        label: self.label,
                        init: self.real.load(Ordering::Relaxed),
                        kind: OpKind::Store { val: v, ord },
                    },
                );
                self.real.store(v, Ordering::Relaxed);
            }
            None => self.real.store(v, ord),
        }
    }

    pub fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
        self.rmw(v as i64, ord)
    }

    pub fn fetch_sub(&self, v: u64, ord: Ordering) -> u64 {
        self.rmw((v as i64).wrapping_neg(), ord)
    }

    fn rmw(&self, delta: i64, ord: Ordering) -> u64 {
        match current() {
            Some((sh, tid)) => {
                let prev = sh.submit(
                    tid,
                    OpReq {
                        loc_key: key_of(self),
                        label: self.label,
                        init: self.real.load(Ordering::Relaxed),
                        kind: OpKind::Rmw { delta, ord },
                    },
                );
                self.real
                    .store(prev.wrapping_add_signed(delta), Ordering::Relaxed);
                prev
            }
            None => {
                if delta >= 0 {
                    self.real.fetch_add(delta as u64, ord)
                } else {
                    self.real.fetch_sub(delta.unsigned_abs(), ord)
                }
            }
        }
    }
}

/// Shimmed `AtomicUsize`.
pub struct ModelAtomicUsize {
    inner: ModelAtomicU64,
}

impl ModelAtomicUsize {
    pub fn new(v: usize) -> ModelAtomicUsize {
        Self::with_label(v, "atomic-usize")
    }

    pub fn with_label(v: usize, label: &'static str) -> ModelAtomicUsize {
        ModelAtomicUsize {
            inner: ModelAtomicU64::with_label(v as u64, label),
        }
    }

    pub fn load(&self, ord: Ordering) -> usize {
        self.inner.load(ord) as usize
    }

    pub fn store(&self, v: usize, ord: Ordering) {
        self.inner.store(v as u64, ord);
    }

    pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
        self.inner.fetch_add(v as u64, ord) as usize
    }

    pub fn fetch_sub(&self, v: usize, ord: Ordering) -> usize {
        self.inner.fetch_sub(v as u64, ord) as usize
    }
}

/// Shimmed `AtomicBool` (0/1 in the model history).
pub struct ModelAtomicBool {
    inner: ModelAtomicU64,
}

impl ModelAtomicBool {
    pub fn new(v: bool) -> ModelAtomicBool {
        Self::with_label(v, "atomic-bool")
    }

    pub fn with_label(v: bool, label: &'static str) -> ModelAtomicBool {
        ModelAtomicBool {
            inner: ModelAtomicU64::with_label(v as u64, label),
        }
    }

    pub fn load(&self, ord: Ordering) -> bool {
        self.inner.load(ord) != 0
    }

    pub fn store(&self, v: bool, ord: Ordering) {
        self.inner.store(v as u64, ord);
    }
}

/// Shimmed non-atomic cell with happens-before race detection.
///
/// On a model thread each access first asks the orchestrator to check
/// it against the location's happens-before state (an unordered pair is
/// reported as a data race / torn read), then performs the raw access.
/// Outside a model execution it is a plain unsynchronized cell and must
/// only be used single-threadedly — exactly the contract of the
/// `Cell`-based trace ring it stands in for.
pub struct ModelCell<T> {
    inner: UnsafeCell<T>,
    label: &'static str,
}

// SAFETY: the orchestrator serializes model threads (exactly one runs
// between scheduling points), so the raw accesses below are never
// physically concurrent; logically-racy pairs are detected and abort
// the execution. Off-model use is restricted to one thread by contract.
unsafe impl<T: Send> Sync for ModelCell<T> {}

impl<T: Copy> ModelCell<T> {
    pub fn new(v: T) -> ModelCell<T> {
        Self::with_label(v, "cell")
    }

    pub fn with_label(v: T, label: &'static str) -> ModelCell<T> {
        ModelCell {
            inner: UnsafeCell::new(v),
            label,
        }
    }

    pub fn get(&self) -> T {
        if let Some((sh, tid)) = current() {
            sh.submit(
                tid,
                OpReq {
                    loc_key: key_of(self),
                    label: self.label,
                    init: 0,
                    kind: OpKind::CellRead,
                },
            );
        }
        // SAFETY: serialized by the model grant (or single-threaded by
        // contract off-model); see the `Sync` impl.
        unsafe { *self.inner.get() }
    }

    pub fn set(&self, v: T) {
        if let Some((sh, tid)) = current() {
            sh.submit(
                tid,
                OpReq {
                    loc_key: key_of(self),
                    label: self.label,
                    init: 0,
                    kind: OpKind::CellWrite,
                },
            );
        }
        // SAFETY: as in `get`.
        unsafe {
            *self.inner.get() = v;
        }
    }
}

/// Shimmed `Mutex`.
pub struct ModelMutex<T> {
    real: Mutex<T>,
    label: &'static str,
}

/// Guard for [`ModelMutex`]; submits the model unlock on drop (after
/// releasing the real lock, so the orchestrator can never grant a lock
/// whose real counterpart is still held).
pub struct ModelMutexGuard<'a, T> {
    guard: Option<MutexGuard<'a, T>>,
    lock: &'a ModelMutex<T>,
}

impl<T> ModelMutex<T> {
    pub fn new(v: T) -> ModelMutex<T> {
        Self::with_label(v, "mutex")
    }

    pub fn with_label(v: T, label: &'static str) -> ModelMutex<T> {
        ModelMutex {
            real: Mutex::new(v),
            label,
        }
    }

    pub fn lock(&self) -> LockResult<ModelMutexGuard<'_, T>> {
        if let Some((sh, tid)) = current() {
            sh.submit(
                tid,
                OpReq {
                    loc_key: key_of(self),
                    label: self.label,
                    init: 0,
                    kind: OpKind::MutexLock,
                },
            );
        }
        // Uncontended whenever the model granted the lock: the previous
        // holder drops the real guard before its model unlock applies.
        match self.real.lock() {
            Ok(g) => Ok(ModelMutexGuard {
                guard: Some(g),
                lock: self,
            }),
            Err(p) => Err(PoisonError::new(ModelMutexGuard {
                guard: Some(p.into_inner()),
                lock: self,
            })),
        }
    }
}

impl<T> Drop for ModelMutexGuard<'_, T> {
    fn drop(&mut self) {
        let Some(g) = self.guard.take() else {
            // Consumed by a condvar wait; the model release happened
            // as part of the CvWait operation.
            return;
        };
        drop(g);
        if let Some((sh, tid)) = current() {
            sh.submit(
                tid,
                OpReq {
                    loc_key: key_of(self.lock),
                    label: self.lock.label,
                    init: 0,
                    kind: OpKind::MutexUnlock,
                },
            );
        }
    }
}

impl<T> std::ops::Deref for ModelMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard not consumed")
    }
}

impl<T> std::ops::DerefMut for ModelMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard not consumed")
    }
}

/// Shimmed `Condvar` with spurious-wakeup injection: on model threads,
/// the explorer may wake any sleeping waiter without a notify (within
/// the configured per-execution budget), so protocols are only correct
/// if every wait sits in a predicate loop.
pub struct ModelCondvar {
    real: Condvar,
    label: &'static str,
}

impl ModelCondvar {
    pub fn new() -> ModelCondvar {
        Self::with_label("condvar")
    }

    pub fn with_label(label: &'static str) -> ModelCondvar {
        ModelCondvar {
            real: Condvar::new(),
            label,
        }
    }

    pub fn wait<'a, T>(
        &self,
        mut guard: ModelMutexGuard<'a, T>,
    ) -> LockResult<ModelMutexGuard<'a, T>> {
        let lock = guard.lock;
        let real_guard = guard.guard.take().expect("guard not consumed");
        if let Some((sh, tid)) = current() {
            drop(guard); // no-op: the real guard was taken out
            drop(real_guard); // release the real lock before parking
            sh.submit(
                tid,
                OpReq {
                    loc_key: key_of(self),
                    label: self.label,
                    init: 0,
                    kind: OpKind::CvWait {
                        mutex_key: key_of(lock),
                        mutex_label: lock.label,
                    },
                },
            );
            // Granted: the model re-acquired the mutex for us; take the
            // real lock to match (uncontended, as in `lock`).
            match lock.real.lock() {
                Ok(g) => Ok(ModelMutexGuard {
                    guard: Some(g),
                    lock,
                }),
                Err(p) => Err(PoisonError::new(ModelMutexGuard {
                    guard: Some(p.into_inner()),
                    lock,
                })),
            }
        } else {
            drop(guard);
            match self.real.wait(real_guard) {
                Ok(g) => Ok(ModelMutexGuard {
                    guard: Some(g),
                    lock,
                }),
                Err(p) => Err(PoisonError::new(ModelMutexGuard {
                    guard: Some(p.into_inner()),
                    lock,
                })),
            }
        }
    }

    pub fn notify_one(&self) {
        self.notify(false);
    }

    pub fn notify_all(&self) {
        self.notify(true);
    }

    fn notify(&self, all: bool) {
        match current() {
            Some((sh, tid)) => {
                sh.submit(
                    tid,
                    OpReq {
                        loc_key: key_of(self),
                        label: self.label,
                        init: 0,
                        kind: OpKind::CvNotify { all },
                    },
                );
            }
            None => {
                if all {
                    self.real.notify_all();
                } else {
                    self.real.notify_one();
                }
            }
        }
    }
}

impl Default for ModelCondvar {
    fn default() -> ModelCondvar {
        ModelCondvar::new()
    }
}

// Debug impls mirror what the real primitives would print, so shimmed
// protocol structs can keep their `derive(Debug)`. Values shown are the
// real (newest) ones; model visibility is per-thread and not shown.
impl std::fmt::Debug for ModelAtomicU64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelAtomicU64")
            .field("label", &self.label)
            .field("value", &self.real.load(Ordering::Relaxed))
            .finish()
    }
}

impl std::fmt::Debug for ModelAtomicUsize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelAtomicUsize")
            .field("label", &self.inner.label)
            .field("value", &self.inner.real.load(Ordering::Relaxed))
            .finish()
    }
}

impl std::fmt::Debug for ModelAtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelAtomicBool")
            .field("label", &self.inner.label)
            .field("value", &(self.inner.real.load(Ordering::Relaxed) != 0))
            .finish()
    }
}

impl<T> std::fmt::Debug for ModelMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelMutex")
            .field("label", &self.label)
            .finish()
    }
}

impl std::fmt::Debug for ModelCondvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelCondvar")
            .field("label", &self.label)
            .finish()
    }
}

impl<T> std::fmt::Debug for ModelCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelCell")
            .field("label", &self.label)
            .finish()
    }
}
