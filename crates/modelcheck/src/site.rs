//! Named ordering sites and the weaken-override map behind the
//! ordering-minimality matrix.
//!
//! Every `Ordering::` site a ported protocol exposes to the checker is
//! named (`"barrier.count-arrive-rmw"`, ...). In real builds the
//! scheduler's `ord()` helper compiles to the default ordering; in
//! model builds it consults this map, so the matrix can re-run a
//! scenario with exactly one site weakened one step and demand a
//! counterexample (the ordering is load-bearing) or grant a demotion.

use std::sync::atomic::Ordering;
use std::sync::Mutex;

static OVERRIDES: Mutex<Vec<(&'static str, Ordering)>> = Mutex::new(Vec::new());

/// Overrides `site` to `ord` for subsequent [`resolve`] calls.
/// Overrides are process-global: matrix runs must not execute
/// concurrently with each other (the suite serializes them).
pub fn set_override(site: &'static str, ord: Ordering) {
    let mut g = OVERRIDES.lock().unwrap_or_else(|e| e.into_inner());
    g.retain(|(s, _)| *s != site);
    g.push((site, ord));
}

/// Clears all overrides.
pub fn clear_overrides() {
    OVERRIDES.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// The effective ordering of `site`: its override if set, else
/// `default`.
pub fn resolve(site: &'static str, default: Ordering) -> Ordering {
    OVERRIDES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .find(|(s, _)| *s == site)
        .map_or(default, |(_, o)| *o)
}

/// Operation class of a site, deciding its weakening chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    Load,
    Store,
    Rmw,
}

/// The canonical one-step-weaker ordering for the matrix, or `None`
/// when the site is already `Relaxed` (nothing left to weaken).
pub fn one_step_weaker(ord: Ordering, class: OpClass) -> Option<Ordering> {
    match (class, ord) {
        (OpClass::Load, Ordering::SeqCst) => Some(Ordering::Acquire),
        (OpClass::Load, Ordering::Acquire) => Some(Ordering::Relaxed),
        (OpClass::Store, Ordering::SeqCst) => Some(Ordering::Release),
        (OpClass::Store, Ordering::Release) => Some(Ordering::Relaxed),
        (OpClass::Rmw, Ordering::SeqCst) => Some(Ordering::AcqRel),
        (OpClass::Rmw, Ordering::AcqRel) => Some(Ordering::Acquire),
        (OpClass::Rmw, Ordering::Acquire | Ordering::Release) => Some(Ordering::Relaxed),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_prefers_override_and_clears() {
        clear_overrides();
        assert_eq!(resolve("t.site", Ordering::SeqCst), Ordering::SeqCst);
        set_override("t.site", Ordering::Relaxed);
        assert_eq!(resolve("t.site", Ordering::SeqCst), Ordering::Relaxed);
        assert_eq!(resolve("t.other", Ordering::Acquire), Ordering::Acquire);
        clear_overrides();
        assert_eq!(resolve("t.site", Ordering::SeqCst), Ordering::SeqCst);
    }

    #[test]
    fn weaken_chains_terminate_at_relaxed() {
        for class in [OpClass::Load, OpClass::Store, OpClass::Rmw] {
            let mut ord = Ordering::SeqCst;
            let mut steps = 0;
            while let Some(w) = one_step_weaker(ord, class) {
                ord = w;
                steps += 1;
                assert!(steps < 8, "weaken chain does not terminate");
            }
            assert_eq!(ord, Ordering::Relaxed);
        }
    }
}
