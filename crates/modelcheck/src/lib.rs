//! `islands-modelcheck` — a bounded exhaustive-interleaving model
//! checker for the islands-of-cores runtime's synchronization
//! protocols.
//!
//! The runtime's hot paths (sense-reversing barriers, atomic chunk
//! claiming, lock-free trace rings, the worker-pool completion latch)
//! are lock-free or nearly so, and their correctness hangs on
//! hand-picked memory orderings that stress tests cannot pin down: a
//! lost wakeup or a stale-sense read needs one specific interleaving.
//! This crate explores *all* of them, loom-style, with nothing but the
//! standard library:
//!
//! * [`shim`] — drop-in `ModelAtomicUsize`/`ModelAtomicBool`/
//!   `ModelAtomicU64`, `ModelMutex`, `ModelCondvar` (with spurious
//!   wakeup injection) and a race-checked `ModelCell`. Off a model
//!   thread they fall back to the real primitive, so shimmed code runs
//!   unchanged everywhere.
//! * [`Checker`] — stateless depth-first exploration over a persistent
//!   stack of scheduling and read-from choice points, with DPOR-style
//!   sleep-set pruning ([`exec::OpDesc`]). Counterexamples come back as
//!   replayable decision schedules plus a full operation trace
//!   ([`format_trace`] renders the table).
//! * [`mem`] — per-location store histories with ordering-sensitive
//!   visibility: a `Relaxed` load may legally return stale values (the
//!   explorer branches on the choice), `Acquire`/`Release` exchange
//!   vector-clock messages, `SeqCst` adds the per-location total-order
//!   floor the barrier's sleepers handshake needs.
//! * [`site`] — named-ordering override map driving the
//!   ordering-minimality matrix: each site is re-checked one step
//!   weaker and must yield a counterexample or earn its demotion.
//!
//! Detected failure classes ([`FailureKind`]): deadlock, lost wakeup
//! (a condvar sleeper no remaining notifier can wake — spurious-only
//! progress counts as lost), data race / torn read on non-atomic
//! cells, protocol assertion panics, failed post-execution properties,
//! and step-bound overruns.
//!
//! ```
//! use islands_modelcheck::{Checker, Config, Scenario, ModelAtomicUsize};
//! use std::sync::atomic::Ordering;
//! use std::sync::Arc;
//!
//! let report = Checker::new(Config::default()).check(|| {
//!     let mut s = Scenario::new("two-increments");
//!     let n = Arc::new(ModelAtomicUsize::with_label(0, "n"));
//!     for _ in 0..2 {
//!         let n = Arc::clone(&n);
//!         s.thread(move || {
//!             n.fetch_add(1, Ordering::AcqRel);
//!         });
//!     }
//!     let n = Arc::clone(&n);
//!     s.after(move || assert_eq!(n.load(Ordering::SeqCst), 2));
//!     s
//! });
//! assert!(report.exhaustive_and_clean(), "{}", report.summary());
//! ```

pub mod clock;
mod exec;
pub mod mem;
pub mod shim;
pub mod site;
mod trace;

mod checker;

pub use checker::{Checker, Config, Counterexample, Report, Scenario};
pub use exec::{Decision, FailureKind, OpDesc};
pub use shim::{
    ModelAtomicBool, ModelAtomicU64, ModelAtomicUsize, ModelCell, ModelCondvar, ModelMutex,
    ModelMutexGuard,
};
pub use trace::{format_trace, TraceStep};
