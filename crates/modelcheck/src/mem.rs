//! The checker's axiomatic-ish memory model: per-location store
//! histories with ordering-sensitive visibility.
//!
//! Modification order equals execution order (the scheduler serializes
//! operations), which is sound for exploration because the scheduler
//! enumerates interleavings; the *weak* part is visibility. Each store
//! carries two clocks:
//!
//! * `hb` — the storing thread's clock at the store. Used for
//!   coherence: a reader whose clock dominates `hb` of store *j* can
//!   never read a store older than *j*.
//! * `msg` — the release message. Present only for `Release`/`SeqCst`
//!   stores (and for RMWs, unioned with the message of the store they
//!   read, modelling release sequences). An `Acquire`-or-stronger load
//!   that reads the store joins this clock; a `Relaxed` load gets the
//!   value with **no** synchronization.
//!
//! A load's *visible set* is every store at least as new as its
//! coherence floor; when that set has more than one element the
//! scheduler branches on the choice, so a `Relaxed` load legally
//! returns stale values in some explored executions. `SeqCst` adds a
//! per-location floor at the last `SeqCst` store (the single-total-order
//! guarantee the sense-reversing barrier's sleepers protocol leans on).
//!
//! Non-atomic locations ([`LocState::Data`]) get no visibility set at
//! all — just a happens-before race detector. An unordered read/write
//! pair is exactly the "torn ring slot read" the trace-ring check is
//! after.

use crate::clock::{VClock, MAX_THREADS};
use std::sync::atomic::Ordering;

/// One store in a location's modification order.
#[derive(Clone, Copy, Debug)]
pub struct Store {
    /// Stored value (bools are 0/1; `Data` cells don't store values
    /// here — their payload lives in the shim).
    pub val: u64,
    /// Storing thread's clock at the store (coherence / race edges).
    pub hb: VClock,
    /// Release message an acquire reader joins; `None` for `Relaxed`.
    pub msg: Option<VClock>,
    /// Whether the store was `SeqCst` (drives the SC floor).
    pub sc: bool,
    /// Thread that performed the store (trace labelling only).
    pub by: usize,
}

/// What kind of object a location models.
#[derive(Debug)]
pub enum LocState {
    /// An atomic cell with a full store history.
    Atomic {
        /// Modification order, oldest first; index 0 is the initial value.
        stores: Vec<Store>,
        /// Index of the newest `SeqCst` store, if any.
        last_sc: Option<usize>,
        /// Per-thread coherence floor: newest index each thread has
        /// read or written (a thread never reads older than this).
        seen: [usize; MAX_THREADS],
    },
    /// A non-atomic cell: happens-before race detection only.
    Data {
        /// Clock of the last write.
        write_hb: VClock,
        /// Thread that performed the last write.
        writer: Option<usize>,
        /// Per-thread clock of the newest read since the last write
        /// (boxed: the array dominates the enum's size otherwise).
        reads: Box<[Option<VClock>; MAX_THREADS]>,
    },
    /// A mutex: ownership plus the release clock lock acquisition joins.
    Mutex {
        /// Owning thread, if locked.
        owner: Option<usize>,
        /// Clock released by the last unlock.
        rel: VClock,
    },
    /// A condition variable (no memory state of its own; sleeping and
    /// wakeups are scheduler state).
    Condvar,
}

/// A registered location: stable label for traces plus its state.
#[derive(Debug)]
pub struct Loc {
    /// Human-readable label from the shim constructor.
    pub label: &'static str,
    /// Model state.
    pub state: LocState,
}

pub fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

pub fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl LocState {
    /// Fresh atomic history holding `init`.
    pub fn new_atomic(init: u64) -> LocState {
        LocState::Atomic {
            stores: vec![Store {
                val: init,
                hb: VClock::ZERO,
                msg: None,
                sc: false,
                by: usize::MAX,
            }],
            last_sc: None,
            seen: [0; MAX_THREADS],
        }
    }

    /// Fresh data cell (initial write is unordered-before-everything,
    /// i.e. behaves as if written before any thread started).
    pub fn new_data() -> LocState {
        LocState::Data {
            write_hb: VClock::ZERO,
            writer: None,
            reads: Box::new([None; MAX_THREADS]),
        }
    }

    /// Fresh unlocked mutex.
    pub fn new_mutex() -> LocState {
        LocState::Mutex {
            owner: None,
            rel: VClock::ZERO,
        }
    }
}

/// The indices of an atomic location's stores a load may legally
/// return, oldest first. `clock` is the reading thread's clock.
pub fn visible_indices(
    stores: &[Store],
    seen_floor: usize,
    last_sc: Option<usize>,
    thread_clock: &VClock,
    load_sc: bool,
) -> Vec<usize> {
    // Coherence floor: the newest store this thread already knows
    // happened (its clock dominates the store's hb clock). Reading
    // anything older would violate read-read / write-read coherence.
    let mut floor = seen_floor;
    for (i, s) in stores.iter().enumerate().rev() {
        if s.hb.le(thread_clock) {
            floor = floor.max(i);
            break;
        }
    }
    // SC floor: an SeqCst load is ordered after every already-executed
    // SeqCst store to this location in the single total order, so it
    // cannot return anything older than the newest one.
    if load_sc {
        if let Some(sc) = last_sc {
            floor = floor.max(sc);
        }
    }
    (floor..stores.len()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock_of(ticks: &[(usize, u32)]) -> VClock {
        let mut c = VClock::ZERO;
        for &(t, n) in ticks {
            c.0[t] = n;
        }
        c
    }

    fn store(val: u64, hb: VClock, sc: bool) -> Store {
        Store {
            val,
            hb,
            msg: None,
            sc,
            by: 0,
        }
    }

    #[test]
    fn unsynchronized_reader_may_read_stale() {
        // T0 stored twice; T1's clock knows neither store -> both the
        // init and both stores are visible.
        let stores = vec![
            store(0, VClock::ZERO, false),
            store(1, clock_of(&[(0, 1)]), false),
            store(2, clock_of(&[(0, 2)]), false),
        ];
        let reader = clock_of(&[(1, 5)]);
        let v = visible_indices(&stores, 0, None, &reader, false);
        assert_eq!(v, vec![0, 1, 2]);
    }

    #[test]
    fn coherence_floor_excludes_known_old_stores() {
        // Reader's clock dominates store 1's hb -> store 0 and the
        // init are no longer visible.
        let stores = vec![
            store(0, VClock::ZERO, false),
            store(1, clock_of(&[(0, 1)]), false),
            store(2, clock_of(&[(0, 2)]), false),
        ];
        let reader = clock_of(&[(0, 1), (1, 3)]);
        let v = visible_indices(&stores, 0, None, &reader, false);
        assert_eq!(v, vec![1, 2]);
    }

    #[test]
    fn seen_floor_is_sticky() {
        let stores = vec![store(0, VClock::ZERO, false), store(1, VClock::ZERO, false)];
        let reader = VClock::ZERO;
        // After reading index 1 once, index 0 is gone for this thread.
        let v = visible_indices(&stores, 1, None, &reader, false);
        assert_eq!(v, vec![1]);
    }

    #[test]
    fn sc_load_sees_newest_sc_store() {
        let stores = vec![
            store(0, VClock::ZERO, false),
            store(1, clock_of(&[(0, 1)]), true),
        ];
        let reader = clock_of(&[(1, 1)]);
        // Relaxed load: stale init still visible.
        assert_eq!(
            visible_indices(&stores, 0, Some(1), &reader, false),
            vec![0, 1]
        );
        // SeqCst load: floored at the SC store.
        assert_eq!(visible_indices(&stores, 0, Some(1), &reader, true), vec![1]);
    }
}
