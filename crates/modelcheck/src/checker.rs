//! Depth-first exhaustive exploration with sleep-set pruning.
//!
//! The checker is *stateless* in the loom/CDSChecker sense: each
//! execution re-runs the scenario's closures from scratch, steering
//! every scheduling and read-from choice along a persistent DFS stack
//! of choice points. After an execution finishes, the deepest choice
//! point with an untried alternative is advanced and everything below
//! it is discarded; exploration ends when the stack empties.
//!
//! Pruning is DPOR-flavoured sleep sets: once alternative `c` has been
//! fully explored at a node, `c` is put to sleep in the sibling
//! subtrees and only woken by an executed operation *dependent* on it
//! (see [`OpDesc::dependent`]). An execution whose every enabled
//! candidate is asleep is provably equivalent to an already-explored
//! one and is cut off. Two ops on distinct locations are still treated
//! as dependent when both are `SeqCst`, so the store-buffering shapes
//! the sense-reversing barrier relies on are never pruned away.

use crate::exec::{
    current, set_current, Decision, FailureKind, ModelAbort, OpDesc, Shared, Status,
};
use crate::trace::TraceStep;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Exploration bounds.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Per-execution applied-operation bound; exceeding it is reported
    /// as a [`FailureKind::DepthBound`] counterexample (an honest
    /// "the bound is too small", never silence).
    pub max_steps: usize,
    /// Total executions (completed + pruned) before giving up with
    /// [`Report::hit_exec_bound`] set.
    pub max_execs: u64,
    /// Spurious condvar wakeups injected per execution. `1` already
    /// exercises every single-spurious-wake interleaving.
    pub spurious_budget: u32,
    /// Optional preemption bound (context switches away from a thread
    /// that could continue). `None` = full exhaustiveness. Scenarios
    /// that use a bound must say so in their documented bounds.
    pub preemption_bound: Option<u32>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            max_steps: 2_000,
            max_execs: 2_000_000,
            spurious_budget: 1,
            preemption_bound: None,
        }
    }
}

/// A scenario: 2–4 closures run as model threads plus an optional
/// post-quiescence property check.
pub struct Scenario {
    name: &'static str,
    threads: Vec<Box<dyn FnOnce() + Send + 'static>>,
    after: Option<Box<dyn FnOnce() + 'static>>,
}

impl Scenario {
    pub fn new(name: &'static str) -> Scenario {
        Scenario {
            name,
            threads: Vec::new(),
            after: None,
        }
    }

    /// Adds a model thread.
    pub fn thread(&mut self, f: impl FnOnce() + Send + 'static) {
        assert!(
            self.threads.len() < crate::clock::MAX_THREADS,
            "scenario exceeds MAX_THREADS"
        );
        self.threads.push(Box::new(f));
    }

    /// Property checked after every completed execution, on the
    /// checker's own thread (shim reads there see final real values).
    /// Panicking marks the execution as a counterexample.
    pub fn after(&mut self, f: impl FnOnce() + 'static) {
        self.after = Some(Box::new(f));
    }
}

/// A failing interleaving: what went wrong, the decision schedule that
/// reproduces it, and the full operation trace.
#[derive(Debug)]
pub struct Counterexample {
    pub kind: FailureKind,
    pub message: String,
    /// Decisions at branching points, in order; replay with
    /// [`Checker::replay`].
    pub schedule: Vec<Decision>,
    pub trace: Vec<TraceStep>,
}

/// Exploration outcome and statistics.
#[derive(Debug)]
pub struct Report {
    pub name: &'static str,
    /// Completed (non-pruned) executions explored.
    pub executions: u64,
    /// Sleep-set-blocked executions cut off.
    pub pruned: u64,
    /// Spurious wakeups injected across all executions.
    pub spurious_injected: u64,
    /// Deepest branching stack seen.
    pub max_depth: usize,
    /// Exploration stopped at `max_execs` without finishing.
    pub hit_exec_bound: bool,
    pub counterexample: Option<Counterexample>,
}

impl Report {
    /// `true` when the full bounded state space was explored clean.
    pub fn exhaustive_and_clean(&self) -> bool {
        self.counterexample.is_none() && !self.hit_exec_bound
    }

    /// One-line summary for `protocol-check` output.
    pub fn summary(&self) -> String {
        match &self.counterexample {
            Some(ce) => format!(
                "{}: COUNTEREXAMPLE [{}] after {} executions ({} pruned): {}",
                self.name,
                ce.kind.name(),
                self.executions,
                self.pruned,
                ce.message
            ),
            None => format!(
                "{}: ok — {} interleavings explored ({} pruned, {} spurious wakes, depth {}){}",
                self.name,
                self.executions,
                self.pruned,
                self.spurious_injected,
                self.max_depth,
                if self.hit_exec_bound {
                    " [EXEC BOUND HIT — not exhaustive]"
                } else {
                    ""
                }
            ),
        }
    }
}

/// One branching point of the persistent DFS stack.
struct NodeRec {
    alts: Vec<Decision>,
    /// Dependence fingerprints parallel to `alts` (empty for read-from
    /// nodes, which have no sleep-set semantics).
    descs: Vec<OpDesc>,
    taken: usize,
    done: Vec<usize>,
}

struct Dfs<'a> {
    stack: &'a mut Vec<NodeRec>,
    depth: usize,
    cur_sleep: Vec<(Decision, OpDesc)>,
    taken_log: Vec<Decision>,
    replay: Option<&'a [Decision]>,
    replay_pos: usize,
}

impl Dfs<'_> {
    fn decide(&mut self, live: Vec<Decision>, descs: Vec<OpDesc>, sched: bool) -> Decision {
        if live.len() == 1 {
            return live[0];
        }
        if let Some(s) = self.replay {
            let pick = if self.replay_pos < s.len() {
                s[self.replay_pos]
            } else {
                live[0]
            };
            self.replay_pos += 1;
            assert!(
                live.contains(&pick),
                "schedule does not replay: {pick:?} not among {live:?}"
            );
            self.taken_log.push(pick);
            return pick;
        }
        let d = self.depth;
        self.depth += 1;
        if d >= self.stack.len() {
            self.stack.push(NodeRec {
                alts: live,
                descs,
                taken: 0,
                done: Vec::new(),
            });
        } else {
            debug_assert_eq!(
                self.stack[d].alts, live,
                "nondeterministic scenario: replayed prefix diverged"
            );
            if sched {
                // Fully-explored siblings of this node go to sleep in
                // the subtree we are about to descend into.
                for i in 0..self.stack[d].done.len() {
                    let idx = self.stack[d].done[i];
                    self.cur_sleep
                        .push((self.stack[d].alts[idx], self.stack[d].descs[idx]));
                }
            }
        }
        let pick = self.stack[d].alts[self.stack[d].taken];
        self.taken_log.push(pick);
        pick
    }

    /// Wakes sleeping candidates dependent on the op just executed.
    fn wake(&mut self, executed: &OpDesc) {
        self.cur_sleep.retain(|(_, d)| !d.dependent(executed));
    }
}

/// Advances the persistent stack to the next unexplored branch; `false`
/// when the space is exhausted.
fn advance(stack: &mut Vec<NodeRec>) -> bool {
    while let Some(top) = stack.last_mut() {
        let t = top.taken;
        if !top.done.contains(&t) {
            top.done.push(t);
        }
        if let Some(next) = (0..top.alts.len()).find(|i| !top.done.contains(i)) {
            top.taken = next;
            return true;
        }
        stack.pop();
    }
    false
}

enum Outcome {
    Completed,
    Pruned,
    Failed(Counterexample),
}

/// The bounded exhaustive-interleaving model checker.
pub struct Checker {
    cfg: Config,
}

/// Silences the default panic hook for [`ModelAbort`] unwinds (they are
/// the checker's normal control flow — every pruned or failed execution
/// aborts its still-running threads this way). All other panics go to
/// the previously-installed hook untouched.
fn install_quiet_abort_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ModelAbort>().is_none() {
                prev(info);
            }
        }));
    });
}

impl Checker {
    pub fn new(cfg: Config) -> Checker {
        install_quiet_abort_hook();
        Checker { cfg }
    }

    /// Explores every interleaving of the scenario `build` constructs
    /// (re-invoked once per execution) within the configured bounds.
    pub fn check(&self, mut build: impl FnMut() -> Scenario) -> Report {
        let mut stack: Vec<NodeRec> = Vec::new();
        let first = build();
        let name = first.name;
        let mut report = Report {
            name,
            executions: 0,
            pruned: 0,
            spurious_injected: 0,
            max_depth: 0,
            hit_exec_bound: false,
            counterexample: None,
        };
        let mut scen = Some(first);
        loop {
            let scenario = scen.take().unwrap_or_else(&mut build);
            match self.run_one(scenario, &mut stack, &mut report, None) {
                Outcome::Completed => report.executions += 1,
                Outcome::Pruned => report.pruned += 1,
                Outcome::Failed(ce) => {
                    report.counterexample = Some(ce);
                    return report;
                }
            }
            report.max_depth = report.max_depth.max(stack.len());
            if !advance(&mut stack) {
                return report;
            }
            if report.executions + report.pruned >= self.cfg.max_execs {
                report.hit_exec_bound = true;
                return report;
            }
        }
    }

    /// Replays one execution along `schedule` (as recorded in a
    /// [`Counterexample`]) and returns its report — used to demonstrate
    /// counterexamples are deterministic.
    pub fn replay(&self, scenario: Scenario, schedule: &[Decision]) -> Report {
        let name = scenario.name;
        let mut report = Report {
            name,
            executions: 0,
            pruned: 0,
            spurious_injected: 0,
            max_depth: 0,
            hit_exec_bound: false,
            counterexample: None,
        };
        let mut stack = Vec::new();
        match self.run_one(scenario, &mut stack, &mut report, Some(schedule)) {
            Outcome::Completed => report.executions = 1,
            Outcome::Pruned => report.pruned = 1,
            Outcome::Failed(ce) => report.counterexample = Some(ce),
        }
        report
    }

    fn run_one(
        &self,
        scenario: Scenario,
        stack: &mut Vec<NodeRec>,
        report: &mut Report,
        replay: Option<&[Decision]>,
    ) -> Outcome {
        let n = scenario.threads.len();
        assert!(n >= 1, "scenario has no threads");
        let shared = Arc::new(Shared::new(n, self.cfg.spurious_budget));
        let mut handles: Vec<_> = scenario
            .threads
            .into_iter()
            .enumerate()
            .map(|(tid, f)| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("model-{tid}"))
                    .spawn(move || {
                        set_current(Some((Arc::clone(&sh), tid)));
                        let r = catch_unwind(AssertUnwindSafe(f));
                        set_current(None);
                        let mut g = sh.inner.lock().unwrap_or_else(|e| e.into_inner());
                        if let Err(p) = r {
                            if !p.is::<ModelAbort>() {
                                let msg = if let Some(s) = p.downcast_ref::<&str>() {
                                    (*s).to_string()
                                } else if let Some(s) = p.downcast_ref::<String>() {
                                    s.clone()
                                } else {
                                    "non-string panic payload".to_string()
                                };
                                g.threads[tid].panic_msg = Some(msg);
                            }
                        }
                        g.threads[tid].status = Status::Finished;
                        sh.cv.notify_all();
                    })
                    .expect("spawn model thread")
            })
            .collect();
        debug_assert!(
            current().is_none(),
            "checker re-entered from a model thread"
        );

        let mut dfs = Dfs {
            stack,
            depth: 0,
            cur_sleep: Vec::new(),
            taken_log: Vec::new(),
            replay,
            replay_pos: 0,
        };
        let mut last_run: Option<usize> = None;
        let mut preemptions: u32 = 0;

        let outcome = 'exec: loop {
            let mut g = shared.wait_quiescent();

            // A model thread panicked (protocol assertion failed).
            if let Some((tid, msg)) = g
                .threads
                .iter()
                .enumerate()
                .find_map(|(i, t)| t.panic_msg.clone().map(|m| (i, m)))
            {
                break 'exec Err((
                    FailureKind::Panic,
                    format!("thread {tid} panicked: {msg}"),
                    g,
                ));
            }
            if let Some(f) = g.failure.take() {
                break 'exec Err((f.kind, f.message, g));
            }
            if g.threads.iter().all(|t| t.status == Status::Finished) {
                drop(g);
                break 'exec Ok(());
            }
            if g.steps > self.cfg.max_steps {
                break 'exec Err((
                    FailureKind::DepthBound,
                    format!("execution exceeded {} steps", self.cfg.max_steps),
                    g,
                ));
            }

            // Enabled candidates, in deterministic thread order.
            let mut cands: Vec<Decision> = Vec::new();
            let mut descs: Vec<OpDesc> = Vec::new();
            for tid in 0..n {
                if g.op_enabled(tid) {
                    cands.push(Decision::Run(tid));
                    descs.push(g.desc_of(tid));
                }
            }
            if g.spurious_left > 0 {
                for tid in 0..n {
                    if g.threads[tid].status == Status::Sleeping {
                        cands.push(Decision::Spurious(tid));
                        descs.push(g.desc_of(tid));
                    }
                }
            }

            if cands.is_empty() {
                let sleeping: Vec<usize> = (0..n)
                    .filter(|&t| g.threads[t].status == Status::Sleeping)
                    .collect();
                let kind = if sleeping.is_empty() {
                    FailureKind::Deadlock
                } else {
                    FailureKind::LostWakeup
                };
                let msg = if sleeping.is_empty() {
                    "no thread can make progress (mutual mutex block)".to_string()
                } else {
                    format!(
                        "thread(s) {sleeping:?} sleep on a condvar with no notifier left — \
                         a wakeup was lost"
                    )
                };
                break 'exec Err((kind, msg, g));
            }
            if cands.iter().all(|c| matches!(c, Decision::Spurious(_))) {
                break 'exec Err((
                    FailureKind::LostWakeup,
                    "only spurious wakeups can make progress — the protocol relies on a \
                     wakeup that was never sent"
                        .to_string(),
                    g,
                ));
            }

            // Preemption bound: once exhausted, stick with the last
            // thread while it remains enabled.
            if let Some(bound) = self.cfg.preemption_bound {
                if preemptions >= bound {
                    if let Some(l) = last_run {
                        if let Some(i) = cands.iter().position(|c| *c == Decision::Run(l)) {
                            cands = vec![cands[i]];
                            descs = vec![descs[i]];
                        }
                    }
                }
            }

            // Sleep-set filter.
            let mut live = Vec::new();
            let mut live_descs = Vec::new();
            for (c, d) in cands.iter().zip(descs.iter()) {
                if !dfs.cur_sleep.iter().any(|(s, _)| s == c) {
                    live.push(*c);
                    live_descs.push(*d);
                }
            }
            if live.is_empty() {
                drop(g);
                shared.abort();
                for h in handles.drain(..) {
                    let _ = h.join();
                }
                return Outcome::Pruned;
            }

            let continuation_enabled = last_run.is_some_and(|l| cands.contains(&Decision::Run(l)));
            let pick = dfs.decide(live, live_descs, true);
            let tid = match pick {
                Decision::Run(t) | Decision::Spurious(t) => t,
                Decision::ReadFrom(_) => unreachable!("read-from at a scheduling point"),
            };
            if continuation_enabled && last_run != Some(tid) {
                preemptions += 1;
            }
            last_run = Some(tid);

            let exec_desc = g.desc_of(tid);
            match pick {
                Decision::Spurious(t) => {
                    g.apply_spurious(t);
                    report.spurious_injected += 1;
                }
                Decision::Run(t) => {
                    let read_from = match g.load_alternatives(t) {
                        Some(vis) if vis.len() > 1 => {
                            // Newest-first so the default DFS branch is
                            // the coherent "latest value" execution.
                            let alts: Vec<Decision> =
                                vis.iter().rev().map(|&i| Decision::ReadFrom(i)).collect();
                            match dfs.decide(alts, Vec::new(), false) {
                                Decision::ReadFrom(i) => Some(i),
                                other => unreachable!("scheduling decision {other:?} at a read"),
                            }
                        }
                        _ => None,
                    };
                    g.apply(t, read_from);
                }
                Decision::ReadFrom(_) => unreachable!(),
            }
            dfs.wake(&exec_desc);
            drop(g);
            shared.cv.notify_all();
        };

        match outcome {
            Ok(()) => {
                for h in handles.drain(..) {
                    let _ = h.join();
                }
                if let Some(after) = scenario.after {
                    if let Err(p) = catch_unwind(AssertUnwindSafe(after)) {
                        let msg = if let Some(s) = p.downcast_ref::<&str>() {
                            (*s).to_string()
                        } else if let Some(s) = p.downcast_ref::<String>() {
                            s.clone()
                        } else {
                            "non-string panic payload".to_string()
                        };
                        let g = shared.inner.lock().unwrap_or_else(|e| e.into_inner());
                        return Outcome::Failed(Counterexample {
                            kind: FailureKind::PropertyFailed,
                            message: msg,
                            schedule: dfs.taken_log,
                            trace: g.trace.clone(),
                        });
                    }
                }
                Outcome::Completed
            }
            Err((kind, message, g)) => {
                let trace = g.trace.clone();
                drop(g);
                shared.abort();
                for h in handles.drain(..) {
                    let _ = h.join();
                }
                Outcome::Failed(Counterexample {
                    kind,
                    message,
                    schedule: dfs.taken_log,
                    trace,
                })
            }
        }
    }
}
