//! Replayable counterexample traces and their pretty-printer.
//!
//! Every applied operation appends one [`TraceStep`]; when an execution
//! fails the whole step log becomes the counterexample body, and
//! [`format_trace`] renders it as the fixed-width thread/op/location/
//! value table `protocol-check --trace` prints.

use std::fmt::Write as _;
use std::sync::atomic::Ordering;

/// One applied operation in an execution.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// Executing thread (model thread index).
    pub thread: usize,
    /// Operation mnemonic (`load`, `store`, `fetch_add`, `mutex-lock`,
    /// `cv-wait (sleep)`, `spurious-wake`, ...).
    pub op: &'static str,
    /// Label of the touched location (from the shim constructor).
    pub loc: &'static str,
    /// Memory ordering, for atomic ops.
    pub ord: Option<Ordering>,
    /// Value stored / loaded / produced.
    pub value: Option<u64>,
    /// Free-form annotation (stale-read provenance, wakeup counts).
    pub note: String,
}

impl TraceStep {
    pub(crate) fn new(thread: usize, op: &'static str, loc: &'static str) -> TraceStep {
        TraceStep {
            thread,
            op,
            loc,
            ord: None,
            value: None,
            note: String::new(),
        }
    }

    pub(crate) fn ord(mut self, ord: Ordering) -> TraceStep {
        self.ord = Some(ord);
        self
    }

    pub(crate) fn value(mut self, v: u64) -> TraceStep {
        self.value = Some(v);
        self
    }

    pub(crate) fn note(mut self, note: String) -> TraceStep {
        self.note = note;
        self
    }

    pub(crate) fn stale(mut self, stale: bool, chosen: usize, total: usize) -> TraceStep {
        if stale {
            self.note = format!("STALE read-from store #{chosen} of {total}");
        }
        self
    }
}

fn ord_str(ord: Option<Ordering>) -> &'static str {
    match ord {
        Some(Ordering::Relaxed) => "Relaxed",
        Some(Ordering::Acquire) => "Acquire",
        Some(Ordering::Release) => "Release",
        Some(Ordering::AcqRel) => "AcqRel",
        Some(Ordering::SeqCst) => "SeqCst",
        _ => "-",
    }
}

/// Renders a schedule trace as a deterministic fixed-width table, one
/// row per applied operation.
pub fn format_trace(steps: &[TraceStep]) -> String {
    let mut loc_w = "location".len();
    let mut op_w = "op".len();
    for s in steps {
        loc_w = loc_w.max(s.loc.len());
        op_w = op_w.max(s.op.len());
    }
    let mut out = String::new();
    let mut line = String::new();
    let push = |out: &mut String, line: &mut String| {
        // No trailing whitespace: empty note cells would otherwise pad
        // every row, which golden-output tests cannot survive.
        out.push_str(line.trim_end());
        out.push('\n');
        line.clear();
    };
    let _ = write!(
        line,
        "{:>4}  {:>6}  {:<op_w$}  {:<loc_w$}  {:<7}  {:>8}  note",
        "step", "thread", "op", "location", "order", "value"
    );
    push(&mut out, &mut line);
    let _ = write!(
        line,
        "{:>4}  {:>6}  {:<op_w$}  {:<loc_w$}  {:<7}  {:>8}  ----",
        "----", "------", "--", "--------", "-----", "-----"
    );
    push(&mut out, &mut line);
    for (i, s) in steps.iter().enumerate() {
        let val = s.value.map_or("-".to_string(), |v| v.to_string());
        let _ = write!(
            line,
            "{:>4}  {:>6}  {:<op_w$}  {:<loc_w$}  {:<7}  {:>8}  {}",
            i,
            format!("T{}", s.thread),
            s.op,
            s.loc,
            ord_str(s.ord),
            val,
            s.note
        );
        push(&mut out, &mut line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_deterministic_and_aligned() {
        let steps = vec![
            TraceStep::new(0, "store", "sense")
                .ord(Ordering::SeqCst)
                .value(1),
            TraceStep::new(1, "load", "sense")
                .ord(Ordering::Relaxed)
                .value(0)
                .stale(true, 0, 2),
        ];
        let a = format_trace(&steps);
        let b = format_trace(&steps);
        assert_eq!(a, b);
        assert!(a.contains("T0"));
        assert!(a.contains("STALE read-from store #0 of 2"));
        for line in a.lines() {
            assert!(line.len() < 120, "over-wide line: {line}");
        }
    }
}
