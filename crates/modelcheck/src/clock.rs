//! Vector clocks over a small fixed thread universe.
//!
//! Every modelled operation ticks the executing thread's component;
//! synchronizing operations (acquire loads, mutex acquisitions) join
//! clocks. `a <= b` (componentwise) is the happens-before test the
//! memory model and the data-race detector are built on.

/// Upper bound on model threads per execution. The checker targets the
/// 2–4 thread protocol scenarios of the runtime; eight leaves headroom
/// without making clocks heavy.
pub const MAX_THREADS: usize = 8;

/// A fixed-width vector clock. `Copy` on purpose: clocks are stamped
/// onto every store in a location history.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VClock(pub [u32; MAX_THREADS]);

impl VClock {
    /// The zero clock (happens-before everything).
    pub const ZERO: VClock = VClock([0; MAX_THREADS]);

    /// Ticks `thread`'s component.
    pub fn tick(&mut self, thread: usize) {
        self.0[thread] += 1;
    }

    /// Componentwise maximum (clock join).
    pub fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Componentwise `self <= other`: everything this clock has seen,
    /// `other` has seen too (happens-before or equal).
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().zip(other.0.iter()).all(|(a, b)| a <= b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_precedes_everything() {
        let mut c = VClock::ZERO;
        c.tick(0);
        assert!(VClock::ZERO.le(&c));
        assert!(!c.le(&VClock::ZERO));
    }

    #[test]
    fn join_is_componentwise_max() {
        let mut a = VClock::ZERO;
        a.tick(0);
        a.tick(0);
        let mut b = VClock::ZERO;
        b.tick(1);
        let mut j = a;
        j.join(&b);
        assert_eq!(j.0[0], 2);
        assert_eq!(j.0[1], 1);
        assert!(a.le(&j) && b.le(&j));
    }

    #[test]
    fn concurrent_clocks_are_unordered() {
        let mut a = VClock::ZERO;
        a.tick(0);
        let mut b = VClock::ZERO;
        b.tick(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
    }
}
