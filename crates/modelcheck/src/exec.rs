//! Serialized execution of one interleaving.
//!
//! Model threads are real OS threads, but only one ever runs protocol
//! code at a time: every shim operation is *submitted* to the
//! orchestrator (the thread driving [`crate::Checker`]) and the thread
//! parks until the orchestrator grants it. The orchestrator picks which
//! pending operation executes next — that choice is the interleaving —
//! and applies the operation's effect on the model memory
//! ([`crate::mem`]) itself, so all model state is mutated
//! single-threadedly under one lock.
//!
//! A thread therefore cycles `Running → AtOp → Granted → Running`;
//! condvar waiters detour through `Sleeping → Relock`. Aborting an
//! execution (a counterexample was found) wakes every parked thread
//! with a [`ModelAbort`] panic that unwinds it out of the protocol
//! code; shim operations invoked while unwinding (e.g. a mutex guard
//! drop) bypass the model so the unwind cannot recurse.

use crate::clock::VClock;
use crate::mem::{is_acquire, is_release, visible_indices, Loc, LocState, Store};
use crate::trace::TraceStep;
use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

/// Panic payload used to unwind model threads when an execution is
/// aborted early; not a counterexample by itself.
pub struct ModelAbort;

/// One scheduling or value decision of the depth-first explorer. A
/// counterexample's schedule is the sequence of these decisions, which
/// replays the failing interleaving deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Run the pending operation of this thread.
    Run(usize),
    /// Spuriously wake this condvar-sleeping thread.
    Spurious(usize),
    /// Make the load being applied read from this store index of its
    /// location's history (newest-first among the visible set).
    ReadFrom(usize),
}

/// Dependence fingerprint of a pending operation, for sleep-set
/// wake-ups: two operations commute unless they touch a common
/// location with at least one write-like access, or are both `SeqCst`
/// (whose single total order makes even disjoint-location pairs
/// order-sensitive — the store-buffering pattern the barrier relies
/// on).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct OpDesc {
    /// Up to two touched locations as `(loc_id, write_like)`.
    pub locs: [Option<(usize, bool)>; 2],
    /// Whether the operation is `SeqCst`.
    pub sc: bool,
}

impl OpDesc {
    /// Whether two operations must be ordered (do not commute).
    pub fn dependent(&self, other: &OpDesc) -> bool {
        if self.sc && other.sc {
            return true;
        }
        for a in self.locs.iter().flatten() {
            for b in other.locs.iter().flatten() {
                if a.0 == b.0 && (a.1 || b.1) {
                    return true;
                }
            }
        }
        false
    }
}

/// The operation a model thread submitted and parked on.
#[derive(Debug)]
pub(crate) struct OpReq {
    /// Identity of the shim object (its address; stable per execution).
    pub loc_key: usize,
    /// Shim label for traces.
    pub label: &'static str,
    /// Initial value for lazy atomic registration.
    pub init: u64,
    pub kind: OpKind,
}

#[derive(Debug)]
pub(crate) enum OpKind {
    Load {
        ord: Ordering,
    },
    Store {
        val: u64,
        ord: Ordering,
    },
    /// `fetch_add`/`fetch_sub` as a signed wrapping delta; returns the
    /// previous value.
    Rmw {
        delta: i64,
        ord: Ordering,
    },
    CellWrite,
    CellRead,
    MutexLock,
    MutexUnlock,
    CvWait {
        mutex_key: usize,
        mutex_label: &'static str,
    },
    CvNotify {
        all: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// Executing user code (or not yet submitted its first op).
    Running,
    /// Parked on a submitted operation.
    AtOp,
    /// Operation applied; result ready, thread about to resume.
    Granted,
    /// Inside a condvar wait, mutex released.
    Sleeping,
    /// Woken (notify or spurious); pending mutex re-acquisition.
    Relock,
    Finished,
}

#[derive(Debug)]
pub(crate) struct TState {
    pub status: Status,
    pub req: Option<OpReq>,
    pub result: u64,
    /// For `Sleeping`/`Relock`: the mutex to re-acquire and the cv
    /// slept on (loc ids).
    pub wait_mutex: usize,
    pub wait_cv: usize,
    pub panic_msg: Option<String>,
}

impl TState {
    fn new() -> TState {
        TState {
            status: Status::Running,
            req: None,
            result: 0,
            wait_mutex: usize::MAX,
            wait_cv: usize::MAX,
            panic_msg: None,
        }
    }
}

/// Why an execution stopped with a counterexample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// No thread can make progress and none is condvar-sleeping.
    Deadlock,
    /// Sleeping threads can only proceed via a spurious wakeup: the
    /// protocol lost a wakeup (or never sent one).
    LostWakeup,
    /// Unordered access pair on a non-atomic location (torn read).
    DataRace,
    /// A model thread panicked (failed assertion in protocol code).
    Panic,
    /// A post-quiescence property closure panicked.
    PropertyFailed,
    /// The execution exceeded the configured step bound.
    DepthBound,
}

impl FailureKind {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Deadlock => "deadlock",
            FailureKind::LostWakeup => "lost-wakeup",
            FailureKind::DataRace => "data-race",
            FailureKind::Panic => "panic",
            FailureKind::PropertyFailed => "property-failed",
            FailureKind::DepthBound => "depth-bound",
        }
    }
}

#[derive(Debug)]
pub(crate) struct Failure {
    pub kind: FailureKind,
    pub message: String,
}

/// All mutable execution state, guarded by [`Shared::inner`].
pub(crate) struct Inner {
    pub threads: Vec<TState>,
    pub clocks: Vec<VClock>,
    pub locs: Vec<Loc>,
    loc_keys: Vec<usize>,
    pub spurious_left: u32,
    pub trace: Vec<TraceStep>,
    pub steps: usize,
    pub abort: bool,
    pub failure: Option<Failure>,
}

pub(crate) struct Shared {
    pub inner: Mutex<Inner>,
    pub cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Shared>, usize)>> = const { RefCell::new(None) };
}

/// The active model execution of this thread, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Shared>, usize)> {
    if std::thread::panicking() {
        // Shim calls during unwinding (guard drops) bypass the model:
        // submitting would park a thread that must keep unwinding.
        return None;
    }
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(v: Option<(Arc<Shared>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

fn lock(shared: &Shared) -> std::sync::MutexGuard<'_, Inner> {
    shared.inner.lock().unwrap_or_else(|e| e.into_inner())
}

impl Shared {
    pub(crate) fn new(n_threads: usize, spurious_budget: u32) -> Shared {
        Shared {
            inner: Mutex::new(Inner {
                threads: (0..n_threads).map(|_| TState::new()).collect(),
                clocks: vec![VClock::ZERO; n_threads],
                locs: Vec::new(),
                loc_keys: Vec::new(),
                spurious_left: spurious_budget,
                trace: Vec::new(),
                steps: 0,
                abort: false,
                failure: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Model-thread side: submit an operation and park until the
    /// orchestrator applies it; returns the operation's result value.
    pub(crate) fn submit(&self, tid: usize, req: OpReq) -> u64 {
        let mut g = lock(self);
        if g.abort {
            drop(g);
            std::panic::panic_any(ModelAbort);
        }
        g.threads[tid].req = Some(req);
        g.threads[tid].status = Status::AtOp;
        self.cv.notify_all();
        loop {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            if g.abort {
                drop(g);
                std::panic::panic_any(ModelAbort);
            }
            if g.threads[tid].status == Status::Granted {
                break;
            }
        }
        g.threads[tid].status = Status::Running;
        g.threads[tid].result
    }

    /// Orchestrator side: block until every thread is parked (at an
    /// op, sleeping, pending relock, or finished). Returns the guard.
    pub(crate) fn wait_quiescent(&self) -> std::sync::MutexGuard<'_, Inner> {
        let mut g = lock(self);
        loop {
            let parked = g.threads.iter().all(|t| {
                matches!(
                    t.status,
                    Status::AtOp | Status::Sleeping | Status::Relock | Status::Finished
                )
            });
            if parked {
                return g;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Orchestrator side: wake everything into a [`ModelAbort`] unwind.
    pub(crate) fn abort(&self) {
        let mut g = lock(self);
        g.abort = true;
        // Threads parked in `submit` observe the flag; threads still
        // running user code hit it at their next shim operation.
        self.cv.notify_all();
    }
}

impl Inner {
    /// Interns the location behind `key`, creating it with `mk` on
    /// first sight.
    pub(crate) fn loc_id(
        &mut self,
        key: usize,
        label: &'static str,
        mk: impl FnOnce() -> LocState,
    ) -> usize {
        if let Some(i) = self.loc_keys.iter().position(|&k| k == key) {
            return i;
        }
        self.loc_keys.push(key);
        self.locs.push(Loc { label, state: mk() });
        self.locs.len() - 1
    }

    /// Registers the location a pending op touches (so dependence
    /// fingerprints exist before the op runs) and returns its desc.
    pub(crate) fn desc_of(&mut self, tid: usize) -> OpDesc {
        let (key, label, init, kind_info) = {
            let t = &self.threads[tid];
            if t.status == Status::Relock || t.status == Status::Sleeping {
                // Pending relock: behaves as a mutex acquisition, and is
                // woken by notifies on the cv it slept on.
                return OpDesc {
                    locs: [Some((t.wait_mutex, true)), Some((t.wait_cv, true))],
                    sc: false,
                };
            }
            let req = t.req.as_ref().expect("AtOp thread has a request");
            let info = match &req.kind {
                OpKind::Load { ord } => (false, false, *ord, None),
                OpKind::Store { ord, .. } | OpKind::Rmw { ord, .. } => (true, false, *ord, None),
                OpKind::CellWrite => (true, false, Ordering::Relaxed, None),
                OpKind::CellRead => (false, false, Ordering::Relaxed, None),
                OpKind::MutexLock | OpKind::MutexUnlock => (true, true, Ordering::Relaxed, None),
                OpKind::CvWait {
                    mutex_key,
                    mutex_label,
                } => (
                    true,
                    false,
                    Ordering::Relaxed,
                    Some((*mutex_key, *mutex_label)),
                ),
                OpKind::CvNotify { .. } => (true, false, Ordering::Relaxed, None),
            };
            (req.loc_key, req.label, req.init, info)
        };
        let (write_like, _is_mutex, ord, extra_mutex) = kind_info;
        let primary = self.loc_for_req(tid, key, label, init);
        let second = extra_mutex.map(|(mk, ml)| (self.loc_id(mk, ml, LocState::new_mutex), true));
        OpDesc {
            locs: [Some((primary, write_like)), second],
            sc: ord == Ordering::SeqCst,
        }
    }

    fn loc_for_req(&mut self, tid: usize, key: usize, label: &'static str, init: u64) -> usize {
        let kind = match &self.threads[tid].req.as_ref().expect("request").kind {
            OpKind::Load { .. } | OpKind::Store { .. } | OpKind::Rmw { .. } => 0,
            OpKind::CellWrite | OpKind::CellRead => 1,
            OpKind::MutexLock | OpKind::MutexUnlock => 2,
            OpKind::CvWait { .. } | OpKind::CvNotify { .. } => 3,
        };
        self.loc_id(key, label, || match kind {
            0 => LocState::new_atomic(init),
            1 => LocState::new_data(),
            2 => LocState::new_mutex(),
            _ => LocState::Condvar,
        })
    }

    /// Whether the pending operation of `tid` can execute now.
    pub(crate) fn op_enabled(&mut self, tid: usize) -> bool {
        match self.threads[tid].status {
            Status::AtOp => {
                let (key, label, init) = {
                    let req = self.threads[tid].req.as_ref().expect("request");
                    (req.loc_key, req.label, req.init)
                };
                if matches!(
                    self.threads[tid].req.as_ref().expect("request").kind,
                    OpKind::MutexLock
                ) {
                    let loc = self.loc_for_req(tid, key, label, init);
                    match &self.locs[loc].state {
                        LocState::Mutex { owner, .. } => owner.is_none(),
                        _ => true,
                    }
                } else {
                    true
                }
            }
            Status::Relock => {
                let m = self.threads[tid].wait_mutex;
                match &self.locs[m].state {
                    LocState::Mutex { owner, .. } => owner.is_none(),
                    _ => true,
                }
            }
            _ => false,
        }
    }

    fn fail(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            self.failure = Some(Failure { kind, message });
        }
    }

    fn push_trace(&mut self, step: TraceStep) {
        self.trace.push(step);
        self.steps += 1;
    }

    /// Applies the `Spurious(tid)` decision.
    pub(crate) fn apply_spurious(&mut self, tid: usize) {
        debug_assert_eq!(self.threads[tid].status, Status::Sleeping);
        self.spurious_left -= 1;
        self.threads[tid].status = Status::Relock;
        let cv = self.threads[tid].wait_cv;
        let label = self.locs[cv].label;
        self.push_trace(TraceStep::new(tid, "spurious-wake", label));
    }

    /// Applies the pending operation of `tid`. For loads with several
    /// visible stores, `read_from` picks one (as chosen by the
    /// explorer); the caller obtains the candidate list from
    /// [`Inner::load_alternatives`] first.
    ///
    /// Returns `true` when the thread was granted (its submit returns);
    /// condvar waits leave the thread parked.
    pub(crate) fn apply(&mut self, tid: usize, read_from: Option<usize>) -> bool {
        if self.threads[tid].status == Status::Relock {
            return self.apply_relock(tid);
        }
        let req = self.threads[tid]
            .req
            .take()
            .expect("AtOp thread has a request");
        let loc = {
            self.threads[tid].req = Some(req);
            let r = self.loc_for_req(
                tid,
                self.threads[tid].req.as_ref().expect("req").loc_key,
                self.threads[tid].req.as_ref().expect("req").label,
                self.threads[tid].req.as_ref().expect("req").init,
            );
            r
        };
        let req = self.threads[tid].req.take().expect("request");
        let label = self.locs[loc].label;
        self.clocks[tid].tick(tid);
        let clock = self.clocks[tid];
        match req.kind {
            OpKind::Load { ord } => {
                let stores_len = match &self.locs[loc].state {
                    LocState::Atomic { stores, .. } => stores.len(),
                    _ => unreachable!("load on non-atomic"),
                };
                let chosen = read_from.unwrap_or_else(|| {
                    *self
                        .load_visible(tid, loc, ord)
                        .last()
                        .expect("visible set is never empty")
                });
                let (val, msg) = match &self.locs[loc].state {
                    LocState::Atomic { stores, .. } => (stores[chosen].val, stores[chosen].msg),
                    _ => unreachable!(),
                };
                if is_acquire(ord) {
                    if let Some(m) = msg {
                        self.clocks[tid].join(&m);
                    }
                }
                if let LocState::Atomic { seen, .. } = &mut self.locs[loc].state {
                    seen[tid] = seen[tid].max(chosen);
                }
                let stale = chosen + 1 != stores_len;
                self.push_trace(
                    TraceStep::new(tid, "load", label)
                        .ord(ord)
                        .value(val)
                        .stale(stale, chosen, stores_len),
                );
                self.grant(tid, val)
            }
            OpKind::Store { val, ord } => {
                if let LocState::Atomic {
                    stores,
                    last_sc,
                    seen,
                } = &mut self.locs[loc].state
                {
                    stores.push(Store {
                        val,
                        hb: clock,
                        msg: is_release(ord).then_some(clock),
                        sc: ord == Ordering::SeqCst,
                        by: tid,
                    });
                    let idx = stores.len() - 1;
                    if ord == Ordering::SeqCst {
                        *last_sc = Some(idx);
                    }
                    seen[tid] = idx;
                }
                self.push_trace(TraceStep::new(tid, "store", label).ord(ord).value(val));
                self.grant(tid, 0)
            }
            OpKind::Rmw { delta, ord } => {
                let (prev, prev_msg) = match &self.locs[loc].state {
                    LocState::Atomic { stores, .. } => {
                        let s = stores.last().expect("history nonempty");
                        (s.val, s.msg)
                    }
                    _ => unreachable!("rmw on non-atomic"),
                };
                if is_acquire(ord) {
                    if let Some(m) = prev_msg {
                        self.clocks[tid].join(&m);
                    }
                }
                let clock = self.clocks[tid];
                let new = prev.wrapping_add_signed(delta);
                if let LocState::Atomic {
                    stores,
                    last_sc,
                    seen,
                } = &mut self.locs[loc].state
                {
                    // Release-sequence continuation: the RMW's message
                    // carries the message of the store it read even if
                    // the RMW itself is not a release.
                    let msg = match (is_release(ord).then_some(clock), prev_msg) {
                        (Some(mut m), Some(p)) => {
                            m.join(&p);
                            Some(m)
                        }
                        (Some(m), None) => Some(m),
                        (None, Some(p)) => Some(p),
                        (None, None) => None,
                    };
                    stores.push(Store {
                        val: new,
                        hb: clock,
                        msg,
                        sc: ord == Ordering::SeqCst,
                        by: tid,
                    });
                    let idx = stores.len() - 1;
                    if ord == Ordering::SeqCst {
                        *last_sc = Some(idx);
                    }
                    seen[tid] = idx;
                }
                let op = if delta >= 0 { "fetch_add" } else { "fetch_sub" };
                self.push_trace(TraceStep::new(tid, op, label).ord(ord).value(new));
                self.grant(tid, prev)
            }
            OpKind::CellWrite => {
                let mut race = None;
                if let LocState::Data {
                    write_hb,
                    writer,
                    reads,
                } = &mut self.locs[loc].state
                {
                    if !write_hb.le(&clock) {
                        race = Some(format!(
                            "write by thread {tid} races previous write by thread {} on `{label}`",
                            writer.map_or("?".into(), |w| w.to_string())
                        ));
                    }
                    for (rt, rc) in reads.iter().enumerate() {
                        if let Some(rc) = rc {
                            if !rc.le(&clock) {
                                race = Some(format!(
                                    "write by thread {tid} races read by thread {rt} on `{label}`"
                                ));
                            }
                        }
                    }
                    *write_hb = clock;
                    *writer = Some(tid);
                    **reads = [None; crate::clock::MAX_THREADS];
                }
                self.push_trace(TraceStep::new(tid, "cell-write", label));
                if let Some(msg) = race {
                    self.fail(FailureKind::DataRace, msg);
                }
                self.grant(tid, 0)
            }
            OpKind::CellRead => {
                let mut race = None;
                if let LocState::Data {
                    write_hb,
                    writer,
                    reads,
                } = &mut self.locs[loc].state
                {
                    if !write_hb.le(&clock) {
                        race = Some(format!(
                            "read by thread {tid} races write by thread {} on `{label}` (torn read)",
                            writer.map_or("?".into(), |w| w.to_string())
                        ));
                    }
                    reads[tid] = Some(clock);
                }
                self.push_trace(TraceStep::new(tid, "cell-read", label));
                if let Some(msg) = race {
                    self.fail(FailureKind::DataRace, msg);
                }
                self.grant(tid, 0)
            }
            OpKind::MutexLock => {
                if let LocState::Mutex { owner, rel } = &mut self.locs[loc].state {
                    debug_assert!(owner.is_none(), "lock granted while held");
                    *owner = Some(tid);
                    let rel = *rel;
                    self.clocks[tid].join(&rel);
                }
                self.push_trace(TraceStep::new(tid, "mutex-lock", label));
                self.grant(tid, 0)
            }
            OpKind::MutexUnlock => {
                if let LocState::Mutex { owner, rel } = &mut self.locs[loc].state {
                    *owner = None;
                    *rel = clock;
                }
                self.push_trace(TraceStep::new(tid, "mutex-unlock", label));
                self.grant(tid, 0)
            }
            OpKind::CvWait {
                mutex_key,
                mutex_label,
            } => {
                let m = self.loc_id(mutex_key, mutex_label, LocState::new_mutex);
                if let LocState::Mutex { owner, rel } = &mut self.locs[m].state {
                    *owner = None;
                    *rel = clock;
                }
                let t = &mut self.threads[tid];
                t.status = Status::Sleeping;
                t.wait_mutex = m;
                t.wait_cv = loc;
                self.push_trace(TraceStep::new(tid, "cv-wait (sleep)", label));
                false
            }
            OpKind::CvNotify { all } => {
                let mut woken = Vec::new();
                for (ot, t) in self.threads.iter_mut().enumerate() {
                    if t.status == Status::Sleeping && t.wait_cv == loc {
                        woken.push(ot);
                        if !all {
                            break;
                        }
                    }
                }
                for &ot in &woken {
                    self.threads[ot].status = Status::Relock;
                }
                let op = if all { "notify-all" } else { "notify-one" };
                self.push_trace(
                    TraceStep::new(tid, op, label).note(format!("woke {} waiter(s)", woken.len())),
                );
                self.grant(tid, 0)
            }
        }
    }

    fn apply_relock(&mut self, tid: usize) -> bool {
        let m = self.threads[tid].wait_mutex;
        if let LocState::Mutex { owner, rel } = &mut self.locs[m].state {
            debug_assert!(owner.is_none(), "relock granted while held");
            *owner = Some(tid);
            let rel = *rel;
            self.clocks[tid].join(&rel);
        }
        let label = self.locs[m].label;
        self.push_trace(TraceStep::new(tid, "cv-wake (relock)", label));
        self.threads[tid].wait_mutex = usize::MAX;
        self.threads[tid].wait_cv = usize::MAX;
        self.grant(tid, 0)
    }

    /// Visible store indices (oldest-first) for the pending load of
    /// `tid`, or `None` if the pending op is not an atomic load.
    pub(crate) fn load_alternatives(&mut self, tid: usize) -> Option<Vec<usize>> {
        if self.threads[tid].status != Status::AtOp {
            return None;
        }
        let ord = match &self.threads[tid].req.as_ref()?.kind {
            OpKind::Load { ord } => *ord,
            _ => return None,
        };
        let loc = self.loc_for_req(
            tid,
            self.threads[tid].req.as_ref().expect("req").loc_key,
            self.threads[tid].req.as_ref().expect("req").label,
            self.threads[tid].req.as_ref().expect("req").init,
        );
        Some(self.load_visible(tid, loc, ord))
    }

    fn load_visible(&mut self, tid: usize, loc: usize, ord: Ordering) -> Vec<usize> {
        let clock = self.clocks[tid];
        match &self.locs[loc].state {
            LocState::Atomic {
                stores,
                last_sc,
                seen,
            } => visible_indices(stores, seen[tid], *last_sc, &clock, ord == Ordering::SeqCst),
            _ => unreachable!("load on non-atomic"),
        }
    }

    fn grant(&mut self, tid: usize, result: u64) -> bool {
        let t = &mut self.threads[tid];
        t.result = result;
        t.status = Status::Granted;
        true
    }
}
