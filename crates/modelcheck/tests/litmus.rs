//! Litmus tests calibrating the checker against the classic weak-memory
//! and condvar shapes: if the engine cannot reproduce store buffering
//! or catch a textbook lost wakeup, its verdicts on the runtime's
//! protocols would be worthless.

use islands_modelcheck::{
    format_trace, Checker, Config, FailureKind, ModelAtomicUsize, ModelCell, ModelCondvar,
    ModelMutex, Scenario,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn checker() -> Checker {
    Checker::new(Config::default())
}

/// Store buffering: with `SeqCst` the both-read-zero outcome must be
/// impossible; one step weaker (`Release`/`Acquire`) it must appear.
fn store_buffering(store_ord: Ordering, load_ord: Ordering) -> Option<FailureKind> {
    let report = checker().check(move || {
        let mut s = Scenario::new("litmus-sb");
        let x = Arc::new(ModelAtomicUsize::with_label(0, "x"));
        let y = Arc::new(ModelAtomicUsize::with_label(0, "y"));
        let r0 = Arc::new(AtomicUsize::new(9));
        let r1 = Arc::new(AtomicUsize::new(9));
        {
            let (x, y, r0) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r0));
            s.thread(move || {
                x.store(1, store_ord);
                r0.store(y.load(load_ord), Ordering::SeqCst);
            });
        }
        {
            let (x, y, r1) = (Arc::clone(&x), Arc::clone(&y), Arc::clone(&r1));
            s.thread(move || {
                y.store(1, store_ord);
                r1.store(x.load(load_ord), Ordering::SeqCst);
            });
        }
        s.after(move || {
            assert!(
                !(r0.load(Ordering::SeqCst) == 0 && r1.load(Ordering::SeqCst) == 0),
                "both threads read 0: stores were buffered past the loads"
            );
        });
        s
    });
    report.counterexample.map(|ce| ce.kind)
}

#[test]
fn sb_seqcst_forbids_both_zero() {
    assert_eq!(store_buffering(Ordering::SeqCst, Ordering::SeqCst), None);
}

#[test]
fn sb_release_acquire_allows_both_zero() {
    assert_eq!(
        store_buffering(Ordering::Release, Ordering::Acquire),
        Some(FailureKind::PropertyFailed)
    );
}

/// Message passing: `Release` store / `Acquire` load transfers the
/// payload write; fully `Relaxed` the flag may be seen without it.
fn message_passing(pub_ord: Ordering, sub_ord: Ordering) -> Option<FailureKind> {
    let report = checker().check(move || {
        let mut s = Scenario::new("litmus-mp");
        let data = Arc::new(ModelAtomicUsize::with_label(0, "data"));
        let flag = Arc::new(ModelAtomicUsize::with_label(0, "flag"));
        {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            s.thread(move || {
                data.store(42, Ordering::Relaxed);
                flag.store(1, pub_ord);
            });
        }
        {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            s.thread(move || {
                if flag.load(sub_ord) == 1 {
                    assert_eq!(
                        data.load(Ordering::Relaxed),
                        42,
                        "flag visible before payload"
                    );
                }
            });
        }
        s
    });
    report.counterexample.map(|ce| ce.kind)
}

#[test]
fn mp_release_acquire_is_clean() {
    assert_eq!(message_passing(Ordering::Release, Ordering::Acquire), None);
}

#[test]
fn mp_relaxed_loses_the_payload() {
    assert_eq!(
        message_passing(Ordering::Relaxed, Ordering::Relaxed),
        Some(FailureKind::Panic)
    );
}

#[test]
fn unprotected_cell_is_a_data_race() {
    let report = checker().check(|| {
        let mut s = Scenario::new("litmus-race");
        let c = Arc::new(ModelCell::with_label(0u64, "slot"));
        {
            let c = Arc::clone(&c);
            s.thread(move || c.set(7));
        }
        {
            let c = Arc::clone(&c);
            s.thread(move || {
                let _ = c.get();
            });
        }
        s
    });
    let ce = report
        .counterexample
        .expect("unsynchronized cell access must race");
    assert_eq!(ce.kind, FailureKind::DataRace);
    assert!(
        ce.message.contains("slot"),
        "race names the location: {}",
        ce.message
    );
}

#[test]
fn mutex_protects_the_cell() {
    let report = checker().check(|| {
        let mut s = Scenario::new("litmus-mutex");
        let m = Arc::new(ModelMutex::with_label((), "m"));
        let c = Arc::new(ModelCell::with_label(0u64, "slot"));
        for _ in 0..2 {
            let (m, c) = (Arc::clone(&m), Arc::clone(&c));
            s.thread(move || {
                let _g = m.lock().unwrap();
                let v = c.get();
                c.set(v + 1);
            });
        }
        let c = Arc::clone(&c);
        s.after(move || assert_eq!(c.get(), 2));
        s
    });
    assert!(report.exhaustive_and_clean(), "{}", report.summary());
}

#[test]
fn lock_order_inversion_deadlocks() {
    let report = checker().check(|| {
        let mut s = Scenario::new("litmus-deadlock");
        let a = Arc::new(ModelMutex::with_label((), "a"));
        let b = Arc::new(ModelMutex::with_label((), "b"));
        {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            s.thread(move || {
                let _ga = a.lock().unwrap();
                let _gb = b.lock().unwrap();
            });
        }
        {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            s.thread(move || {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            });
        }
        s
    });
    let ce = report.counterexample.expect("AB/BA locking must deadlock");
    assert_eq!(ce.kind, FailureKind::Deadlock);
}

#[test]
fn wait_without_notify_is_a_lost_wakeup() {
    let report = checker().check(|| {
        let mut s = Scenario::new("litmus-lost-wakeup");
        let m = Arc::new(ModelMutex::with_label(false, "m"));
        let cv = Arc::new(ModelCondvar::with_label("cv"));
        {
            let (m, cv) = (Arc::clone(&m), Arc::clone(&cv));
            s.thread(move || {
                let mut g = m.lock().unwrap();
                while !*g {
                    g = cv.wait(g).unwrap();
                }
            });
        }
        {
            let m = Arc::clone(&m);
            s.thread(move || {
                // Sets the predicate but never notifies.
                *m.lock().unwrap() = true;
            });
        }
        s
    });
    let ce = report
        .counterexample
        .expect("missing notify must be flagged");
    assert_eq!(ce.kind, FailureKind::LostWakeup);
    // The schedule must replay to the same failure.
    let replayed = Checker::new(Config::default()).replay(
        {
            let mut s = Scenario::new("litmus-lost-wakeup");
            let m = Arc::new(ModelMutex::with_label(false, "m"));
            let cv = Arc::new(ModelCondvar::with_label("cv"));
            {
                let (m, cv) = (Arc::clone(&m), Arc::clone(&cv));
                s.thread(move || {
                    let mut g = m.lock().unwrap();
                    while !*g {
                        g = cv.wait(g).unwrap();
                    }
                });
            }
            {
                let m = Arc::clone(&m);
                s.thread(move || {
                    *m.lock().unwrap() = true;
                });
            }
            s
        },
        &ce.schedule,
    );
    let rep_ce = replayed
        .counterexample
        .expect("schedule replays the failure");
    assert_eq!(rep_ce.kind, FailureKind::LostWakeup);
    assert!(!format_trace(&rep_ce.trace).is_empty());
}

#[test]
fn predicate_loop_survives_spurious_wakeups() {
    let report = checker().check(|| {
        let mut s = Scenario::new("litmus-spurious");
        let m = Arc::new(ModelMutex::with_label(false, "m"));
        let cv = Arc::new(ModelCondvar::with_label("cv"));
        {
            let (m, cv) = (Arc::clone(&m), Arc::clone(&cv));
            s.thread(move || {
                let mut g = m.lock().unwrap();
                while !*g {
                    g = cv.wait(g).unwrap();
                }
            });
        }
        {
            let (m, cv) = (Arc::clone(&m), Arc::clone(&cv));
            s.thread(move || {
                *m.lock().unwrap() = true;
                cv.notify_all();
            });
        }
        s
    });
    assert!(report.exhaustive_and_clean(), "{}", report.summary());
    assert!(
        report.spurious_injected > 0,
        "explorer must have exercised spurious wakeups: {}",
        report.summary()
    );
}

#[test]
fn rmw_increments_never_lose_updates() {
    let report = checker().check(|| {
        let mut s = Scenario::new("litmus-rmw");
        let n = Arc::new(ModelAtomicUsize::with_label(0, "n"));
        for _ in 0..3 {
            let n = Arc::clone(&n);
            s.thread(move || {
                n.fetch_add(1, Ordering::Relaxed);
            });
        }
        let n = Arc::clone(&n);
        s.after(move || assert_eq!(n.load(Ordering::SeqCst), 3));
        s
    });
    assert!(report.exhaustive_and_clean(), "{}", report.summary());
}

#[test]
fn sleep_sets_prune_without_losing_outcomes() {
    // Two independent writers: sleep sets should prune some of the
    // 2-thread interleavings while still exploring at least one.
    let report = checker().check(|| {
        let mut s = Scenario::new("litmus-prune");
        let x = Arc::new(ModelAtomicUsize::with_label(0, "x"));
        let y = Arc::new(ModelAtomicUsize::with_label(0, "y"));
        {
            let x = Arc::clone(&x);
            s.thread(move || x.store(1, Ordering::Relaxed));
        }
        {
            let y = Arc::clone(&y);
            s.thread(move || y.store(1, Ordering::Relaxed));
        }
        let (x, y) = (Arc::clone(&x), Arc::clone(&y));
        s.after(move || {
            assert_eq!(x.load(Ordering::SeqCst), 1);
            assert_eq!(y.load(Ordering::SeqCst), 1);
        });
        s
    });
    assert!(report.exhaustive_and_clean(), "{}", report.summary());
    assert!(
        report.pruned > 0,
        "independent ops should produce sleep-set pruning: {}",
        report.summary()
    );
}
