//! Microbenches of the *real-thread* MPDATA executors on the build host
//! (correctness-scale grids; the paper-scale performance numbers come
//! from the simulator binaries, not from here).

use islands_bench::microbench::Harness;
use mpdata::{
    gaussian_pulse, ExchangeExecutor, FusedExecutor, IslandsExecutor, OriginalExecutor,
    ReferenceExecutor,
};
use stencil_engine::{Axis, Region3};
use work_scheduler::{TeamSpec, WorkerPool};

fn bench_step(h: &mut Harness) {
    let domain = Region3::of_extent(48, 24, 12);
    let fields = gaussian_pulse(domain, (0.2, 0.1, 0.0));
    let mut group = h.group("mpdata_step");
    group.sample_size(20);

    let reference = ReferenceExecutor::new();
    group.bench("reference_serial", || {
        std::hint::black_box(reference.step(&fields));
    });

    for workers in [2usize, 4] {
        let pool = WorkerPool::new(workers);
        let original = OriginalExecutor::new(&pool);
        group.bench_param("original_parallel", workers, || {
            std::hint::black_box(original.step(&fields));
        });
        let fused = FusedExecutor::new(&pool).cache_bytes(256 * 1024);
        group.bench_param("fused_3p1d", workers, || {
            std::hint::black_box(fused.step(&fields).unwrap());
        });
        let islands = IslandsExecutor::new(&pool, TeamSpec::even(workers, workers.min(2)), Axis::I)
            .cache_bytes(256 * 1024);
        group.bench_param("islands", workers, || {
            std::hint::black_box(islands.step(&fields).unwrap());
        });
        let exchange =
            ExchangeExecutor::new(&pool, TeamSpec::even(workers, workers.min(2)), Axis::I);
        group.bench_param("exchange", workers, || {
            std::hint::black_box(exchange.step(&fields));
        });
    }
    group.finish();
}

fn bench_single_stage(h: &mut Harness) {
    use mpdata::{apply_stage, mpdata_graph};
    use stencil_engine::Array3;
    let domain = Region3::of_extent(64, 64, 32);
    let (graph, _) = mpdata_graph();
    let x = Array3::filled(domain, 2.0);
    let u = Array3::filled(domain, 0.3);
    let h_field = Array3::filled(domain, 1.0);
    let mut group = h.group("single_stage");
    group.sample_size(30);
    {
        let mut f = Array3::zeros(domain);
        group.bench("flux_i", || {
            apply_stage(0, domain, &[&x, &u], &mut [&mut f], domain)
        });
    }
    {
        let mut v = Array3::zeros(domain);
        group.bench("antidiff_i", || {
            apply_stage(
                4,
                domain,
                &[&x, &u, &u, &u, &h_field],
                &mut [&mut v],
                domain,
            )
        });
    }
    {
        let mut mx = Array3::zeros(domain);
        let mut mn = Array3::zeros(domain);
        group.bench("minmax", || {
            apply_stage(7, domain, &[&x, &u], &mut [&mut mx, &mut mn], domain)
        });
    }
    group.finish();
    let _ = graph;
}

fn bench_fast_vs_scalar(h: &mut Harness) {
    use mpdata::{apply_kind, apply_kind_scalar, Boundary, StageKind};
    use stencil_engine::Array3;
    let domain = Region3::of_extent(64, 64, 64);
    let x = Array3::filled(domain, 2.0);
    let u = Array3::filled(domain, 0.3);
    let mut group = h.group("flux_i_paths");
    group.sample_size(40);
    {
        let mut f = Array3::zeros(domain);
        group.bench("split_fast", || {
            apply_kind(
                StageKind::FluxI,
                domain,
                Boundary::Open,
                &[&x, &u],
                &mut [&mut f],
                domain,
            )
        });
    }
    {
        let mut f = Array3::zeros(domain);
        group.bench("scalar", || {
            apply_kind_scalar(
                StageKind::FluxI,
                domain,
                Boundary::Open,
                &[&x, &u],
                &mut [&mut f],
                domain,
            )
        });
    }
    group.finish();
}

fn main() {
    let mut h = Harness::from_env();
    bench_step(&mut h);
    bench_single_stage(&mut h);
    bench_fast_vs_scalar(&mut h);
    h.finish();
}
