//! Criterion microbenches of the *real-thread* MPDATA executors on the
//! build host (correctness-scale grids; the paper-scale performance
//! numbers come from the simulator binaries, not from here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpdata::{
    gaussian_pulse, ExchangeExecutor, FusedExecutor, IslandsExecutor, OriginalExecutor,
    ReferenceExecutor,
};
use stencil_engine::{Axis, Region3};
use work_scheduler::{TeamSpec, WorkerPool};

fn bench_step(c: &mut Criterion) {
    let domain = Region3::of_extent(48, 24, 12);
    let fields = gaussian_pulse(domain, (0.2, 0.1, 0.0));
    let mut group = c.benchmark_group("mpdata_step");
    group.sample_size(20);

    let reference = ReferenceExecutor::new();
    group.bench_function("reference_serial", |b| {
        b.iter(|| std::hint::black_box(reference.step(&fields)))
    });

    for workers in [2usize, 4] {
        let pool = WorkerPool::new(workers);
        let original = OriginalExecutor::new(&pool);
        group.bench_with_input(
            BenchmarkId::new("original_parallel", workers),
            &workers,
            |b, _| b.iter(|| std::hint::black_box(original.step(&fields))),
        );
        let fused = FusedExecutor::new(&pool).cache_bytes(256 * 1024);
        group.bench_with_input(BenchmarkId::new("fused_3p1d", workers), &workers, |b, _| {
            b.iter(|| std::hint::black_box(fused.step(&fields).unwrap()))
        });
        let islands = IslandsExecutor::new(&pool, TeamSpec::even(workers, workers.min(2)), Axis::I)
            .cache_bytes(256 * 1024);
        group.bench_with_input(BenchmarkId::new("islands", workers), &workers, |b, _| {
            b.iter(|| std::hint::black_box(islands.step(&fields).unwrap()))
        });
        let exchange =
            ExchangeExecutor::new(&pool, TeamSpec::even(workers, workers.min(2)), Axis::I);
        group.bench_with_input(BenchmarkId::new("exchange", workers), &workers, |b, _| {
            b.iter(|| std::hint::black_box(exchange.step(&fields)))
        });
    }
    group.finish();
}

fn bench_single_stage(c: &mut Criterion) {
    use mpdata::{apply_stage, mpdata_graph};
    use stencil_engine::Array3;
    let domain = Region3::of_extent(64, 64, 32);
    let (graph, _) = mpdata_graph();
    let x = Array3::filled(domain, 2.0);
    let u = Array3::filled(domain, 0.3);
    let h = Array3::filled(domain, 1.0);
    let mut group = c.benchmark_group("single_stage");
    group.sample_size(30);
    group.bench_function("flux_i", |b| {
        let mut f = Array3::zeros(domain);
        b.iter(|| apply_stage(0, domain, &[&x, &u], &mut [&mut f], domain))
    });
    group.bench_function("antidiff_i", |b| {
        let mut v = Array3::zeros(domain);
        b.iter(|| apply_stage(4, domain, &[&x, &u, &u, &u, &h], &mut [&mut v], domain))
    });
    group.bench_function("minmax", |b| {
        let mut mx = Array3::zeros(domain);
        let mut mn = Array3::zeros(domain);
        b.iter(|| apply_stage(7, domain, &[&x, &u], &mut [&mut mx, &mut mn], domain))
    });
    group.finish();
    let _ = graph;
}

fn bench_fast_vs_scalar(c: &mut Criterion) {
    use mpdata::{apply_kind, apply_kind_scalar, Boundary, MpdataProblem, StageKind};
    use stencil_engine::Array3;
    let domain = Region3::of_extent(64, 64, 64);
    let x = Array3::filled(domain, 2.0);
    let u = Array3::filled(domain, 0.3);
    let mut group = c.benchmark_group("flux_i_paths");
    group.sample_size(40);
    let p = MpdataProblem::standard();
    let _ = p;
    group.bench_function("split_fast", |b| {
        let mut f = Array3::zeros(domain);
        b.iter(|| {
            apply_kind(
                StageKind::FluxI,
                domain,
                Boundary::Open,
                &[&x, &u],
                &mut [&mut f],
                domain,
            )
        })
    });
    group.bench_function("scalar", |b| {
        let mut f = Array3::zeros(domain);
        b.iter(|| {
            apply_kind_scalar(
                StageKind::FluxI,
                domain,
                Boundary::Open,
                &[&x, &u],
                &mut [&mut f],
                domain,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_step, bench_single_stage, bench_fast_vs_scalar);
criterion_main!(benches);
