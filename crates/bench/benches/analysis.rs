//! Criterion microbenches of the planning/analysis layer: backward
//! requirement analysis, wavefront block planning, extra-element
//! accounting — the machinery every experiment binary runs at
//! paper-scale problem sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use islands_core::{extra_elements, Partition, Variant};
use mpdata::mpdata_graph;
use stencil_engine::{BlockPlanner, Region3};

fn bench_analysis(c: &mut Criterion) {
    let (graph, _) = mpdata_graph();
    let domain = Region3::of_extent(1024, 512, 64);

    let mut group = c.benchmark_group("analysis");
    group.bench_function("required_regions_full_domain", |b| {
        b.iter(|| std::hint::black_box(graph.required_regions(domain, domain)))
    });
    group.bench_function("cumulative_halos", |b| {
        b.iter(|| std::hint::black_box(graph.cumulative_halos()))
    });
    group.bench_function("wavefront_plan_paper_domain", |b| {
        let planner = BlockPlanner::new(16 << 20).min_depth(4);
        b.iter(|| {
            std::hint::black_box(planner.plan_wavefront(&graph, domain, domain).unwrap())
        })
    });
    group.bench_function("extra_elements_14_islands", |b| {
        let part = Partition::one_d(domain, Variant::A, 14).unwrap();
        b.iter(|| std::hint::black_box(extra_elements(&graph, &part)))
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
