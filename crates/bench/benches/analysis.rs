//! Microbenches of the planning/analysis layer: backward requirement
//! analysis, wavefront block planning, extra-element accounting — the
//! machinery every experiment binary runs at paper-scale problem
//! sizes.

use islands_bench::microbench::Harness;
use islands_core::{extra_elements, Partition, Variant};
use mpdata::mpdata_graph;
use stencil_engine::{BlockPlanner, Region3};

fn bench_analysis(h: &mut Harness) {
    let (graph, _) = mpdata_graph();
    let domain = Region3::of_extent(1024, 512, 64);

    let mut group = h.group("analysis");
    group.bench("required_regions_full_domain", || {
        std::hint::black_box(graph.required_regions(domain, domain));
    });
    group.bench("cumulative_halos", || {
        std::hint::black_box(graph.cumulative_halos());
    });
    let planner = BlockPlanner::new(16 << 20).min_depth(4);
    group.bench("wavefront_plan_paper_domain", || {
        std::hint::black_box(planner.plan_wavefront(&graph, domain, domain).unwrap());
    });
    let part = Partition::one_d(domain, Variant::A, 14).unwrap();
    group.bench("extra_elements_14_islands", || {
        std::hint::black_box(extra_elements(&graph, &part));
    });
    group.finish();
}

fn main() {
    let mut h = Harness::from_env();
    bench_analysis(&mut h);
    h.finish();
}
