//! Microbenches of the NUMA discrete-event simulator: how fast one
//! paper-scale time step of each strategy simulates, and the raw event
//! throughput of the engine.

use islands_bench::microbench::Harness;
use islands_core::{plan_fused, plan_islands, plan_original, InitPolicy, Variant, Workload};
use numa_sim::{simulate, CoreId, Op, SimConfig, TraceSet, UvParams};

fn bench_simulator(h: &mut Harness) {
    let machine = UvParams::uv2000(4).build();
    let w = Workload::paper();
    let cfg = SimConfig::default();

    let orig = plan_original(&machine, &w, InitPolicy::ParallelFirstTouch);
    let fused = plan_fused(&machine, &w, InitPolicy::ParallelFirstTouch).unwrap();
    let islands = plan_islands(&machine, &w, Variant::A).unwrap();

    let mut group = h.group("simulate_one_step_p4");
    group.sample_size(15);
    group.bench("original", || {
        std::hint::black_box(simulate(&machine, &orig, &cfg).unwrap());
    });
    group.bench("fused_3p1d", || {
        std::hint::black_box(simulate(&machine, &fused, &cfg).unwrap());
    });
    group.bench("islands", || {
        std::hint::black_box(simulate(&machine, &islands, &cfg).unwrap());
    });
    group.finish();

    // Raw engine throughput: a long chain of alternating ops on 8 cores.
    let mut raw = TraceSet::for_cores(machine.core_count());
    let barrier = raw.add_barrier((0..8).map(CoreId).collect());
    for c_ in 0..8usize {
        for n in 0..2000 {
            raw.push(CoreId(c_), Op::Compute { flops: 1e6 });
            raw.push(
                CoreId(c_),
                Op::MemRead {
                    node: numa_sim::NodeId(0),
                    bytes: 64.0 * 1024.0,
                },
            );
            if n % 10 == 0 {
                raw.push(CoreId(c_), Op::Barrier { id: barrier });
            }
        }
    }
    let mut group = h.group("engine_throughput");
    group.sample_size(20);
    group.bench("48k_ops_8_cores", || {
        std::hint::black_box(simulate(&machine, &raw, &cfg).unwrap());
    });
    group.finish();
}

fn main() {
    let mut h = Harness::from_env();
    bench_simulator(&mut h);
    h.finish();
}
