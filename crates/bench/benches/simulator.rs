//! Criterion microbenches of the NUMA discrete-event simulator: how
//! fast one paper-scale time step of each strategy simulates, and the
//! raw event throughput of the engine.

use criterion::{criterion_group, criterion_main, Criterion};
use islands_core::{plan_fused, plan_islands, plan_original, InitPolicy, Variant, Workload};
use numa_sim::{simulate, CoreId, Op, SimConfig, TraceSet, UvParams};

fn bench_simulator(c: &mut Criterion) {
    let machine = UvParams::uv2000(4).build();
    let w = Workload::paper();
    let cfg = SimConfig::default();

    let orig = plan_original(&machine, &w, InitPolicy::ParallelFirstTouch);
    let fused = plan_fused(&machine, &w, InitPolicy::ParallelFirstTouch).unwrap();
    let islands = plan_islands(&machine, &w, Variant::A).unwrap();

    let mut group = c.benchmark_group("simulate_one_step_p4");
    group.sample_size(15);
    group.bench_function("original", |b| {
        b.iter(|| std::hint::black_box(simulate(&machine, &orig, &cfg).unwrap()))
    });
    group.bench_function("fused_3p1d", |b| {
        b.iter(|| std::hint::black_box(simulate(&machine, &fused, &cfg).unwrap()))
    });
    group.bench_function("islands", |b| {
        b.iter(|| std::hint::black_box(simulate(&machine, &islands, &cfg).unwrap()))
    });
    group.finish();

    // Raw engine throughput: a long chain of alternating ops on 8 cores.
    let mut raw = TraceSet::for_cores(machine.core_count());
    let barrier = raw.add_barrier((0..8).map(CoreId).collect());
    for c_ in 0..8usize {
        for n in 0..2000 {
            raw.push(CoreId(c_), Op::Compute { flops: 1e6 });
            raw.push(
                CoreId(c_),
                Op::MemRead {
                    node: numa_sim::NodeId(0),
                    bytes: 64.0 * 1024.0,
                },
            );
            if n % 10 == 0 {
                raw.push(CoreId(c_), Op::Barrier { id: barrier });
            }
        }
    }
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(20);
    group.bench_function("48k_ops_8_cores", |b| {
        b.iter(|| std::hint::black_box(simulate(&machine, &raw, &cfg).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
