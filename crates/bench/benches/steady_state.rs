//! First-step versus steady-state step cost of the threaded executors.
//!
//! The persistent-plan layer makes `IslandsExecutor`/`FusedExecutor`
//! compute their execution plan (partition, per-island blocking, epoch
//! tables, scratch stores) once and replay it allocation-free on every
//! further step. This bench measures both sides of that trade through
//! the same `run` entry point:
//!
//! * `*_first/P` — a fresh executor per iteration running one step, so
//!   every measurement pays plan construction plus the step;
//! * `*_steady/P` — a warmed executor running a multi-step batch,
//!   reported per step: the marginal cost of steps 2..N, where the plan
//!   is replayed from cache with zero heap allocations.
//!
//! After the timed samples of each `*_steady/P` row, one extra
//! *untimed* batch runs under the `islands-trace` recorder to attach a
//! kernel / barrier / swap phase breakdown to the row (tracing never
//! overlaps a timed sample, so the medians stay clean). `bench-check
//! --phases` validates those fields and gates on the steady/first
//! ratio.
//!
//! `--quick` shrinks the domain and drops the oversubscribed P = 14
//! point for CI smoke runs; `--json <path>` writes the artifact that
//! `bench-check` validates (steady must beat first).

use islands_bench::microbench::{Harness, Phases};
use mpdata::{gaussian_pulse, FusedExecutor, IslandsExecutor, MpdataFields};
use stencil_engine::{Axis, Region3};
use work_scheduler::{TeamSpec, WorkerPool};

/// Replays `steps` steps of `run` under the trace recorder and folds
/// the per-island totals into worker-summed nanoseconds per step.
fn traced_phases(steps: u64, run: impl FnOnce()) -> Phases {
    let session = islands_trace::Session::start();
    run();
    let drained = session.finish();
    let totals = islands_trace::metrics::RunMetrics::aggregate(&drained).totals();
    let per_step = |ns: u64| ns as f64 / steps as f64;
    Phases {
        kernel_ns: per_step(totals.iter().map(|m| m.kernel_ns).sum()),
        barrier_ns: per_step(totals.iter().map(|m| m.barrier_wait_ns()).sum()),
        swap_ns: per_step(totals.iter().map(|m| m.swap_ns).sum()),
    }
}

/// Small enough to split every island into several wavefront blocks on
/// both bench domains.
const CACHE_BYTES: usize = 1 << 20;

/// Steps per steady-state batch (one pool dispatch, `STEADY_STEPS`
/// plan replays).
const STEADY_STEPS: u64 = 8;

fn main() {
    let mut h = Harness::from_env();
    let (domain, island_counts): (Region3, &[usize]) = if h.quick() {
        (Region3::of_extent(60, 30, 16), &[1, 4])
    } else {
        (Region3::of_extent(120, 60, 32), &[1, 4, 14])
    };
    let fields = gaussian_pulse(domain, (0.2, 0.1, 0.05));

    let mut g = h.group("steady_state");
    g.sample_size(7);
    for &p in island_counts {
        let pool = WorkerPool::new(p);
        let spec = TeamSpec::even(p, p); // one single-core island per P

        let mut f: MpdataFields = fields.clone();
        g.bench_param("islands_first", p, || {
            let fresh = IslandsExecutor::new(&pool, spec.clone(), Axis::I).cache_bytes(CACHE_BYTES);
            fresh.run(&mut f, 1).unwrap();
        });
        let warmed = IslandsExecutor::new(&pool, spec.clone(), Axis::I).cache_bytes(CACHE_BYTES);
        let mut f = fields.clone();
        warmed.run(&mut f, 1).unwrap(); // build the plan outside the timing
        let steady = format!("islands_steady/{p}");
        g.bench_per_unit(&steady, STEADY_STEPS, || {
            warmed.run(&mut f, STEADY_STEPS as usize).unwrap();
        });
        if g.benched(&steady) {
            let phases = traced_phases(STEADY_STEPS, || {
                warmed.run(&mut f, STEADY_STEPS as usize).unwrap();
            });
            g.attach_phases(&steady, phases);
        }

        let mut f = fields.clone();
        g.bench_param("fused_first", p, || {
            let fresh = FusedExecutor::new(&pool).cache_bytes(CACHE_BYTES);
            fresh.run(&mut f, 1).unwrap();
        });
        let warmed = FusedExecutor::new(&pool).cache_bytes(CACHE_BYTES);
        let mut f = fields.clone();
        warmed.run(&mut f, 1).unwrap();
        let steady = format!("fused_steady/{p}");
        g.bench_per_unit(&steady, STEADY_STEPS, || {
            warmed.run(&mut f, STEADY_STEPS as usize).unwrap();
        });
        if g.benched(&steady) {
            let phases = traced_phases(STEADY_STEPS, || {
                warmed.run(&mut f, STEADY_STEPS as usize).unwrap();
            });
            g.attach_phases(&steady, phases);
        }
    }
    g.finish();
    h.finish();
}
