//! First-step versus steady-state step cost of the threaded executors.
//!
//! The persistent-plan layer makes `IslandsExecutor`/`FusedExecutor`
//! compute their execution plan (partition, per-island blocking, epoch
//! tables, scratch stores) once and replay it allocation-free on every
//! further step. This bench measures both sides of that trade through
//! the same `run` entry point:
//!
//! * `*_first/P` — a fresh executor per iteration running one step, so
//!   every measurement pays plan construction plus the step;
//! * `*_steady/P` — a warmed executor running a multi-step batch,
//!   reported per step: the marginal cost of steps 2..N, where the plan
//!   is replayed from cache with zero heap allocations;
//! * `islands_dyn_*/4` — the same islands schedule with two 2-worker
//!   teams and intra-island self-scheduling, exercising the dynamic
//!   chunk-claiming replay path (full mode only — on the quick smoke
//!   domain its plan-build amortization is inside scheduling noise);
//! * `fuse{2,4}_*/4` — the P = 4 islands schedule replayed as k-step
//!   fused epochs (temporal blocking), whose attached
//!   `global_barriers` per-step crossing count falls ~k× below the
//!   unfused `islands_steady/4` row;
//! * `tiled_*/4` — the P = 4 islands schedule in tile-fused mode
//!   (`TileMode::Auto`): each part is cut into cache-sized (i, j)
//!   column tiles and every tile's whole stage chain replays against
//!   rank-private scratch, so intermediates never stream through main
//!   memory. Its attached `bytes_moved` (from `tiled_traffic_bytes`)
//!   must undercut the untiled `islands_steady/4` row's (from
//!   `staged_traffic_bytes`) — `bench-check --min-traffic-reduction`
//!   gates the ratio.
//!
//! After the timed samples of each `*_steady/P` row, one extra
//! *untimed* batch runs under the `islands-trace` recorder to attach a
//! kernel / barrier / swap / imbalance phase breakdown to the row
//! (tracing never overlaps a timed sample, so the medians stay clean).
//! The imbalance field is derived from the deterministic per-island
//! cell counts at the measured kernel rate — see [`traced_phases`].
//! `bench-check --phases` validates those fields and gates on the
//! steady/first ratio; `--max-barrier-share` gates on the
//! imbalance-attributable share.
//!
//! `--quick` shrinks the domain and drops the oversubscribed P = 14
//! point for CI smoke runs; `--json <path>` writes the artifact that
//! `bench-check` validates (steady must beat first).
//!
//! `--balance=uniform|model|measured` picks how island cut positions
//! are chosen (single token — a bare word would be read as the bench
//! filter): `uniform` is the even axis split, `model` solves non-uniform
//! cuts from the static cost model (the default, and what the committed
//! artifact is generated with), `measured` first probes a few traced
//! steps under the uniform cuts and feeds the observed per-island
//! kernel rates back into the model before cutting.

use islands_bench::microbench::{Harness, Phases};
use islands_trace::metrics::RunMetrics;
use mpdata::{
    gaussian_pulse, FusedExecutor, IslandsExecutor, MpdataFields, MpdataProblem, TileMode,
};
use stencil_engine::{
    balanced_cuts, choose_tile, measured_plane_scale, staged_traffic_bytes, tile_grid,
    tiled_traffic_bytes, Axis, CostModel, Region3,
};
use work_scheduler::{TeamSpec, WorkerPool};

/// How the bench chooses island cut positions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Balance {
    Uniform,
    Model,
    Measured,
}

fn balance_from_env() -> Balance {
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--balance=uniform" => return Balance::Uniform,
            "--balance=model" => return Balance::Model,
            "--balance=measured" => return Balance::Measured,
            _ if a.starts_with("--balance") => {
                eprintln!("unknown balance mode `{a}`; use --balance=uniform|model|measured");
                std::process::exit(2);
            }
            _ => {}
        }
    }
    Balance::Model
}

/// Replays `steps` steps of `run` under the trace recorder and folds
/// the per-island totals into worker-summed nanoseconds per step, plus
/// the worker count and imbalance-attributable worker time.
///
/// The imbalance estimate is *work-based*, not span-based: per step,
/// each island's computed cells are normalized per worker, the excess
/// worker-cells below the slowest island are summed, and the total is
/// converted to nanoseconds at the run's mean kernel rate. Wall-time
/// spans would measure the same thing on dedicated cores, but on an
/// oversubscribed host (14 single-thread islands on a 2-core runner)
/// preemption noise in the spans swamps the partition signal; the cell
/// counts are exact and deterministic for a given partition.
fn traced_phases(steps: u64, run: impl FnOnce()) -> Phases {
    let session = islands_trace::Session::start();
    run();
    let drained = session.finish();
    let metrics = RunMetrics::aggregate(&drained);
    let totals = metrics.totals();
    let per_step = |ns: u64| ns as f64 / steps as f64;
    let workers: u32 = totals
        .iter()
        .filter(|m| m.island != islands_trace::NO_ISLAND)
        .map(|m| m.workers)
        .sum();
    let mut excess_cells = 0.0;
    for step in &metrics.steps {
        let pw: Vec<(f64, f64)> = step
            .islands
            .iter()
            .filter(|m| m.island != islands_trace::NO_ISLAND && m.workers > 0)
            .map(|m| {
                let w = f64::from(m.workers);
                (w, m.computed_cells as f64 / w)
            })
            .collect();
        let max = pw.iter().fold(0.0f64, |a, &(_, c)| a.max(c));
        excess_cells += pw.iter().map(|&(w, c)| w * (max - c)).sum::<f64>();
    }
    let total_cells: u64 = totals.iter().map(|m| m.computed_cells).sum();
    let total_kernel: u64 = totals.iter().map(|m| m.kernel_ns).sum();
    let rate = if total_cells > 0 {
        total_kernel as f64 / total_cells as f64
    } else {
        0.0
    };
    // Global barrier *crossings* per step per worker: every rank records
    // one span per crossing, so dividing the event count by workers and
    // steps gives the per-step count (2 for the unfused executors, 2/k
    // under `--fuse-steps=k` temporal blocking).
    let gb_events = drained
        .events
        .iter()
        .filter(|t| t.ev.kind == islands_trace::SpanKind::GlobalBarrier)
        .count() as f64;
    // Per-step latency quantiles through the same log2-bucketed
    // histogram the live telemetry plane uses, so the bench artifact's
    // jitter figures quantize identically to a `/metrics` scrape.
    let step_hist = islands_trace::histogram::Histogram::new();
    for step in &metrics.steps {
        step_hist.record(step.wall_ns);
    }
    let step_hist = step_hist.snapshot();
    Phases {
        workers: f64::from(workers),
        kernel_ns: per_step(totals.iter().map(|m| m.kernel_ns).sum()),
        barrier_ns: per_step(totals.iter().map(|m| m.barrier_wait_ns()).sum()),
        swap_ns: per_step(totals.iter().map(|m| m.swap_ns).sum()),
        imbalance_ns: excess_cells * rate / steps as f64,
        global_barriers: gb_events / f64::from(workers).max(1.0) / steps as f64,
        // Filled in by the caller where a traffic model / throughput
        // figure applies to the row.
        bytes_moved: 0.0,
        mlups: 0.0,
        p50_step_ns: step_hist.quantile(0.50) as f64,
        p99_step_ns: step_hist.quantile(0.99) as f64,
    }
}

/// Modeled per-step main-memory bytes of the *untiled* per-stage replay
/// over `parts`: each island streams every stage's inputs and outputs
/// over its halo-enlarged requirement regions, summed across islands
/// (so redundant halo traffic is priced in).
fn staged_bytes(parts: &[Region3], domain: Region3) -> f64 {
    let problem = MpdataProblem::standard();
    let graph = problem.graph();
    parts
        .iter()
        .filter(|p| !p.is_empty())
        .map(|&p| staged_traffic_bytes(graph, &graph.required_regions(p, domain)))
        .sum::<usize>() as f64
}

/// Modeled per-step main-memory bytes of the *tile-fused* replay over
/// `parts` with `TileMode::Auto` extents: per tile, only the external
/// input hulls are read and the owned output cells written —
/// intermediates stay resident in the rank-private scratch.
fn tiled_bytes(parts: &[Region3], domain: Region3) -> f64 {
    let problem = MpdataProblem::standard();
    let graph = problem.graph();
    let tile = choose_tile(graph, domain, TILE_CACHE_BYTES);
    let mut total = 0_usize;
    for &p in parts {
        total += tiled_traffic_bytes(graph, &tile_grid(p, tile), domain);
    }
    total as f64
}

/// Millions of lattice updates per second at `median_ns` per step.
fn mlups(median_ns: Option<f64>, domain: Region3) -> f64 {
    median_ns.map_or(0.0, |ns| domain.cells() as f64 * 1000.0 / ns)
}

/// Island cut positions along I for `islands` teams under `balance`.
///
/// `measured` probes `PROBE_STEPS` traced steps with the uniform cuts
/// and `workers_per_island` ranks per team, then re-cuts with the
/// observed per-island kernel rates scaling the cost model's planes.
fn island_parts(
    balance: Balance,
    pool: &WorkerPool,
    domain: Region3,
    islands: usize,
    workers_per_island: usize,
) -> Vec<Region3> {
    let problem = MpdataProblem::standard();
    let graph = problem.graph();
    let uniform = domain.split(Axis::I, islands);
    let model = CostModel::from_graph(graph);
    match balance {
        Balance::Uniform => uniform,
        Balance::Model => balanced_cuts(graph, domain, domain, Axis::I, islands, &model),
        Balance::Measured => {
            const PROBE_STEPS: usize = 3;
            let spec = TeamSpec::even(islands * workers_per_island, workers_per_island);
            let probe = IslandsExecutor::new(pool, spec, Axis::I)
                .cache_bytes(CACHE_BYTES)
                .with_partition(uniform.clone());
            let mut f = gaussian_pulse(domain, (0.2, 0.1, 0.05));
            probe.run(&mut f, 1).unwrap(); // plan build outside the probe
            let session = islands_trace::Session::start();
            probe.run(&mut f, PROBE_STEPS).unwrap();
            let totals = RunMetrics::aggregate(&session.finish()).totals();
            let mut stats = vec![(0_u64, 0_u64); islands];
            for m in &totals {
                if m.island != islands_trace::NO_ISLAND {
                    stats[m.island as usize] = (m.kernel_ns, m.computed_cells);
                }
            }
            let scale = measured_plane_scale(&uniform, Axis::I, domain.range(Axis::I), &stats);
            let model = model.with_plane_scale(scale);
            balanced_cuts(graph, domain, domain, Axis::I, islands, &model)
        }
    }
}

/// Small enough to split every island into several wavefront blocks on
/// both bench domains.
const CACHE_BYTES: usize = 1 << 20;

/// Scratch budget for the tile-fused rows. Larger than [`CACHE_BYTES`]
/// on purpose: the traffic the tiled rows model is *main-memory*
/// traffic, so tile scratch only has to stay resident in the last-level
/// cache (a per-core LLC slice is typically several MiB), while the
/// choose_tile footprint model conservatively charges every live buffer
/// at full enlarged extent. Budgeting tiles at the L2-sized
/// `CACHE_BYTES` shrinks them until the per-face halo recompute
/// dominates the step; at 4 MiB the balanced grid rounds the targets
/// down to even part divisors with single-digit recompute overhead.
const TILE_CACHE_BYTES: usize = 4 << 20;

/// Steps per steady-state batch (one pool dispatch, `STEADY_STEPS`
/// plan replays).
const STEADY_STEPS: u64 = 8;

fn main() {
    let balance = balance_from_env();
    let mut h = Harness::from_env();
    let quick = h.quick();
    let (domain, island_counts): (Region3, &[usize]) = if quick {
        (Region3::of_extent(60, 30, 16), &[1, 4])
    } else {
        (Region3::of_extent(120, 60, 32), &[1, 4, 14])
    };
    println!("balance mode: {balance:?}");
    let fields = gaussian_pulse(domain, (0.2, 0.1, 0.05));

    let mut g = h.group("steady_state");
    g.sample_size(7);
    for &p in island_counts {
        let pool = WorkerPool::new(p);
        let spec = TeamSpec::even(p, p); // one single-core island per P
        let parts = island_parts(balance, &pool, domain, p, 1);

        let mut f: MpdataFields = fields.clone();
        g.bench_param("islands_first", p, || {
            let fresh = IslandsExecutor::new(&pool, spec.clone(), Axis::I)
                .cache_bytes(CACHE_BYTES)
                .with_partition(parts.clone());
            fresh.run(&mut f, 1).unwrap();
        });
        let warmed = IslandsExecutor::new(&pool, spec.clone(), Axis::I)
            .cache_bytes(CACHE_BYTES)
            .with_partition(parts.clone());
        let mut f = fields.clone();
        warmed.run(&mut f, 1).unwrap(); // build the plan outside the timing
        let steady = format!("islands_steady/{p}");
        g.bench_per_unit(&steady, STEADY_STEPS, || {
            warmed.run(&mut f, STEADY_STEPS as usize).unwrap();
        });
        if g.benched(&steady) {
            let mut phases = traced_phases(STEADY_STEPS, || {
                warmed.run(&mut f, STEADY_STEPS as usize).unwrap();
            });
            phases.bytes_moved = staged_bytes(&parts, domain);
            phases.mlups = mlups(g.median_ns(&steady), domain);
            g.attach_phases(&steady, phases);
        }

        // Tile-fused point: the same islands schedule with the parts
        // cut into cache-sized column tiles (`TileMode::Auto`), each
        // tile's whole chain replayed against rank-private scratch —
        // bit-identical numerics, a fraction of the modeled traffic.
        // The tile budget is TILE_CACHE_BYTES, not CACHE_BYTES: tile
        // scratch only needs *last-level* residency to cut the modeled
        // main-memory traffic, and the tighter L2 budget would shrink
        // tiles until redundant halo recompute dominates the step.
        if p == 4 {
            let mut f = fields.clone();
            g.bench_param("tiled_first", p, || {
                let fresh = IslandsExecutor::new(&pool, spec.clone(), Axis::I)
                    .cache_bytes(TILE_CACHE_BYTES)
                    .with_partition(parts.clone())
                    .tile(TileMode::Auto);
                fresh.run(&mut f, 1).unwrap();
            });
            let warmed = IslandsExecutor::new(&pool, spec.clone(), Axis::I)
                .cache_bytes(TILE_CACHE_BYTES)
                .with_partition(parts.clone())
                .tile(TileMode::Auto);
            let mut f = fields.clone();
            warmed.run(&mut f, 1).unwrap();
            let steady = format!("tiled_steady/{p}");
            g.bench_per_unit(&steady, STEADY_STEPS, || {
                warmed.run(&mut f, STEADY_STEPS as usize).unwrap();
            });
            if g.benched(&steady) {
                let mut phases = traced_phases(STEADY_STEPS, || {
                    warmed.run(&mut f, STEADY_STEPS as usize).unwrap();
                });
                phases.bytes_moved = tiled_bytes(&parts, domain);
                phases.mlups = mlups(g.median_ns(&steady), domain);
                g.attach_phases(&steady, phases);
            }
        }

        // Dynamic self-scheduling point: two 2-worker islands, chunked
        // epoch work units claimed from the per-island queues. Full
        // mode only: on the quick smoke domain the plan-build
        // amortization that the steady/first ordering gate checks is
        // smaller than the dynamic path's claim-timing noise (the
        // dynamic replay is smoke-covered by CI's balance-smoke step
        // instead).
        if p == 4 && !quick {
            let dyn_spec = TeamSpec::even(4, 2);
            let dyn_parts = island_parts(balance, &pool, domain, 2, 2);
            let mut f = fields.clone();
            g.bench_param("islands_dyn_first", p, || {
                let fresh = IslandsExecutor::new(&pool, dyn_spec.clone(), Axis::I)
                    .cache_bytes(CACHE_BYTES)
                    .with_partition(dyn_parts.clone())
                    .self_schedule(2);
                fresh.run(&mut f, 1).unwrap();
            });
            let warmed = IslandsExecutor::new(&pool, dyn_spec.clone(), Axis::I)
                .cache_bytes(CACHE_BYTES)
                .with_partition(dyn_parts.clone())
                .self_schedule(2);
            let mut f = fields.clone();
            warmed.run(&mut f, 1).unwrap();
            let steady = format!("islands_dyn_steady/{p}");
            g.bench_per_unit(&steady, STEADY_STEPS, || {
                warmed.run(&mut f, STEADY_STEPS as usize).unwrap();
            });
            if g.benched(&steady) {
                let mut phases = traced_phases(STEADY_STEPS, || {
                    warmed.run(&mut f, STEADY_STEPS as usize).unwrap();
                });
                phases.bytes_moved = staged_bytes(&dyn_parts, domain);
                phases.mlups = mlups(g.median_ns(&steady), domain);
                g.attach_phases(&steady, phases);
            }
        }

        // Temporal-blocking points: the same islands schedule replayed
        // as k-step fused epochs (`IslandsExecutor::fuse_steps`), so the
        // global barrier pair is paid once per epoch instead of once per
        // step. The attached `global_barriers` phase field is the
        // per-step crossing count — it must fall ~k× from the unfused
        // `islands_steady` row while the verify-checked numerics stay
        // bit-identical. STEADY_STEPS is divisible by both depths, so no
        // partial tail epoch distorts the steady rows.
        if p == 4 {
            for k in [2_usize, 4] {
                let mut f = fields.clone();
                // The first row runs one *full* k-step epoch (not a
                // 1-step tail, which replays only the final unenlarged
                // section): its per-step cost is then the same fused
                // work the steady row replays, plus the amortized plan
                // build — the pair gates build amortization, not the
                // fused-vs-unfused step cost difference.
                g.bench_per_unit(&format!("fuse{k}_first/{p}"), k as u64, || {
                    let fresh = IslandsExecutor::new(&pool, spec.clone(), Axis::I)
                        .cache_bytes(CACHE_BYTES)
                        .with_partition(parts.clone())
                        .fuse_steps(k);
                    fresh.run(&mut f, k).unwrap();
                });
                let warmed = IslandsExecutor::new(&pool, spec.clone(), Axis::I)
                    .cache_bytes(CACHE_BYTES)
                    .with_partition(parts.clone())
                    .fuse_steps(k);
                let mut f = fields.clone();
                warmed.run(&mut f, 1).unwrap();
                let steady = format!("fuse{k}_steady/{p}");
                g.bench_per_unit(&steady, STEADY_STEPS, || {
                    warmed.run(&mut f, STEADY_STEPS as usize).unwrap();
                });
                if g.benched(&steady) {
                    let phases = traced_phases(STEADY_STEPS, || {
                        warmed.run(&mut f, STEADY_STEPS as usize).unwrap();
                    });
                    g.attach_phases(&steady, phases);
                }
            }
        }

        let mut f = fields.clone();
        g.bench_param("fused_first", p, || {
            let fresh = FusedExecutor::new(&pool).cache_bytes(CACHE_BYTES);
            fresh.run(&mut f, 1).unwrap();
        });
        let warmed = FusedExecutor::new(&pool).cache_bytes(CACHE_BYTES);
        let mut f = fields.clone();
        warmed.run(&mut f, 1).unwrap();
        let steady = format!("fused_steady/{p}");
        g.bench_per_unit(&steady, STEADY_STEPS, || {
            warmed.run(&mut f, STEADY_STEPS as usize).unwrap();
        });
        if g.benched(&steady) {
            let mut phases = traced_phases(STEADY_STEPS, || {
                warmed.run(&mut f, STEADY_STEPS as usize).unwrap();
            });
            phases.bytes_moved = staged_bytes(&[domain], domain);
            phases.mlups = mlups(g.median_ns(&steady), domain);
            g.attach_phases(&steady, phases);
        }
    }
    g.finish();
    h.finish();
}
