//! A minimal, std-only microbenchmark harness.
//!
//! The hermetic build rules out the external `criterion` crate, and the
//! microbenches under `benches/` only ever used a sliver of its API:
//! named groups, per-group sample counts, and a timed closure. This
//! module provides exactly that sliver. Each benchmark
//!
//! 1. calibrates a batch size so one sample runs for at least
//!    [`MIN_SAMPLE_NANOS`] (timer noise stays far below 1 %),
//! 2. takes `samples` timed batches after one warmup batch,
//! 3. prints min / median / max per-iteration times.
//!
//! Building the bench crate with `--features criterion` multiplies the
//! sample counts and minimum sample time for steadier numbers; the
//! default profile keeps `cargo bench` quick enough for CI.
//!
//! A single positional command-line argument (as in
//! `cargo bench --bench kernels -- fused`) filters benchmarks by
//! substring of `group/label`. Two flags extend that:
//!
//! * `--json <path>` — besides the human-readable report, write every
//!   result as a JSON array of `{group, label, min_ns, median_ns,
//!   max_ns, iters}` objects to `path` (the `bench-check` binary
//!   validates such artifacts in CI). Rows with a phase breakdown
//!   attached via [`Group::attach_phases`] additionally carry the
//!   worker-summed `kernel_ns` / `barrier_ns` / `swap_ns`, the worker
//!   count, comparable-across-P `*_pw_ns` per-worker values, the
//!   imbalance-attributable `imbalance_ns` and the per-step latency
//!   quantiles `p50_step_ns` / `p99_step_ns` (see [`Phases`]);
//! * `--quick` — benches that call [`Harness::quick`] shrink their
//!   configurations for smoke runs.

use crate::json::Json;
use std::time::{Duration, Instant};

/// Phase breakdown of one benchmark iteration, measured by an untimed
/// traced replay of the benched operation (see
/// [`Group::attach_phases`]). The `*_ns` phase fields are
/// *worker-summed* nanoseconds per iteration — on a P-worker run an
/// iteration can account up to P × its wall time — so raw phase values
/// are not comparable across different worker counts. The JSON artifact
/// therefore also carries per-worker (`*_pw_ns = *_ns / workers`)
/// values, which are on the wall-clock scale of `median_ns` and compare
/// across P.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Phases {
    /// Workers that contributed to the summed phase times.
    pub workers: f64,
    /// Kernel (stencil sweep) time.
    pub kernel_ns: f64,
    /// Barrier wait (team + global, all of spin/yield/park).
    pub barrier_ns: f64,
    /// Serial buffer-swap and gap re-zero time.
    pub swap_ns: f64,
    /// Worker time lost to inter-island imbalance per iteration:
    /// `Σ_i workers_i × (max_pw − pw_i)` over islands, where `pw_i` is
    /// island i's per-worker share of the step (kernel time on
    /// dedicated cores; the steady-state bench derives it from the
    /// deterministic per-island cell counts at the measured kernel
    /// rate, so the value is preemption-noise-free on oversubscribed
    /// hosts). Worker-summed, like the phase fields. On dedicated
    /// cores this is the barrier wait attributable to imbalance rather
    /// than oversubscription.
    pub imbalance_ns: f64,
    /// Global barrier crossings per iteration (a count, not a time) —
    /// per logical step when the bench uses `bench_per_unit`. Temporal
    /// blocking (`--fuse-steps=k`) amortizes the global pair over k
    /// steps, so this falls from 2 toward 2/k as k grows.
    pub global_barriers: f64,
    /// Modeled main-memory bytes moved per iteration (logical step) by
    /// the benched schedule, from the compulsory-stream traffic models
    /// (`staged_traffic_bytes` for per-stage sweeps,
    /// `tiled_traffic_bytes` for tile-fused chains). Zero when the
    /// bench attaches no traffic model to the row.
    pub bytes_moved: f64,
    /// Measured throughput in millions of lattice updates per second,
    /// derived from the row's median time and the domain cell count
    /// (`cells × 1000 / median_ns`). Zero when not attached.
    pub mlups: f64,
    /// Median per-step wall time of the traced replay, from the
    /// `islands-trace` log2-bucketed latency histogram — the value is
    /// the histogram's bucket ceiling, so it quantizes to powers of
    /// two. Zero when the replay tracked no steps.
    pub p50_step_ns: f64,
    /// 99th-percentile per-step wall time, same histogram and same
    /// quantization. The p99/p50 ratio is the per-step jitter figure
    /// `bench-check --max-p99-ratio` gates.
    pub p99_step_ns: f64,
}

impl Phases {
    fn per_worker(&self, summed: f64) -> f64 {
        summed / self.workers.max(1.0)
    }
}

/// One finished measurement, as serialized by `--json`.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Group name (the [`Harness::group`] argument).
    pub group: String,
    /// Label within the group (including any `bench_param` parameter).
    pub label: String,
    /// Fastest per-iteration time over all samples, nanoseconds.
    pub min_ns: f64,
    /// Median per-iteration time, nanoseconds.
    pub median_ns: f64,
    /// Slowest per-iteration time, nanoseconds.
    pub max_ns: f64,
    /// Total timed iterations (samples × calibrated batch).
    pub iters: u64,
    /// Optional phase breakdown (kernel / barrier / swap), attached
    /// after the timed samples by [`Group::attach_phases`].
    pub phases: Option<Phases>,
}

/// Minimum duration of one timed sample, before the `criterion`
/// feature's multiplier.
pub const MIN_SAMPLE_NANOS: u64 = 2_000_000;

/// Upper bound on the calibrated batch size. No real benchmark body
/// needs 2³⁴ iterations to fill [`MIN_SAMPLE_NANOS`]; hitting the cap
/// means the body was optimized away or the clock is broken, and
/// calibration reports that instead of saturating at `u64::MAX` and
/// spinning forever.
const MAX_BATCH: u64 = 1 << 34;

/// One calibration step: the next batch size after `batch` iterations
/// took `elapsed_ns` against a `min_ns` sample target, or `None` once
/// growth would exceed [`MAX_BATCH`]. Grows by at least 2× per round
/// and overshoots toward the target (clamped at 1024×) so calibration
/// converges in a few rounds even for nanosecond-scale bodies.
fn grow_batch(batch: u64, elapsed_ns: u64, min_ns: u64) -> Option<u64> {
    let scale = (min_ns / elapsed_ns.max(1)).clamp(2, 1024);
    let next = batch.saturating_mul(scale);
    (next <= MAX_BATCH).then_some(next)
}

fn effort_multiplier() -> u64 {
    if cfg!(feature = "criterion") {
        5
    } else {
        1
    }
}

/// Top-level harness: owns the filter and prints the report.
#[derive(Debug)]
pub struct Harness {
    filter: Option<String>,
    json_path: Option<String>,
    quick: bool,
    records: Vec<Record>,
    ran: usize,
    skipped: usize,
}

impl Harness {
    /// Builds a harness from `std::env::args`: `--json <path>` and
    /// `--quick` are consumed, the first remaining non-flag argument
    /// becomes the substring filter, and other flags cargo may pass are
    /// ignored.
    pub fn from_env() -> Self {
        let mut filter = None;
        let mut json_path = None;
        let mut quick = false;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--json" {
                json_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                }));
            } else if a == "--quick" {
                quick = true;
            } else if !a.starts_with('-') && filter.is_none() {
                filter = Some(a);
            }
        }
        Harness {
            filter,
            json_path,
            quick,
            records: Vec::new(),
            ran: 0,
            skipped: 0,
        }
    }

    /// True when `--quick` was passed: benches should shrink their
    /// configurations to smoke-test size.
    pub fn quick(&self) -> bool {
        self.quick
    }

    /// Starts a named group of benchmarks.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            samples: 20,
        }
    }

    /// Prints the run summary and writes the `--json` artifact (if one
    /// was requested). Call once at the end of `main`.
    ///
    /// # Panics
    ///
    /// Panics when the JSON artifact cannot be written.
    pub fn finish(self) {
        println!(
            "\n{} benchmark(s) run, {} filtered out",
            self.ran, self.skipped
        );
        if let Some(path) = &self.json_path {
            std::fs::write(path, render_json(&self.records))
                .unwrap_or_else(|e| panic!("writing bench JSON to {path}: {e}"));
            println!("wrote {} record(s) to {path}", self.records.len());
        }
    }
}

/// Renders records as a JSON array (stable key order) — the exact
/// format `bench-check` parses back. Rows with an attached phase
/// breakdown carry the extra members described in [`Phases`]
/// (worker-summed phases, `workers`, per-worker `*_pw_ns` values and
/// `imbalance_ns`). Goes through [`crate::json`]'s emitter, so a NaN or
/// infinity in a record is an error here rather than an invalid
/// artifact downstream.
///
/// # Panics
///
/// Panics when any record holds a non-finite number.
pub fn render_json(records: &[Record]) -> String {
    let items: Vec<Json> = records
        .iter()
        .map(|r| {
            let mut m = vec![
                ("group".to_string(), Json::Str(r.group.clone())),
                ("label".to_string(), Json::Str(r.label.clone())),
                ("min_ns".to_string(), Json::Num(r.min_ns)),
                ("median_ns".to_string(), Json::Num(r.median_ns)),
                ("max_ns".to_string(), Json::Num(r.max_ns)),
                ("iters".to_string(), Json::Num(r.iters as f64)),
            ];
            if let Some(p) = r.phases {
                m.push(("kernel_ns".to_string(), Json::Num(p.kernel_ns)));
                m.push(("barrier_ns".to_string(), Json::Num(p.barrier_ns)));
                m.push(("swap_ns".to_string(), Json::Num(p.swap_ns)));
                m.push(("workers".to_string(), Json::Num(p.workers)));
                m.push((
                    "kernel_pw_ns".to_string(),
                    Json::Num(p.per_worker(p.kernel_ns)),
                ));
                m.push((
                    "barrier_pw_ns".to_string(),
                    Json::Num(p.per_worker(p.barrier_ns)),
                ));
                m.push(("swap_pw_ns".to_string(), Json::Num(p.per_worker(p.swap_ns))));
                m.push(("imbalance_ns".to_string(), Json::Num(p.imbalance_ns)));
                m.push(("global_barriers".to_string(), Json::Num(p.global_barriers)));
                m.push(("bytes_moved".to_string(), Json::Num(p.bytes_moved)));
                m.push(("mlups".to_string(), Json::Num(p.mlups)));
                m.push(("p50_step_ns".to_string(), Json::Num(p.p50_step_ns)));
                m.push(("p99_step_ns".to_string(), Json::Num(p.p99_step_ns)));
            }
            Json::Object(m)
        })
        .collect();
    let mut s = Json::Array(items)
        .render()
        .unwrap_or_else(|e| panic!("bench record holds a non-finite number: {e}"));
    s.push('\n');
    s
}

/// A named group of benchmarks sharing a sample count.
#[derive(Debug)]
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    samples: usize,
}

impl Group<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(3);
        self
    }

    /// Times `f`, reporting per-iteration statistics under
    /// `group/label`.
    pub fn bench<F: FnMut()>(&mut self, label: &str, f: F) {
        self.bench_per_unit(label, 1, f);
    }

    /// Like [`Group::bench`], but one call of `f` performs `units`
    /// logical iterations (e.g. a multi-step `run`), so measured times
    /// are divided by `units` before reporting — the honest per-step
    /// cost of a batched operation.
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero.
    pub fn bench_per_unit<F: FnMut()>(&mut self, label: &str, units: u64, mut f: F) {
        assert!(units > 0, "a call must cover at least one unit");
        let full = format!("{}/{}", self.name, label);
        if let Some(flt) = &self.harness.filter {
            if !full.contains(flt.as_str()) {
                self.harness.skipped += 1;
                return;
            }
        }
        let min_sample = Duration::from_nanos(MIN_SAMPLE_NANOS * effort_multiplier());
        let samples = self.samples * effort_multiplier() as usize;

        // Calibrate: grow the batch until one batch clears min_sample.
        let mut batch = 1_u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            let elapsed = t.elapsed();
            if elapsed >= min_sample {
                break;
            }
            batch = grow_batch(
                batch,
                elapsed.as_nanos() as u64,
                min_sample.as_nanos() as u64,
            )
            .unwrap_or_else(|| {
                panic!(
                    "calibrating {full}: {batch} iterations still finished in \
                     {elapsed:?} (target {min_sample:?}); the benchmark body \
                     appears to be optimized away or the clock is broken"
                )
            });
        }

        // Warmup batch, then timed samples.
        for _ in 0..batch {
            f();
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / (batch * units) as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let max = per_iter[per_iter.len() - 1];
        println!(
            "{full:<44} {:>12}  (min {}, max {}, {samples}×{batch} iters)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
        );
        self.harness.records.push(Record {
            group: self.name.clone(),
            label: label.to_string(),
            min_ns: min,
            median_ns: median,
            max_ns: max,
            iters: samples as u64 * batch * units,
            phases: None,
        });
        self.harness.ran += 1;
    }

    /// The median per-iteration time of the already-benched `label` of
    /// this group, or `None` when it was filtered out — lets a bench
    /// derive throughput figures (MLUPS) from its own timed result.
    pub fn median_ns(&self, label: &str) -> Option<f64> {
        let name = self.name.as_str();
        self.harness
            .records
            .iter()
            .find(|r| r.group == name && r.label == label)
            .map(|r| r.median_ns)
    }

    /// True when `label` in this group survived the filter and was
    /// benched — callers can skip the extra traced replay otherwise.
    pub fn benched(&self, label: &str) -> bool {
        let name = self.name.as_str();
        self.harness
            .records
            .iter()
            .any(|r| r.group == name && r.label == label)
    }

    /// Attaches a phase breakdown to the already-benched `label` of
    /// this group (measured separately, e.g. by replaying the benched
    /// operation once under the `islands-trace` recorder — tracing
    /// never runs during the timed samples). A no-op when the label
    /// was filtered out or never benched.
    pub fn attach_phases(&mut self, label: &str, phases: Phases) {
        let name = self.name.as_str();
        if let Some(r) = self
            .harness
            .records
            .iter_mut()
            .find(|r| r.group == name && r.label == label)
        {
            r.phases = Some(phases);
        }
    }

    /// Criterion-style alias: benchmark `f` with a parameter shown in
    /// the label, e.g. `bench_param("original", 4, || ...)`.
    pub fn bench_param<P: std::fmt::Display, F: FnMut()>(&mut self, label: &str, param: P, f: F) {
        let composite = format!("{label}/{param}");
        self.bench(&composite, f);
    }

    /// Ends the group (kept for call-site symmetry; no work needed).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_time_scales() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }

    fn test_harness(filter: Option<String>) -> Harness {
        Harness {
            filter,
            json_path: None,
            quick: false,
            records: Vec::new(),
            ran: 0,
            skipped: 0,
        }
    }

    #[test]
    fn bench_runs_and_counts() {
        let mut h = test_harness(None);
        let mut g = h.group("t");
        g.sample_size(3);
        let mut hits = 0_u64;
        g.bench("noop", || hits += 1);
        g.finish();
        assert_eq!(h.ran, 1);
        assert!(hits > 0);
        assert_eq!(h.records.len(), 1);
        let r = &h.records[0];
        assert_eq!((r.group.as_str(), r.label.as_str()), ("t", "noop"));
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.iters > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut h = test_harness(Some("nomatch".into()));
        let mut g = h.group("t");
        g.bench("noop", || {});
        g.finish();
        assert_eq!(h.ran, 0);
        assert_eq!(h.skipped, 1);
        assert!(h.records.is_empty());
    }

    #[test]
    fn per_unit_divides_reported_times() {
        let mut h = test_harness(None);
        let mut g = h.group("t");
        g.sample_size(3);
        // One call covers 4 units of ~400 µs total: the per-unit median
        // must come out near a quarter of the call, far below the whole.
        g.bench_per_unit("batched", 4, || {
            std::thread::sleep(Duration::from_micros(400));
        });
        g.finish();
        let r = &h.records[0];
        assert!(
            r.median_ns < 400_000.0,
            "per-unit time {} ns should be well below the whole call",
            r.median_ns
        );
        assert_eq!(r.iters % 4, 0);
    }

    #[test]
    fn json_rendering_is_parseable_and_escaped() {
        let records = vec![
            Record {
                group: "g".into(),
                label: "plain/4".into(),
                min_ns: 1.5,
                median_ns: 2.5,
                max_ns: 3.5,
                iters: 60,
                phases: None,
            },
            Record {
                group: "g".into(),
                label: "quo\"te\\back".into(),
                min_ns: 10.0,
                median_ns: 20.0,
                max_ns: 30.0,
                iters: 3,
                phases: Some(Phases {
                    workers: 2.0,
                    kernel_ns: 15.5,
                    barrier_ns: 3.0,
                    swap_ns: 0.5,
                    imbalance_ns: 1.25,
                    global_barriers: 0.75,
                    bytes_moved: 4096.0,
                    mlups: 12.5,
                    p50_step_ns: 8192.0,
                    p99_step_ns: 16384.0,
                }),
            },
        ];
        let s = render_json(&records);
        let parsed = crate::json::parse(&s).expect("own output parses");
        let arr = parsed.as_array().expect("top-level array");
        assert_eq!(arr.len(), 2);
        assert_eq!(
            arr[0].get("label").and_then(|v| v.as_str()),
            Some("plain/4")
        );
        assert_eq!(arr[0].get("median_ns").and_then(|v| v.as_f64()), Some(2.5));
        assert_eq!(arr[0].get("iters").and_then(|v| v.as_f64()), Some(60.0));
        assert!(arr[0].get("kernel_ns").is_none());
        assert_eq!(
            arr[1].get("label").and_then(|v| v.as_str()),
            Some("quo\"te\\back")
        );
        assert_eq!(arr[1].get("kernel_ns").and_then(|v| v.as_f64()), Some(15.5));
        assert_eq!(arr[1].get("barrier_ns").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(arr[1].get("swap_ns").and_then(|v| v.as_f64()), Some(0.5));
        // Per-worker values are the summed phases over `workers`, on the
        // same wall-clock scale as median_ns.
        assert_eq!(arr[1].get("workers").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(
            arr[1].get("kernel_pw_ns").and_then(|v| v.as_f64()),
            Some(7.75)
        );
        assert_eq!(
            arr[1].get("barrier_pw_ns").and_then(|v| v.as_f64()),
            Some(1.5)
        );
        assert_eq!(
            arr[1].get("swap_pw_ns").and_then(|v| v.as_f64()),
            Some(0.25)
        );
        assert_eq!(
            arr[1].get("imbalance_ns").and_then(|v| v.as_f64()),
            Some(1.25)
        );
        assert_eq!(
            arr[1].get("global_barriers").and_then(|v| v.as_f64()),
            Some(0.75)
        );
        assert_eq!(
            arr[1].get("bytes_moved").and_then(|v| v.as_f64()),
            Some(4096.0)
        );
        assert_eq!(arr[1].get("mlups").and_then(|v| v.as_f64()), Some(12.5));
        assert_eq!(
            arr[1].get("p50_step_ns").and_then(|v| v.as_f64()),
            Some(8192.0)
        );
        assert_eq!(
            arr[1].get("p99_step_ns").and_then(|v| v.as_f64()),
            Some(16384.0)
        );
        assert!(arr[0].get("p50_step_ns").is_none());
    }

    #[test]
    fn batch_growth_is_capped_instead_of_pinning_at_max() {
        // A zero-elapsed clock (body optimized away, broken timer) must
        // walk up to the cap and then report None — the old
        // `saturating_mul` pinned the batch at u64::MAX and the
        // calibration loop span forever trying to run it.
        let mut batch = 1_u64;
        let mut rounds = 0;
        while let Some(next) = grow_batch(batch, 0, MIN_SAMPLE_NANOS) {
            assert!(next > batch, "growth stalled at {batch}");
            assert!(next <= MAX_BATCH);
            batch = next;
            rounds += 1;
            assert!(rounds < 64, "growth never reached the cap");
        }
        assert!(batch <= MAX_BATCH);
        // Ordinary convergence is untouched: half the target doubles...
        assert_eq!(
            grow_batch(100, MIN_SAMPLE_NANOS / 2, MIN_SAMPLE_NANOS),
            Some(200)
        );
        // ...and a near-instant batch jumps by the clamped 1024× max.
        assert_eq!(grow_batch(1, 1, u64::MAX / 2), Some(1024));
    }

    #[test]
    fn attach_phases_marks_only_the_named_record() {
        let mut h = test_harness(None);
        let mut g = h.group("t");
        g.sample_size(3);
        g.bench("a", || {});
        g.bench("b", || {});
        let attached = Phases {
            workers: 4.0,
            kernel_ns: 1.0,
            barrier_ns: 2.0,
            swap_ns: 3.0,
            imbalance_ns: 0.5,
            global_barriers: 2.0,
            bytes_moved: 0.0,
            mlups: 0.0,
            p50_step_ns: 0.0,
            p99_step_ns: 0.0,
        };
        g.attach_phases("b", attached);
        g.attach_phases(
            "absent",
            Phases {
                workers: 1.0,
                kernel_ns: 9.0,
                barrier_ns: 9.0,
                swap_ns: 9.0,
                imbalance_ns: 9.0,
                global_barriers: 9.0,
                bytes_moved: 9.0,
                mlups: 9.0,
                p50_step_ns: 9.0,
                p99_step_ns: 9.0,
            },
        );
        g.finish();
        assert_eq!(h.records[0].phases, None);
        assert_eq!(h.records[1].phases, Some(attached));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn render_rejects_non_finite_medians() {
        let records = vec![Record {
            group: "g".into(),
            label: "bad".into(),
            min_ns: 1.0,
            median_ns: f64::NAN,
            max_ns: 3.0,
            iters: 1,
            phases: None,
        }];
        render_json(&records);
    }
}
