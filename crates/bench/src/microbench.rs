//! A minimal, std-only microbenchmark harness.
//!
//! The hermetic build rules out the external `criterion` crate, and the
//! microbenches under `benches/` only ever used a sliver of its API:
//! named groups, per-group sample counts, and a timed closure. This
//! module provides exactly that sliver. Each benchmark
//!
//! 1. calibrates a batch size so one sample runs for at least
//!    [`MIN_SAMPLE_NANOS`] (timer noise stays far below 1 %),
//! 2. takes `samples` timed batches after one warmup batch,
//! 3. prints min / median / max per-iteration times.
//!
//! Building the bench crate with `--features criterion` multiplies the
//! sample counts and minimum sample time for steadier numbers; the
//! default profile keeps `cargo bench` quick enough for CI.
//!
//! A single positional command-line argument (as in
//! `cargo bench --bench kernels -- fused`) filters benchmarks by
//! substring of `group/label`.

use std::time::{Duration, Instant};

/// Minimum duration of one timed sample, before the `criterion`
/// feature's multiplier.
pub const MIN_SAMPLE_NANOS: u64 = 2_000_000;

fn effort_multiplier() -> u64 {
    if cfg!(feature = "criterion") {
        5
    } else {
        1
    }
}

/// Top-level harness: owns the filter and prints the report.
#[derive(Debug)]
pub struct Harness {
    filter: Option<String>,
    ran: usize,
    skipped: usize,
}

impl Harness {
    /// Builds a harness from `std::env::args` (first non-flag argument
    /// becomes the substring filter; flags cargo may pass are ignored).
    pub fn from_env() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness {
            filter,
            ran: 0,
            skipped: 0,
        }
    }

    /// Starts a named group of benchmarks.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            samples: 20,
        }
    }

    /// Prints the run summary. Call once at the end of `main`.
    pub fn finish(self) {
        println!(
            "\n{} benchmark(s) run, {} filtered out",
            self.ran, self.skipped
        );
    }
}

/// A named group of benchmarks sharing a sample count.
#[derive(Debug)]
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    samples: usize,
}

impl Group<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(3);
        self
    }

    /// Times `f`, reporting per-iteration statistics under
    /// `group/label`.
    pub fn bench<F: FnMut()>(&mut self, label: &str, mut f: F) {
        let full = format!("{}/{}", self.name, label);
        if let Some(flt) = &self.harness.filter {
            if !full.contains(flt.as_str()) {
                self.harness.skipped += 1;
                return;
            }
        }
        let min_sample = Duration::from_nanos(MIN_SAMPLE_NANOS * effort_multiplier());
        let samples = self.samples * effort_multiplier() as usize;

        // Calibrate: grow the batch until one batch clears min_sample.
        let mut batch = 1_u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            let elapsed = t.elapsed();
            if elapsed >= min_sample {
                break;
            }
            // At least double; overshoot toward the target to converge
            // in a few rounds even for nanosecond-scale bodies.
            let scale = (min_sample.as_nanos() as u64)
                .checked_div(elapsed.as_nanos().max(1) as u64)
                .unwrap_or(2)
                .clamp(2, 1024);
            batch = batch.saturating_mul(scale);
        }

        // Warmup batch, then timed samples.
        for _ in 0..batch {
            f();
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let max = per_iter[per_iter.len() - 1];
        println!(
            "{full:<44} {:>12}  (min {}, max {}, {samples}×{batch} iters)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
        );
        self.harness.ran += 1;
    }

    /// Criterion-style alias: benchmark `f` with a parameter shown in
    /// the label, e.g. `bench_param("original", 4, || ...)`.
    pub fn bench_param<P: std::fmt::Display, F: FnMut()>(&mut self, label: &str, param: P, f: F) {
        let composite = format!("{label}/{param}");
        self.bench(&composite, f);
    }

    /// Ends the group (kept for call-site symmetry; no work needed).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_time_scales() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }

    #[test]
    fn bench_runs_and_counts() {
        let mut h = Harness {
            filter: None,
            ran: 0,
            skipped: 0,
        };
        let mut g = h.group("t");
        g.sample_size(3);
        let mut hits = 0_u64;
        g.bench("noop", || hits += 1);
        g.finish();
        assert_eq!(h.ran, 1);
        assert!(hits > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut h = Harness {
            filter: Some("nomatch".into()),
            ran: 0,
            skipped: 0,
        };
        let mut g = h.group("t");
        g.bench("noop", || {});
        g.finish();
        assert_eq!(h.ran, 0);
        assert_eq!(h.skipped, 1);
    }
}
