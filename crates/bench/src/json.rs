//! A minimal JSON reader for benchmark artifacts.
//!
//! The hermetic build rules out `serde_json`; the only JSON this
//! workspace ever parses back is what [`crate::microbench::render_json`]
//! wrote, so a small recursive-descent parser covering the full JSON
//! grammar (objects, arrays, strings with escapes, numbers, booleans,
//! null) is all `bench-check` needs.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number, when this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, when this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first offending byte.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs never appear in our own
                            // artifacts; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by
                    // construction of `&str`).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"[{"a": 1.5, "b": [true, null, "x\ny"]}, -2e3]"#).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr[0].get("a").unwrap().as_f64(), Some(1.5));
        let inner = arr[0].get("b").unwrap().as_array().unwrap();
        assert_eq!(inner[0], Json::Bool(true));
        assert_eq!(inner[1], Json::Null);
        assert_eq!(inner[2].as_str(), Some("x\ny"));
        assert_eq!(arr[1].as_f64(), Some(-2000.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "[1,", "{\"a\" 1}", "[1] trailing", "\"open", "01a"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Object(vec![]));
    }
}
