//! **E8 — recompute vs. exchange at island granularity**: the paper's
//! §4.1 presents two scenarios — communicate boundary values
//! (scenario 1, Fig. 1b) or recompute them (scenario 2, Fig. 1c) — and
//! argues scenario 2 fits NUMA machines. This experiment pits the two
//! *directly at island level*: identical partitioning and block
//! schedule, differing only in whether island boundaries are handled by
//! redundant computation (the paper's approach) or by per-stage
//! inter-island cache pulls with machine-wide synchronization.
//!
//! Run: `cargo run --release -p islands-bench --bin ablation_exchange`

use islands_bench::sim_config;
use islands_core::{estimate, plan_islands, plan_islands_exchange, Variant, Workload};
use numa_sim::UvParams;
use perf_model::Table;

fn main() {
    let w = Workload::paper();
    let cfg = sim_config();
    let ps = [1usize, 2, 4, 8, 14];

    let mut t = Table::new(
        "Islands: recompute (scenario 2) vs exchange (scenario 1), simulated UV 2000",
        vec![
            "recompute [s]".into(),
            "exchange [s]".into(),
            "exchange/recompute".into(),
        ],
    )
    .precision(2);
    let mut ratios = Vec::new();
    for &p in &ps {
        let machine = UvParams::uv2000(p).build();
        let rec = estimate(
            &machine,
            &plan_islands(&machine, &w, Variant::A).expect("plans"),
            &w,
            &cfg,
        )
        .expect("simulates")
        .total_seconds;
        let exc = estimate(
            &machine,
            &plan_islands_exchange(&machine, &w, Variant::A).expect("plans"),
            &w,
            &cfg,
        )
        .expect("simulates")
        .total_seconds;
        ratios.push((p, exc / rec));
        t.push_row(format!("P = {p}"), vec![rec, exc, exc / rec]);
    }
    println!("{}", t.render());

    let monotone = ratios.windows(2).all(|w| w[1].1 >= w[0].1 * 0.9);
    println!(
        "check: exchange penalty grows with P .... {} (×{:.2} at P=14)",
        monotone,
        ratios.last().unwrap().1
    );
    println!(
        "reading: a few percent of redundant updates (Table 2) buys the removal of\n\
         ~{} machine-wide synchronizations and all inter-island cache pulls per\n\
         step. The bigger the machine, the better the purchase — the quantitative\n\
         form of §4.1's qualitative argument.",
        17 * 256
    );
}
