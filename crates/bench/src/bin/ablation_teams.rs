//! **A2 — islands within a CPU** (paper §6: "the proposed
//! islands-of-cores approach can be applied to optimize computations
//! within every multicore CPU"): split each socket's 8 cores into
//! islands of 8, 4, 2 and 1 cores and simulate the paper workload at
//! P = 8 sockets.
//!
//! Run: `cargo run --release -p islands-bench --bin ablation_teams`

use islands_bench::sim_config;
use islands_core::{
    estimate, extra_elements, plan_islands_with_layout, IslandLayout, Partition, Variant, Workload,
};
use mpdata::mpdata_graph;
use numa_sim::UvParams;
use perf_model::Table;

fn main() {
    let w = Workload::paper();
    let (graph, _) = mpdata_graph();
    let machine = UvParams::uv2000(8).build();
    let cfg = sim_config();

    let mut t = Table::new(
        "Sub-socket islands at P = 8 sockets (64 cores), variant A",
        vec!["islands".into(), "time [s]".into(), "extra [%]".into()],
    )
    .precision(3);
    for cores_per_island in [8usize, 4, 2, 1] {
        let layout = IslandLayout::sub_socket(&machine, cores_per_island);
        let ts = plan_islands_with_layout(&machine, &w, Variant::A, &layout).expect("plans");
        let secs = estimate(&machine, &ts, &w, &cfg)
            .expect("simulates")
            .total_seconds;
        let extra = extra_elements(
            &graph,
            &Partition::one_d(w.domain, Variant::A, layout.len()).unwrap(),
        )
        .percent();
        t.push_row(
            format!("{cores_per_island} cores/island"),
            vec![layout.len() as f64, secs, extra],
        );
    }
    println!("{}", t.render());
    println!(
        "reading: smaller islands trade per-stage team synchronization and halo\n\
         exchange against more redundant computation. On the modelled machine the\n\
         sweet spot sits at 2-4 cores per island (a few percent faster than whole-\n\
         socket islands), and at 1 core per island the ~14% extra elements eat the\n\
         gains back — quantifying the intra-CPU islands idea the paper leaves as\n\
         future work."
    );
}
