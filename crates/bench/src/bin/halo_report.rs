//! **Analysis — per-stage halo and redundancy breakdown**: where
//! Table 2's extra elements actually come from. For every MPDATA stage,
//! print its cumulative halo (how far the final output depends on it)
//! and its share of the redundant updates under a 2-island variant-A
//! partition.
//!
//! Run: `cargo run --release -p islands-bench --bin halo_report [iord]`

use mpdata::MpdataProblem;
use stencil_engine::{Axis, Region3};

fn main() {
    let iord: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("iord"))
        .unwrap_or(2);
    let problem = MpdataProblem::with_iord(iord);
    let g = problem.graph();
    let domain = Region3::of_extent(1024, 512, 64);
    let halves = domain.split(Axis::I, 2);
    let halos = g.cumulative_halos();
    let whole = g.required_regions(domain, domain);
    let left = g.required_regions(halves[0], domain);
    let right = g.required_regions(halves[1], domain);

    println!(
        "MPDATA iord = {iord} ({} stages), domain 1024×512×64, variant A, 2 islands\n",
        g.stage_count()
    );
    println!(
        "{:>3}  {:<12} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}  {:>12}  {:>7}",
        "#", "stage", "i-", "i+", "j-", "j+", "k-", "k+", "extra cells", "share"
    );
    let mut total_extra = 0usize;
    let extras: Vec<usize> = (0..g.stage_count())
        .map(|s| left[s].cells() + right[s].cells() - whole[s].cells())
        .collect();
    let sum_extra: usize = extras.iter().sum();
    for (s, st) in g.stages().iter().enumerate() {
        let h = halos[s];
        total_extra += extras[s];
        println!(
            "{:>3}  {:<12} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}  {:>12}  {:>6.1}%",
            s + 1,
            st.name,
            h.i_neg,
            h.i_pos,
            h.j_neg,
            h.j_pos,
            h.k_neg,
            h.k_pos,
            extras[s],
            if sum_extra > 0 {
                100.0 * extras[s] as f64 / sum_extra as f64
            } else {
                0.0
            },
        );
    }
    let base: usize = whole.iter().map(|r| r.cells()).sum();
    println!(
        "\ntotal: {total_extra} extra updates over {base} base = {:.3}% (Table 2's 2-island entry)",
        100.0 * total_extra as f64 / base as f64
    );
    println!(
        "reading: the earliest stages carry the deepest cumulative halos and so\n\
         pay most of the redundancy — the cost of islands independence is front-\n\
         loaded onto the upwind fluxes and the low-order update."
    );
}
