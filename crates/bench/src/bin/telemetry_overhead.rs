//! `telemetry-overhead` — measures what the live telemetry plane costs
//! the computation it observes (EXPERIMENTS.md E18).
//!
//! The plane's hot-path contract is that workers only ever pay the
//! wait-free seqlock ring writes they already pay for tracing, while
//! the background collector thread drains those rings concurrently.
//! This binary prices that claim: it times warmed steady-state batches
//! of the islands executor twice over identically-built plans —
//!
//! 1. **baseline** — tracing disabled, no collector;
//! 2. **live** — a trace session open, a `MetricsRegistry` attached to
//!    the pool, and the collector draining on a tight 2 ms interval
//!    (tighter than the 20 ms production cadence, to overstate rather
//!    than hide the interference).
//!
//! Each side reports the *median* of its batch times (medians shrug off
//! one preempted batch; means do not). `--gate R` exits non-zero when
//! `live/baseline` exceeds `R` — CI runs `--gate 1.02`, the ≤ 2 %
//! budget the observability design point promises. `--quick` shrinks
//! the domain and batch count for smoke runs.

use mpdata::{gaussian_pulse, IslandsExecutor};
use std::sync::Arc;
use std::time::{Duration, Instant};
use stencil_engine::{Axis, Region3};
use work_scheduler::{TeamSpec, WorkerPool};

struct Opts {
    gate: Option<f64>,
    quick: bool,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts {
        gate: None,
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => o.quick = true,
            "--gate" => {
                let v = args.next().ok_or("--gate needs a ratio")?;
                let r: f64 = v.parse().map_err(|e| format!("bad --gate {v:?}: {e}"))?;
                if !(r.is_finite() && r >= 1.0) {
                    return Err(format!("--gate must be at least 1, got {v}"));
                }
                o.gate = Some(r);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(o)
}

/// Builds a pool + warmed islands executor, optionally brings up the
/// live plane (session + collector on `registry`), and returns the
/// median batch wall time in nanoseconds over `batches` runs of
/// `steps` steps.
fn measure(
    domain: Region3,
    steps: usize,
    batches: usize,
    plane: Option<&Arc<islands_trace::registry::MetricsRegistry>>,
) -> f64 {
    let workers = 4;
    let mut pool = WorkerPool::new(workers);
    if let Some(reg) = plane {
        pool.attach_telemetry(Arc::clone(reg), Duration::from_millis(2));
    }
    let session = plane.map(|_| islands_trace::Session::start());
    let exec =
        IslandsExecutor::new(&pool, TeamSpec::even(workers, 2), Axis::I).cache_bytes(1 << 20);
    let mut fields = gaussian_pulse(domain, (0.2, 0.1, 0.05));
    // Warm-up under the same conditions as the measurement: plan build,
    // lazily-initialized runtime paths, and (on the live side) ring
    // registration plus collector mirror growth.
    exec.run(&mut fields, 2).unwrap();
    if plane.is_some() {
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut times: Vec<f64> = (0..batches)
        .map(|_| {
            let t = Instant::now();
            exec.run(&mut fields, steps).unwrap();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    drop(exec);
    pool.detach_telemetry();
    if let Some(session) = session {
        assert!(
            !session.finish().events.is_empty(),
            "live side recorded no spans — it measured nothing"
        );
    }
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn main() {
    let o = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("telemetry-overhead: {e}\nusage: telemetry-overhead [--gate R] [--quick]");
            std::process::exit(2);
        }
    };
    let (domain, steps, batches) = if o.quick {
        (Region3::of_extent(60, 30, 16), 8, 7)
    } else {
        (Region3::of_extent(120, 60, 32), 8, 15)
    };
    islands_trace::set_ring_capacity(1 << 18);

    let baseline = measure(domain, steps, batches, None);

    let registry = Arc::new(islands_trace::registry::MetricsRegistry::new(2));
    let live = measure(domain, steps, batches, Some(&registry));
    let snap = registry.snapshot();
    assert!(
        snap.events_folded > 0,
        "collector folded no spans — the live side measured nothing"
    );

    let ratio = live / baseline;
    println!(
        "telemetry-overhead: baseline {:.3} ms/batch, live {:.3} ms/batch \
         ({} events folded, {} dropped) -> ratio {ratio:.4}",
        baseline / 1e6,
        live / 1e6,
        snap.events_folded,
        snap.dropped_events,
    );
    if let Some(gate) = o.gate {
        if ratio > gate {
            eprintln!(
                "telemetry-overhead: ratio {ratio:.4} exceeds the gate {gate} — \
                 the live plane is perturbing the run"
            );
            std::process::exit(1);
        }
        println!("telemetry-overhead: ratio under the gate {gate}");
    }
}
