//! `bench-check` — validates a microbench `--json` artifact in CI.
//!
//! Usage: `bench-check <path>`. Exits non-zero when
//!
//! * the file is not well-formed JSON or not an array of complete
//!   `{group, label, min_ns, median_ns, max_ns, iters}` records with
//!   `min ≤ median ≤ max` and positive `iters`, or
//! * any `steady_state` group pairs a `*_first/P` label with its
//!   `*_steady/P` partner where the steady median fails to beat the
//!   first-step median — the whole point of the persistent-plan layer
//!   is that replaying a cached plan is cheaper than building one.

use islands_bench::json::{self, Json};

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: bench-check <bench.json>");
        return 2;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench-check: cannot read {path}: {e}");
            return 1;
        }
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench-check: {path}: {e}");
            return 1;
        }
    };
    match check(&doc) {
        Ok(summary) => {
            println!("bench-check: {path}: {summary}");
            0
        }
        Err(e) => {
            eprintln!("bench-check: {path}: {e}");
            1
        }
    }
}

/// One validated record (only the fields the checks need).
struct Rec {
    group: String,
    label: String,
    median_ns: f64,
}

fn field_f64(obj: &Json, key: &str, n: usize) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("record {n}: missing numeric `{key}`"))
}

fn check(doc: &Json) -> Result<String, String> {
    let arr = doc
        .as_array()
        .ok_or("top-level value must be an array of records")?;
    if arr.is_empty() {
        return Err("no benchmark records in artifact".into());
    }
    let mut recs = Vec::with_capacity(arr.len());
    for (n, item) in arr.iter().enumerate() {
        let group = item
            .get("group")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("record {n}: missing string `group`"))?;
        let label = item
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("record {n}: missing string `label`"))?;
        let min = field_f64(item, "min_ns", n)?;
        let median = field_f64(item, "median_ns", n)?;
        let max = field_f64(item, "max_ns", n)?;
        let iters = field_f64(item, "iters", n)?;
        if !(min > 0.0 && min <= median && median <= max) {
            return Err(format!(
                "record {n} ({group}/{label}): expected 0 < min ≤ median ≤ max, \
                 got {min}/{median}/{max}"
            ));
        }
        if iters < 1.0 || iters.fract() != 0.0 {
            return Err(format!(
                "record {n} ({group}/{label}): `iters` must be a positive integer, got {iters}"
            ));
        }
        recs.push(Rec {
            group: group.to_string(),
            label: label.to_string(),
            median_ns: median,
        });
    }

    // Steady-state pairing: every `X_first/P` must have an `X_steady/P`
    // partner that is strictly faster.
    let mut pairs = 0;
    for first in recs.iter().filter(|r| r.group == "steady_state") {
        let Some(rest) = first.label.strip_prefix("islands_first/") else {
            continue;
        };
        pairs += check_pair(&recs, first, &format!("islands_steady/{rest}"))?;
    }
    for first in recs.iter().filter(|r| r.group == "steady_state") {
        let Some(rest) = first.label.strip_prefix("fused_first/") else {
            continue;
        };
        pairs += check_pair(&recs, first, &format!("fused_steady/{rest}"))?;
    }
    if recs.iter().any(|r| r.group == "steady_state") && pairs == 0 {
        return Err("steady_state group present but no first/steady pairs found".into());
    }
    Ok(format!(
        "{} record(s) well-formed, {pairs} steady/first pair(s) ordered",
        recs.len()
    ))
}

fn check_pair(recs: &[Rec], first: &Rec, steady_label: &str) -> Result<usize, String> {
    let steady = recs
        .iter()
        .find(|r| r.group == "steady_state" && r.label == steady_label)
        .ok_or_else(|| format!("`{}` has no `{steady_label}` partner", first.label))?;
    if steady.median_ns >= first.median_ns {
        return Err(format!(
            "steady step is not faster than the first step: `{}` median {} ns \
             vs `{}` median {} ns",
            steady_label, steady.median_ns, first.label, first.median_ns
        ));
    }
    Ok(1)
}
