//! `bench-check` — validates benchmark and trace artifacts in CI.
//!
//! Usage: `bench-check [<bench.json>] [--phases] [--max-steady-ratio R]
//! [--chrome <trace.json>]`. Exits non-zero when
//!
//! * the bench file is not well-formed JSON or not an array of complete
//!   `{group, label, min_ns, median_ns, max_ns, iters}` records with
//!   `min ≤ median ≤ max` and positive `iters`, or
//! * any `steady_state` group pairs a `*_first/P` label with its
//!   `*_steady/P` partner where the steady median fails to beat the
//!   first-step median — the whole point of the persistent-plan layer
//!   is that replaying a cached plan is cheaper than building one, or
//! * `--phases` is given and a `*_steady/P` row lacks the
//!   `kernel_ns` / `barrier_ns` / `swap_ns` phase breakdown (or its
//!   kernel time is not positive), or
//! * the steady/first median ratio of any pair exceeds
//!   `--max-steady-ratio R` (`--phases` alone implies the default cap
//!   0.95 — committed artifacts sit at ≤ 0.83, so a cap breach flags a
//!   regression of the replay path, not noise), or
//! * `--chrome <trace.json>` names a file the in-repo Chrome
//!   trace-event validator rejects.

use islands_bench::json::{self, Json};

fn main() {
    std::process::exit(run());
}

struct Opts {
    bench_path: Option<String>,
    chrome_path: Option<String>,
    phases: bool,
    max_steady_ratio: Option<f64>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts {
        bench_path: None,
        chrome_path: None,
        phases: false,
        max_steady_ratio: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--phases" => o.phases = true,
            "--max-steady-ratio" => {
                let v = args.next().ok_or("--max-steady-ratio needs a value")?;
                let r: f64 = v
                    .parse()
                    .map_err(|e| format!("bad --max-steady-ratio {v:?}: {e}"))?;
                if !(r.is_finite() && r > 0.0) {
                    return Err(format!("--max-steady-ratio must be positive, got {v}"));
                }
                o.max_steady_ratio = Some(r);
            }
            "--chrome" => o.chrome_path = Some(args.next().ok_or("--chrome needs a path")?),
            other if !other.starts_with('-') && o.bench_path.is_none() => {
                o.bench_path = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if o.phases && o.max_steady_ratio.is_none() {
        o.max_steady_ratio = Some(0.95);
    }
    if o.bench_path.is_none() && o.chrome_path.is_none() {
        return Err("usage: bench-check [<bench.json>] [--phases] \
                    [--max-steady-ratio R] [--chrome <trace.json>]"
            .into());
    }
    Ok(o)
}

fn run() -> i32 {
    let o = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench-check: {e}");
            return 2;
        }
    };
    if let Some(path) = &o.bench_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench-check: cannot read {path}: {e}");
                return 1;
            }
        };
        let doc = match json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("bench-check: {path}: {e}");
                return 1;
            }
        };
        match check(&doc, &o) {
            Ok(summary) => println!("bench-check: {path}: {summary}"),
            Err(e) => {
                eprintln!("bench-check: {path}: {e}");
                return 1;
            }
        }
    }
    if let Some(path) = &o.chrome_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench-check: cannot read {path}: {e}");
                return 1;
            }
        };
        match islands_trace::chrome::validate(&text) {
            Ok(s) => println!(
                "bench-check: {path}: {} complete event(s) across {} process(es) valid",
                s.complete_events,
                s.pids.len()
            ),
            Err(e) => {
                eprintln!("bench-check: {path}: invalid Chrome trace: {e}");
                return 1;
            }
        }
    }
    0
}

/// One validated record (only the fields the checks need).
struct Rec {
    group: String,
    label: String,
    median_ns: f64,
    phases: Option<(f64, f64, f64)>,
}

fn field_f64(obj: &Json, key: &str, n: usize) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("record {n}: missing numeric `{key}`"))
}

fn check(doc: &Json, o: &Opts) -> Result<String, String> {
    let arr = doc
        .as_array()
        .ok_or("top-level value must be an array of records")?;
    if arr.is_empty() {
        return Err("no benchmark records in artifact".into());
    }
    let mut recs = Vec::with_capacity(arr.len());
    for (n, item) in arr.iter().enumerate() {
        let group = item
            .get("group")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("record {n}: missing string `group`"))?;
        let label = item
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("record {n}: missing string `label`"))?;
        let min = field_f64(item, "min_ns", n)?;
        let median = field_f64(item, "median_ns", n)?;
        let max = field_f64(item, "max_ns", n)?;
        let iters = field_f64(item, "iters", n)?;
        if !(min > 0.0 && min <= median && median <= max) {
            return Err(format!(
                "record {n} ({group}/{label}): expected 0 < min ≤ median ≤ max, \
                 got {min}/{median}/{max}"
            ));
        }
        if iters < 1.0 || iters.fract() != 0.0 {
            return Err(format!(
                "record {n} ({group}/{label}): `iters` must be a positive integer, got {iters}"
            ));
        }
        let phases = match item.get("kernel_ns") {
            Some(_) => Some((
                field_f64(item, "kernel_ns", n)?,
                field_f64(item, "barrier_ns", n)?,
                field_f64(item, "swap_ns", n)?,
            )),
            None => None,
        };
        recs.push(Rec {
            group: group.to_string(),
            label: label.to_string(),
            median_ns: median,
            phases,
        });
    }

    // Steady-state pairing: every `X_first/P` must have an `X_steady/P`
    // partner that is strictly faster (and under the ratio cap, when
    // one is set).
    let mut pairs = 0;
    for first in recs.iter().filter(|r| r.group == "steady_state") {
        let Some(rest) = first.label.strip_prefix("islands_first/") else {
            continue;
        };
        pairs += check_pair(&recs, first, &format!("islands_steady/{rest}"), o)?;
    }
    for first in recs.iter().filter(|r| r.group == "steady_state") {
        let Some(rest) = first.label.strip_prefix("fused_first/") else {
            continue;
        };
        pairs += check_pair(&recs, first, &format!("fused_steady/{rest}"), o)?;
    }
    if recs.iter().any(|r| r.group == "steady_state") && pairs == 0 {
        return Err("steady_state group present but no first/steady pairs found".into());
    }

    // Phase coverage: with --phases, every steady row must carry the
    // breakdown and must have spent time in kernels.
    let mut with_phases = 0;
    if o.phases {
        for r in recs
            .iter()
            .filter(|r| r.group == "steady_state" && r.label.contains("_steady/"))
        {
            let Some((kernel, barrier, swap)) = r.phases else {
                return Err(format!(
                    "`{}`: --phases requires kernel_ns/barrier_ns/swap_ns on steady rows",
                    r.label
                ));
            };
            if !(kernel > 0.0 && barrier >= 0.0 && swap >= 0.0) {
                return Err(format!(
                    "`{}`: implausible phase breakdown kernel {kernel} / \
                     barrier {barrier} / swap {swap}",
                    r.label
                ));
            }
            with_phases += 1;
        }
        if with_phases == 0 {
            return Err("--phases: no steady rows with a phase breakdown".into());
        }
    }
    let phase_note = if o.phases {
        format!(", {with_phases} phase breakdown(s) present")
    } else {
        String::new()
    };
    Ok(format!(
        "{} record(s) well-formed, {pairs} steady/first pair(s) ordered{phase_note}",
        recs.len()
    ))
}

fn check_pair(recs: &[Rec], first: &Rec, steady_label: &str, o: &Opts) -> Result<usize, String> {
    let steady = recs
        .iter()
        .find(|r| r.group == "steady_state" && r.label == steady_label)
        .ok_or_else(|| format!("`{}` has no `{steady_label}` partner", first.label))?;
    if steady.median_ns >= first.median_ns {
        return Err(format!(
            "steady step is not faster than the first step: `{}` median {} ns \
             vs `{}` median {} ns",
            steady_label, steady.median_ns, first.label, first.median_ns
        ));
    }
    if let Some(cap) = o.max_steady_ratio {
        let ratio = steady.median_ns / first.median_ns;
        if ratio > cap {
            return Err(format!(
                "steady/first ratio regressed: `{steady_label}` / `{}` = {ratio:.3} \
                 exceeds the cap {cap} — plan replay is no longer pulling its weight",
                first.label
            ));
        }
    }
    Ok(1)
}
