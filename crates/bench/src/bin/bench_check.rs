//! `bench-check` — validates benchmark and trace artifacts in CI.
//!
//! Usage: `bench-check [<bench.json>] [--phases] [--max-steady-ratio R]
//! [--max-barrier-share S] [--min-traffic-reduction F]
//! [--max-p99-ratio R] [--chrome <trace.json>]
//! [--prom <scrape.txt> [<scrape2.txt>]] [--scrape <addr>]`.
//! Exits non-zero when
//!
//! * the bench file is not well-formed JSON or not an array of complete
//!   `{group, label, min_ns, median_ns, max_ns, iters}` records with
//!   `min ≤ median ≤ max` and positive `iters`, or
//! * any `steady_state` group pairs a `*_first/P` label with its
//!   `*_steady/P` partner where the steady median fails to beat the
//!   first-step median — the whole point of the persistent-plan layer
//!   is that replaying a cached plan is cheaper than building one, or
//! * `--phases` is given and a `*_steady/P` row lacks the phase
//!   breakdown (worker-summed `kernel_ns` / `barrier_ns` / `swap_ns`,
//!   the `workers` count, the per-worker `*_pw_ns` values and
//!   `imbalance_ns`), its kernel time is not positive, or a per-worker
//!   value disagrees with its summed value over `workers`, or
//! * the steady/first median ratio of any pair exceeds
//!   `--max-steady-ratio R` (`--phases` alone implies the default cap
//!   0.95 — committed artifacts sit at ≤ 0.83, so a cap breach flags a
//!   regression of the replay path, not noise), or
//! * `--max-barrier-share S` is given and any multi-worker islands
//!   steady row spends more than `S` of its compute time on
//!   inter-island imbalance: the gated quantity is
//!   `imbalance_ns / (kernel_ns + imbalance_ns)`, the fraction of
//!   kernel-plus-lost worker time attributable to unequal island
//!   finish times. Raw barrier time is deliberately *not* gated — on
//!   an oversubscribed host (more workers than cores) summed barrier
//!   wait is dominated by the scheduler, approaching `(P−1)/P` of the
//!   step regardless of how well the islands are balanced, or
//! * `--min-traffic-reduction F` is given and any `tiled_steady/P` row
//!   fails to cut the modeled main-memory traffic (`bytes_moved`, from
//!   the compulsory-stream models) by at least the fraction `F`
//!   relative to its untiled `islands_steady/P` baseline — or the
//!   tiled steady step is slower than the untiled one beyond a 5 %
//!   noise allowance: cache-resident scratch must save traffic without
//!   costing time. Phase rows must also carry finite, non-negative
//!   `bytes_moved` / `mlups` members (positive on the gated rows), or
//! * `--max-p99-ratio R` is given and any steady row's per-step
//!   latency tail exceeds it: the gated quantity is
//!   `p99_step_ns / p50_step_ns` from the phase breakdown's
//!   log2-histogram quantiles, so the ratio quantizes to powers of two
//!   and the cap bounds step-time *jitter*, not absolute speed, or
//! * `--chrome <trace.json>` names a file the in-repo Chrome
//!   trace-event validator rejects.
//!
//! Telemetry exposition checks (the CI `telemetry-smoke` job):
//!
//! * `--prom <scrape.txt> [<scrape2.txt>]` validates Prometheus text
//!   exposition syntax through the in-repo
//!   `islands_trace::export::validate_exposition` parser. With two
//!   files (two scrapes of one live run, in order), every `_total`
//!   counter present in the first must be present and non-decreasing
//!   in the second, the summed `islands_kernel_ns_total` must strictly
//!   increase (the run was alive between scrapes), and the second
//!   scrape must show nonzero kernel time and computed cells for at
//!   least one island;
//! * `--scrape <addr>` performs the two `GET /metrics` scrapes itself
//!   against a live `mpdata-run --serve-metrics` endpoint (std-only
//!   HTTP/1.1 over `TcpStream`, ~400 ms apart) and applies the same
//!   two-scrape validation.

use islands_bench::json::{self, Json};
use islands_trace::export::{validate_exposition, Sample};
use std::collections::HashMap;

fn main() {
    std::process::exit(run());
}

struct Opts {
    bench_path: Option<String>,
    chrome_path: Option<String>,
    phases: bool,
    max_steady_ratio: Option<f64>,
    max_barrier_share: Option<f64>,
    min_traffic_reduction: Option<f64>,
    max_p99_ratio: Option<f64>,
    prom_paths: Vec<String>,
    scrape_addr: Option<String>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut o = Opts {
        bench_path: None,
        chrome_path: None,
        phases: false,
        max_steady_ratio: None,
        max_barrier_share: None,
        min_traffic_reduction: None,
        max_p99_ratio: None,
        prom_paths: Vec::new(),
        scrape_addr: None,
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--phases" => o.phases = true,
            "--max-steady-ratio" => {
                let v = args.next().ok_or("--max-steady-ratio needs a value")?;
                let r: f64 = v
                    .parse()
                    .map_err(|e| format!("bad --max-steady-ratio {v:?}: {e}"))?;
                if !(r.is_finite() && r > 0.0) {
                    return Err(format!("--max-steady-ratio must be positive, got {v}"));
                }
                o.max_steady_ratio = Some(r);
            }
            "--max-barrier-share" => {
                let v = args.next().ok_or("--max-barrier-share needs a value")?;
                let s: f64 = v
                    .parse()
                    .map_err(|e| format!("bad --max-barrier-share {v:?}: {e}"))?;
                if !(s.is_finite() && s > 0.0 && s <= 1.0) {
                    return Err(format!("--max-barrier-share must be in (0, 1], got {v}"));
                }
                o.max_barrier_share = Some(s);
            }
            "--min-traffic-reduction" => {
                let v = args.next().ok_or("--min-traffic-reduction needs a value")?;
                let f: f64 = v
                    .parse()
                    .map_err(|e| format!("bad --min-traffic-reduction {v:?}: {e}"))?;
                if !(f.is_finite() && f > 0.0 && f < 1.0) {
                    return Err(format!(
                        "--min-traffic-reduction must be in (0, 1), got {v}"
                    ));
                }
                o.min_traffic_reduction = Some(f);
            }
            "--max-p99-ratio" => {
                let v = args.next().ok_or("--max-p99-ratio needs a value")?;
                let r: f64 = v
                    .parse()
                    .map_err(|e| format!("bad --max-p99-ratio {v:?}: {e}"))?;
                if !(r.is_finite() && r >= 1.0) {
                    return Err(format!("--max-p99-ratio must be at least 1, got {v}"));
                }
                o.max_p99_ratio = Some(r);
            }
            "--prom" => {
                o.prom_paths.push(args.next().ok_or("--prom needs a path")?);
                // A second positional path is the follow-up scrape.
                if args.peek().is_some_and(|n| !n.starts_with('-')) {
                    o.prom_paths.push(args.next().expect("peeked"));
                }
            }
            "--scrape" => o.scrape_addr = Some(args.next().ok_or("--scrape needs an address")?),
            "--chrome" => o.chrome_path = Some(args.next().ok_or("--chrome needs a path")?),
            other if !other.starts_with('-') && o.bench_path.is_none() => {
                o.bench_path = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if o.phases && o.max_steady_ratio.is_none() {
        o.max_steady_ratio = Some(0.95);
    }
    if o.prom_paths.len() > 2 {
        return Err("--prom takes at most two scrape files".into());
    }
    if o.bench_path.is_none()
        && o.chrome_path.is_none()
        && o.prom_paths.is_empty()
        && o.scrape_addr.is_none()
    {
        return Err("usage: bench-check [<bench.json>] [--phases] \
                    [--max-steady-ratio R] [--max-barrier-share S] \
                    [--min-traffic-reduction F] [--max-p99-ratio R] \
                    [--chrome <trace.json>] [--prom <scrape.txt> [<scrape2.txt>]] \
                    [--scrape <addr>]"
            .into());
    }
    Ok(o)
}

fn run() -> i32 {
    let o = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench-check: {e}");
            return 2;
        }
    };
    if let Some(path) = &o.bench_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench-check: cannot read {path}: {e}");
                return 1;
            }
        };
        let doc = match json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("bench-check: {path}: {e}");
                return 1;
            }
        };
        match check(&doc, &o) {
            Ok(summary) => println!("bench-check: {path}: {summary}"),
            Err(e) => {
                eprintln!("bench-check: {path}: {e}");
                return 1;
            }
        }
    }
    if let Some(path) = &o.chrome_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench-check: cannot read {path}: {e}");
                return 1;
            }
        };
        match islands_trace::chrome::validate(&text) {
            Ok(s) => println!(
                "bench-check: {path}: {} complete event(s) across {} process(es) valid",
                s.complete_events,
                s.pids.len()
            ),
            Err(e) => {
                eprintln!("bench-check: {path}: invalid Chrome trace: {e}");
                return 1;
            }
        }
    }
    if !o.prom_paths.is_empty() {
        let mut docs = Vec::new();
        for path in &o.prom_paths {
            match std::fs::read_to_string(path) {
                Ok(t) => docs.push(t),
                Err(e) => {
                    eprintln!("bench-check: cannot read {path}: {e}");
                    return 1;
                }
            }
        }
        match check_exposition(&docs) {
            Ok(summary) => println!("bench-check: {}: {summary}", o.prom_paths.join(", ")),
            Err(e) => {
                eprintln!("bench-check: {}: {e}", o.prom_paths.join(", "));
                return 1;
            }
        }
    }
    if let Some(addr) = &o.scrape_addr {
        let result = scrape(addr).and_then(|first| {
            std::thread::sleep(std::time::Duration::from_millis(400));
            let second = scrape(addr)?;
            check_exposition(&[first, second])
        });
        match result {
            Ok(summary) => println!("bench-check: {addr}: {summary}"),
            Err(e) => {
                eprintln!("bench-check: {addr}: {e}");
                return 1;
            }
        }
    }
    0
}

/// One `GET /metrics` over a std-only HTTP/1.1 client; returns the
/// response body.
fn scrape(addr: &str) -> Result<String, String> {
    use std::io::{Read, Write};
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let timeout = Some(std::time::Duration::from_secs(5));
    stream
        .set_read_timeout(timeout)
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(timeout)
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| format!("scrape request failed: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("scrape read failed: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or("malformed HTTP response: no header/body separator")?;
    let status = head.lines().next().unwrap_or("");
    if !status.starts_with("HTTP/1.1 200") {
        return Err(format!("scrape returned {status:?}, expected 200"));
    }
    Ok(body.to_string())
}

/// Indexes samples by `name{labels}` identity for cross-scrape
/// comparison.
fn index(samples: &[Sample]) -> HashMap<String, f64> {
    samples.iter().map(|s| (s.key(), s.value)).collect()
}

/// Sum of a per-island counter over all islands in one scrape.
fn island_total(samples: &[Sample], name: &str) -> f64 {
    samples
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.value)
        .sum()
}

/// Validates one or two Prometheus exposition documents: syntax via the
/// in-repo parser, and (with two) counter monotonicity plus liveness of
/// the kernel counters between the scrapes.
fn check_exposition(docs: &[String]) -> Result<String, String> {
    let mut parsed = Vec::new();
    for (n, doc) in docs.iter().enumerate() {
        let samples = validate_exposition(doc)
            .map_err(|e| format!("scrape {}: invalid exposition: {e}", n + 1))?;
        if samples.is_empty() {
            return Err(format!("scrape {}: no samples", n + 1));
        }
        parsed.push(samples);
    }
    let last = parsed.last().expect("at least one document");
    for name in ["islands_kernel_ns_total", "islands_computed_cells_total"] {
        if island_total(last, name) <= 0.0 {
            return Err(format!(
                "final scrape: `{name}` is zero across all islands — the \
                 collector never folded a kernel span"
            ));
        }
    }
    if !last
        .iter()
        .any(|s| s.name == "islands_kernel_ns_total" && s.value > 0.0)
    {
        return Err("final scrape: no island shows nonzero kernel time".into());
    }
    if let [first, second] = &parsed[..] {
        let after = index(second);
        let mut counters = 0;
        for s in first.iter().filter(|s| s.name.ends_with("_total")) {
            let Some(&later) = after.get(&s.key()) else {
                return Err(format!("counter `{}` vanished between scrapes", s.key()));
            };
            if later < s.value {
                return Err(format!(
                    "counter `{}` went backwards between scrapes: {} -> {later}",
                    s.key(),
                    s.value
                ));
            }
            counters += 1;
        }
        if counters == 0 {
            return Err("first scrape exposes no `_total` counters".into());
        }
        let (k1, k2) = (
            island_total(first, "islands_kernel_ns_total"),
            island_total(second, "islands_kernel_ns_total"),
        );
        if k2 <= k1 {
            return Err(format!(
                "summed `islands_kernel_ns_total` did not increase between \
                 scrapes ({k1} -> {k2}) — the run was not live"
            ));
        }
        Ok(format!(
            "2 scrape(s) valid, {counters} counter(s) monotone, kernel time \
             advanced {k1} -> {k2}"
        ))
    } else {
        Ok(format!(
            "1 scrape valid ({} sample(s), nonzero island kernel counters)",
            last.len()
        ))
    }
}

/// Phase breakdown of one record, as read back from the artifact.
struct PhaseRec {
    kernel: f64,
    barrier: f64,
    swap: f64,
    workers: f64,
    imbalance: f64,
    bytes_moved: f64,
    mlups: f64,
    p50_step: f64,
    p99_step: f64,
}

/// One validated record (only the fields the checks need).
struct Rec {
    group: String,
    label: String,
    median_ns: f64,
    phases: Option<PhaseRec>,
}

fn field_f64(obj: &Json, key: &str, n: usize) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("record {n}: missing numeric `{key}`"))
}

/// Checks `summed / workers == pw` up to rounding.
fn pw_consistent(summed: f64, workers: f64, pw: f64) -> bool {
    let expect = summed / workers.max(1.0);
    (expect - pw).abs() <= 1e-6 * expect.abs() + 1e-3
}

fn check(doc: &Json, o: &Opts) -> Result<String, String> {
    let arr = doc
        .as_array()
        .ok_or("top-level value must be an array of records")?;
    if arr.is_empty() {
        return Err("no benchmark records in artifact".into());
    }
    let mut recs = Vec::with_capacity(arr.len());
    for (n, item) in arr.iter().enumerate() {
        let group = item
            .get("group")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("record {n}: missing string `group`"))?;
        let label = item
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("record {n}: missing string `label`"))?;
        let min = field_f64(item, "min_ns", n)?;
        let median = field_f64(item, "median_ns", n)?;
        let max = field_f64(item, "max_ns", n)?;
        let iters = field_f64(item, "iters", n)?;
        if !(min > 0.0 && min <= median && median <= max) {
            return Err(format!(
                "record {n} ({group}/{label}): expected 0 < min ≤ median ≤ max, \
                 got {min}/{median}/{max}"
            ));
        }
        if iters < 1.0 || iters.fract() != 0.0 {
            return Err(format!(
                "record {n} ({group}/{label}): `iters` must be a positive integer, got {iters}"
            ));
        }
        let phases = match item.get("kernel_ns") {
            Some(_) => {
                let p = PhaseRec {
                    kernel: field_f64(item, "kernel_ns", n)?,
                    barrier: field_f64(item, "barrier_ns", n)?,
                    swap: field_f64(item, "swap_ns", n)?,
                    workers: field_f64(item, "workers", n)?,
                    imbalance: field_f64(item, "imbalance_ns", n)?,
                    bytes_moved: field_f64(item, "bytes_moved", n)?,
                    mlups: field_f64(item, "mlups", n)?,
                    p50_step: field_f64(item, "p50_step_ns", n)?,
                    p99_step: field_f64(item, "p99_step_ns", n)?,
                };
                if !(p.p50_step >= 0.0 && p.p99_step >= p.p50_step) {
                    return Err(format!(
                        "record {n} ({group}/{label}): expected 0 ≤ p50_step_ns ≤ \
                         p99_step_ns, got {}/{}",
                        p.p50_step, p.p99_step
                    ));
                }
                if !(p.bytes_moved >= 0.0 && p.mlups >= 0.0) {
                    return Err(format!(
                        "record {n} ({group}/{label}): `bytes_moved` ({}) and `mlups` \
                         ({}) must be non-negative",
                        p.bytes_moved, p.mlups
                    ));
                }
                // The per-worker values must be the summed values over
                // `workers` — they are derived at render time, so a
                // mismatch means a corrupted or hand-edited artifact.
                for (key, summed) in [
                    ("kernel_pw_ns", p.kernel),
                    ("barrier_pw_ns", p.barrier),
                    ("swap_pw_ns", p.swap),
                ] {
                    let pw = field_f64(item, key, n)?;
                    if !pw_consistent(summed, p.workers, pw) {
                        return Err(format!(
                            "record {n} ({group}/{label}): `{key}` = {pw} disagrees with \
                             its summed value {summed} over {} worker(s)",
                            p.workers
                        ));
                    }
                }
                Some(p)
            }
            None => None,
        };
        recs.push(Rec {
            group: group.to_string(),
            label: label.to_string(),
            median_ns: median,
            phases,
        });
    }

    // Steady-state pairing: every `X_first/P` must have an `X_steady/P`
    // partner that is strictly faster (and under the ratio cap, when
    // one is set).
    let mut pairs = 0;
    for first in recs.iter().filter(|r| r.group == "steady_state") {
        let Some(pos) = first.label.find("_first/") else {
            continue;
        };
        let steady_label = format!(
            "{}_steady/{}",
            &first.label[..pos],
            &first.label[pos + "_first/".len()..]
        );
        pairs += check_pair(&recs, first, &steady_label, o)?;
    }
    if recs.iter().any(|r| r.group == "steady_state") && pairs == 0 {
        return Err("steady_state group present but no first/steady pairs found".into());
    }

    // Phase coverage: with --phases, every steady row must carry the
    // breakdown and must have spent time in kernels.
    let mut with_phases = 0;
    if o.phases {
        for r in recs
            .iter()
            .filter(|r| r.group == "steady_state" && r.label.contains("_steady/"))
        {
            let Some(p) = &r.phases else {
                return Err(format!(
                    "`{}`: --phases requires the phase breakdown on steady rows",
                    r.label
                ));
            };
            if !(p.kernel > 0.0
                && p.barrier >= 0.0
                && p.swap >= 0.0
                && p.workers >= 1.0
                && p.imbalance >= 0.0)
            {
                return Err(format!(
                    "`{}`: implausible phase breakdown kernel {} / barrier {} / \
                     swap {} / workers {} / imbalance {}",
                    r.label, p.kernel, p.barrier, p.swap, p.workers, p.imbalance
                ));
            }
            with_phases += 1;
        }
        if with_phases == 0 {
            return Err("--phases: no steady rows with a phase breakdown".into());
        }
    }

    // Imbalance gate: multi-worker islands steady rows must keep the
    // imbalance-attributable share of compute time under the cap.
    let mut gated = 0;
    if let Some(cap) = o.max_barrier_share {
        for r in recs.iter().filter(|r| {
            r.group == "steady_state"
                && r.label.starts_with("islands")
                && r.label.contains("_steady/")
        }) {
            let Some(p) = &r.phases else {
                return Err(format!(
                    "`{}`: --max-barrier-share requires the phase breakdown",
                    r.label
                ));
            };
            if p.workers < 2.0 {
                continue; // a single worker cannot be imbalanced
            }
            let share = p.imbalance / (p.kernel + p.imbalance).max(1.0);
            if share > cap {
                return Err(format!(
                    "imbalance share too high: `{}` loses {share:.3} of its compute \
                     time to unequal island finish times (cap {cap}) — the cost-model \
                     cuts are no longer balancing the islands",
                    r.label
                ));
            }
            gated += 1;
        }
        if gated == 0 {
            return Err("--max-barrier-share: no multi-worker islands steady rows to gate".into());
        }
    }

    // Latency-tail gate: every steady row with a per-step histogram
    // must keep its p99/p50 jitter under the cap. The quantiles are
    // log2 bucket ceilings, so the ratio quantizes to powers of two —
    // a cap of 4 tolerates one-bucket spread, 8 tolerates two.
    let mut tails = 0;
    if let Some(cap) = o.max_p99_ratio {
        for r in recs
            .iter()
            .filter(|r| r.group == "steady_state" && r.label.contains("_steady/"))
        {
            let Some(p) = &r.phases else {
                return Err(format!(
                    "`{}`: --max-p99-ratio requires the phase breakdown",
                    r.label
                ));
            };
            if p.p50_step <= 0.0 {
                return Err(format!(
                    "`{}`: --max-p99-ratio requires a per-step histogram \
                     (p50_step_ns is zero — the traced replay tracked no steps)",
                    r.label
                ));
            }
            let ratio = p.p99_step / p.p50_step;
            if ratio > cap {
                return Err(format!(
                    "per-step latency tail too heavy: `{}` p99 {} ns / p50 {} ns \
                     = {ratio:.1}, over the cap {cap} — steady-state step times \
                     are no longer tight",
                    r.label, p.p99_step, p.p50_step
                ));
            }
            tails += 1;
        }
        if tails == 0 {
            return Err("--max-p99-ratio: no steady rows to gate".into());
        }
    }

    // Traffic gate: every tiled steady row must cut the modeled
    // main-memory traffic against its untiled islands baseline by at
    // least the requested fraction, without giving the time back.
    let mut traffic_pairs = 0;
    if let Some(min_red) = o.min_traffic_reduction {
        for tiled in recs
            .iter()
            .filter(|r| r.group == "steady_state" && r.label.starts_with("tiled_steady/"))
        {
            let p = &tiled.label["tiled_steady/".len()..];
            let base_label = format!("islands_steady/{p}");
            let base = recs
                .iter()
                .find(|r| r.group == "steady_state" && r.label == base_label)
                .ok_or_else(|| {
                    format!(
                        "`{}` has no `{base_label}` baseline to gate against",
                        tiled.label
                    )
                })?;
            let (tp, bp) = match (&tiled.phases, &base.phases) {
                (Some(tp), Some(bp)) if tp.bytes_moved > 0.0 && bp.bytes_moved > 0.0 => (tp, bp),
                _ => {
                    return Err(format!(
                        "--min-traffic-reduction: `{}` and `{base_label}` must both \
                         carry positive `bytes_moved` traffic models",
                        tiled.label
                    ))
                }
            };
            if !(tp.mlups > 0.0 && bp.mlups > 0.0) {
                return Err(format!(
                    "--min-traffic-reduction: `{}` and `{base_label}` must both \
                     carry positive `mlups` throughput figures",
                    tiled.label
                ));
            }
            let reduction = 1.0 - tp.bytes_moved / bp.bytes_moved;
            if reduction < min_red {
                return Err(format!(
                    "modeled traffic reduction too small: `{}` moves {} bytes/step vs \
                     `{base_label}`'s {} — a {reduction:.3} cut, below the required \
                     {min_red} — tile fusion is no longer keeping intermediates \
                     cache-resident",
                    tiled.label, tp.bytes_moved, bp.bytes_moved
                ));
            }
            // "No worse" with a small allowance for timer noise between
            // the two rows of one artifact.
            if tiled.median_ns > base.median_ns * 1.05 {
                return Err(format!(
                    "tiled steady step is slower than untiled: `{}` median {} ns vs \
                     `{base_label}` median {} ns — the traffic cut is costing time",
                    tiled.label, tiled.median_ns, base.median_ns
                ));
            }
            traffic_pairs += 1;
        }
        if traffic_pairs == 0 {
            return Err("--min-traffic-reduction: no tiled_steady rows to gate".into());
        }
    }

    let phase_note = if o.phases {
        format!(", {with_phases} phase breakdown(s) present")
    } else {
        String::new()
    };
    let gate_note = if o.max_barrier_share.is_some() {
        format!(", {gated} imbalance share(s) under the cap")
    } else {
        String::new()
    };
    let traffic_note = if o.min_traffic_reduction.is_some() {
        format!(", {traffic_pairs} tiled traffic cut(s) over the floor")
    } else {
        String::new()
    };
    let tail_note = if o.max_p99_ratio.is_some() {
        format!(", {tails} latency tail(s) under the cap")
    } else {
        String::new()
    };
    Ok(format!(
        "{} record(s) well-formed, {pairs} steady/first pair(s) \
         ordered{phase_note}{gate_note}{traffic_note}{tail_note}",
        recs.len()
    ))
}

fn check_pair(recs: &[Rec], first: &Rec, steady_label: &str, o: &Opts) -> Result<usize, String> {
    let steady = recs
        .iter()
        .find(|r| r.group == "steady_state" && r.label == steady_label)
        .ok_or_else(|| format!("`{}` has no `{steady_label}` partner", first.label))?;
    if steady.median_ns >= first.median_ns {
        return Err(format!(
            "steady step is not faster than the first step: `{}` median {} ns \
             vs `{}` median {} ns",
            steady_label, steady.median_ns, first.label, first.median_ns
        ));
    }
    if let Some(cap) = o.max_steady_ratio {
        let ratio = steady.median_ns / first.median_ns;
        if ratio > cap {
            return Err(format!(
                "steady/first ratio regressed: `{steady_label}` / `{}` = {ratio:.3} \
                 exceeds the cap {cap} — plan replay is no longer pulling its weight",
                first.label
            ));
        }
    }
    Ok(1)
}
