//! **E5 — §3.2 traffic claim**: on a single Xeon E5-2660v2 (25 MB L3)
//! with the 256×256×64 grid and 50 time steps, the paper measures the
//! main-memory traffic dropping from 133 GB (original) to 30 GB
//! ((3+1)D), a ≈2.8× execution speedup. We reproduce the traffic
//! analytically and the speedup on the simulated socket.
//!
//! Run: `cargo run --release -p islands-bench --bin traffic`

use islands_core::{estimate, plan_fused, plan_original, InitPolicy, Workload};
use mpdata::mpdata_graph;
use numa_sim::{xeon_e5_2660v2, SimConfig};
use perf_model::{fused_traffic_blocked, fused_traffic_ideal, original_traffic, Table};
use stencil_engine::Region3;

fn main() {
    let (graph, _) = mpdata_graph();
    let domain = Region3::of_extent(256, 256, 64);
    let steps = 50;
    let cache = 25 << 20;

    let orig = original_traffic(&graph, domain, steps);
    let ideal = fused_traffic_ideal(&graph, domain, steps);
    let blocked = fused_traffic_blocked(&graph, domain, steps, cache).unwrap();

    let mut t = Table::new(
        "Main-memory traffic, 256×256×64 grid, 50 steps (paper §3.2: 133 GB → 30 GB)",
        vec!["traffic [GB]".into(), "paper [GB]".into()],
    )
    .precision(1);
    t.push_row("Original (per-stage sweeps)", vec![orig.total_gb(), 133.0]);
    t.push_row("(3+1)D (blocked, analytic)", vec![blocked.total_gb(), 30.0]);
    t.push_row("(3+1)D (ideal floor)", vec![ideal.total_gb(), f64::NAN]);
    println!("{}", t.render());

    // Execution-time side of the claim on the simulated E5-2660v2.
    let machine = xeon_e5_2660v2();
    let w = Workload {
        domain,
        steps,
        cache_bytes: cache,
    };
    let cfg = SimConfig::default();
    let t_orig = estimate(
        &machine,
        &plan_original(&machine, &w, InitPolicy::ParallelFirstTouch),
        &w,
        &cfg,
    )
    .unwrap()
    .total_seconds;
    let t_fused = estimate(
        &machine,
        &plan_fused(&machine, &w, InitPolicy::ParallelFirstTouch).unwrap(),
        &w,
        &cfg,
    )
    .unwrap()
    .total_seconds;
    println!(
        "execution: original {t_orig:.2} s, (3+1)D {t_fused:.2} s → speedup {:.2}× (paper: ≈2.8×)",
        t_orig / t_fused
    );
    println!(
        "check: traffic reduction ≥ 4× .......... {}",
        orig.total_bytes / blocked.total_bytes >= 4.0
    );
    println!(
        "check: single-socket speedup in 2..4× .. {}",
        (2.0..4.0).contains(&(t_orig / t_fused))
    );
}
