//! **Fig. 1 of the paper**, reproduced computationally: three dependent
//! 1-D stencil stages (each reading {−1, 0, +1}) over an 8-point grid
//! split between two CPUs.
//!
//! * Scenario (b): parallelize with data transfers — count the elements
//!   implicitly exchanged between the CPUs and the synchronization
//!   points required.
//! * Scenario (c): parallelize with redundant computation — count the
//!   extra elements each CPU computes to become an independent island.
//!
//! Run: `cargo run --release -p islands-bench --bin fig1`

use stencil_engine::{
    Axis, FieldRole, FieldTable, Region3, StageDef, StageGraph, StageId, StencilPattern,
};

/// Fig. 1(a): x → A → B → C, each stage a 1-D {−1,0,+1} stencil.
fn fig1_graph() -> StageGraph {
    let mut t = FieldTable::new();
    let x = t.add("x", FieldRole::External);
    let a = t.add("A", FieldRole::Intermediate);
    let b = t.add("B", FieldRole::Intermediate);
    let c = t.add("C", FieldRole::Output);
    let p = || StencilPattern::from_offsets([(-1, 0, 0), (0, 0, 0), (1, 0, 0)]);
    let mk = |id, name: &str, out, inp| StageDef {
        id: StageId(id),
        name: name.into(),
        outputs: vec![out],
        inputs: vec![(inp, p())],
        flops_per_cell: 1.0,
    };
    StageGraph::build(
        t,
        vec![
            mk(0, "stage1", a, x),
            mk(1, "stage2", b, a),
            mk(2, "stage3", c, b),
        ],
    )
    .expect("fig1 graph is well-formed")
}

fn main() {
    let g = fig1_graph();
    let domain = Region3::of_extent(8, 1, 1); // grid points a..h
    let halves = domain.split(Axis::I, 2);
    let (cpu_a, cpu_b) = (halves[0], halves[1]);

    println!("Fig. 1(a): three dependent {{-1,0,+1}} stages over 8 points, 2 CPUs\n");

    // Scenario (b): transfers. Each stage boundary needs the neighbour's
    // edge element of the previous stage: count elements read across the
    // CPU_A | CPU_B cut.
    let mut transfers = 0;
    for st in g.stages() {
        for (_, pattern) in &st.inputs {
            let h = pattern.halo();
            // Reads reaching left across the cut from CPU_B plus reads
            // reaching right from CPU_A, per stage, on this 1-D cut.
            transfers += (h.i_neg.min(1) + h.i_pos.min(1)) as usize;
        }
    }
    // Each of the 3 stages needs a synchronization point before the next
    // may read its results (the paper counts three).
    let sync_points = g.stage_count();
    println!("Scenario (b) — parallelization with transfers:");
    println!("  elements crossing the CPU boundary per step : {transfers}");
    println!("  synchronization points per step             : {sync_points}");

    // Scenario (c): islands. Per-CPU enlarged schedules; extra updates
    // beyond the no-redundancy total.
    let whole: usize = g
        .required_regions(domain, domain)
        .iter()
        .map(|r| r.cells())
        .sum();
    let per_cpu: Vec<usize> = [cpu_a, cpu_b]
        .iter()
        .map(|&h| {
            g.required_regions(h, domain)
                .iter()
                .map(|r| r.cells())
                .sum()
        })
        .collect();
    let extra = per_cpu.iter().sum::<usize>() - whole;
    println!("\nScenario (c) — islands (recompute):");
    for (n, (&half, &updates)) in [cpu_a, cpu_b].iter().zip(&per_cpu).enumerate() {
        let own: usize = g
            .required_regions(domain, domain)
            .iter()
            .map(|r| r.intersect(half).cells())
            .sum();
        println!(
            "  CPU_{}: {updates} element updates ({} own + {} recomputed)",
            ['A', 'B'][n],
            own,
            updates - own
        );
    }
    println!("  total extra element updates per step        : {extra}");
    println!("  inter-CPU transfers / synchronizations      : 0 / 0");
    println!(
        "\nThe paper counts \"three extra elements\" — the distinct cells A[c], A[d]\n\
         and B[c] recomputed across the boundary; as stage *updates* (one per cell\n\
         per stage side) that is {extra}. Both CPUs now advance a full time step as\n\
         independent islands."
    );
    assert_eq!(extra, 6);
    assert_eq!(sync_points, 3);
}
