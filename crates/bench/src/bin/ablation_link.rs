//! **A3 — interconnect sensitivity**: §4.1 argues the choice between
//! communicating (scenario 1) and recomputing (scenario 2) depends on
//! how the computing resources compare to the interconnect. Sweep the
//! interconnect bandwidth ×{¼, ½, 1, 2, 4, 8} at P = 8 and watch the
//! (3+1)D-vs-islands gap shrink as links get faster.
//!
//! Run: `cargo run --release -p islands-bench --bin ablation_link`

use islands_bench::sim_config;
use islands_core::{estimate, plan_fused, plan_islands, InitPolicy, Variant, Workload};
use numa_sim::UvParams;
use perf_model::Table;

fn main() {
    let w = Workload::paper();
    let cfg = sim_config();
    let factors = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

    let mut t = Table::new(
        "Interconnect sensitivity at P = 8 (bandwidth scale vs times and S_pr)",
        vec!["(3+1)D [s]".into(), "islands [s]".into(), "S_pr".into()],
    )
    .precision(2);
    let mut sprs = Vec::new();
    for &f in &factors {
        let machine = UvParams::uv2000(8).scale_interconnect(f).build();
        let fused = estimate(
            &machine,
            &plan_fused(&machine, &w, InitPolicy::ParallelFirstTouch).expect("plans"),
            &w,
            &cfg,
        )
        .expect("simulates")
        .total_seconds;
        let islands = estimate(
            &machine,
            &plan_islands(&machine, &w, Variant::A).expect("plans"),
            &w,
            &cfg,
        )
        .expect("simulates")
        .total_seconds;
        sprs.push(fused / islands);
        t.push_row(format!("×{f}"), vec![fused, islands, fused / islands]);
    }
    println!("{}", t.render());

    println!(
        "check: S_pr decreases as the interconnect speeds up ... {}",
        sprs.windows(2).all(|w| w[1] <= w[0] * 1.05)
    );
    println!(
        "reading: with slow links, replacing communication by redundant computation\n\
         (scenario 2) wins decisively; as links approach cache-like speeds the pure\n\
         (3+1)D decomposition recovers — exactly the architecture-dependence the\n\
         paper's §4.1 predicts."
    );
}
