//! **E2 — Table 2**: total extra elements [%] versus the original
//! version for 1-D mappings of the 1024×512×64 MPDATA grid, variants A
//! (first dimension) and B (second dimension), for 1..=14 islands.
//!
//! This table is *analytic*: the backward requirement analysis counts
//! redundant element updates exactly; no simulation is involved.
//!
//! Run: `cargo run --release -p islands-bench --bin table2`

use islands_bench::{CPU_COUNTS, PAPER_EXTRA_A, PAPER_EXTRA_B};
use islands_core::{extra_elements, Partition, Variant};
use mpdata::mpdata_graph;
use perf_model::Table;
use stencil_engine::Region3;

fn main() {
    let (graph, _) = mpdata_graph();
    let domain = Region3::of_extent(1024, 512, 64);

    let mut a = Vec::new();
    let mut b = Vec::new();
    for &n in &CPU_COUNTS {
        a.push(extra_elements(&graph, &Partition::one_d(domain, Variant::A, n).unwrap()).percent());
        b.push(extra_elements(&graph, &Partition::one_d(domain, Variant::B, n).unwrap()).percent());
    }

    let mut t = Table::numbered_columns(
        "Table 2: extra elements [%] vs original, 1D island grids, domain 1024×512×64",
        14,
    );
    t.push_row("Variant A   [sim]", a.clone());
    t.push_row("Variant A [paper]", PAPER_EXTRA_A.to_vec());
    t.push_row("Variant B   [sim]", b.clone());
    t.push_row("Variant B [paper]", PAPER_EXTRA_B.to_vec());
    println!("{}", t.render());
    println!("CSV:\n{}", t.to_csv());

    // Qualitative checks from the paper's discussion.
    let linear_a = (1..13).all(|n| {
        let per_cut = a[1];
        (a[n] - per_cut * n as f64).abs() < 0.15 * per_cut * n as f64 + 1e-9
    });
    let b_doubles_a = (1..14).all(|n| (1.7..2.3).contains(&(b[n] / a[n])));
    println!("check: variant A grows ~linearly in islands .... {linear_a}");
    println!("check: variant B ≈ 2 × variant A ............... {b_doubles_a}");
    println!(
        "note: our 17-stage kernel formulation yields {:.2}%/cut (paper: 0.247%/cut);\n\
         the constant depends on per-stage halo depths, the linear shape and the\n\
         A:B = 1:2 ratio are formulation-independent.",
        a[1]
    );
}
