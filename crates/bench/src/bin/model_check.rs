//! **E10 — analytic model vs discrete-event engine**: the paper's §6
//! plans "performance models ... for modeling and management of the
//! correlation between computation and communication costs". This
//! binary prints the closed-form model's per-step predictions
//! (`perf_model::predict`) next to the engine's, across the processor
//! sweep.
//!
//! Run: `cargo run --release -p islands-bench --bin model_check`

use islands_bench::{measure, sim_config, CPU_COUNTS};
use islands_core::Workload;
use numa_sim::UvParams;
use perf_model::{predict, relative_error, Table};

fn main() {
    let w = Workload::paper();
    let steps = w.steps as f64;
    let cfg = sim_config();

    let mut t = Table::new(
        "Closed-form model vs discrete-event engine, seconds per step",
        vec![
            "orig model".into(),
            "orig engine".into(),
            "fused model".into(),
            "fused engine".into(),
            "isl model".into(),
            "isl engine".into(),
        ],
    )
    .precision(4);
    let mut worst: f64 = 0.0;
    for &p in &[1usize, 2, 4, 8, 11, 14] {
        let machine = UvParams::uv2000(p).build();
        let m = predict(&machine, &w, &cfg);
        let e = measure(p, &w);
        let (eo, ef, ei) = (e.original / steps, e.fused / steps, e.islands / steps);
        worst = worst
            .max(relative_error(m.original, eo))
            .max(relative_error(m.fused, ef))
            .max(relative_error(m.islands, ei));
        t.push_row(
            format!("P = {p}"),
            vec![m.original, eo, m.fused, ef, m.islands, ei],
        );
    }
    println!("{}", t.render());
    println!(
        "worst relative error across the sweep: {:.0} %",
        worst * 100.0
    );
    println!(
        "check: model within 40% of the engine everywhere ... {}",
        worst < 0.40
    );
    println!("\nJSON:\n{}", t.to_json());
    let _ = CPU_COUNTS;
}
