//! **E1 — Table 1**: execution times of 50 MPDATA time steps on the
//! 1024×512×64 grid for the original parallel version with serial vs
//! parallel first-touch initialization, and for the pure (3+1)D
//! decomposition, across 1..=14 processors of the (simulated) SGI
//! UV 2000.
//!
//! Run: `cargo run --release -p islands-bench --bin table1`

use islands_bench::{
    measure_sweep, sim_config, CPU_COUNTS, PAPER_FUSED, PAPER_ORIGINAL, PAPER_T1_ORIGINAL_SERIAL,
};
use islands_core::{estimate, plan_original, InitPolicy, Workload};
use numa_sim::UvParams;
use perf_model::Table;

fn main() {
    let w = Workload::paper();
    let rows = measure_sweep(&CPU_COUNTS, &w);
    // Extension row: interleaved placement (numactl --interleave), the
    // standard third policy the paper does not evaluate.
    let interleaved: Vec<f64> = CPU_COUNTS
        .iter()
        .map(|&p| {
            let machine = UvParams::uv2000(p).build();
            estimate(
                &machine,
                &plan_original(&machine, &w, InitPolicy::Interleaved),
                &w,
                &sim_config(),
            )
            .expect("simulates")
            .total_seconds
        })
        .collect();

    let mut t = Table::numbered_columns(
        "Table 1: execution times [s] of 50 MPDATA steps, grid 1024×512×64 (simulated UV 2000)",
        14,
    )
    .precision(1);
    t.push_row(
        "Original (serial init)   [sim]",
        rows.iter().map(|r| r.original_serial).collect(),
    );
    t.push_row(
        "Original (serial init) [paper]",
        PAPER_T1_ORIGINAL_SERIAL.to_vec(),
    );
    t.push_row(
        "Original (parallel FT)   [sim]",
        rows.iter().map(|r| r.original).collect(),
    );
    t.push_row("Original (parallel FT) [paper]", PAPER_ORIGINAL.to_vec());
    t.push_row(
        "(3+1)D                   [sim]",
        rows.iter().map(|r| r.fused).collect(),
    );
    t.push_row("(3+1)D                 [paper]", PAPER_FUSED.to_vec());
    t.push_row("Original (interleaved)  [sim+]", interleaved.clone());
    println!("{}", t.render());
    println!("CSV:\n{}", t.to_csv());

    // The qualitative claims of Table 1, checked programmatically.
    let serial_rises = rows
        .windows(2)
        .all(|w| w[1].original_serial > w[0].original_serial * 0.98);
    let fused_wins_only_small = rows[0].fused < rows[0].original
        && rows[1].fused < rows[1].original
        && rows[4..].iter().all(|r| r.fused > r.original);
    let interleave_between = rows
        .iter()
        .zip(&interleaved)
        .skip(1)
        .all(|(r, &il)| il > r.original * 0.95 && il < r.original_serial * 1.05);
    println!("check: serial-init times rise with P ............ {serial_rises}");
    println!("check: (3+1)D beats Original only for P ≤ ~3 .... {fused_wins_only_small}");
    println!(
        "check: interleaved sits between parallel/serial . {interleave_between} (extension row)"
    );
}
