//! **E11 — cache-model check of the (3+1)D premise** (§3.2): run the
//! exact address streams of the per-stage schedule and the wavefront
//! blocked schedule through a set-associative LRU cache and compare the
//! measured miss traffic against the analytic traffic model. The study
//! runs on a geometrically scaled-down configuration (domain and cache
//! shrunk together) because the full 1024×512×64 trace is ~3 × 10⁹
//! accesses; the working-set : cache ratios are preserved.
//!
//! Run: `cargo run --release -p islands-bench --bin cache_study`

use mpdata::mpdata_graph;
use numa_sim::CacheConfig;
use perf_model::{
    blocked_schedule_stats, compulsory_miss_bytes, fused_traffic_ideal, original_traffic,
    per_stage_schedule_stats, Table,
};
use stencil_engine::{BlockPlanner, Region3};

fn main() {
    let (graph, _) = mpdata_graph();
    // Scaled setup: domain 1/16 of the paper's per-axis footprint in i/j,
    // cache 1/16 of the 16 MiB L3 — same ratio of sweep size to cache.
    let domain = Region3::of_extent(96, 48, 16);
    let cache = CacheConfig {
        capacity_bytes: 1 << 20,
        ways: 16,
        line_bytes: 64,
    };

    let per_stage = per_stage_schedule_stats(&graph, domain, cache);
    let blocking = BlockPlanner::new(cache.capacity_bytes / 2)
        .min_depth(2)
        .plan_wavefront(&graph, domain, domain)
        .expect("blocks fit");
    let blocked = blocked_schedule_stats(&graph, domain, &blocking, cache);
    let floor = compulsory_miss_bytes(&graph, domain, cache.line_bytes);

    let mut t = Table::new(
        format!(
            "Measured cache-miss traffic, domain {}×{}×{}, {} KiB L3-like cache",
            domain.i.len(),
            domain.j.len(),
            domain.k.len(),
            cache.capacity_bytes / 1024
        ),
        vec!["miss bytes [MB]".into(), "miss ratio [%]".into()],
    )
    .precision(2);
    t.push_row(
        "per-stage schedule (Original)",
        vec![
            per_stage.miss_bytes(64) / 1e6,
            100.0 * per_stage.miss_ratio(),
        ],
    );
    t.push_row(
        "wavefront blocks ((3+1)D)",
        vec![blocked.miss_bytes(64) / 1e6, 100.0 * blocked.miss_ratio()],
    );
    t.push_row("compulsory floor", vec![floor / 1e6, f64::NAN]);
    println!("{}", t.render());

    let measured_ratio = per_stage.miss_bytes(64) / blocked.miss_bytes(64);
    // Analytic model at the same scaled domain for comparison.
    let analytic_ratio = original_traffic(&graph, domain, 1).total_bytes
        / fused_traffic_ideal(&graph, domain, 1).total_bytes;
    println!("measured traffic reduction : {measured_ratio:.2}×");
    println!("analytic model's reduction : {analytic_ratio:.2}× (ideal; write-allocate counted)");
    println!(
        "blocked misses vs compulsory floor: {:.2}×",
        blocked.miss_bytes(64) / floor
    );
    println!(
        "\ncheck: blocked schedule within 2× of the floor .... {}",
        blocked.miss_bytes(64) < 2.0 * floor
    );
    println!(
        "check: measured reduction ≥ 2.5× ................... {}",
        measured_ratio >= 2.5
    );
    println!(
        "\nreading: the cache model confirms the (3+1)D premise — the blocked\n\
         schedule's misses are near-compulsory (intermediates never leave the\n\
         cache), while the per-stage schedule re-streams every array every sweep.\n\
         This grounds the traffic claims of §3.2 in a measured mechanism."
    );
}
