//! **E9 — scale-out study** (paper §6 future work: "extending the
//! scalability of our approach for much larger system configurations"):
//! simulate 1–4 IRUs (14–56 sockets, 112–448 cores) joined by a
//! NUMAlink spine, under strong scaling (the paper grid) and weak
//! scaling (grid grows with the machine).
//!
//! Run: `cargo run --release -p islands-bench --bin scaleout`

use islands_bench::sim_config;
use islands_core::{estimate, plan_islands, Variant, Workload};
use numa_sim::ScaleOutParams;
use perf_model::{sustained_gflops, Table};
use stencil_engine::Region3;

fn main() {
    let cfg = sim_config();
    let irus_list = [1usize, 2, 3, 4];

    println!("## Strong scaling: paper grid 1024×512×64, 50 steps");
    let mut t = Table::new(
        "Strong scaling across IRUs",
        vec![
            "sockets".into(),
            "islands [s]".into(),
            "isl Gflop/s".into(),
            "isl eff [%]".into(),
        ],
    )
    .precision(2);
    let w = Workload::paper();
    let mut t1 = None;
    for &irus in &irus_list {
        let machine = ScaleOutParams::uv2000(irus, 14).build();
        let p = irus * 14;
        let islands = estimate(
            &machine,
            &plan_islands(&machine, &w, Variant::A).expect("plans"),
            &w,
            &cfg,
        )
        .expect("simulates")
        .total_seconds;
        let t_one = *t1.get_or_insert(islands * p as f64); // back out T1·P normalization
        let eff = 100.0 * t_one / (p as f64 * islands);
        t.push_row(
            format!("{p}"),
            vec![
                p as f64,
                islands,
                sustained_gflops(w.domain, w.steps, islands),
                eff,
            ],
        );
    }
    println!("{}", t.render());

    println!("## Weak scaling: grid length grows with the machine (1024·irus ×512×64)");
    let mut t = Table::new(
        "Weak scaling across IRUs",
        vec![
            "sockets".into(),
            "islands [s]".into(),
            "isl Gflop/s".into(),
            "weak eff [%]".into(),
        ],
    )
    .precision(2);
    let mut base = None;
    for &irus in &irus_list {
        let machine = ScaleOutParams::uv2000(irus, 14).build();
        let p = irus * 14;
        let w = Workload::new(Region3::of_extent(1024 * irus, 512, 64), 50);
        let islands = estimate(
            &machine,
            &plan_islands(&machine, &w, Variant::A).expect("plans"),
            &w,
            &cfg,
        )
        .expect("simulates")
        .total_seconds;
        let b = *base.get_or_insert(islands);
        t.push_row(
            format!("{p}"),
            vec![
                p as f64,
                islands,
                sustained_gflops(w.domain, w.steps, islands),
                100.0 * b / islands,
            ],
        );
    }
    println!("{}", t.render());
    println!(
        "reading: islands keep scaling across IRUs because they never touch the\n\
         spine within a time step — only the once-per-step synchronization and the\n\
         tiny boundary input halos cross it. This is the property that makes the\n\
         paper's MPI extension plausible, quantified before writing a line of MPI."
    );
}
