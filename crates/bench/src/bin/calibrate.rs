//! Calibration probe: simulate the full paper workload at a few
//! processor counts and print our numbers next to the paper's. Not one
//! of the published tables — a tool for tuning the machine model
//! (`UvParams` and `SimConfig`).

use islands_bench::{
    measure, sim_config, PAPER_FUSED, PAPER_ISLANDS, PAPER_ORIGINAL, PAPER_T1_ORIGINAL_SERIAL,
};
use islands_core::{estimate, plan_fused, InitPolicy, Workload};
use numa_sim::UvParams;

fn breakdown(p: usize, w: &Workload) {
    let machine = UvParams::uv2000(p).build();
    let ts = plan_fused(&machine, w, InitPolicy::ParallelFirstTouch).unwrap();
    let est = estimate(&machine, &ts, w, &sim_config()).unwrap();
    let r = &est.report;
    let cores = machine.core_count() as f64;
    println!(
        "fused P={p}: step {:.1} ms | per-core avg: compute {:.1} ms, transfer {:.1} ms, \
         barrier-wait {:.1} ms | episodes {} | dram {:.0} MB (remote {:.0}) | cache remote {:.1} MB",
        est.step_seconds * 1e3,
        r.total_compute() / cores * 1e3,
        r.total_transfer() / cores * 1e3,
        r.total_barrier_wait() / cores * 1e3,
        r.barrier_episodes,
        (r.mem_local_bytes + r.mem_remote_bytes) / 1e6,
        r.mem_remote_bytes / 1e6,
        r.cache_remote_bytes / 1e6,
    );
}

fn main() {
    let w = Workload::paper();
    if std::env::args().nth(1).as_deref() == Some("breakdown") {
        for p in [1usize, 2, 4, 14] {
            breakdown(p, &w);
        }
        return;
    }
    let ps: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("processor count"))
        .collect();
    let ps = if ps.is_empty() {
        vec![1, 2, 4, 8, 14]
    } else {
        ps
    };
    println!(
        "{:>3} | {:>18} | {:>18} | {:>18} | {:>18}",
        "P", "orig-serial", "orig-parallel", "(3+1)D", "islands"
    );
    println!(
        "{:>3} | {:>8} {:>9} | {:>8} {:>9} | {:>8} {:>9} | {:>8} {:>9}",
        "", "sim", "paper", "sim", "paper", "sim", "paper", "sim", "paper"
    );
    for &p in &ps {
        let t = measure(p, &w);
        println!(
            "{:>3} | {:>8.2} {:>9.2} | {:>8.2} {:>9.2} | {:>8.2} {:>9.2} | {:>8.2} {:>9.2}",
            p,
            t.original_serial,
            PAPER_T1_ORIGINAL_SERIAL[p - 1],
            t.original,
            PAPER_ORIGINAL[p - 1],
            t.fused,
            PAPER_FUSED[p - 1],
            t.islands,
            PAPER_ISLANDS[p - 1],
        );
    }
}
