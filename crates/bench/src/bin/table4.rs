//! **E4 — Table 4**: sustained performance [Gflop/s] of the
//! islands-of-cores approach, utilization rate [%] of the theoretical
//! peak, and parallel efficiency as percentage of linear scaling.
//!
//! Run: `cargo run --release -p islands-bench --bin table4`

use islands_bench::{measure_sweep, CPU_COUNTS, PAPER_SUSTAINED};
use islands_core::Workload;
use numa_sim::UvParams;
use perf_model::{parallel_efficiency_percent, sustained_gflops, utilization_percent, Table};

fn main() {
    let w = Workload::paper();
    let rows = measure_sweep(&CPU_COUNTS, &w);

    let peaks: Vec<f64> = CPU_COUNTS
        .iter()
        .map(|&p| UvParams::uv2000(p).peak_gflops())
        .collect();
    let sustained: Vec<f64> = rows
        .iter()
        .map(|r| sustained_gflops(w.domain, w.steps, r.islands))
        .collect();
    let util: Vec<f64> = sustained
        .iter()
        .zip(&peaks)
        .map(|(&s, &p)| utilization_percent(s, p))
        .collect();
    let t1 = rows[0].islands;
    let eff: Vec<f64> = rows
        .iter()
        .map(|r| parallel_efficiency_percent(t1, r.islands, r.p))
        .collect();

    let mut t = Table::numbered_columns(
        "Table 4: islands-of-cores sustained performance on the simulated UV 2000",
        14,
    )
    .precision(1);
    t.push_row("Theoretical peak [Gflop/s]", peaks.clone());
    t.push_row("Sustained [Gflop/s]  [sim]", sustained.clone());
    // Paper omits P = 13; align its 13 values on columns 1..12 and 14.
    let mut paper_sus = Vec::with_capacity(14);
    paper_sus.extend_from_slice(&PAPER_SUSTAINED[..12]);
    paper_sus.push(f64::NAN); // P = 13 not reported
    paper_sus.push(PAPER_SUSTAINED[12]);
    t.push_row("Sustained [Gflop/s][paper]", paper_sus);
    t.push_row("Utilization [%]      [sim]", util.clone());
    t.push_row("Parallel eff. [%]    [sim]", eff.clone());
    println!("{}", t.render());
    println!("CSV:\n{}", t.to_csv());

    println!(
        "check: sustained grows monotonically ........... {}",
        sustained.windows(2).all(|w| w[1] > w[0])
    );
    println!(
        "check: P=14 sustained within 2x of paper's 390 .. {} ({:.0} Gflop/s)",
        (195.0..780.0).contains(&sustained[13]),
        sustained[13]
    );
    println!(
        "check: utilization 25..45% across P ............. {}",
        util.iter().all(|u| (20.0..50.0).contains(u))
    );
    println!(
        "note: paper reports ≈30% utilization and 77-97% efficiency; our simulated\n\
         islands lose less to NUMA effects than the real machine, so utilization\n\
         ({:.0}..{:.0}%) and efficiency ({:.0}..{:.0}%) sit somewhat higher — see EXPERIMENTS.md.",
        util.iter().cloned().fold(f64::INFINITY, f64::min),
        util.iter().cloned().fold(0.0_f64, f64::max),
        eff.iter().cloned().fold(f64::INFINITY, f64::min),
        eff.iter().cloned().fold(0.0_f64, f64::max),
    );
}
