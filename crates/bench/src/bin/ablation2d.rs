//! **A1 — 2-D island grids** (the paper's future work, §4.2/§6): at a
//! fixed island count, compare the 1-D variants against 2-D island
//! grids by their extra-element cost, and simulate the promising
//! candidates at P = 14.
//!
//! Run: `cargo run --release -p islands-bench --bin ablation2d`

use islands_bench::sim_config;
use islands_core::{
    estimate, extra_elements, plan_islands_partitioned, IslandLayout, Partition, Variant, Workload,
};
use mpdata::mpdata_graph;
use numa_sim::UvParams;
use perf_model::Table;

fn main() {
    let w = Workload::paper();
    let (graph, _) = mpdata_graph();

    // Extra elements of every factorization of 14 islands (and a few
    // smaller counts for context).
    println!("## Extra elements [%] by island grid shape (domain 1024×512×64)");
    for (pi, pj) in [
        (14, 1),
        (7, 2),
        (2, 7),
        (1, 14),
        (4, 2),
        (2, 4),
        (8, 1),
        (1, 8),
    ] {
        let part = Partition::grid2d(w.domain, pi, pj).unwrap();
        let e = extra_elements(&graph, &part);
        println!(
            "  {pi:>2} × {pj:<2} ({} islands): {:>6.3} %",
            pi * pj,
            e.percent()
        );
    }
    println!();

    // Simulate 1D-A, 1D-B and the 7×2 grid at P = 14.
    let machine = UvParams::uv2000(14).build();
    let layout = IslandLayout::per_socket(&machine);
    let cfg = sim_config();
    let mut t = Table::new(
        "Simulated islands time at P = 14 by partition shape",
        vec!["time [s]".into(), "extra [%]".into()],
    )
    .precision(3);
    for (label, part) in [
        (
            "1D variant A (14×1)",
            Partition::grid2d(w.domain, 14, 1).unwrap(),
        ),
        (
            "1D variant B (1×14)",
            Partition::grid2d(w.domain, 1, 14).unwrap(),
        ),
        ("2D grid 7×2", Partition::grid2d(w.domain, 7, 2).unwrap()),
        ("2D grid 2×7", Partition::grid2d(w.domain, 2, 7).unwrap()),
    ] {
        let ts = plan_islands_partitioned(&machine, &w, &part, &layout).expect("plans");
        let secs = estimate(&machine, &ts, &w, &cfg)
            .expect("simulates")
            .total_seconds;
        let e = extra_elements(&graph, &part).percent();
        t.push_row(label, vec![secs, e]);
    }
    println!("{}", t.render());
    println!(
        "note: with the MPDATA grid twice as long in i as in j, 1D-A already has the\n\
         smallest cut area; 2D grids pay cuts in both dimensions but shorten each —\n\
         the paper defers this trade-off to future work, which this ablation maps out."
    );
    let _ = Variant::A; // referenced for doc-symmetry with variants.rs
}
