//! **E6 — §5 variant comparison**: the paper ran both 1-D mappings and
//! reports that variant A (first dimension) "gives better results for
//! all the benchmarks" as a consequence of its smaller number of extra
//! elements. We simulate both variants across P.
//!
//! Run: `cargo run --release -p islands-bench --bin variants`

use islands_bench::{sim_config, CPU_COUNTS};
use islands_core::{estimate, extra_elements, plan_islands, Partition, Variant, Workload};
use mpdata::mpdata_graph;
use numa_sim::UvParams;
use perf_model::Table;

fn main() {
    let w = Workload::paper();
    let (graph, _) = mpdata_graph();
    let cfg = sim_config();

    let mut time_a = Vec::new();
    let mut time_b = Vec::new();
    let mut extra_a = Vec::new();
    let mut extra_b = Vec::new();
    for &p in &CPU_COUNTS {
        let machine = UvParams::uv2000(p).build();
        for (variant, times, extras) in [
            (Variant::A, &mut time_a, &mut extra_a),
            (Variant::B, &mut time_b, &mut extra_b),
        ] {
            let ts = plan_islands(&machine, &w, variant).expect("plans");
            times.push(
                estimate(&machine, &ts, &w, &cfg)
                    .expect("simulates")
                    .total_seconds,
            );
            extras.push(
                extra_elements(&graph, &Partition::one_d(w.domain, variant, p).unwrap()).percent(),
            );
        }
    }

    let mut t = Table::numbered_columns(
        "Islands-of-cores: variant A (i-cut) vs variant B (j-cut), simulated UV 2000",
        14,
    );
    t.push_row("time A [s]", time_a.clone());
    t.push_row("time B [s]", time_b.clone());
    t.push_row("extra A [%]", extra_a);
    t.push_row("extra B [%]", extra_b);
    println!("{}", t.render());

    let a_never_worse = time_a.iter().zip(&time_b).all(|(a, b)| *a <= b * 1.02);
    println!("check: variant A ≤ variant B at every P (±2%) ... {a_never_worse}");
}
