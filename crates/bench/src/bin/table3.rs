//! **E3 — Table 3 and Fig. 2**: execution times of the original
//! version, pure (3+1)D decomposition and islands-of-cores approach for
//! P = 1..=14, with the partial (S_pr) and overall (S_ov) speedups.
//! The CSV blocks at the end are the two series of Fig. 2(a) and the
//! two of Fig. 2(b).
//!
//! Run: `cargo run --release -p islands-bench --bin table3`

use islands_bench::{measure_sweep, CPU_COUNTS, PAPER_FUSED, PAPER_ISLANDS, PAPER_ORIGINAL};
use islands_core::Workload;
use perf_model::{overall_speedup, partial_speedup, AsciiPlot, Table};

fn main() {
    let w = Workload::paper();
    let rows = measure_sweep(&CPU_COUNTS, &w);

    let spr: Vec<f64> = rows
        .iter()
        .map(|r| partial_speedup(r.fused, r.islands))
        .collect();
    let sov: Vec<f64> = rows
        .iter()
        .map(|r| overall_speedup(r.original, r.islands))
        .collect();

    let mut t = Table::numbered_columns(
        "Table 3: execution times [s] and speedups (simulated UV 2000, 50 steps, 1024×512×64)",
        14,
    );
    t.push_row(
        "Original           [sim]",
        rows.iter().map(|r| r.original).collect(),
    );
    t.push_row("Original         [paper]", PAPER_ORIGINAL.to_vec());
    t.push_row(
        "(3+1)D             [sim]",
        rows.iter().map(|r| r.fused).collect(),
    );
    t.push_row("(3+1)D           [paper]", PAPER_FUSED.to_vec());
    t.push_row(
        "Islands of cores   [sim]",
        rows.iter().map(|r| r.islands).collect(),
    );
    t.push_row("Islands of cores [paper]", PAPER_ISLANDS.to_vec());
    t.push_row("S_pr               [sim]", spr.clone());
    t.push_row(
        "S_pr             [paper]",
        PAPER_FUSED
            .iter()
            .zip(PAPER_ISLANDS)
            .map(|(f, i)| f / i)
            .collect(),
    );
    t.push_row("S_ov               [sim]", sov.clone());
    t.push_row(
        "S_ov             [paper]",
        PAPER_ORIGINAL
            .iter()
            .zip(PAPER_ISLANDS)
            .map(|(o, i)| o / i)
            .collect(),
    );
    println!("{}", t.render());

    // Fig. 2(a): execution time series; Fig. 2(b): speedup series.
    let mut fig2a = Table::numbered_columns("Fig 2a series: execution time [s] vs P", 14);
    fig2a.push_row("Original", rows.iter().map(|r| r.original).collect());
    fig2a.push_row("(3+1)D", rows.iter().map(|r| r.fused).collect());
    fig2a.push_row("Islands", rows.iter().map(|r| r.islands).collect());
    let mut fig2b = Table::numbered_columns("Fig 2b series: speedups vs P", 14);
    fig2b.push_row("S_pr", spr.clone());
    fig2b.push_row("S_ov", sov.clone());
    println!("CSV (fig2a):\n{}", fig2a.to_csv());
    println!("CSV (fig2b):\n{}", fig2b.to_csv());

    let ps: Vec<f64> = (1..=14).map(|p| p as f64).collect();
    let mut plot_a = AsciiPlot::new(
        "Fig 2a: execution time [s] vs P (o = Original, f = (3+1)D, i = Islands; log y)",
        56,
        16,
    )
    .log_y();
    plot_a.series(
        'o',
        &ps,
        &rows.iter().map(|r| r.original).collect::<Vec<_>>(),
    );
    plot_a.series('f', &ps, &rows.iter().map(|r| r.fused).collect::<Vec<_>>());
    plot_a.series(
        'i',
        &ps,
        &rows.iter().map(|r| r.islands).collect::<Vec<_>>(),
    );
    println!("{}", plot_a.render());
    let mut plot_b = AsciiPlot::new("Fig 2b: speedups vs P (p = S_pr, v = S_ov)", 56, 14);
    plot_b.series('p', &ps, &spr);
    plot_b.series('v', &ps, &sov);
    println!("{}", plot_b.render());

    // The paper's headline claims.
    println!(
        "check: islands fastest at every P ............... {}",
        rows.iter()
            .all(|r| r.islands <= r.fused * 1.001 && r.islands <= r.original * 1.001)
    );
    println!(
        "check: S_pr grows monotonically with P .......... {}",
        spr.windows(2).all(|w| w[1] >= w[0] * 0.95)
    );
    println!(
        "check: S_pr(14) > 10 ............................. {} (S_pr = {:.1}, paper 10.3)",
        spr[13] > 10.0,
        spr[13]
    );
    println!(
        "check: S_ov roughly flat (2.4..3.6) .............. {} (range {:.2}..{:.2}, paper 2.5..3.0)",
        sov.iter().all(|s| (2.4..3.6).contains(s)),
        sov.iter().cloned().fold(f64::INFINITY, f64::min),
        sov.iter().cloned().fold(0.0_f64, f64::max)
    );
}
