//! # islands-bench
//!
//! The benchmark harness: one binary per table/figure of the paper (see
//! `DESIGN.md` §5 for the experiment index), plus the std-only
//! microbenches under `benches/` (see [`microbench`]).
//!
//! This library holds what the binaries share: the paper's published
//! numbers (for side-by-side printing), the measurement driver that
//! plans and simulates each strategy on the UV 2000 model, and small
//! formatting helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use islands_trace::json;

pub mod microbench;

use islands_core::{
    estimate, plan_fused, plan_islands, plan_original, InitPolicy, Variant, Workload,
};
use numa_sim::{SimConfig, UvParams};

/// The processor counts of the paper's sweeps.
pub const CPU_COUNTS: [usize; 14] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14];

/// Paper Table 1 row "Original" (serial first touch), seconds.
pub const PAPER_T1_ORIGINAL_SERIAL: [f64; 14] = [
    30.4, 44.5, 58.2, 61.5, 64.3, 70.1, 71.6, 73.7, 75.4, 77.6, 78.4, 78.2, 80.6, 82.2,
];

/// Paper Table 1/3 row "Original" (parallel first touch), seconds.
#[allow(clippy::approx_constant)] // the measured 3.14 s is not π
pub const PAPER_ORIGINAL: [f64; 14] = [
    30.40, 15.40, 10.50, 7.87, 6.55, 5.61, 4.95, 4.27, 4.01, 3.58, 3.31, 3.14, 2.95, 2.81,
];

/// Paper Table 1/3 row "(3+1)D", seconds.
pub const PAPER_FUSED: [f64; 14] = [
    9.00, 8.20, 7.38, 7.98, 7.06, 7.22, 7.26, 7.69, 9.11, 9.48, 10.20, 10.10, 10.30, 10.40,
];

/// Paper Table 3 row "Islands of cores", seconds.
pub const PAPER_ISLANDS: [f64; 14] = [
    9.00, 5.62, 4.17, 2.93, 2.34, 1.97, 1.72, 1.49, 1.36, 1.25, 1.12, 1.06, 1.05, 1.01,
];

/// Paper Table 2 row "Variant A", percent extra elements.
pub const PAPER_EXTRA_A: [f64; 14] = [
    0.00, 0.25, 0.49, 0.74, 0.99, 1.24, 1.48, 1.73, 1.98, 2.22, 2.47, 2.72, 2.96, 3.21,
];

/// Paper Table 2 row "Variant B", percent extra elements.
pub const PAPER_EXTRA_B: [f64; 14] = [
    0.00, 0.49, 0.99, 1.48, 1.98, 2.47, 2.96, 3.46, 3.95, 4.45, 4.94, 5.43, 5.93, 6.42,
];

/// Paper Table 4 row "Sustained performance" (Gflop/s); note the paper
/// omits the P = 13 column.
pub const PAPER_SUSTAINED: [f64; 13] = [
    42.7, 68.5, 92.5, 131.9, 165.5, 197.0, 226.1, 261.4, 287.0, 325.9, 349.8, 370.3, 390.1,
];

/// Measured times of the three strategies at one processor count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StrategyTimes {
    /// Processor (socket) count.
    pub p: usize,
    /// Original version, serial first touch.
    pub original_serial: f64,
    /// Original version, parallel first touch.
    pub original: f64,
    /// Pure (3+1)D decomposition.
    pub fused: f64,
    /// Islands-of-cores, variant A.
    pub islands: f64,
}

/// The simulator configuration used by every experiment (one place to
/// calibrate).
pub fn sim_config() -> SimConfig {
    SimConfig::default()
}

/// Runs all four strategies for `p` sockets of the UV 2000 on the given
/// workload.
///
/// # Panics
///
/// Panics if planning or simulation fails — these are programming
/// errors for the paper workload.
pub fn measure(p: usize, w: &Workload) -> StrategyTimes {
    let machine = UvParams::uv2000(p).build();
    let cfg = sim_config();
    let original_serial = estimate(
        &machine,
        &plan_original(&machine, w, InitPolicy::SerialFirstTouch),
        w,
        &cfg,
    )
    .expect("original/serial simulates")
    .total_seconds;
    let original = estimate(
        &machine,
        &plan_original(&machine, w, InitPolicy::ParallelFirstTouch),
        w,
        &cfg,
    )
    .expect("original/parallel simulates")
    .total_seconds;
    let fused = estimate(
        &machine,
        &plan_fused(&machine, w, InitPolicy::ParallelFirstTouch).expect("fused plans"),
        w,
        &cfg,
    )
    .expect("fused simulates")
    .total_seconds;
    let islands = estimate(
        &machine,
        &plan_islands(&machine, w, Variant::A).expect("islands plans"),
        w,
        &cfg,
    )
    .expect("islands simulates")
    .total_seconds;
    StrategyTimes {
        p,
        original_serial,
        original,
        fused,
        islands,
    }
}

/// Runs [`measure`] for every processor count in `ps`.
pub fn measure_sweep(ps: &[usize], w: &Workload) -> Vec<StrategyTimes> {
    ps.iter().map(|&p| measure(p, w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_engine::Region3;

    #[test]
    fn measure_small_config_orders_strategies() {
        // A reduced workload keeps the unit test fast; orderings at
        // P = 4 must already match the paper: islands < original <
        // fused, and serial-init original worst.
        let w = Workload {
            domain: Region3::of_extent(128, 64, 16),
            steps: 5,
            cache_bytes: 1 << 20,
        };
        let t = measure(4, &w);
        assert!(t.islands < t.original, "{t:?}");
        assert!(t.original < t.original_serial, "{t:?}");
        assert!(t.islands < t.fused, "{t:?}");
    }

    #[test]
    fn paper_constants_are_consistent() {
        // S_pr at P=14 from the published rows ≈ 10.3.
        let spr = PAPER_FUSED[13] / PAPER_ISLANDS[13];
        assert!((10.2..10.4).contains(&spr));
        // Variant B ≈ 2 × variant A.
        for p in 1..14 {
            let ratio = PAPER_EXTRA_B[p] / PAPER_EXTRA_A[p];
            assert!((1.9..2.1).contains(&ratio), "p={p}: {ratio}");
        }
    }
}
