//! The background telemetry collector: periodically drains every
//! registered trace ring through the concurrent seqlock protocol and
//! folds the spans into a [`MetricsRegistry`] — while the run is hot.
//!
//! The collector owns a private cursor per ring (the `next` value each
//! [`crate::CollectStats`] returns), so it consumes each span at most
//! once and never disturbs the final quiescent drain, which reads the
//! full ring window independently. A [`crate::clear`] (new session)
//! bumps the ring generation; the collector detects that under the
//! ring-registry lock and resets its cursors.
//!
//! The pass loop is **allocation-free in steady state**: the ring and
//! cursor mirrors grow only when a new ring registers (once per worker
//! thread, during warm-up), spans fold straight into preallocated
//! registry counters/histograms, and the per-step wall-time tracker is
//! a fixed array. This is what lets the release zero-allocation pin
//! run with the collector live.

use crate::registry::MetricsRegistry;
use crate::{Ring, GENERATION, REGISTRY};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// In-flight steps tracked before their wall time is closed into the
/// step histogram. 16 comfortably covers fused epochs (k steps in
/// flight) plus collector lag.
const STEP_TRACK: usize = 16;

/// Fixed-size tracker turning per-span (step, start, end) sightings
/// into per-step wall durations. A step's duration is closed (recorded
/// into the registry's step histogram) when the tracker evicts it for
/// a newer step, or at collector shutdown.
struct StepTracker {
    /// `(step + 1, lo_ns, hi_ns)`; key 0 = empty slot.
    slots: [(u64, u64, u64); STEP_TRACK],
}

impl StepTracker {
    fn new() -> StepTracker {
        StepTracker {
            slots: [(0, 0, 0); STEP_TRACK],
        }
    }

    fn note(&mut self, reg: &MetricsRegistry, step: u32, start_ns: u64, end_ns: u64) {
        let key = step as u64 + 1;
        if let Some(slot) = self.slots.iter_mut().find(|s| s.0 == key) {
            slot.1 = slot.1.min(start_ns);
            slot.2 = slot.2.max(end_ns);
            return;
        }
        if let Some(slot) = self.slots.iter_mut().find(|s| s.0 == 0) {
            *slot = (key, start_ns, end_ns);
            return;
        }
        // Evict the oldest step: its wall time is as closed as it gets.
        let oldest = self
            .slots
            .iter_mut()
            .min_by_key(|s| s.0)
            .expect("tracker has slots");
        reg.step_ns.record(oldest.2.saturating_sub(oldest.1));
        *oldest = (key, start_ns, end_ns);
    }

    fn flush(&mut self, reg: &MetricsRegistry) {
        for slot in self.slots.iter_mut().filter(|s| s.0 != 0) {
            reg.step_ns.record(slot.2.saturating_sub(slot.1));
            *slot = (0, 0, 0);
        }
    }
}

struct CollectorState {
    generation: u64,
    rings: Vec<Arc<Ring>>,
    cursors: Vec<u64>,
    steps: StepTracker,
}

impl CollectorState {
    fn new() -> CollectorState {
        CollectorState {
            generation: 0,
            rings: Vec::new(),
            cursors: Vec::new(),
            steps: StepTracker::new(),
        }
    }

    /// One collect pass over every registered ring.
    fn pass(&mut self, reg: &MetricsRegistry) {
        {
            let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
            // ordering: Relaxed — read under the ring-registry lock,
            // which `clear` also holds while bumping; the lock is the
            // synchronization edge, the load just carries the value.
            let generation = GENERATION.load(Ordering::Relaxed);
            if generation != self.generation {
                self.generation = generation;
                self.rings.clear();
                self.cursors.clear();
            }
            // Mirror newly registered rings (the registry only grows
            // within a generation). This is the only allocation the
            // pass loop can perform, and only when a new worker thread
            // appears.
            for ring in registry.iter().skip(self.rings.len()) {
                self.rings.push(Arc::clone(ring));
                self.cursors.push(0);
            }
        }
        // The live step gauge: replays tag a step (`set_step`) before
        // recording its first span, so this leads the event-derived
        // gauge by up to one collect interval.
        reg.note_step(crate::live_step().min(u64::from(u32::MAX)) as u32);
        let steps = &mut self.steps;
        for (ring, cursor) in self.rings.iter().zip(self.cursors.iter_mut()) {
            let stats = ring.collect(*cursor, &mut |t| {
                reg.absorb(&t);
                if t.ev.island != crate::NO_ISLAND {
                    steps.note(reg, t.ev.step, t.ev.start_ns, t.ev.end_ns());
                }
            });
            *cursor = stats.next;
            reg.add_dropped(stats.overwritten);
            reg.add_unpublished(stats.unpublished);
        }
    }
}

/// Handle to the background collector thread. Stopping (explicitly or
/// on drop) performs one final pass and flushes the step tracker, so
/// every span recorded before the stop is folded.
#[derive(Debug)]
pub struct Collector {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Collector {
    /// Spawns the collector, draining every ring into `registry` once
    /// per `interval`.
    pub fn start(registry: Arc<MetricsRegistry>, interval: Duration) -> Collector {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("islands-telemetry".into())
            .spawn(move || {
                let mut state = CollectorState::new();
                loop {
                    // ordering: Relaxed — advisory shutdown flag; the
                    // final pass below runs after observing it, and
                    // `stop`'s join is the real completion edge.
                    let done = flag.load(Ordering::Relaxed);
                    state.pass(&registry);
                    if done {
                        break;
                    }
                    thread::park_timeout(interval);
                }
                state.steps.flush(&registry);
            })
            .expect("spawn telemetry collector thread");
        Collector {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread, waits for its final pass, and joins it.
    /// Idempotent.
    pub fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            // ordering: Relaxed — advisory flag (see the loop); the
            // join below is the synchronization point.
            self.stop.store(true, Ordering::Relaxed);
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_tracker_closes_evicted_and_flushed_steps() {
        let reg = MetricsRegistry::new(1);
        let mut tracker = StepTracker::new();
        // Fill every slot, then one more step evicts the oldest.
        for step in 0..STEP_TRACK as u32 {
            tracker.note(&reg, step, step as u64 * 100, step as u64 * 100 + 40);
            tracker.note(&reg, step, step as u64 * 100 + 10, step as u64 * 100 + 60);
        }
        assert_eq!(reg.step_ns.snapshot().count, 0);
        tracker.note(&reg, STEP_TRACK as u32, 99_000, 99_010);
        // Step 0 evicted: wall = [0, 60].
        let s = reg.step_ns.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 60);
        tracker.flush(&reg);
        assert_eq!(reg.step_ns.snapshot().count as usize, STEP_TRACK + 1);
        // Flush is idempotent.
        tracker.flush(&reg);
        assert_eq!(reg.step_ns.snapshot().count as usize, STEP_TRACK + 1);
    }
}
