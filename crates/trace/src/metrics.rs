//! Aggregation of drained trace events into per-step, per-island
//! phase metrics.
//!
//! This is the report the paper's Table 1 / Figs. 4–6 style analysis
//! needs: for every time step and island, how much worker time went to
//! kernel sweeps, team vs. global barrier waiting (split into spin /
//! yield / park), the serial buffer swap, and halo traffic — plus the
//! computed and redundant cell counts that the static overlap analysis
//! in `islands-core` predicts and `islands-analysis` cross-checks.

use crate::json::Json;
use crate::{Drained, SpanKind, NO_ISLAND};

/// Phase totals for one island within one time step (or across a whole
/// run when produced by [`RunMetrics::totals`]). All `*_ns` fields are
/// *summed worker time*: an island of 4 ranks each waiting 1 µs shows
/// 4 µs of barrier time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IslandMetrics {
    /// Island (team) index.
    pub island: u32,
    /// Distinct ranks that recorded events for this island.
    pub workers: u32,
    /// Kernel sweep time.
    pub kernel_ns: u64,
    /// Team-barrier wait time.
    pub team_barrier_ns: u64,
    /// Global-barrier wait time.
    pub global_barrier_ns: u64,
    /// Barrier wait spent busy-spinning (subset of the barrier times).
    pub spin_ns: u64,
    /// Barrier wait spent in `yield_now` (subset of the barrier times).
    pub yield_ns: u64,
    /// Barrier wait spent parked on a condvar (subset).
    pub park_ns: u64,
    /// Serial buffer swap + gap re-zero time.
    pub swap_ns: u64,
    /// Plan scratch refill/zero time.
    pub refill_ns: u64,
    /// Halo extract/blit time (exchange executor only).
    pub exchange_ns: u64,
    /// Cells computed by kernel sweeps.
    pub computed_cells: u64,
    /// Of those, cells outside the island's own partition — the
    /// redundant halo recomputation the islands approach trades
    /// against communication.
    pub redundant_cells: u64,
}

impl IslandMetrics {
    /// Total barrier wait (team + global).
    pub fn barrier_wait_ns(&self) -> u64 {
        self.team_barrier_ns + self.global_barrier_ns
    }

    /// Worker time accounted to *any* phase.
    pub fn accounted_ns(&self) -> u64 {
        self.kernel_ns + self.barrier_wait_ns() + self.swap_ns + self.refill_ns + self.exchange_ns
    }

    fn absorb(&mut self, kind: SpanKind, dur_ns: u64, aux: [u64; 3]) {
        match kind {
            SpanKind::Kernel => {
                self.kernel_ns += dur_ns;
                self.computed_cells += aux[0];
                self.redundant_cells += aux[1];
            }
            SpanKind::TeamBarrier => {
                self.team_barrier_ns += dur_ns;
                self.spin_ns += aux[0];
                self.yield_ns += aux[1];
                self.park_ns += aux[2];
            }
            SpanKind::GlobalBarrier => {
                self.global_barrier_ns += dur_ns;
                self.spin_ns += aux[0];
                self.yield_ns += aux[1];
                self.park_ns += aux[2];
            }
            SpanKind::Swap => self.swap_ns += dur_ns,
            SpanKind::Refill => self.refill_ns += dur_ns,
            SpanKind::Exchange => self.exchange_ns += dur_ns,
            SpanKind::Dispatch => {}
        }
    }

    fn merge(&mut self, other: &IslandMetrics) {
        self.workers = self.workers.max(other.workers);
        self.kernel_ns += other.kernel_ns;
        self.team_barrier_ns += other.team_barrier_ns;
        self.global_barrier_ns += other.global_barrier_ns;
        self.spin_ns += other.spin_ns;
        self.yield_ns += other.yield_ns;
        self.park_ns += other.park_ns;
        self.swap_ns += other.swap_ns;
        self.refill_ns += other.refill_ns;
        self.exchange_ns += other.exchange_ns;
        self.computed_cells += other.computed_cells;
        self.redundant_cells += other.redundant_cells;
    }
}

/// Phase breakdown of one time step across all islands.
#[derive(Clone, Debug, Default)]
pub struct StepMetrics {
    /// Time step index.
    pub step: u32,
    /// Wall-clock span of the step: earliest start to latest end over
    /// all non-dispatch events tagged with this step.
    pub wall_ns: u64,
    /// Per-island totals, sorted by island index.
    pub islands: Vec<IslandMetrics>,
    /// Islands that recorded events elsewhere in the run but none at
    /// all in this step (the [`NO_ISLAND`] bucket excluded). A silent
    /// island usually means a trace-ring wrap or an executor skipping
    /// an island; either way its worker time is invisible here, so the
    /// step's ratio metrics would be silently deflated if they
    /// pretended the island did not exist — [`StepMetrics::imbalance`]
    /// and [`StepMetrics::accounted_fraction`] refuse (return `None`)
    /// instead.
    pub silent_islands: Vec<u32>,
}

impl StepMetrics {
    /// Kernel-time imbalance across islands: slowest / fastest island
    /// kernel time. 1.0 means perfectly balanced; `None` with fewer
    /// than two islands, a zero-kernel island, or any silent island
    /// (its kernel time is unknown, not zero).
    pub fn imbalance(&self) -> Option<f64> {
        if !self.silent_islands.is_empty() {
            return None;
        }
        let real: Vec<u64> = self
            .islands
            .iter()
            .filter(|m| m.island != NO_ISLAND)
            .map(|m| m.kernel_ns)
            .collect();
        if real.len() < 2 {
            return None;
        }
        let max = *real.iter().max().expect("non-empty");
        let min = *real.iter().min().expect("non-empty");
        if min == 0 {
            return None;
        }
        Some(max as f64 / min as f64)
    }

    /// Fraction of total worker wall time this step that the recorded
    /// phases account for: `Σ accounted / (wall × Σ workers)`. Close
    /// to 1.0 means the instrumentation explains the step. `None` when
    /// nothing was recorded — or when an island that exists elsewhere
    /// in the run recorded nothing this step, which would deflate the
    /// worker denominator and inflate the fraction.
    pub fn accounted_fraction(&self) -> Option<f64> {
        if !self.silent_islands.is_empty() {
            return None;
        }
        let workers: u64 = self
            .islands
            .iter()
            .filter(|m| m.island != NO_ISLAND)
            .map(|m| u64::from(m.workers))
            .sum();
        if self.wall_ns == 0 || workers == 0 {
            return None;
        }
        let accounted: u64 = self
            .islands
            .iter()
            .filter(|m| m.island != NO_ISLAND)
            .map(IslandMetrics::accounted_ns)
            .sum();
        Some(accounted as f64 / (self.wall_ns as f64 * workers as f64))
    }
}

/// Per-worker-normalized kernel imbalance across islands, averaged over
/// the steps of a run.
///
/// `*_pw_ns` values are *per-worker* nanoseconds — an island's summed
/// kernel time divided by its worker count — so islands of different
/// team sizes compare on one scale. `excess_ns` is back in *summed
/// worker* nanoseconds: the worker time per step that faster islands
/// spend waiting at the step's barriers because the slowest island is
/// still computing. On dedicated cores it equals the barrier wait
/// attributable to imbalance (as opposed to oversubscription).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ImbalanceSummary {
    /// Steps that had at least one island with recorded workers.
    pub steps: usize,
    /// Mean over steps of the slowest island's per-worker kernel time.
    pub max_pw_ns: f64,
    /// Mean over steps of the worker-weighted mean per-worker kernel
    /// time across islands.
    pub mean_pw_ns: f64,
    /// `max_pw_ns / mean_pw_ns` — 1.0 is perfectly balanced.
    pub ratio: f64,
    /// Mean over steps of `Σ_i workers_i × (max_pw − pw_i)`: summed
    /// worker time lost to imbalance per step.
    pub excess_ns: f64,
}

/// Run-level accounted-fraction summary, with an explicit honesty
/// flag. The fraction is computed only over steps whose own
/// [`StepMetrics::accounted_fraction`] is defined; when rings wrapped
/// (`dropped_events > 0`) or any step had silent islands, the number
/// still describes what *was* recorded, but `degraded` is set so
/// consumers (and the `--metrics` report) never mistake a partial
/// trace for a complete one.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AccountedSummary {
    /// Worker-time-weighted accounted fraction over the valid steps:
    /// `Σ accounted / Σ (wall × workers)`. `None` when no step had a
    /// defined fraction.
    pub fraction: Option<f64>,
    /// Steps whose per-step fraction was defined.
    pub valid_steps: usize,
    /// Steps suppressed by silent islands (or empty denominators).
    pub suppressed_steps: usize,
    /// Events lost to ring wrap (copied from the run).
    pub dropped_events: u64,
    /// True when the trace is known incomplete: events were dropped or
    /// at least one step was suppressed.
    pub degraded: bool,
}

/// A whole traced run, aggregated per step.
#[derive(Clone, Debug, Default)]
pub struct RunMetrics {
    /// Per-step breakdowns, sorted by step index.
    pub steps: Vec<StepMetrics>,
    /// Events lost to ring wrap-around (nonzero means the capacity was
    /// too small — see `set_ring_capacity`).
    pub dropped_events: u64,
}

impl RunMetrics {
    /// Aggregates a drained event list.
    pub fn aggregate(drained: &Drained) -> RunMetrics {
        let mut steps: Vec<StepMetrics> = Vec::new();
        // Per-step wall bounds (earliest start, latest end), aligned
        // with `steps` by index and folded in the same pass — every
        // step exists because at least one non-dispatch event carries
        // its tag, so the bounds are always real, never a sentinel.
        let mut bounds: Vec<(u64, u64)> = Vec::new();
        for t in &drained.events {
            let ev = &t.ev;
            if ev.kind == SpanKind::Dispatch {
                continue;
            }
            let idx = match steps.iter().position(|s| s.step == ev.step) {
                Some(i) => i,
                None => {
                    steps.push(StepMetrics {
                        step: ev.step,
                        ..StepMetrics::default()
                    });
                    bounds.push((u64::MAX, 0));
                    steps.len() - 1
                }
            };
            let (lo, hi) = &mut bounds[idx];
            *lo = (*lo).min(ev.start_ns);
            *hi = (*hi).max(ev.end_ns());
            let step = &mut steps[idx];
            let island = match step.islands.iter_mut().find(|m| m.island == ev.island) {
                Some(m) => m,
                None => {
                    step.islands.push(IslandMetrics {
                        island: ev.island,
                        ..IslandMetrics::default()
                    });
                    step.islands.last_mut().expect("just pushed")
                }
            };
            island.workers = island.workers.max(ev.rank + 1);
            island.absorb(ev.kind, ev.dur_ns, ev.aux);
        }
        // Every real island the run knows about: a step missing one of
        // these recorded *no* events for it — flagged explicitly so the
        // ratio metrics refuse instead of silently deflating.
        let mut run_islands: Vec<u32> = steps
            .iter()
            .flat_map(|s| s.islands.iter().map(|m| m.island))
            .filter(|&i| i != NO_ISLAND)
            .collect();
        run_islands.sort_unstable();
        run_islands.dedup();
        for (s, &(lo, hi)) in steps.iter_mut().zip(&bounds) {
            s.wall_ns = hi - lo;
            s.islands.sort_by_key(|m| m.island);
            s.silent_islands = run_islands
                .iter()
                .copied()
                .filter(|&i| !s.islands.iter().any(|m| m.island == i))
                .collect();
        }
        steps.sort_by_key(|s| s.step);
        RunMetrics {
            steps,
            dropped_events: drained.dropped,
        }
    }

    /// Run-level accounted fraction with an honesty flag; see
    /// [`AccountedSummary`].
    pub fn accounted(&self) -> AccountedSummary {
        let mut accounted = 0.0;
        let mut capacity = 0.0;
        let mut valid_steps = 0usize;
        for s in &self.steps {
            if s.accounted_fraction().is_none() {
                continue;
            }
            valid_steps += 1;
            let workers: u64 = s
                .islands
                .iter()
                .filter(|m| m.island != NO_ISLAND)
                .map(|m| u64::from(m.workers))
                .sum();
            accounted += s
                .islands
                .iter()
                .filter(|m| m.island != NO_ISLAND)
                .map(IslandMetrics::accounted_ns)
                .sum::<u64>() as f64;
            capacity += s.wall_ns as f64 * workers as f64;
        }
        let suppressed_steps = self.steps.len() - valid_steps;
        AccountedSummary {
            fraction: (capacity > 0.0).then(|| accounted / capacity),
            valid_steps,
            suppressed_steps,
            dropped_events: self.dropped_events,
            degraded: self.dropped_events > 0 || suppressed_steps > 0,
        }
    }

    /// The whole report as strict JSON (the `--metrics-json` payload):
    /// per-step per-island phase totals, the accounted summary with its
    /// degradation flag, and the imbalance summary. Every number here
    /// is finite by construction, so `render()` on the result cannot
    /// fail.
    pub fn to_json(&self) -> Json {
        fn num(v: u64) -> Json {
            Json::Num(v as f64)
        }
        let islands = |ms: &[IslandMetrics]| {
            Json::Array(
                ms.iter()
                    .map(|m| {
                        Json::Object(vec![
                            (
                                "island".into(),
                                if m.island == NO_ISLAND {
                                    Json::Null
                                } else {
                                    num(u64::from(m.island))
                                },
                            ),
                            ("workers".into(), num(u64::from(m.workers))),
                            ("kernel_ns".into(), num(m.kernel_ns)),
                            ("team_barrier_ns".into(), num(m.team_barrier_ns)),
                            ("global_barrier_ns".into(), num(m.global_barrier_ns)),
                            ("spin_ns".into(), num(m.spin_ns)),
                            ("yield_ns".into(), num(m.yield_ns)),
                            ("park_ns".into(), num(m.park_ns)),
                            ("swap_ns".into(), num(m.swap_ns)),
                            ("refill_ns".into(), num(m.refill_ns)),
                            ("exchange_ns".into(), num(m.exchange_ns)),
                            ("computed_cells".into(), num(m.computed_cells)),
                            ("redundant_cells".into(), num(m.redundant_cells)),
                        ])
                    })
                    .collect(),
            )
        };
        let steps = Json::Array(
            self.steps
                .iter()
                .map(|s| {
                    Json::Object(vec![
                        ("step".into(), num(u64::from(s.step))),
                        ("wall_ns".into(), num(s.wall_ns)),
                        ("islands".into(), islands(&s.islands)),
                        (
                            "silent_islands".into(),
                            Json::Array(
                                s.silent_islands
                                    .iter()
                                    .map(|&i| num(u64::from(i)))
                                    .collect(),
                            ),
                        ),
                        (
                            "accounted_fraction".into(),
                            s.accounted_fraction().map_or(Json::Null, Json::Num),
                        ),
                        (
                            "imbalance".into(),
                            s.imbalance().map_or(Json::Null, Json::Num),
                        ),
                    ])
                })
                .collect(),
        );
        let acc = self.accounted();
        let accounted = Json::Object(vec![
            (
                "fraction".into(),
                acc.fraction.map_or(Json::Null, Json::Num),
            ),
            ("valid_steps".into(), num(acc.valid_steps as u64)),
            ("suppressed_steps".into(), num(acc.suppressed_steps as u64)),
            ("dropped_events".into(), num(acc.dropped_events)),
            ("degraded".into(), Json::Bool(acc.degraded)),
        ]);
        let imbalance = self.imbalance_summary().map_or(Json::Null, |im| {
            Json::Object(vec![
                ("steps".into(), num(im.steps as u64)),
                ("max_pw_ns".into(), Json::Num(im.max_pw_ns)),
                ("mean_pw_ns".into(), Json::Num(im.mean_pw_ns)),
                ("ratio".into(), Json::Num(im.ratio)),
                ("excess_ns".into(), Json::Num(im.excess_ns)),
            ])
        });
        Json::Object(vec![
            ("steps".into(), steps),
            ("totals".into(), islands(&self.totals())),
            ("wall_ns".into(), num(self.wall_ns())),
            ("dropped_events".into(), num(self.dropped_events)),
            ("accounted".into(), accounted),
            ("imbalance_summary".into(), imbalance),
        ])
    }

    /// Per-island totals across every step, sorted by island index.
    pub fn totals(&self) -> Vec<IslandMetrics> {
        let mut out: Vec<IslandMetrics> = Vec::new();
        for step in &self.steps {
            for m in &step.islands {
                match out.iter_mut().find(|t| t.island == m.island) {
                    Some(t) => t.merge(m),
                    None => out.push(m.clone()),
                }
            }
        }
        out.sort_by_key(|m| m.island);
        out
    }

    /// Sum of per-step wall spans.
    pub fn wall_ns(&self) -> u64 {
        self.steps.iter().map(|s| s.wall_ns).sum()
    }

    /// Per-worker kernel imbalance across islands, averaged over steps;
    /// `None` when no step recorded an island with workers. Ignores the
    /// [`NO_ISLAND`] bucket.
    pub fn imbalance_summary(&self) -> Option<ImbalanceSummary> {
        let mut steps = 0usize;
        let mut max_sum = 0.0;
        let mut mean_sum = 0.0;
        let mut excess_sum = 0.0;
        for s in &self.steps {
            // (workers, per-worker kernel time) for every real island.
            let real: Vec<(f64, f64)> = s
                .islands
                .iter()
                .filter(|m| m.island != NO_ISLAND && m.workers > 0)
                .map(|m| {
                    let w = f64::from(m.workers);
                    (w, m.kernel_ns as f64 / w)
                })
                .collect();
            if real.is_empty() {
                continue;
            }
            let max_pw = real.iter().map(|&(_, pw)| pw).fold(0.0, f64::max);
            let workers: f64 = real.iter().map(|&(w, _)| w).sum();
            let kernel: f64 = real.iter().map(|&(w, pw)| w * pw).sum();
            steps += 1;
            max_sum += max_pw;
            mean_sum += kernel / workers;
            excess_sum += real.iter().map(|&(w, pw)| w * (max_pw - pw)).sum::<f64>();
        }
        if steps == 0 {
            return None;
        }
        let n = steps as f64;
        let max_pw_ns = max_sum / n;
        let mean_pw_ns = mean_sum / n;
        Some(ImbalanceSummary {
            steps,
            max_pw_ns,
            mean_pw_ns,
            ratio: if mean_pw_ns > 0.0 {
                max_pw_ns / mean_pw_ns
            } else {
                1.0
            },
            excess_ns: excess_sum / n,
        })
    }

    /// Renders a human-readable per-island phase table (the `--metrics`
    /// output of `mpdata-run`).
    pub fn render(&self) -> String {
        fn ms(ns: u64) -> f64 {
            ns as f64 / 1e6
        }
        let mut out = String::new();
        out.push_str(&format!(
            "steps: {}   wall: {:.3} ms   dropped events: {}\n",
            self.steps.len(),
            ms(self.wall_ns()),
            self.dropped_events
        ));
        out.push_str(
            "island workers kernel_ms team_bar_ms glob_bar_ms  spin_ms yield_ms  park_ms  \
             swap_ms refill_ms exch_ms      cells  redundant\n",
        );
        for m in self.totals() {
            let island = if m.island == NO_ISLAND {
                "  -".to_string()
            } else {
                format!("{:3}", m.island)
            };
            out.push_str(&format!(
                "{island:>6} {:>7} {:>9.3} {:>11.3} {:>11.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} \
                 {:>9.3} {:>7.3} {:>10} {:>10}\n",
                m.workers,
                ms(m.kernel_ns),
                ms(m.team_barrier_ns),
                ms(m.global_barrier_ns),
                ms(m.spin_ns),
                ms(m.yield_ns),
                ms(m.park_ns),
                ms(m.swap_ns),
                ms(m.refill_ns),
                ms(m.exchange_ns),
                m.computed_cells,
                m.redundant_cells,
            ));
        }
        let fractions: Vec<String> = self
            .steps
            .iter()
            .filter_map(|s| s.accounted_fraction())
            .map(|f| format!("{f:.2}"))
            .collect();
        if !fractions.is_empty() {
            out.push_str(&format!(
                "per-step accounted fraction: [{}]\n",
                fractions.join(", ")
            ));
        }
        let acc = self.accounted();
        if let Some(f) = acc.fraction {
            let flag = if acc.degraded {
                " DEGRADED (incomplete trace: ring wrap or silent islands)"
            } else {
                ""
            };
            out.push_str(&format!(
                "run accounted fraction: {f:.2} over {}/{} steps{flag}\n",
                acc.valid_steps,
                self.steps.len(),
            ));
        }
        let silent = self
            .steps
            .iter()
            .filter(|s| !s.silent_islands.is_empty())
            .count();
        if silent > 0 {
            out.push_str(&format!(
                "steps with silent islands (ratio metrics suppressed): {silent}\n"
            ));
        }
        if let Some(im) = self
            .steps
            .iter()
            .filter_map(StepMetrics::imbalance)
            .next_back()
        {
            out.push_str(&format!("kernel imbalance (last step): {im:.3}\n"));
        }
        if let Some(im) = self.imbalance_summary() {
            out.push_str(&format!(
                "per-worker kernel per step: max {:.3} ms  mean {:.3} ms  ratio {:.3}  \
                 imbalance excess {:.3} ms/step\n",
                im.max_pw_ns / 1e6,
                im.mean_pw_ns / 1e6,
                im.ratio,
                im.excess_ns / 1e6,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, TaggedEvent};

    fn ev(
        kind: SpanKind,
        start: u64,
        dur: u64,
        island: u32,
        rank: u32,
        step: u32,
        aux: [u64; 3],
    ) -> TaggedEvent {
        TaggedEvent {
            thread: rank,
            ev: Event {
                kind,
                start_ns: start,
                dur_ns: dur,
                aux,
                island,
                rank,
                step,
                stage: 0,
                block: 0,
            },
        }
    }

    fn synthetic() -> Drained {
        Drained {
            events: vec![
                // step 0, island 0, two ranks
                ev(SpanKind::Kernel, 0, 100, 0, 0, 0, [1000, 50, 0]),
                ev(SpanKind::Kernel, 0, 80, 0, 1, 0, [900, 40, 0]),
                ev(SpanKind::TeamBarrier, 100, 20, 0, 0, 0, [20, 0, 0]),
                ev(SpanKind::TeamBarrier, 80, 40, 0, 1, 0, [10, 20, 10]),
                ev(SpanKind::GlobalBarrier, 120, 10, 0, 0, 0, [10, 0, 0]),
                ev(SpanKind::Swap, 130, 15, 0, 0, 0, [0; 3]),
                // step 0, island 1, one rank
                ev(SpanKind::Kernel, 0, 50, 1, 0, 0, [400, 10, 0]),
                // dispatch is excluded from walls and islands
                ev(SpanKind::Dispatch, 0, 1000, NO_ISLAND, 0, 0, [3, 0, 0]),
                // step 1, island 0
                ev(SpanKind::Kernel, 200, 60, 0, 0, 1, [1000, 50, 0]),
            ],
            dropped: 2,
        }
    }

    #[test]
    fn aggregates_per_step_and_island() {
        let m = RunMetrics::aggregate(&synthetic());
        assert_eq!(m.dropped_events, 2);
        assert_eq!(m.steps.len(), 2);
        let s0 = &m.steps[0];
        assert_eq!(s0.step, 0);
        // Wall: events span 0..145 (dispatch excluded).
        assert_eq!(s0.wall_ns, 145);
        assert_eq!(s0.islands.len(), 2);
        let i0 = &s0.islands[0];
        assert_eq!(i0.island, 0);
        assert_eq!(i0.workers, 2);
        assert_eq!(i0.kernel_ns, 180);
        assert_eq!(i0.team_barrier_ns, 60);
        assert_eq!(i0.global_barrier_ns, 10);
        assert_eq!((i0.spin_ns, i0.yield_ns, i0.park_ns), (40, 20, 10));
        assert_eq!(i0.swap_ns, 15);
        assert_eq!(i0.computed_cells, 1900);
        assert_eq!(i0.redundant_cells, 90);
        assert_eq!(i0.barrier_wait_ns(), 70);
        assert_eq!(i0.accounted_ns(), 180 + 70 + 15);
        let i1 = &s0.islands[1];
        assert_eq!((i1.island, i1.workers, i1.kernel_ns), (1, 1, 50));
    }

    #[test]
    fn totals_merge_steps() {
        let m = RunMetrics::aggregate(&synthetic());
        let totals = m.totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].kernel_ns, 240);
        assert_eq!(totals[0].computed_cells, 2900);
        assert_eq!(m.wall_ns(), 145 + 60);
    }

    #[test]
    fn imbalance_and_accounted_fraction() {
        let m = RunMetrics::aggregate(&synthetic());
        let s0 = &m.steps[0];
        // Island kernel times 180 vs 50.
        let im = s0.imbalance().unwrap();
        assert!((im - 180.0 / 50.0).abs() < 1e-12);
        let f = s0.accounted_fraction().unwrap();
        // accounted = 265 (island 0) + 50 (island 1); workers = 3.
        assert!((f - 315.0 / (145.0 * 3.0)).abs() < 1e-12);
        // Single-island step has no imbalance.
        assert!(m.steps[1].imbalance().is_none());
    }

    #[test]
    fn render_mentions_every_island() {
        let m = RunMetrics::aggregate(&synthetic());
        let text = m.render();
        assert!(text.contains("dropped events: 2"), "{text}");
        assert!(text.contains("kernel imbalance"), "{text}");
        assert!(text.contains("imbalance excess"), "{text}");
    }

    #[test]
    fn silent_island_is_flagged_and_ratios_refuse() {
        // Island 1 records events in step 0 but *nothing* in step 1
        // (e.g. its worker's ring wrapped). The old sentinel path let
        // step 1 pretend island 1 never existed, deflating the worker
        // denominator of accounted_fraction and computing imbalance
        // over the wrong island set.
        let d = Drained {
            events: vec![
                ev(SpanKind::Kernel, 0, 100, 0, 0, 0, [100, 0, 0]),
                ev(SpanKind::Kernel, 0, 90, 1, 0, 0, [90, 0, 0]),
                ev(SpanKind::Kernel, 200, 80, 0, 0, 1, [100, 0, 0]),
            ],
            dropped: 0,
        };
        let m = RunMetrics::aggregate(&d);
        let s0 = &m.steps[0];
        assert!(s0.silent_islands.is_empty());
        assert!(s0.imbalance().is_some());
        assert!(s0.accounted_fraction().is_some());
        let s1 = &m.steps[1];
        assert_eq!(s1.silent_islands, vec![1]);
        // The wall is still real — the recorded events span 200..280.
        assert_eq!(s1.wall_ns, 80);
        // But both ratios refuse: island 1's time is unknown, not zero.
        assert!(s1.imbalance().is_none());
        assert!(s1.accounted_fraction().is_none());
        // And the rendered report calls the suppression out.
        assert!(m.render().contains("silent islands"), "{}", m.render());
    }

    #[test]
    fn single_worker_run_has_no_silent_islands() {
        // A worker that records no events at all never appears in any
        // step, so a clean single-island run must stay unflagged.
        let d = Drained {
            events: vec![ev(SpanKind::Kernel, 0, 100, 0, 0, 0, [0; 3])],
            dropped: 0,
        };
        let m = RunMetrics::aggregate(&d);
        assert_eq!(m.steps.len(), 1);
        assert!(m.steps[0].silent_islands.is_empty());
        assert_eq!(m.steps[0].wall_ns, 100);
        assert!(m.steps[0].accounted_fraction().is_some());
    }

    #[test]
    fn accounted_summary_degrades_on_drops_and_silence() {
        // synthetic() dropped 2 events, and island 1 is silent in
        // step 1 → degraded with one suppressed step.
        let m = RunMetrics::aggregate(&synthetic());
        let acc = m.accounted();
        assert_eq!(acc.valid_steps, 1);
        assert_eq!(acc.suppressed_steps, 1);
        assert_eq!(acc.dropped_events, 2);
        assert!(acc.degraded);
        // Only step 0 is valid: it accounts 315 ns of 145 ns × 3.
        let expect = 315.0 / (145.0 * 3.0);
        assert!((acc.fraction.unwrap() - expect).abs() < 1e-12, "{acc:?}");
        assert!(m.render().contains("DEGRADED"), "{}", m.render());

        // A clean run is not degraded and not flagged.
        let clean = Drained {
            events: vec![ev(SpanKind::Kernel, 0, 100, 0, 0, 0, [0; 3])],
            dropped: 0,
        };
        let m = RunMetrics::aggregate(&clean);
        let acc = m.accounted();
        assert!(!acc.degraded);
        assert_eq!(acc.fraction, Some(1.0));
        assert!(!m.render().contains("DEGRADED"), "{}", m.render());

        // Silent islands degrade too, with the step suppressed.
        let silent = Drained {
            events: vec![
                ev(SpanKind::Kernel, 0, 100, 0, 0, 0, [0; 3]),
                ev(SpanKind::Kernel, 0, 90, 1, 0, 0, [0; 3]),
                ev(SpanKind::Kernel, 200, 80, 0, 0, 1, [0; 3]),
            ],
            dropped: 0,
        };
        let acc = RunMetrics::aggregate(&silent).accounted();
        assert_eq!(acc.valid_steps, 1);
        assert_eq!(acc.suppressed_steps, 1);
        assert!(acc.degraded);
    }

    #[test]
    fn json_report_is_strict_and_round_trips() {
        let m = RunMetrics::aggregate(&synthetic());
        let doc = m.to_json();
        let text = doc.render().expect("all metrics numbers are finite");
        let back = crate::json::parse(&text).expect("self-parse");
        assert_eq!(back, doc);
        assert_eq!(back.get("dropped_events"), Some(&Json::Num(2.0)));
        let acc = back.get("accounted").expect("accounted object");
        assert_eq!(acc.get("degraded"), Some(&Json::Bool(true)));
        let steps = match back.get("steps") {
            Some(Json::Array(steps)) => steps,
            other => panic!("steps: {other:?}"),
        };
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].get("wall_ns"), Some(&Json::Num(145.0)));
        let islands = match steps[0].get("islands") {
            Some(Json::Array(islands)) => islands,
            other => panic!("islands: {other:?}"),
        };
        assert_eq!(islands.len(), 2);
        assert_eq!(islands[0].get("kernel_ns"), Some(&Json::Num(180.0)));
    }

    #[test]
    fn imbalance_summary_normalizes_per_worker() {
        let m = RunMetrics::aggregate(&synthetic());
        let im = m.imbalance_summary().unwrap();
        assert_eq!(im.steps, 2);
        // Step 0: island 0 has 2 workers × 180 ns summed → 90 ns per
        // worker; island 1 has 1 worker × 50 ns → 50 ns. max = 90,
        // mean = 230 / 3, excess = 1 × (90 − 50) = 40.
        // Step 1: single island (60 ns, 1 worker): max = mean = 60,
        // excess = 0.
        let max0 = 90.0;
        let mean0 = 230.0 / 3.0;
        assert!((im.max_pw_ns - (max0 + 60.0) / 2.0).abs() < 1e-9, "{im:?}");
        assert!(
            (im.mean_pw_ns - (mean0 + 60.0) / 2.0).abs() < 1e-9,
            "{im:?}"
        );
        assert!((im.excess_ns - 20.0).abs() < 1e-9, "{im:?}");
        assert!(im.ratio > 1.0, "{im:?}");

        // A perfectly balanced run reports ratio 1.0, excess 0.
        let balanced = Drained {
            events: vec![
                ev(SpanKind::Kernel, 0, 100, 0, 0, 0, [0; 3]),
                ev(SpanKind::Kernel, 0, 100, 1, 0, 0, [0; 3]),
            ],
            dropped: 0,
        };
        let im = RunMetrics::aggregate(&balanced)
            .imbalance_summary()
            .unwrap();
        assert_eq!(im.ratio, 1.0);
        assert_eq!(im.excess_ns, 0.0);
    }
}
