//! Zero-overhead runtime tracing for the islands-of-cores executors.
//!
//! The paper's argument is entirely about *where time goes* — kernel
//! work vs. synchronization vs. redundant halo recomputation — so the
//! executors need a recorder that can answer that question without
//! perturbing the thing it measures. This crate provides one:
//!
//! * **Spans, not logs.** An [`Event`] is a closed interval on the
//!   process-wide monotonic clock, tagged with the island / rank / step
//!   / stage / block it belongs to and a [`SpanKind`] saying which phase
//!   of the execution it covers. Barrier events carry their spin /
//!   yield / park split in [`Event::aux`]; kernel events carry computed
//!   and redundant cell counts.
//! * **Per-thread ring buffers.** Each recording thread owns a
//!   preallocated single-producer ring ([`set_ring_capacity`] slots).
//!   Recording is a bump of a thread-local cursor plus one slot write —
//!   no locks, no allocation, no cross-thread traffic on the hot path.
//!   When a ring wraps, the oldest events are overwritten and counted
//!   in [`Drained::dropped`] rather than silently lost.
//! * **One-branch disabled path.** Everything is gated on a single
//!   relaxed [`AtomicBool`]; with tracing off, an instrumentation site
//!   costs one relaxed load and a predictable branch — no clock read,
//!   no thread-local access, and crucially **zero allocations**, which
//!   is what keeps the `mpdata` steady-state allocation pin green with
//!   tracing compiled in.
//!
//! Collection is two-phase: a [`Session`] enables recording for one
//! measured run, then [`Session::finish`] disables it and drains every
//! ring into a time-sorted [`Drained`] event list. Aggregation
//! ([`metrics`]) and Chrome trace-event export ([`chrome`]) are pure
//! functions of that list.
//!
//! # Concurrent drain protocol
//!
//! Rings are single-producer: only the owning thread writes. Reads,
//! however, are allowed **mid-run**: each slot carries a sequence
//! number (seqlock-style) that lets any reader — the final quiescent
//! drain or the live [`collector`] thread — take a torn-read-free
//! snapshot while the producer keeps pushing. Slot payloads are stored
//! as plain `u64` words through relaxed-or-stronger atomics, so a
//! racing read is *well-defined* (never UB) and merely **discarded**
//! when the sequence check says the producer recycled the slot
//! mid-read. Overwritten and in-flight slots are counted explicitly
//! ([`Drained::dropped`], [`CollectStats`]) instead of silently lost.
//!
//! The protocol, for push index `n` landing in slot `i = n % capacity`
//! (`seq` starts at 0; `2n+1` marks "push n in progress", `2n+2` marks
//! "push n committed"):
//!
//! ```text
//! producer (push n)                reader (window first!)
//! seq[i] = 2n+1      (Relaxed)     pushed                (Acquire)
//! words[i][..] = ev  (Release ×8)  then, for each n < pushed:
//! seq[i] = 2n+2      (Relaxed)     s1 = seq[i]           (Relaxed)
//! pushed = n+1       (Release)     if s1 != 2n+2: recycled/unpublished
//!                                  w = words[i][..]      (Acquire ×8)
//!                                  s2 = seq[i]           (Relaxed)
//!                                  if s2 != s1: recycled (discard w)
//! ```
//!
//! Why this is enough (the full argument is in DESIGN.md §6.8): every
//! reader first `Acquire`s the publish counter, pairing with the
//! producer's `Release` publish store — and push `n`'s commit and word
//! stores precede the publish of any count `> n` on the owning thread,
//! so for every slot the window names, coherence floors `s1` at `2n+2`
//! and floors the word reads at push `n`'s words (this is also what
//! keeps `CollectStats::unpublished` at 0, and why the commit store
//! and `s1` load are blessed `Relaxed` demotions). The remaining race
//! is the producer wrapping around and re-writing the slot as push
//! `m > n` mid-read: if some word read returns one of push `m`'s
//! values, that `Acquire` word load synchronizes with push `m`'s
//! `Release` word store, which makes push `m`'s in-progress marker
//! `2m+1` (sequenced before its word stores) visible — so the `s2`
//! re-check, even `Relaxed`, must observe `seq[i] >= 2m+1 != s1` by
//! coherence and the torn mix is discarded. The protocol is
//! model-checked exhaustively (`ring-publish`, `ring-drain` scenarios)
//! and every ordering is proven one-step-minimal or demoted with the
//! checker's blessing; the load-bearing ones are pinned as caught
//! mutants.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

// The ring's shared pieces — per-slot sequence numbers, slot payload
// words and the publish counter — go through the model-checking seam:
// plain `AtomicU64` in real builds, checker shims under `--features
// model` (see the `model_support` module and DESIGN.md §6.6).
#[cfg(not(feature = "model"))]
use std::sync::atomic::AtomicU64 as SeamAtomicU64;

#[cfg(feature = "model")]
use islands_modelcheck::ModelAtomicU64 as SeamAtomicU64;

/// Ordering resolution for the ring's named sites: identity in real
/// builds, the checker's weaken-override map under `model`.
#[cfg(not(feature = "model"))]
#[inline(always)]
fn seam_ord(_site: &'static str, default: Ordering) -> Ordering {
    default
}

#[cfg(feature = "model")]
fn seam_ord(site: &'static str, default: Ordering) -> Ordering {
    islands_modelcheck::site::resolve(site, default)
}

pub mod chrome;
#[cfg(not(feature = "model"))]
pub mod collector;
pub mod export;
pub mod histogram;
pub mod json;
pub mod metrics;
pub mod registry;
#[cfg(not(feature = "model"))]
pub mod serve;

/// Island tag for events recorded outside any island (e.g. pool
/// dispatch on the caller thread).
pub const NO_ISLAND: u32 = u32::MAX;

/// Default per-thread ring capacity, in events.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Which phase of the execution a span covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Stencil stage sweep over one (block, stage) epoch slice.
    /// `aux = [computed_cells, redundant_cells, 0]`.
    Kernel,
    /// Wait at a team-scoped barrier. `aux = [spin_ns, yield_ns,
    /// park_ns]`, which sum exactly to `dur_ns`.
    TeamBarrier,
    /// Wait at the once-per-step global barrier. Same `aux` contract
    /// as [`SpanKind::TeamBarrier`].
    GlobalBarrier,
    /// Serial buffer swap + halo-gap re-zero between time steps.
    Swap,
    /// One-time refill/zero of plan scratch state before stepping.
    Refill,
    /// A whole pool broadcast, recorded on the caller thread
    /// (island = [`NO_ISLAND`]). `aux = [workers, 0, 0]`.
    Dispatch,
    /// Halo extract / blit traffic in the exchange executor.
    Exchange,
}

impl SpanKind {
    /// Stable lowercase category name (used by the Chrome export).
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Kernel => "kernel",
            SpanKind::TeamBarrier => "team_barrier",
            SpanKind::GlobalBarrier => "global_barrier",
            SpanKind::Swap => "swap",
            SpanKind::Refill => "refill",
            SpanKind::Dispatch => "dispatch",
            SpanKind::Exchange => "exchange",
        }
    }
}

/// One recorded span. 64 bytes, `Copy`, preallocated in rings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Phase of execution this span covers.
    pub kind: SpanKind,
    /// Start, nanoseconds since the session clock epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Kind-specific payload (see [`SpanKind`] docs).
    pub aux: [u64; 3],
    /// Island (team) index, or [`NO_ISLAND`].
    pub island: u32,
    /// Rank within the island.
    pub rank: u32,
    /// Time step the span belongs to.
    pub step: u32,
    /// Stage id for kernel spans, 0 otherwise.
    pub stage: u16,
    /// Block index for kernel spans, 0 otherwise.
    pub block: u16,
}

/// Number of `u64` words in the ring-slot encoding of an [`Event`].
const EVENT_WORDS: usize = 8;

impl Event {
    /// End of the span, nanoseconds since the session clock epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }

    /// Packs the event into the fixed word layout the ring slots use.
    /// Word-wise atomic slot storage is what makes the concurrent
    /// drain well-defined: a torn read mixes *words*, never bytes, and
    /// the per-slot sequence check discards any mix.
    fn encode(&self) -> [u64; EVENT_WORDS] {
        [
            self.kind as u64,
            self.start_ns,
            self.dur_ns,
            self.aux[0],
            self.aux[1],
            self.aux[2],
            ((self.island as u64) << 32) | self.rank as u64,
            ((self.step as u64) << 32) | ((self.stage as u64) << 16) | self.block as u64,
        ]
    }

    /// Inverse of [`Event::encode`]. Total on any input (an
    /// out-of-range kind falls back to `Kernel`) so a decode can never
    /// panic — callers only decode words that passed the sequence
    /// validation, but mutated-ordering model runs exercise the
    /// fallback.
    fn decode(w: [u64; EVENT_WORDS]) -> Event {
        let kind = match w[0] {
            0 => SpanKind::Kernel,
            1 => SpanKind::TeamBarrier,
            2 => SpanKind::GlobalBarrier,
            3 => SpanKind::Swap,
            4 => SpanKind::Refill,
            5 => SpanKind::Dispatch,
            _ => SpanKind::Exchange,
        };
        Event {
            kind,
            start_ns: w[1],
            dur_ns: w[2],
            aux: [w[3], w[4], w[5]],
            island: (w[6] >> 32) as u32,
            rank: w[6] as u32,
            step: (w[7] >> 32) as u32,
            stage: (w[7] >> 16) as u16,
            block: w[7] as u16,
        }
    }
}

/// An event together with the dense id of the thread that recorded it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaggedEvent {
    /// Registration index of the recording thread (Chrome `tid`).
    pub thread: u32,
    /// The span.
    pub ev: Event,
}

/// Everything one session recorded, time-sorted.
#[derive(Clone, Debug, Default)]
pub struct Drained {
    /// All surviving events, sorted by `start_ns`.
    pub events: Vec<TaggedEvent>,
    /// Events overwritten by ring wrap-around before the drain.
    pub dropped: u64,
}

// ---------------------------------------------------------------------
// Recorder state
// ---------------------------------------------------------------------

/// The one global gate. Relaxed loads on the hot path; the `SeqCst`
/// stores in `Session` bracket the run.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Bumped by [`clear`]; threads whose local ring belongs to an older
/// generation re-register lazily on their next record.
static GENERATION: AtomicU64 = AtomicU64::new(1);

/// Ring capacity applied to rings registered after the last change.
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);

/// Process-wide clock epoch; all `*_ns` values are offsets from this.
static EPOCH: OnceLock<Instant> = OnceLock::new();

static REGISTRY: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

static SESSION_LOCK: Mutex<()> = Mutex::new(());

/// Live "newest step started" gauge fed by [`set_step`] (see
/// [`live_step`]).
static LIVE_STEP: AtomicU64 = AtomicU64::new(0);

/// One ring slot: a seqlock sequence number plus the event payload as
/// plain words. `seq == 2n+1` means push `n` is in progress, `2n+2`
/// means push `n` is committed; 0 means never written.
struct Slot {
    seq: SeamAtomicU64,
    words: [SeamAtomicU64; EVENT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: SeamAtomicU64::new(0),
            words: [(); EVENT_WORDS].map(|()| SeamAtomicU64::new(0)),
        }
    }
}

/// What a validated slot read produced.
enum SlotRead {
    /// The sequence check passed; the words are push `n`'s, untorn.
    Valid(Event),
    /// The producer recycled the slot for a later push (before or
    /// during the read); the event is lost to this reader.
    Recycled,
    /// The slot's commit is not visible even though the publish
    /// counter covers it — impossible under the protocol's orderings,
    /// counted (never silenced) so the model checker can pin the
    /// publish/window edge.
    Unpublished,
}

/// Accounting for one [`Ring::collect`] pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct CollectStats {
    /// Cursor for the next pass: the publish count this pass observed.
    pub next: u64,
    /// Events lost to this reader: overwritten before the pass reached
    /// them, or recycled mid-read.
    pub overwritten: u64,
    /// Protocol-violation count (see [`SlotRead::Unpublished`]);
    /// always 0 under the shipped orderings.
    pub unpublished: u64,
}

/// A single-producer event ring with seqlock-validated concurrent
/// reads. Only the owning thread writes; any thread may `collect` or
/// `snapshot` at any time (see the module docs for the protocol).
struct Ring {
    slots: Box<[Slot]>,
    pushed: SeamAtomicU64,
    thread: u32,
}

impl Ring {
    fn new(capacity: usize, thread: u32) -> Ring {
        Ring {
            slots: (0..capacity.max(1))
                .map(|_| Slot::new())
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            pushed: SeamAtomicU64::new(0),
            thread,
        }
    }

    /// Owner-thread push: mark the slot in-progress, write the payload
    /// words, commit the slot, then publish the new count.
    fn push(&self, ev: Event) {
        // ordering: Relaxed — only the owning thread writes `pushed`,
        // so the reserve read observes its own last store (coherence);
        // no other thread's writes are involved.
        let n = self
            .pushed
            .load(seam_ord("ring.reserve-load", Ordering::Relaxed));
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        // ordering: Relaxed — the in-progress marker needs no edge of
        // its own: any reader that could observe this slot's new words
        // does so through an Acquire word load pairing with a Release
        // word store below, and that edge already makes this
        // (sequenced-earlier) marker visible to the reader's re-check.
        slot.seq.store(
            2 * n + 1,
            seam_ord("ring.slot-begin-store", Ordering::Relaxed),
        );
        for (w, v) in slot.words.iter().zip(ev.encode()) {
            // ordering: Release — two jobs: pairs with the reader's
            // Acquire word load so a wrapped-around rewrite drags the
            // in-progress marker into view (torn reads get discarded by
            // the s2 re-check), and keeps each word ordered before the
            // commit store below.
            w.store(v, seam_ord("ring.slot-word-store", Ordering::Release));
        }
        // ordering: Relaxed — demoted from Release with the checker's
        // blessing: every reader reaches this slot only through a
        // collect window it Acquired from `ring.publish-store`, which
        // program-order-follows this commit — that edge already orders
        // both the seq value and the words; the wrap race is covered
        // by the word-store/word-load edge plus the s2 re-check. The
        // word stores above stay ordered before this store on the
        // owning thread by program order alone.
        slot.seq.store(
            2 * n + 2,
            seam_ord("ring.slot-commit-store", Ordering::Relaxed),
        );
        // ordering: Release — publishes the count: a reader that
        // Acquires `pushed == n+1` inherits every commit store above,
        // so the collect window never names a slot whose commit is
        // invisible (`CollectStats::unpublished` stays 0).
        self.pushed
            .store(n + 1, seam_ord("ring.publish-store", Ordering::Release));
    }

    /// Seqlock-validated read of push index `n`'s slot.
    ///
    /// Sound only for `n` inside a window the caller obtained from an
    /// `Acquire` load of `pushed` (`ring.window-load`): the demoted
    /// `Relaxed` orderings below lean on that edge — see the module
    /// docs.
    fn read_slot(&self, n: u64) -> SlotRead {
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        let committed = 2 * n + 2;
        // ordering: Relaxed — demoted from Acquire with the checker's
        // blessing: callers only pass `n` inside a window Acquired
        // from `ring.publish-store`, and push n's commit precedes that
        // publish on the owning thread, so coherence already floors
        // this load at `2n+2` and floors the word loads at push n's
        // words; a concurrent recycler is caught by the word-load
        // Acquire edge and the s2 re-check, not by this load.
        let s1 = slot
            .seq
            .load(seam_ord("ring.slot-validate-load", Ordering::Relaxed));
        if s1 < committed {
            return SlotRead::Unpublished;
        }
        if s1 > committed {
            return SlotRead::Recycled;
        }
        let mut words = [0u64; EVENT_WORDS];
        for (out, w) in words.iter_mut().zip(slot.words.iter()) {
            // ordering: Acquire — pairs with the producer's Release
            // word store: if this load observes a *newer* push's word,
            // the edge makes that push's in-progress seq marker visible,
            // which is what forces the s2 re-check below to fail and the
            // torn mix to be discarded.
            *out = w.load(seam_ord("ring.slot-word-load", Ordering::Acquire));
        }
        // ordering: Relaxed — the re-check needs no edge of its own:
        // if any word above came from a later push, the Acquire word
        // load already made that push's seq marker visible, and
        // coherence forbids this load from returning the older `s1`.
        let s2 = slot
            .seq
            .load(seam_ord("ring.slot-recheck-load", Ordering::Relaxed));
        if s2 != committed {
            return SlotRead::Recycled;
        }
        SlotRead::Valid(Event::decode(words))
    }

    /// Concurrent drain: feeds every event with push index in
    /// `[from, pushed)` that is still readable to `sink`, in push
    /// order, and accounts for the rest. Safe to call from any thread
    /// while the producer keeps pushing; each caller owns its cursor
    /// (pass the returned `next` back in), so independent readers do
    /// not disturb each other or the final drain.
    fn collect(&self, from: u64, sink: &mut dyn FnMut(TaggedEvent)) -> CollectStats {
        // ordering: Acquire — pairs with the publish store; every slot
        // the observed window covers is committed-and-visible, which
        // keeps `unpublished` at 0.
        let pushed = self
            .pushed
            .load(seam_ord("ring.window-load", Ordering::Acquire));
        let cap = self.slots.len() as u64;
        let start = from.max(pushed.saturating_sub(cap));
        let mut stats = CollectStats {
            next: pushed,
            overwritten: start - from,
            unpublished: 0,
        };
        for n in start..pushed {
            match self.read_slot(n) {
                SlotRead::Valid(ev) => sink(TaggedEvent {
                    thread: self.thread,
                    ev,
                }),
                SlotRead::Recycled => stats.overwritten += 1,
                SlotRead::Unpublished => stats.unpublished += 1,
            }
        }
        stats
    }

    /// Surviving events in push order, plus the lost-event count.
    /// (The full-window read the final quiescent drain uses; at
    /// quiescence every in-window slot validates.)
    fn snapshot(&self) -> (Vec<TaggedEvent>, u64) {
        let mut out = Vec::new();
        let stats = self.collect(0, &mut |t| out.push(t));
        (out, stats.overwritten + stats.unpublished)
    }
}

/// Model-checker access to the production ring code.
///
/// Only compiled under `--features model`. The protocol suite in
/// `work-scheduler` drives the *same* `Ring::push` / `Ring::snapshot`
/// bodies that production uses — the seam swaps the slot cells and the
/// publish counter for checker shims, nothing else.
#[cfg(feature = "model")]
pub mod model_support {
    use super::{CollectStats, Event, Ring, TaggedEvent};

    /// A checker-instrumented per-thread ring.
    pub struct ModelRing(Ring);

    impl ModelRing {
        /// Ring with `capacity` slots owned by dense thread id `thread`.
        pub fn new(capacity: usize, thread: u32) -> Self {
            ModelRing(Ring::new(capacity, thread))
        }

        /// Production publish path (`Ring::push`).
        pub fn push(&self, ev: Event) {
            self.0.push(ev);
        }

        /// Production drain path (`Ring::snapshot`): surviving events
        /// plus the lost-event count.
        pub fn snapshot(&self) -> (Vec<TaggedEvent>, u64) {
            self.0.snapshot()
        }

        /// Production concurrent-collect path (`Ring::collect`) from
        /// cursor `from`: readable events plus the pass accounting.
        pub fn collect(&self, from: u64) -> (Vec<TaggedEvent>, CollectStats) {
            let mut out = Vec::new();
            let stats = self.0.collect(from, &mut |t| out.push(t));
            (out, stats)
        }
    }
}

#[derive(Clone, Copy)]
struct ThreadCtx {
    island: u32,
    rank: u32,
    step: u32,
}

thread_local! {
    static CTX: Cell<ThreadCtx> = const {
        Cell::new(ThreadCtx { island: NO_ISLAND, rank: 0, step: 0 })
    };
    /// `(generation, ring)`; re-registered lazily when stale.
    static LOCAL_RING: RefCell<Option<(u64, Arc<Ring>)>> = const { RefCell::new(None) };
}

/// Whether a session is currently recording. One relaxed load — this
/// is the entire cost of an instrumentation site when tracing is off.
#[inline]
pub fn is_enabled() -> bool {
    // ordering: Relaxed — a pure on/off hint read on every hot path;
    // threads that observe the flag late merely record (or skip) a few
    // extra events, and `drain` is only called at quiescence anyway.
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the session clock epoch. Reads the monotonic
/// clock unconditionally — pair with [`now`] on hot paths.
pub fn now_ns() -> u64 {
    EPOCH
        .get_or_init(Instant::now)
        .elapsed()
        .as_nanos()
        .min(u64::MAX as u128) as u64
}

/// `Some(now_ns())` when recording, `None` otherwise. The idiomatic
/// span-open: when this returns `None` the caller skips both the
/// closing clock read and the record.
#[inline]
pub fn now() -> Option<u64> {
    if is_enabled() {
        Some(now_ns())
    } else {
        None
    }
}

/// Tags subsequent events on this thread with an island and rank.
/// No-op while disabled.
pub fn set_island_rank(island: u32, rank: u32) {
    if !is_enabled() {
        return;
    }
    CTX.with(|c| {
        let mut ctx = c.get();
        ctx.island = island;
        ctx.rank = rank;
        c.set(ctx);
    });
}

/// Tags subsequent events on this thread with a time step. No-op
/// while disabled. Also advances the process-wide [`live_step`] gauge,
/// so a live scrape sees step progress the moment a replay *starts* a
/// step, not only once its first spans are collected.
pub fn set_step(step: u32) {
    if !is_enabled() {
        return;
    }
    // ordering: Relaxed — advisory monotone gauge with no payload
    // behind it; the RMW keeps concurrent threads' maxima exact.
    LIVE_STEP.fetch_max(u64::from(step), Ordering::Relaxed);
    CTX.with(|c| {
        let mut ctx = c.get();
        ctx.step = step;
        c.set(ctx);
    });
}

/// Newest time step any thread has tagged via [`set_step`] this
/// session (0 before the first tag; reset by [`clear`]).
pub fn live_step() -> u64 {
    // ordering: Relaxed — advisory gauge read (see `set_step`).
    LIVE_STEP.load(Ordering::Relaxed)
}

/// Records a closed span `[start_ns, end_ns]` with this thread's
/// current island/rank/step tags. No-op while disabled (one relaxed
/// load); saturates to a zero-length span if `end_ns < start_ns`.
pub fn record(kind: SpanKind, start_ns: u64, end_ns: u64, stage: u16, block: u16, aux: [u64; 3]) {
    if !is_enabled() {
        return;
    }
    let ctx = CTX.with(Cell::get);
    let ev = Event {
        kind,
        start_ns,
        dur_ns: end_ns.saturating_sub(start_ns),
        aux,
        island: ctx.island,
        rank: ctx.rank,
        step: ctx.step,
        stage,
        block,
    };
    LOCAL_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        // ordering: Acquire — pairs with the AcqRel bump in `clear` so
        // a thread that observes the new generation also observes the
        // registry mutation that preceded it (then re-registers under
        // the registry lock, which carries the rest).
        let generation = GENERATION.load(Ordering::Acquire);
        let stale = match slot.as_ref() {
            Some((g, _)) => *g != generation,
            None => true,
        };
        if stale {
            let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
            let ring = Arc::new(Ring::new(
                // ordering: Relaxed — a sizing knob, not a
                // synchronization edge; a racing `set_ring_capacity`
                // legitimately applies to rings registered "from now
                // on" (documented contract).
                RING_CAPACITY.load(Ordering::Relaxed),
                registry.len() as u32,
            ));
            registry.push(Arc::clone(&ring));
            *slot = Some((generation, ring));
        }
        slot.as_ref().expect("ring registered above").1.push(ev);
    });
}

/// Sets the per-thread ring capacity (events) for rings registered
/// from now on. Size for the run: a dropped-event count in the drain
/// means the capacity was too small for the traced window.
pub fn set_ring_capacity(capacity: usize) {
    // ordering: Relaxed — store half of the sizing knob (see the
    // registration-time load).
    RING_CAPACITY.store(capacity.max(1), Ordering::Relaxed);
}

/// Discards all recorded events and detaches every thread's ring.
pub fn clear() {
    let mut registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    registry.clear();
    // ordering: Relaxed — advisory gauge reset (see `set_step`); the
    // generation bump below is the real session boundary.
    LIVE_STEP.store(0, Ordering::Relaxed);
    // ordering: AcqRel — the release half publishes the registry clear
    // above to threads that acquire the new generation in `record`; the
    // acquire half orders consecutive clears against each other.
    GENERATION.fetch_add(1, Ordering::AcqRel);
}

/// Drains every registered ring into one time-sorted event list. Call
/// only at producer quiescence (see the module docs).
pub fn drain() -> Drained {
    let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut events = Vec::new();
    let mut dropped = 0;
    for ring in registry.iter() {
        let (mut evs, d) = ring.snapshot();
        events.append(&mut evs);
        dropped += d;
    }
    events.sort_by_key(|t| (t.ev.start_ns, t.thread));
    Drained { events, dropped }
}

/// RAII guard for one traced run.
///
/// `start` takes a process-wide session lock (serializing concurrent
/// traced tests in one binary), clears stale events and enables
/// recording; [`Session::finish`] disables recording and drains.
/// Dropping an unfinished session just disables recording.
pub struct Session {
    guard: Option<MutexGuard<'static, ()>>,
}

impl Session {
    /// Begins recording. Blocks while another session is active.
    pub fn start() -> Session {
        let guard = SESSION_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Initialize the epoch outside the measured window.
        let _ = now_ns();
        clear();
        // ordering: SeqCst — session flips are rare (one per traced
        // run, under the session lock) and must not reorder around the
        // epoch/clear setup above; strength is free here and keeps the
        // enable/disable pair trivially ordered.
        ENABLED.store(true, Ordering::SeqCst);
        Session { guard: Some(guard) }
    }

    /// Stops recording and returns everything captured.
    pub fn finish(mut self) -> Drained {
        // ordering: SeqCst — same contract as the enable store; the
        // drain below additionally serializes on the registry lock.
        ENABLED.store(false, Ordering::SeqCst);
        let drained = drain();
        self.guard.take();
        drained
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // ordering: SeqCst — same contract as `Session::finish`.
        ENABLED.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, start: u64, end: u64) {
        record(kind, start, end, 0, 0, [0; 3]);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        // No session: record/set_* must not register rings or events.
        // (Runs under the session lock to avoid racing other tests.)
        let guard = SESSION_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        assert!(!is_enabled());
        set_island_rank(3, 1);
        set_step(9);
        span(SpanKind::Kernel, 0, 10);
        assert!(drain().events.is_empty());
        drop(guard);
    }

    #[test]
    fn session_captures_tagged_events_in_time_order() {
        let s = Session::start();
        set_island_rank(2, 1);
        set_step(7);
        record(SpanKind::Kernel, 50, 90, 4, 3, [1000, 40, 0]);
        record(SpanKind::TeamBarrier, 10, 30, 0, 0, [20, 0, 0]);
        let d = s.finish();
        assert_eq!(d.events.len(), 2);
        assert_eq!(d.dropped, 0);
        // Sorted by start time, not record order.
        assert_eq!(d.events[0].ev.kind, SpanKind::TeamBarrier);
        let k = &d.events[1].ev;
        assert_eq!(
            (k.island, k.rank, k.step, k.stage, k.block),
            (2, 1, 7, 4, 3)
        );
        assert_eq!(k.aux, [1000, 40, 0]);
        assert_eq!(k.dur_ns, 40);
        assert_eq!(k.end_ns(), 90);
        // After finish, recording is off again.
        assert!(!is_enabled());
    }

    #[test]
    fn ring_wrap_counts_dropped_events() {
        let s = Session::start();
        set_ring_capacity(8);
        // Force this thread onto a fresh (small) ring.
        clear();
        for i in 0..20 {
            span(SpanKind::Swap, i, i + 1);
        }
        set_ring_capacity(DEFAULT_RING_CAPACITY);
        let d = s.finish();
        assert_eq!(d.events.len(), 8);
        assert_eq!(d.dropped, 12);
        // The survivors are the newest pushes.
        assert_eq!(d.events.first().unwrap().ev.start_ns, 12);
        assert_eq!(d.events.last().unwrap().ev.start_ns, 19);
    }

    #[test]
    fn sessions_are_isolated() {
        let s1 = Session::start();
        span(SpanKind::Refill, 1, 2);
        assert_eq!(s1.finish().events.len(), 1);
        let s2 = Session::start();
        span(SpanKind::Refill, 3, 4);
        span(SpanKind::Refill, 5, 6);
        let d = s2.finish();
        // Events from session 1 were cleared.
        assert_eq!(d.events.len(), 2);
        assert_eq!(d.events[0].ev.start_ns, 3);
    }

    #[test]
    fn events_from_many_threads_merge() {
        let s = Session::start();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            handles.push(std::thread::spawn(move || {
                set_island_rank(t as u32, 0);
                for i in 0..10 {
                    span(SpanKind::Kernel, t * 1000 + i, t * 1000 + i + 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let d = s.finish();
        assert_eq!(d.events.len(), 40);
        // Threads got distinct registration ids.
        let mut threads: Vec<u32> = d.events.iter().map(|t| t.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        assert_eq!(threads.len(), 4);
        // Global ordering by start time holds across threads.
        for w in d.events.windows(2) {
            assert!(w[0].ev.start_ns <= w[1].ev.start_ns);
        }
    }

    #[test]
    fn clock_is_monotonic_and_shared() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
