//! A std-only metrics endpoint: a thread-per-connection TCP listener
//! serving the live registry as Prometheus text exposition
//! (`GET /metrics`) and as a strict-JSON snapshot (`GET /metrics.json`
//! or `/json`).
//!
//! Deliberately minimal HTTP/1.x: one request per connection,
//! `Connection: close`, `Content-Length` always set. The accept loop
//! is non-blocking with a short poll so shutdown needs no platform
//! tricks; each accepted connection is handled on its own thread, so a
//! slow scraper can never stall the accept loop or another scrape.
//! Scrape handling allocates — it runs on serving threads, far from
//! the workers and the collector, and never touches the trace rings
//! (it reads the registry's counters only).

use crate::export;
use crate::registry::MetricsRegistry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Accept-loop poll period while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Per-connection socket timeout (read and write).
const CONN_TIMEOUT: Duration = Duration::from_secs(5);

/// Handle to a running metrics server. Shuts down (and joins the
/// accept loop) on `shutdown` or drop.
pub struct MetricsServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving `registry`.
    pub fn bind(addr: &str, registry: Arc<MetricsRegistry>) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("islands-metrics-http".into())
            .spawn(move || accept_loop(listener, registry, flag))?;
        Ok(MetricsServer {
            local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Stops accepting and joins the accept loop. In-flight connection
    /// threads finish on their own (bounded by `CONN_TIMEOUT`).
    /// Idempotent.
    pub fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            // ordering: Relaxed — advisory shutdown flag polled by the
            // accept loop; the join below is the completion edge.
            self.stop.store(true, Ordering::Relaxed);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, registry: Arc<MetricsRegistry>, stop: Arc<AtomicBool>) {
    // ordering: Relaxed — advisory flag (see `shutdown`).
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((conn, _peer)) => {
                let registry = Arc::clone(&registry);
                let _ = thread::Builder::new()
                    .name("islands-metrics-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(conn, &registry);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
            }
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}

fn serve_connection(mut conn: TcpStream, registry: &MetricsRegistry) -> io::Result<()> {
    conn.set_read_timeout(Some(CONN_TIMEOUT))?;
    conn.set_write_timeout(Some(CONN_TIMEOUT))?;
    let path = match read_request_path(&mut conn)? {
        Some(path) => path,
        None => return Ok(()),
    };
    let (status, content_type, body) = route(&path, registry);
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    conn.write_all(response.as_bytes())?;
    conn.write_all(body.as_bytes())?;
    conn.flush()
}

/// Reads the request head (up to 8 KiB) and returns the GET path, or
/// `None` for malformed requests (the connection is just dropped).
fn read_request_path(conn: &mut TcpStream) -> io::Result<Option<String>> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = conn.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(Some(path.to_string())),
        _ => Ok(None),
    }
}

fn route(path: &str, registry: &MetricsRegistry) -> (&'static str, &'static str, String) {
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" | "/" => match export::prometheus(&registry.snapshot()) {
            Ok(body) => ("200 OK", "text/plain; version=0.0.4", body),
            Err(e) => ("500 Internal Server Error", "text/plain", format!("{e}\n")),
        },
        "/metrics.json" | "/json" => match export::render_json_snapshot(&registry.snapshot()) {
            Ok(body) => ("200 OK", "application/json", body),
            Err(e) => ("500 Internal Server Error", "text/plain", format!("{e}\n")),
        },
        _ => (
            "404 Not Found",
            "text/plain",
            "not found; try /metrics or /metrics.json\n".to_string(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut conn = TcpStream::connect(addr).unwrap();
        write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut text = String::new();
        conn.read_to_string(&mut text).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_prometheus_json_and_404() {
        let registry = Arc::new(MetricsRegistry::new(2));
        registry.note_step(9);
        let mut server = MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        crate::export::validate_exposition(&body).unwrap();
        assert!(body.contains("islands_current_step 9"));

        let (head, body) = get(addr, "/metrics.json");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("current_step"), Some(&json::Json::Num(9.0)));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.shutdown();
        // Shutdown is idempotent and the port is released.
        server.shutdown();
    }
}
