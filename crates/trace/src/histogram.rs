//! Fixed-size log2-bucketed latency histograms.
//!
//! The live telemetry plane needs distribution shape — p50 vs p99 step
//! latency is the tail-vs-median signal that distinguishes a balanced
//! run from one island limping — but it must get it with **zero
//! steady-state allocation** and lock-free recording, because the
//! collector folds spans while the run is hot. A log2 histogram is the
//! standard answer: 65 fixed buckets cover the full `u64` nanosecond
//! range with ≤ 2× relative error, `record` is one relaxed
//! `fetch_add`, and merge/percentile extraction are pure reads.
//!
//! Bucket `0` holds exactly the value 0 (zero-duration spans are real:
//! a saturating span close produces them); bucket `i ≥ 1` holds
//! `[2^(i-1), 2^i)`, so bucket 64 tops out at `u64::MAX` (recording
//! `u64::MAX` saturates into it rather than wrapping).

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: one zero bucket plus one per power of two.
pub const BUCKETS: usize = 65;

/// Bucket index a value lands in.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Smallest value of bucket `i`.
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Largest value of bucket `i` (inclusive; saturates at `u64::MAX`).
pub fn bucket_ceil(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free log2-bucketed histogram of `u64` samples.
///
/// All operations are wait-free except the saturating `sum` update
/// (a bounded CAS loop, still lock-free). Concurrent `record`,
/// `merge_from` and `snapshot` calls are all safe; a snapshot taken
/// mid-record is a legal historical state (counts are only ever
/// added to).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram. `const` so registries can embed histograms
    /// in statics and fixed arrays without lazy init.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free; callable from any thread.
    pub fn record(&self, v: u64) {
        // ordering: Relaxed — pure statistics: buckets/count/sum are
        // independent monotone counters with no payload behind them;
        // readers take an advisory snapshot, never a synchronized one.
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — same advisory-counter contract.
        self.count.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — same advisory-counter contract; the CAS
        // loop is only for saturation, not synchronization.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
    }

    /// Adds every bucket of `other` into `self`. Lock-free; a merge
    /// racing a `record` on either side loses or gains whole samples,
    /// never tears one.
    pub fn merge_from(&self, other: &Histogram) {
        let snap = other.snapshot();
        for (b, &n) in self.buckets.iter().zip(snap.buckets.iter()) {
            if n > 0 {
                // ordering: Relaxed — advisory-counter contract (see
                // `record`).
                b.fetch_add(n, Ordering::Relaxed);
            }
        }
        // ordering: Relaxed — advisory-counter contract.
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        // ordering: Relaxed — advisory-counter contract.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(snap.sum))
            });
    }

    /// A plain-value copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            // ordering: Relaxed — advisory-counter contract; the
            // snapshot is a statistical reading, not a consistency
            // point.
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            // ordering: Relaxed — advisory-counter contract.
            count: self.count.load(Ordering::Relaxed),
            // ordering: Relaxed — advisory-counter contract.
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Nearest-rank quantile estimate; see
    /// [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// `(p50, p90, p99)` in one snapshot.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        let s = self.snapshot();
        (s.quantile(0.50), s.quantile(0.90), s.quantile(0.99))
    }
}

/// Plain-value histogram state (what `snapshot` returns).
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see the module docs for bounds).
    pub buckets: [u64; BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Nearest-rank quantile: the upper bound of the bucket holding
    /// the `ceil(q·count)`-th smallest sample. Exact for bucket-0
    /// (all-zero) populations; within one log2 bucket (≤ 2× relative
    /// error) otherwise. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_ceil(i);
            }
        }
        bucket_ceil(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_floor(i)), i, "floor of bucket {i}");
            assert_eq!(bucket_of(bucket_ceil(i)), i, "ceil of bucket {i}");
        }
        for i in 1..BUCKETS {
            assert_eq!(
                bucket_floor(i),
                bucket_ceil(i - 1) + 1,
                "gap between buckets {} and {}",
                i - 1,
                i
            );
        }
    }

    #[test]
    fn record_and_quantiles_on_a_known_shape() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.sum, 1535);
        // Rank 5 of 10 is the sample 16 → bucket [16, 31].
        assert_eq!(s.quantile(0.5), 31);
        // Rank 10 is 1024 → bucket [1024, 2047].
        assert_eq!(s.quantile(0.99), 2047);
        assert_eq!(s.quantile(1.0), 2047);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }
}
