//! The live metrics registry: padded atomic counters and gauges the
//! collector folds drained spans into, plus the latency histograms.
//!
//! Everything is preallocated at construction ([`MetricsRegistry::new`]
//! sizes the per-island slot table once); after that, folding a span
//! ([`MetricsRegistry::absorb`]) is a handful of relaxed `fetch_add`s
//! and a histogram record — **no allocation, no locks** — which is what
//! lets the collector run inside the release zero-allocation pin.
//! Scrape-side reads ([`MetricsRegistry::snapshot`]) copy plain values
//! and may allocate; they run on the serving thread, never on the
//! collector or a worker.
//!
//! Counters are monotone (Prometheus `_total` semantics); gauges are
//! last-or-max-wins. A scrape racing the collector sees a legal
//! historical state — per-counter atomicity is all the exposition
//! format promises.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::{now_ns, SpanKind, TaggedEvent, NO_ISLAND};
use std::sync::atomic::{AtomicU64, Ordering};

/// A cacheline-padded atomic counter/gauge. The padding keeps the
/// collector's hot adds from false-sharing with neighbouring counters
/// a scrape thread is reading.
#[derive(Debug)]
#[repr(align(64))]
pub struct PadCounter(AtomicU64);

impl PadCounter {
    /// Zeroed counter.
    pub const fn new() -> PadCounter {
        PadCounter(AtomicU64::new(0))
    }

    /// Monotone add.
    pub fn add(&self, v: u64) {
        if v > 0 {
            // ordering: Relaxed — advisory statistics: every counter is
            // an independent monotone value with no payload guarded by
            // it; scrapes read a legal historical state.
            self.0.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Max-wins gauge update (used for `current_step` / worker counts).
    pub fn max(&self, v: u64) {
        // ordering: Relaxed — advisory gauge, same contract as `add`.
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — advisory read, same contract as `add`.
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for PadCounter {
    fn default() -> PadCounter {
        PadCounter::new()
    }
}

/// Per-island counter block. One collector thread writes, scrapes
/// read; the block is cacheline-aligned as a unit.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct IslandSlot {
    /// Kernel (stencil sweep) time.
    pub kernel_ns: PadCounter,
    /// Team-barrier wait time.
    pub team_barrier_ns: PadCounter,
    /// Global-barrier wait time.
    pub global_barrier_ns: PadCounter,
    /// Serial swap time.
    pub swap_ns: PadCounter,
    /// Plan refill time.
    pub refill_ns: PadCounter,
    /// Halo exchange traffic time.
    pub exchange_ns: PadCounter,
    /// Cells computed (kernel `aux[0]`).
    pub computed_cells: PadCounter,
    /// Redundant halo cells recomputed (kernel `aux[1]`).
    pub redundant_cells: PadCounter,
    /// Gauge: highest rank seen + 1.
    pub workers: PadCounter,
    /// Spans folded into this island.
    pub events: PadCounter,
}

/// Plain-value copy of one island's counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct IslandSnapshot {
    /// Island index.
    pub island: u32,
    /// See [`IslandSlot`] for field meanings.
    pub kernel_ns: u64,
    /// Team-barrier wait time.
    pub team_barrier_ns: u64,
    /// Global-barrier wait time.
    pub global_barrier_ns: u64,
    /// Serial swap time.
    pub swap_ns: u64,
    /// Plan refill time.
    pub refill_ns: u64,
    /// Halo exchange traffic time.
    pub exchange_ns: u64,
    /// Cells computed.
    pub computed_cells: u64,
    /// Redundant halo cells recomputed.
    pub redundant_cells: u64,
    /// Gauge: highest rank seen + 1.
    pub workers: u64,
    /// Spans folded into this island.
    pub events: u64,
}

/// The registry: fixed per-island slots plus run-wide counters,
/// gauges and histograms.
#[derive(Debug)]
pub struct MetricsRegistry {
    islands: Box<[IslandSlot]>,
    /// Per-step wall-time distribution (closed by the collector's
    /// step tracker).
    pub step_ns: Histogram,
    /// Individual kernel-span durations.
    pub kernel_span_ns: Histogram,
    /// Individual barrier-span durations (team + global).
    pub barrier_span_ns: Histogram,
    current_step: PadCounter,
    dropped_events: PadCounter,
    unpublished: PadCounter,
    dispatch_ns: PadCounter,
    events_folded: PadCounter,
    start_ns: u64,
}

impl MetricsRegistry {
    /// A registry with `max_islands` preallocated island slots. Spans
    /// tagged with an island index beyond the table fold into the
    /// run-wide counters only (never dropped silently — they still
    /// count in `events_folded`).
    pub fn new(max_islands: usize) -> MetricsRegistry {
        MetricsRegistry {
            islands: (0..max_islands.max(1))
                .map(|_| IslandSlot::default())
                .collect(),
            step_ns: Histogram::new(),
            kernel_span_ns: Histogram::new(),
            barrier_span_ns: Histogram::new(),
            current_step: PadCounter::new(),
            dropped_events: PadCounter::new(),
            unpublished: PadCounter::new(),
            dispatch_ns: PadCounter::new(),
            events_folded: PadCounter::new(),
            start_ns: now_ns(),
        }
    }

    /// Number of preallocated island slots.
    pub fn island_capacity(&self) -> usize {
        self.islands.len()
    }

    /// Folds one drained span. Allocation-free and lock-free.
    pub fn absorb(&self, t: &TaggedEvent) {
        let ev = &t.ev;
        self.events_folded.add(1);
        if ev.kind == SpanKind::Dispatch || ev.island == NO_ISLAND {
            if ev.kind == SpanKind::Dispatch {
                self.dispatch_ns.add(ev.dur_ns);
            }
            return;
        }
        self.current_step.max(ev.step as u64);
        let Some(slot) = self.islands.get(ev.island as usize) else {
            return;
        };
        slot.events.add(1);
        slot.workers.max(ev.rank as u64 + 1);
        match ev.kind {
            SpanKind::Kernel => {
                slot.kernel_ns.add(ev.dur_ns);
                slot.computed_cells.add(ev.aux[0]);
                slot.redundant_cells.add(ev.aux[1]);
                self.kernel_span_ns.record(ev.dur_ns);
            }
            SpanKind::TeamBarrier => {
                slot.team_barrier_ns.add(ev.dur_ns);
                self.barrier_span_ns.record(ev.dur_ns);
            }
            SpanKind::GlobalBarrier => {
                slot.global_barrier_ns.add(ev.dur_ns);
                self.barrier_span_ns.record(ev.dur_ns);
            }
            SpanKind::Swap => slot.swap_ns.add(ev.dur_ns),
            SpanKind::Refill => slot.refill_ns.add(ev.dur_ns),
            SpanKind::Exchange => slot.exchange_ns.add(ev.dur_ns),
            SpanKind::Dispatch => unreachable!("handled above"),
        }
    }

    /// Gauge hook for the replay loop: advances the live `current_step`
    /// gauge ahead of the (batched) collector so a scrape mid-step sees
    /// where the run actually is.
    pub fn note_step(&self, step: u32) {
        self.current_step.max(step as u64);
    }

    /// Adds ring-wrap losses reported by a collect pass.
    pub fn add_dropped(&self, n: u64) {
        self.dropped_events.add(n);
    }

    /// Adds protocol-violation counts (always 0 under the shipped
    /// orderings; exposed so a nonzero value is loud, not silent).
    pub fn add_unpublished(&self, n: u64) {
        self.unpublished.add(n);
    }

    /// Plain-value copy of everything (scrape-side; allocates).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let islands: Vec<IslandSnapshot> = self
            .islands
            .iter()
            .enumerate()
            .filter(|(_, s)| s.events.get() > 0)
            .map(|(i, s)| IslandSnapshot {
                island: i as u32,
                kernel_ns: s.kernel_ns.get(),
                team_barrier_ns: s.team_barrier_ns.get(),
                global_barrier_ns: s.global_barrier_ns.get(),
                swap_ns: s.swap_ns.get(),
                refill_ns: s.refill_ns.get(),
                exchange_ns: s.exchange_ns.get(),
                computed_cells: s.computed_cells.get(),
                redundant_cells: s.redundant_cells.get(),
                workers: s.workers.get(),
                events: s.events.get(),
            })
            .collect();
        RegistrySnapshot {
            islands,
            step_ns: self.step_ns.snapshot(),
            kernel_span_ns: self.kernel_span_ns.snapshot(),
            barrier_span_ns: self.barrier_span_ns.snapshot(),
            current_step: self.current_step.get(),
            dropped_events: self.dropped_events.get(),
            unpublished: self.unpublished.get(),
            dispatch_ns: self.dispatch_ns.get(),
            events_folded: self.events_folded.get(),
            elapsed_ns: now_ns().saturating_sub(self.start_ns).max(1),
        }
    }
}

/// Plain-value copy of the whole registry at one scrape.
#[derive(Clone, Debug)]
pub struct RegistrySnapshot {
    /// Islands that have folded at least one span, by index.
    pub islands: Vec<IslandSnapshot>,
    /// Per-step wall-time distribution.
    pub step_ns: HistogramSnapshot,
    /// Kernel-span duration distribution.
    pub kernel_span_ns: HistogramSnapshot,
    /// Barrier-span duration distribution.
    pub barrier_span_ns: HistogramSnapshot,
    /// Gauge: newest time step seen.
    pub current_step: u64,
    /// Events lost to ring wrap (counted, never silent).
    pub dropped_events: u64,
    /// Drain-protocol violations (0 under the shipped orderings).
    pub unpublished: u64,
    /// Pool dispatch time (caller-thread spans).
    pub dispatch_ns: u64,
    /// Total spans folded.
    pub events_folded: u64,
    /// Nanoseconds since the registry was constructed (≥ 1).
    pub elapsed_ns: u64,
}

impl RegistrySnapshot {
    /// Computed cells per second across all islands, over the
    /// registry's lifetime.
    pub fn cells_per_second(&self) -> f64 {
        let cells: u64 = self.islands.iter().map(|i| i.computed_cells).sum();
        cells as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// Max/mean per-worker kernel-time ratio across active islands
    /// (1.0 = perfectly balanced). `None` with no active islands.
    pub fn imbalance(&self) -> Option<f64> {
        let per_worker: Vec<f64> = self
            .islands
            .iter()
            .filter(|i| i.workers > 0)
            .map(|i| i.kernel_ns as f64 / i.workers as f64)
            .collect();
        if per_worker.is_empty() {
            return None;
        }
        let mean = per_worker.iter().sum::<f64>() / per_worker.len() as f64;
        if mean <= 0.0 {
            return None;
        }
        let max = per_worker.iter().cloned().fold(0.0f64, f64::max);
        Some(max / mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    fn tagged(
        kind: SpanKind,
        island: u32,
        rank: u32,
        step: u32,
        dur: u64,
        aux0: u64,
    ) -> TaggedEvent {
        TaggedEvent {
            thread: 0,
            ev: Event {
                kind,
                start_ns: 0,
                dur_ns: dur,
                aux: [aux0, 0, 0],
                island,
                rank,
                step,
                stage: 0,
                block: 0,
            },
        }
    }

    #[test]
    fn absorb_routes_spans_to_island_counters() {
        let r = MetricsRegistry::new(4);
        r.absorb(&tagged(SpanKind::Kernel, 1, 2, 5, 100, 640));
        r.absorb(&tagged(SpanKind::TeamBarrier, 1, 0, 5, 40, 0));
        r.absorb(&tagged(SpanKind::Swap, 0, 0, 6, 7, 0));
        r.absorb(&tagged(SpanKind::Dispatch, NO_ISLAND, 0, 0, 9, 0));
        let s = r.snapshot();
        assert_eq!(s.islands.len(), 2);
        let i1 = s.islands.iter().find(|i| i.island == 1).unwrap();
        assert_eq!(i1.kernel_ns, 100);
        assert_eq!(i1.computed_cells, 640);
        assert_eq!(i1.team_barrier_ns, 40);
        assert_eq!(i1.workers, 3);
        assert_eq!(s.current_step, 6);
        assert_eq!(s.dispatch_ns, 9);
        assert_eq!(s.events_folded, 4);
        assert_eq!(s.kernel_span_ns.count, 1);
        assert_eq!(s.barrier_span_ns.count, 1);
    }

    #[test]
    fn out_of_range_island_is_counted_not_dropped() {
        let r = MetricsRegistry::new(2);
        r.absorb(&tagged(SpanKind::Kernel, 40, 0, 0, 10, 1));
        let s = r.snapshot();
        assert!(s.islands.is_empty());
        assert_eq!(s.events_folded, 1);
    }

    #[test]
    fn imbalance_and_rate_derivations() {
        let r = MetricsRegistry::new(2);
        r.absorb(&tagged(SpanKind::Kernel, 0, 0, 0, 300, 30));
        r.absorb(&tagged(SpanKind::Kernel, 1, 0, 0, 100, 10));
        let s = r.snapshot();
        // Per-worker kernel: [300, 100]; mean 200; max/mean = 1.5.
        assert!((s.imbalance().unwrap() - 1.5).abs() < 1e-12);
        assert!(s.cells_per_second() > 0.0);
    }
}
