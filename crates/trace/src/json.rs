//! Minimal JSON reader/writer shared by trace export and the bench
//! artifacts.
//!
//! The hermetic build rules out `serde_json`; the only JSON this
//! workspace ever parses back is what it wrote itself (bench records,
//! Chrome traces), so a small recursive-descent parser covering the
//! full JSON grammar (objects, arrays, strings with escapes, numbers,
//! booleans, null) plus a compact renderer is all that is needed.
//!
//! # Non-finite numbers
//!
//! JSON has no NaN or infinity. Both directions are explicit about it:
//! [`render`] and [`render_f64`] return [`NonFiniteError`] instead of
//! emitting the invalid tokens `NaN` / `inf`, and [`parse`] reports a
//! dedicated message when the input contains the JavaScript spellings
//! (`NaN`, `Infinity`) that lenient writers produce.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number, when this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, when this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders this value as one compact JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`NonFiniteError`] if any number in the tree is NaN or
    /// infinite — JSON cannot represent them, and emitting `NaN` would
    /// produce a document our own [`parse`] (rightly) rejects.
    pub fn render(&self) -> Result<String, NonFiniteError> {
        let mut out = String::new();
        self.render_into(&mut out)?;
        Ok(out)
    }

    fn render_into(&self, out: &mut String) -> Result<(), NonFiniteError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => out.push_str(&render_f64(*x)?),
            Json::Str(s) => render_str(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out)?;
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }
}

/// A number that JSON cannot represent (NaN or ±infinity).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NonFiniteError {
    /// The offending value.
    pub value: f64,
}

impl fmt::Display for NonFiniteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot render {} as JSON: only finite numbers are representable",
            self.value
        )
    }
}

impl std::error::Error for NonFiniteError {}

/// Renders one number as a JSON token that round-trips through
/// [`parse`]: integral values in `i64` range print without a fraction,
/// everything else uses Rust's shortest round-trip representation.
///
/// # Errors
///
/// Returns [`NonFiniteError`] for NaN and ±infinity.
pub fn render_f64(x: f64) -> Result<String, NonFiniteError> {
    if !x.is_finite() {
        return Err(NonFiniteError { value: x });
    }
    if x == x.trunc() && x.abs() < 9.0e15 {
        // Exactly representable integers render without `.0` so bench
        // artifacts keep their historical `"iters": 7` shape.
        return Ok(format!("{}", x as i64));
    }
    // `{:?}` on f64 is the shortest string that parses back to the
    // same bits — exactly the round-trip guarantee JSON needs.
    Ok(format!("{x:?}"))
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first offending byte.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    /// Points at a non-finite spelling lenient writers emit?
    fn at_non_finite(&self) -> bool {
        let rest = &self.bytes[self.pos..];
        rest.starts_with(b"NaN")
            || rest.starts_with(b"Infinity")
            || rest.starts_with(b"-Infinity")
            || rest.starts_with(b"inf")
            || rest.starts_with(b"-inf")
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        if self.at_non_finite() {
            return Err(self.err(
                "non-finite number (NaN/Infinity) is not valid JSON; \
                 the writer must reject it before emitting",
            ));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs never appear in our own
                            // artifacts; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by
                    // construction of `&str`).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"[{"a": 1.5, "b": [true, null, "x\ny"]}, -2e3]"#).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr[0].get("a").unwrap().as_f64(), Some(1.5));
        let inner = arr[0].get("b").unwrap().as_array().unwrap();
        assert_eq!(inner[0], Json::Bool(true));
        assert_eq!(inner[1], Json::Null);
        assert_eq!(inner[2].as_str(), Some("x\ny"));
        assert_eq!(arr[1].as_f64(), Some(-2000.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "[1,", "{\"a\" 1}", "[1] trailing", "\"open", "01a"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Object(vec![]));
    }

    #[test]
    fn non_finite_spellings_get_a_dedicated_error() {
        for bad in ["NaN", "[1, NaN]", "{\"x\": Infinity}", "-Infinity", "inf"] {
            let err = parse(bad).expect_err(bad);
            assert!(
                err.message.contains("non-finite"),
                "{bad:?} -> {}",
                err.message
            );
        }
    }

    #[test]
    fn render_rejects_non_finite_numbers() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(render_f64(x).is_err(), "{x}");
            let doc = Json::Array(vec![Json::Num(1.0), Json::Num(x)]);
            let err = doc.render().expect_err("must reject");
            assert!(err.to_string().contains("finite"), "{err}");
        }
    }

    #[test]
    fn numbers_round_trip() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -17.0,
            1.5,
            0.1,
            1e300,
            -2.5e-9,
            123456789.125,
            9.007199254740991e15,
        ] {
            let text = render_f64(x).unwrap();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back, x, "{x} rendered as {text}");
        }
        // Integral values keep the historical integer shape.
        assert_eq!(render_f64(7.0).unwrap(), "7");
        assert_eq!(render_f64(-3.0).unwrap(), "-3");
        assert_eq!(render_f64(1.5).unwrap(), "1.5");
    }

    #[test]
    fn documents_round_trip() {
        let doc = Json::Object(vec![
            ("name".into(), Json::Str("a\"b\\c\nd\u{1}".into())),
            (
                "xs".into(),
                Json::Array(vec![Json::Num(1.0), Json::Bool(false), Json::Null]),
            ),
            ("nested".into(), Json::Object(vec![])),
        ]);
        let text = doc.render().unwrap();
        assert_eq!(parse(&text).unwrap(), doc);
    }
}
