//! Chrome trace-event export (`chrome://tracing` / Perfetto) plus an
//! in-repo validator for round-trip checks.
//!
//! # Schema
//!
//! One JSON object `{"traceEvents": [...]}`. Every recorded span
//! becomes one complete event (`"ph": "X"`):
//!
//! * `pid` — island + 1 (Chrome groups rows by process); events
//!   recorded outside any island ([`NO_ISLAND`], e.g. pool dispatch)
//!   use `pid` 0. Process-name metadata events label each pid.
//! * `tid` — the recording thread's registration index.
//! * `ts` / `dur` — microseconds (fractional), from the session epoch.
//! * `name` — the stage name for kernel spans (caller-provided table,
//!   falling back to `stage<N>`), the [`SpanKind::category`] otherwise.
//! * `cat` — [`SpanKind::category`].
//! * `args` — step/stage/block/rank plus kind-specific payload:
//!   `cells`/`redundant` on kernels, `spin_ns`/`yield_ns`/`park_ns` on
//!   barriers.

use crate::json::{parse, Json};
use crate::{Drained, SpanKind, NO_ISLAND};
use std::collections::BTreeMap;

/// Renders a drained session as a Chrome trace-event JSON document.
///
/// `stage_names[i]` labels kernel spans of stage `i`; out-of-range
/// stages fall back to `stage<N>`.
pub fn export(drained: &Drained, stage_names: &[&str]) -> String {
    let mut events = Vec::with_capacity(drained.events.len() + 8);
    // Process-name metadata rows, one per pid in use.
    let mut pids: Vec<u32> = drained.events.iter().map(|t| pid_of(t.ev.island)).collect();
    pids.sort_unstable();
    pids.dedup();
    for pid in pids {
        let label = if pid == 0 {
            "driver".to_string()
        } else {
            format!("island {}", pid - 1)
        };
        events.push(Json::Object(vec![
            ("name".into(), Json::Str("process_name".into())),
            ("ph".into(), Json::Str("M".into())),
            ("pid".into(), Json::Num(f64::from(pid))),
            ("tid".into(), Json::Num(0.0)),
            (
                "args".into(),
                Json::Object(vec![("name".into(), Json::Str(label))]),
            ),
        ]));
    }
    for t in &drained.events {
        let ev = &t.ev;
        let name = match ev.kind {
            SpanKind::Kernel => stage_names
                .get(usize::from(ev.stage))
                .map_or_else(|| format!("stage{}", ev.stage), |s| (*s).to_string()),
            kind => kind.category().to_string(),
        };
        let mut args = vec![
            ("step".into(), Json::Num(f64::from(ev.step))),
            ("rank".into(), Json::Num(f64::from(ev.rank))),
        ];
        match ev.kind {
            SpanKind::Kernel => {
                args.push(("stage".into(), Json::Num(f64::from(ev.stage))));
                args.push(("block".into(), Json::Num(f64::from(ev.block))));
                args.push(("cells".into(), Json::Num(ev.aux[0] as f64)));
                args.push(("redundant".into(), Json::Num(ev.aux[1] as f64)));
            }
            SpanKind::TeamBarrier | SpanKind::GlobalBarrier => {
                args.push(("spin_ns".into(), Json::Num(ev.aux[0] as f64)));
                args.push(("yield_ns".into(), Json::Num(ev.aux[1] as f64)));
                args.push(("park_ns".into(), Json::Num(ev.aux[2] as f64)));
            }
            SpanKind::Dispatch => {
                args.push(("workers".into(), Json::Num(ev.aux[0] as f64)));
            }
            _ => {}
        }
        events.push(Json::Object(vec![
            ("name".into(), Json::Str(name)),
            ("cat".into(), Json::Str(ev.kind.category().into())),
            ("ph".into(), Json::Str("X".into())),
            ("ts".into(), Json::Num(ev.start_ns as f64 / 1000.0)),
            ("dur".into(), Json::Num(ev.dur_ns as f64 / 1000.0)),
            ("pid".into(), Json::Num(f64::from(pid_of(ev.island)))),
            ("tid".into(), Json::Num(f64::from(t.thread))),
            ("args".into(), Json::Object(args)),
        ]));
    }
    Json::Object(vec![("traceEvents".into(), Json::Array(events))])
        .render()
        .expect("trace events contain only finite numbers")
}

fn pid_of(island: u32) -> u32 {
    if island == NO_ISLAND {
        0
    } else {
        island + 1
    }
}

/// What a validated trace contains, per category.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChromeSummary {
    /// Complete (`"X"`) events seen.
    pub complete_events: usize,
    /// `(category, (count, total µs))`, sorted by category.
    pub per_category: BTreeMap<String, (usize, f64)>,
    /// Distinct pids with complete events (i.e. islands + driver).
    pub pids: Vec<u32>,
}

impl ChromeSummary {
    /// Total duration (µs) of one category, 0.0 if absent.
    pub fn category_us(&self, cat: &str) -> f64 {
        self.per_category.get(cat).map_or(0.0, |(_, us)| *us)
    }
}

/// Parses and structurally validates a Chrome trace-event document
/// produced by [`export`] (or any compatible writer).
///
/// # Errors
///
/// Returns a description of the first structural violation: not an
/// object, missing/empty `traceEvents`, an event that is not an
/// object, a missing/mistyped field, a non-finite or negative
/// timestamp/duration, or a non-integral pid/tid.
pub fn validate(text: &str) -> Result<ChromeSummary, String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing `traceEvents` member")?
        .as_array()
        .ok_or("`traceEvents` is not an array")?;
    if events.is_empty() {
        return Err("`traceEvents` is empty".into());
    }
    let mut summary = ChromeSummary::default();
    for (i, ev) in events.iter().enumerate() {
        let ctx = |field: &str| format!("event {i}: bad `{field}`");
        if !matches!(ev, Json::Object(_)) {
            return Err(format!("event {i}: not an object"));
        }
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("name"))?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| ctx("ph"))?;
        let pid = int_field(ev, "pid").ok_or_else(|| ctx("pid"))?;
        int_field(ev, "tid").ok_or_else(|| ctx("tid"))?;
        match ph {
            "M" => continue, // metadata rows carry no ts/dur
            "X" => {}
            other => return Err(format!("event {i} ({name}): unsupported ph {other:?}")),
        }
        let ts = finite_field(ev, "ts").ok_or_else(|| ctx("ts"))?;
        let dur = finite_field(ev, "dur").ok_or_else(|| ctx("dur"))?;
        if ts < 0.0 || dur < 0.0 {
            return Err(format!("event {i} ({name}): negative ts/dur"));
        }
        let cat = ev
            .get("cat")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        summary.complete_events += 1;
        let entry = summary.per_category.entry(cat).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += dur;
        if !summary.pids.contains(&(pid as u32)) {
            summary.pids.push(pid as u32);
        }
    }
    if summary.complete_events == 0 {
        return Err("trace has metadata but no complete events".into());
    }
    summary.pids.sort_unstable();
    Ok(summary)
}

fn finite_field(ev: &Json, key: &str) -> Option<f64> {
    ev.get(key).and_then(Json::as_f64).filter(|x| x.is_finite())
}

fn int_field(ev: &Json, key: &str) -> Option<u64> {
    finite_field(ev, key)
        .filter(|x| *x >= 0.0 && x.trunc() == *x)
        .map(|x| x as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, TaggedEvent};

    fn drained() -> Drained {
        let mk = |kind, start, dur, island, stage, aux| TaggedEvent {
            thread: 0,
            ev: Event {
                kind,
                start_ns: start,
                dur_ns: dur,
                aux,
                island,
                rank: 0,
                step: 0,
                stage,
                block: 1,
            },
        };
        Drained {
            events: vec![
                mk(SpanKind::Dispatch, 0, 5000, NO_ISLAND, 0, [2, 0, 0]),
                mk(SpanKind::Kernel, 100, 1500, 0, 1, [640, 64, 0]),
                mk(SpanKind::TeamBarrier, 1600, 200, 0, 0, [150, 50, 0]),
                mk(SpanKind::Kernel, 100, 1400, 1, 0, [640, 0, 0]),
                mk(SpanKind::Swap, 1800, 300, 1, 0, [0; 3]),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn export_round_trips_through_validate() {
        let text = export(&drained(), &["upwind", "flux"]);
        let summary = validate(&text).expect("export output must validate");
        assert_eq!(summary.complete_events, 5);
        assert_eq!(summary.pids, vec![0, 1, 2]);
        assert_eq!(summary.per_category["kernel"].0, 2);
        assert!((summary.category_us("kernel") - 2.9).abs() < 1e-9);
        assert!((summary.category_us("swap") - 0.3).abs() < 1e-9);
        // Stage names resolve through the table; stage 1 -> "flux".
        assert!(text.contains("\"flux\""), "{text}");
        assert!(text.contains("\"upwind\""), "{text}");
        // Missing-table fallback.
        let text2 = export(&drained(), &[]);
        assert!(text2.contains("\"stage0\""), "{text2}");
    }

    #[test]
    fn validate_rejects_structural_violations() {
        for (bad, why) in [
            ("[]", "not an object"),
            ("{}", "missing traceEvents"),
            (r#"{"traceEvents": 3}"#, "not an array"),
            (r#"{"traceEvents": []}"#, "empty"),
            (r#"{"traceEvents": [7]}"#, "event not an object"),
            (
                r#"{"traceEvents": [{"ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": 1}]}"#,
                "missing name",
            ),
            (
                r#"{"traceEvents": [{"name": "k", "ph": "X", "pid": 0, "tid": 0, "ts": -1, "dur": 1}]}"#,
                "negative ts",
            ),
            (
                r#"{"traceEvents": [{"name": "k", "ph": "B", "pid": 0, "tid": 0, "ts": 0}]}"#,
                "unsupported ph",
            ),
            (
                r#"{"traceEvents": [{"name": "k", "ph": "X", "pid": 1.5, "tid": 0, "ts": 0, "dur": 1}]}"#,
                "fractional pid",
            ),
            (
                r#"{"traceEvents": [{"name": "m", "ph": "M", "pid": 0, "tid": 0}]}"#,
                "metadata only",
            ),
        ] {
            assert!(validate(bad).is_err(), "{why}: {bad}");
        }
    }
}
