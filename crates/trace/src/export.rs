//! Exposition formats for the live metrics registry: Prometheus text
//! format and a strict-JSON snapshot.
//!
//! The Prometheus renderer emits text exposition format 0.0.4
//! (`# HELP`/`# TYPE` headers, `name{labels} value` samples, cumulative
//! histogram buckets with a final `+Inf`). [`validate_exposition`] is
//! the matching parser — CI's `telemetry-smoke` job scrapes a live run
//! twice and validates syntax plus counter monotonicity through it, so
//! renderer and validator are kept in one file and round-trip tested.
//!
//! The JSON snapshot goes through the strict [`crate::json`] renderer:
//! any NaN/infinity in a derived rate is a hard error, never a
//! silently-invalid document.

use crate::histogram::{bucket_ceil, HistogramSnapshot};
use crate::json::{self, Json, NonFiniteError};
use crate::registry::RegistrySnapshot;
use std::fmt::Write as _;

/// One parsed sample line of an exposition document.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Raw label block, braces stripped; empty when absent.
    pub labels: String,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// Stable identity for cross-scrape comparison.
    pub fn key(&self) -> String {
        format!("{}{{{}}}", self.name, self.labels)
    }
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn push_header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn push_f64(out: &mut String, name: &str, labels: &str, v: f64) -> Result<(), NonFiniteError> {
    // The strict renderer is the non-finite gate for float gauges.
    let text = json::render_f64(v)?;
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {text}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {text}");
    }
    Ok(())
}

fn push_u64(out: &mut String, name: &str, labels: &str, v: u64) {
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {v}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {v}");
    }
}

fn push_histogram(out: &mut String, name: &str, help: &str, h: &HistogramSnapshot) {
    push_header(out, name, help, "histogram");
    let mut cumulative = 0u64;
    let last_nonzero = h.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
    for (i, &n) in h.buckets.iter().enumerate().take(last_nonzero + 1) {
        cumulative += n;
        let le = bucket_ceil(i);
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    push_u64(out, &format!("{name}_sum"), "", h.sum);
    push_u64(out, &format!("{name}_count"), "", h.count);
}

fn push_quantiles(out: &mut String, base: &str, help: &str, h: &HistogramSnapshot) {
    for (p, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
        let name = format!("{base}_{p}_ns");
        push_header(out, &name, help, "gauge");
        push_u64(out, &name, "", h.quantile(q));
    }
}

/// One per-island counter column of the exposition: metric name, help
/// text, and the snapshot accessor it samples.
type IslandCounter = (
    &'static str,
    &'static str,
    fn(&crate::registry::IslandSnapshot) -> u64,
);

/// Renders a registry snapshot as Prometheus text exposition format.
///
/// Returns [`NonFiniteError`] if a derived rate (cells/s, imbalance)
/// is non-finite — the same strictness contract as the JSON path.
pub fn prometheus(s: &RegistrySnapshot) -> Result<String, NonFiniteError> {
    let mut out = String::new();
    let island_counters: [IslandCounter; 9] = [
        (
            "islands_kernel_ns_total",
            "Kernel (stencil sweep) time per island, ns",
            |i| i.kernel_ns,
        ),
        (
            "islands_team_barrier_ns_total",
            "Team-barrier wait time per island, ns",
            |i| i.team_barrier_ns,
        ),
        (
            "islands_global_barrier_ns_total",
            "Global-barrier wait time per island, ns",
            |i| i.global_barrier_ns,
        ),
        (
            "islands_swap_ns_total",
            "Serial swap time per island, ns",
            |i| i.swap_ns,
        ),
        (
            "islands_refill_ns_total",
            "Plan refill time per island, ns",
            |i| i.refill_ns,
        ),
        (
            "islands_exchange_ns_total",
            "Halo exchange time per island, ns",
            |i| i.exchange_ns,
        ),
        (
            "islands_computed_cells_total",
            "Cells computed per island",
            |i| i.computed_cells,
        ),
        (
            "islands_redundant_cells_total",
            "Redundant halo cells recomputed per island",
            |i| i.redundant_cells,
        ),
        (
            "islands_events_total",
            "Trace spans folded per island",
            |i| i.events,
        ),
    ];
    for (name, help, get) in island_counters {
        push_header(&mut out, name, help, "counter");
        for island in &s.islands {
            push_u64(
                &mut out,
                name,
                &format!("island=\"{}\"", island.island),
                get(island),
            );
        }
    }
    push_header(
        &mut out,
        "islands_workers",
        "Workers observed per island",
        "gauge",
    );
    for island in &s.islands {
        push_u64(
            &mut out,
            "islands_workers",
            &format!("island=\"{}\"", island.island),
            island.workers,
        );
    }
    push_header(
        &mut out,
        "islands_current_step",
        "Newest time step observed",
        "gauge",
    );
    push_u64(&mut out, "islands_current_step", "", s.current_step);
    push_header(
        &mut out,
        "islands_dropped_events_total",
        "Trace events lost to ring wrap",
        "counter",
    );
    push_u64(
        &mut out,
        "islands_dropped_events_total",
        "",
        s.dropped_events,
    );
    push_header(
        &mut out,
        "islands_drain_unpublished_total",
        "Concurrent-drain protocol violations (0 by proof)",
        "counter",
    );
    push_u64(
        &mut out,
        "islands_drain_unpublished_total",
        "",
        s.unpublished,
    );
    push_header(
        &mut out,
        "islands_dispatch_ns_total",
        "Pool dispatch time on caller threads, ns",
        "counter",
    );
    push_u64(&mut out, "islands_dispatch_ns_total", "", s.dispatch_ns);
    push_header(
        &mut out,
        "islands_events_folded_total",
        "Trace spans folded by the collector",
        "counter",
    );
    push_u64(&mut out, "islands_events_folded_total", "", s.events_folded);
    push_header(
        &mut out,
        "islands_cells_per_second",
        "Computed-cell rate over the registry lifetime",
        "gauge",
    );
    push_f64(
        &mut out,
        "islands_cells_per_second",
        "",
        s.cells_per_second(),
    )?;
    if let Some(imb) = s.imbalance() {
        push_header(
            &mut out,
            "islands_imbalance_ratio",
            "Max/mean per-worker kernel time across islands",
            "gauge",
        );
        push_f64(&mut out, "islands_imbalance_ratio", "", imb)?;
    }
    push_histogram(
        &mut out,
        "islands_step_duration_ns",
        "Per-step wall time, ns",
        &s.step_ns,
    );
    push_quantiles(
        &mut out,
        "islands_step",
        "Step wall-time quantile, ns",
        &s.step_ns,
    );
    push_histogram(
        &mut out,
        "islands_kernel_span_ns",
        "Kernel span durations, ns",
        &s.kernel_span_ns,
    );
    push_histogram(
        &mut out,
        "islands_barrier_span_ns",
        "Barrier span durations, ns",
        &s.barrier_span_ns,
    );
    Ok(out)
}

// ---------------------------------------------------------------------
// JSON snapshot
// ---------------------------------------------------------------------

fn hist_json(h: &HistogramSnapshot) -> Json {
    Json::Object(vec![
        ("count".into(), Json::Num(h.count as f64)),
        ("sum".into(), Json::Num(h.sum as f64)),
        ("p50".into(), Json::Num(h.quantile(0.50) as f64)),
        ("p90".into(), Json::Num(h.quantile(0.90) as f64)),
        ("p99".into(), Json::Num(h.quantile(0.99) as f64)),
    ])
}

/// Builds the JSON snapshot document for a registry snapshot.
pub fn json_snapshot(s: &RegistrySnapshot) -> Json {
    let islands = s
        .islands
        .iter()
        .map(|i| {
            Json::Object(vec![
                ("island".into(), Json::Num(i.island as f64)),
                ("workers".into(), Json::Num(i.workers as f64)),
                ("kernel_ns".into(), Json::Num(i.kernel_ns as f64)),
                (
                    "team_barrier_ns".into(),
                    Json::Num(i.team_barrier_ns as f64),
                ),
                (
                    "global_barrier_ns".into(),
                    Json::Num(i.global_barrier_ns as f64),
                ),
                ("swap_ns".into(), Json::Num(i.swap_ns as f64)),
                ("refill_ns".into(), Json::Num(i.refill_ns as f64)),
                ("exchange_ns".into(), Json::Num(i.exchange_ns as f64)),
                ("computed_cells".into(), Json::Num(i.computed_cells as f64)),
                (
                    "redundant_cells".into(),
                    Json::Num(i.redundant_cells as f64),
                ),
                ("events".into(), Json::Num(i.events as f64)),
            ])
        })
        .collect();
    Json::Object(vec![
        ("current_step".into(), Json::Num(s.current_step as f64)),
        ("dropped_events".into(), Json::Num(s.dropped_events as f64)),
        ("unpublished".into(), Json::Num(s.unpublished as f64)),
        ("events_folded".into(), Json::Num(s.events_folded as f64)),
        ("dispatch_ns".into(), Json::Num(s.dispatch_ns as f64)),
        ("elapsed_ns".into(), Json::Num(s.elapsed_ns as f64)),
        ("cells_per_second".into(), Json::Num(s.cells_per_second())),
        (
            "imbalance".into(),
            s.imbalance().map(Json::Num).unwrap_or(Json::Null),
        ),
        ("islands".into(), Json::Array(islands)),
        ("step_ns".into(), hist_json(&s.step_ns)),
        ("kernel_span_ns".into(), hist_json(&s.kernel_span_ns)),
        ("barrier_span_ns".into(), hist_json(&s.barrier_span_ns)),
    ])
}

/// Renders the JSON snapshot through the strict renderer (non-finite
/// values are a hard error).
pub fn render_json_snapshot(s: &RegistrySnapshot) -> Result<String, NonFiniteError> {
    json_snapshot(s).render()
}

// ---------------------------------------------------------------------
// Exposition validation
// ---------------------------------------------------------------------

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_labels(block: &str, line_no: usize) -> Result<(), String> {
    // label_name="value" pairs, comma-separated; values may escape
    // \\ \" \n.
    let mut rest = block;
    loop {
        rest = rest.trim_start();
        if rest.is_empty() {
            return Ok(());
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let label = rest[..eq].trim();
        if !valid_metric_name(label) || label.contains(':') {
            return Err(format!("line {line_no}: bad label name {label:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("line {line_no}: label value not quoted"));
        }
        let mut escaped = false;
        let mut end = None;
        for (i, c) in rest.char_indices().skip(1) {
            if escaped {
                if !matches!(c, '\\' | '"' | 'n') {
                    return Err(format!("line {line_no}: bad escape \\{c}"));
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = end.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
        rest = rest[end + 1..].trim_start();
        if rest.starts_with(',') {
            rest = &rest[1..];
        } else if !rest.is_empty() {
            return Err(format!("line {line_no}: junk after label value"));
        }
    }
}

fn parse_value(text: &str) -> Option<f64> {
    match text {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => text.parse::<f64>().ok(),
    }
}

/// Parses and validates a Prometheus text exposition document.
///
/// Checks: header syntax (`# HELP` / `# TYPE` with a known type),
/// metric/label name charsets, quoted-and-escaped label values,
/// parseable sample values, and that every sample belongs to a family
/// declared by a preceding `# TYPE` line. Returns the samples for
/// cross-scrape monotonicity checks.
pub fn validate_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    let mut families: Vec<String> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {line_no}: TYPE without name"))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| format!("line {line_no}: TYPE without type"))?;
                if !valid_metric_name(name) {
                    return Err(format!("line {line_no}: bad metric name {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {line_no}: unknown type {kind:?}"));
                }
                families.push(name.to_string());
            } else if let Some(decl) = rest.strip_prefix("HELP ") {
                let name = decl
                    .split_whitespace()
                    .next()
                    .ok_or_else(|| format!("line {line_no}: HELP without name"))?;
                if !valid_metric_name(name) {
                    return Err(format!("line {line_no}: bad metric name {name:?}"));
                }
            }
            // Other comments are legal and ignored.
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let name_end = line
            .find(|c: char| c == '{' || c.is_whitespace())
            .ok_or_else(|| format!("line {line_no}: sample without value"))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(format!("line {line_no}: bad metric name {name:?}"));
        }
        let mut labels = "";
        let value_part;
        if line[name_end..].starts_with('{') {
            let close = line[name_end..]
                .find('}')
                .ok_or_else(|| format!("line {line_no}: unterminated label block"))?;
            labels = &line[name_end + 1..name_end + close];
            parse_labels(labels, line_no)?;
            value_part = line[name_end + close + 1..].trim();
        } else {
            value_part = line[name_end..].trim();
        }
        let mut fields = value_part.split_whitespace();
        let value_text = fields
            .next()
            .ok_or_else(|| format!("line {line_no}: sample without value"))?;
        let value = parse_value(value_text)
            .ok_or_else(|| format!("line {line_no}: bad value {value_text:?}"))?;
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("line {line_no}: bad timestamp {ts:?}"));
            }
        }
        if fields.next().is_some() {
            return Err(format!("line {line_no}: junk after sample"));
        }
        let in_family = families.iter().any(|f| {
            name == f
                || (name
                    .strip_prefix(f.as_str())
                    .is_some_and(|suffix| matches!(suffix, "_bucket" | "_sum" | "_count")))
        });
        if !in_family {
            return Err(format!(
                "line {line_no}: sample {name:?} has no preceding # TYPE declaration"
            ));
        }
        samples.push(Sample {
            name: name.to_string(),
            labels: labels.to_string(),
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use crate::{Event, SpanKind, TaggedEvent};

    fn populated_registry() -> MetricsRegistry {
        let r = MetricsRegistry::new(2);
        for (island, dur) in [(0u32, 120u64), (1, 80)] {
            r.absorb(&TaggedEvent {
                thread: island,
                ev: Event {
                    kind: SpanKind::Kernel,
                    start_ns: 0,
                    dur_ns: dur,
                    aux: [100, 5, 0],
                    island,
                    rank: 0,
                    step: 3,
                    stage: 1,
                    block: 0,
                },
            });
        }
        r.step_ns.record(1000);
        r.step_ns.record(1200);
        r
    }

    #[test]
    fn prometheus_round_trips_through_the_validator() {
        let r = populated_registry();
        let text = prometheus(&r.snapshot()).unwrap();
        let samples = validate_exposition(&text).unwrap();
        let kernel: Vec<_> = samples
            .iter()
            .filter(|s| s.name == "islands_kernel_ns_total")
            .collect();
        assert_eq!(kernel.len(), 2);
        assert_eq!(kernel[0].labels, "island=\"0\"");
        assert_eq!(kernel[0].value, 120.0);
        assert!(samples
            .iter()
            .any(|s| s.name == "islands_current_step" && s.value == 3.0));
        // Histogram cumulative buckets end at the count.
        let inf = samples
            .iter()
            .find(|s| s.name == "islands_step_duration_ns_bucket" && s.labels.contains("+Inf"))
            .unwrap();
        assert_eq!(inf.value, 2.0);
    }

    #[test]
    fn json_snapshot_round_trips_through_strict_parser() {
        let r = populated_registry();
        let text = render_json_snapshot(&r.snapshot()).unwrap();
        let doc = json::parse(&text).unwrap();
        assert_eq!(
            doc.get("islands").and_then(|v| match v {
                Json::Array(a) => Some(a.len()),
                _ => None,
            }),
            Some(2)
        );
        assert!(doc.get("cells_per_second").is_some());
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for (bad, why) in [
            ("islands_x_total 1", "no TYPE declaration"),
            ("# TYPE islands_x counter\nislands_x nope", "bad value"),
            (
                "# TYPE islands_x counter\nislands_x{island=0} 1",
                "unquoted label",
            ),
            ("# TYPE islands_x wat\nislands_x 1", "unknown type"),
            (
                "# TYPE islands_x counter\nislands_x{island=\"0\" 1",
                "unterminated",
            ),
        ] {
            assert!(validate_exposition(bad).is_err(), "accepted: {why}");
        }
    }
}
