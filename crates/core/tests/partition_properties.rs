//! Property tests for partitioning and the extra-element analysis.
//!
//! Hermetic build: the properties are swept over a deterministic,
//! seeded case list (std-only) instead of the external `proptest`
//! crate. The default feature set runs a quick sweep; building with
//! `--features proptest` widens it roughly tenfold. A failing case
//! prints its case index and drawn parameters, which — the stream
//! being a pure function of the seed — reproduces exactly.

use islands_core::{extra_elements, IslandLayout, Partition, Variant};
use mpdata::mpdata_graph;
use numa_sim::UvParams;
use stencil_engine::rng::{Rng64, Xoshiro256pp};
use stencil_engine::Region3;

fn cases(quick: usize) -> usize {
    if cfg!(feature = "proptest") {
        quick * 10
    } else {
        quick
    }
}

/// Any 1-D or 2-D partition disjointly covers the domain.
#[test]
fn partitions_cover_disjointly() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xC0FE_0001);
    for case in 0..cases(48) {
        let ni = 4 + rng.below(36);
        let nj = 4 + rng.below(36);
        let nk = 1 + rng.below(7);
        let pi = 1 + rng.below(5);
        let pj = 1 + rng.below(5);
        let two_d = rng.next_bool();
        let d = Region3::of_extent(ni, nj, nk);
        let p = if two_d {
            Partition::grid2d(d, pi, pj).unwrap()
        } else {
            Partition::one_d(d, Variant::A, pi * pj).unwrap()
        };
        let label = format!("case {case}: {ni}×{nj}×{nk}, pi={pi}, pj={pj}, two_d={two_d}");
        let total: usize = p.parts().iter().map(|r| r.cells()).sum();
        assert_eq!(total, d.cells(), "{label}");
        for (n, a) in p.parts().iter().enumerate() {
            assert!(d.contains_region(*a), "{label}");
            for b in &p.parts()[n + 1..] {
                assert!(!a.overlaps(*b), "{label}");
            }
        }
    }
}

/// Extra elements are monotone in the island count (more cuts can
/// never reduce redundancy) and zero for one island.
#[test]
fn extra_elements_monotone() {
    let (g, _) = mpdata_graph();
    let mut rng = Xoshiro256pp::seed_from_u64(0xC0FE_0002);
    for case in 0..cases(48) {
        let ni = 16 + rng.below(48);
        let nj = 8 + rng.below(24);
        let variant_b = rng.next_bool();
        let d = Region3::of_extent(ni, nj, 4);
        let v = if variant_b { Variant::B } else { Variant::A };
        let mut last = 0usize;
        for n in 1..=4 {
            let e = extra_elements(&g, &Partition::one_d(d, v, n).unwrap());
            assert!(
                e.extra_updates() >= last,
                "case {case} ({ni}×{nj}, {v:?}), islands {n}: {} < {last}",
                e.extra_updates()
            );
            if n == 1 {
                assert_eq!(e.extra_updates(), 0, "case {case}");
            }
            last = e.extra_updates();
        }
    }
}

/// Total updates are invariant under which variant produced the
/// single-island partition (both are the whole domain).
#[test]
fn single_island_variants_agree() {
    let (g, _) = mpdata_graph();
    let mut rng = Xoshiro256pp::seed_from_u64(0xC0FE_0003);
    for case in 0..cases(48) {
        let ni = 8 + rng.below(24);
        let nj = 8 + rng.below(24);
        let d = Region3::of_extent(ni, nj, 4);
        let a = extra_elements(&g, &Partition::one_d(d, Variant::A, 1).unwrap());
        let b = extra_elements(&g, &Partition::one_d(d, Variant::B, 1).unwrap());
        assert_eq!(a, b, "case {case}: {ni}×{nj}");
    }
}

/// Boundary grids the random sweeps would rarely draw: a single
/// island, more islands than the cut axis has cells (some parts are
/// necessarily empty), and prime extents that never divide evenly.
#[test]
fn boundary_grids_partition_soundly() {
    let (g, _) = mpdata_graph();
    // P = 1 on a tiny domain: the partition is the whole domain and
    // carries zero redundancy.
    let tiny = Region3::of_extent(1, 1, 1);
    let p1 = Partition::one_d(tiny, Variant::A, 1).unwrap();
    assert_eq!(p1.parts(), &[tiny]);
    assert_eq!(extra_elements(&g, &p1).extra_updates(), 0);

    // P > nx: the split must still disjointly cover, with the surplus
    // islands holding empty parts (and never negative-extent regions).
    for (extent, islands) in [(3usize, 7usize), (1, 4), (5, 6)] {
        let d = Region3::of_extent(extent, 8, 4);
        for v in [Variant::A, Variant::B] {
            let axis_len = match v {
                Variant::A => extent,
                Variant::B => 8,
            };
            let p = Partition::one_d(d, v, islands).unwrap();
            assert_eq!(p.islands(), islands);
            let total: usize = p.parts().iter().map(|r| r.cells()).sum();
            assert_eq!(total, d.cells(), "{v:?} {extent}→{islands}");
            let nonempty = p.parts().iter().filter(|r| r.cells() > 0).count();
            assert_eq!(nonempty, axis_len.min(islands), "{v:?} {extent}→{islands}");
            for (n, a) in p.parts().iter().enumerate() {
                assert!(a.i.len() + a.j.len() + a.k.len() > 0 || a.cells() == 0);
                for b in &p.parts()[n + 1..] {
                    assert!(!a.overlaps(*b));
                }
            }
        }
    }

    // Prime extents: no island count from 2..=7 divides 31 or 37, so
    // every split exercises the uneven-remainder path; parts must
    // still cover disjointly and differ by at most one slab.
    for (ni, nj) in [(31usize, 37usize), (37, 31)] {
        let d = Region3::of_extent(ni, nj, 4);
        for islands in 2..=7 {
            for v in [Variant::A, Variant::B] {
                let p = Partition::one_d(d, v, islands).unwrap();
                let total: usize = p.parts().iter().map(|r| r.cells()).sum();
                assert_eq!(total, d.cells());
                let lens: Vec<usize> = p.parts().iter().map(|r| r.range(v.axis()).len()).collect();
                let mn = *lens.iter().min().unwrap();
                let mx = *lens.iter().max().unwrap();
                assert!(mx - mn <= 1, "{v:?} {ni}×{nj} / {islands}: {lens:?}");
                // Redundancy stays monotone across the uneven splits.
                let e = extra_elements(&g, &p);
                assert!(e.extra_updates() > 0, "cuts must cost something");
            }
        }
    }

    // 2-D grid on prime extents: both factors uneven simultaneously.
    let d = Region3::of_extent(29, 23, 4);
    let p = Partition::grid2d(d, 4, 3).unwrap();
    assert_eq!(p.islands(), 12);
    let total: usize = p.parts().iter().map(|r| r.cells()).sum();
    assert_eq!(total, d.cells());
}

/// Island layouts tile the machine's cores exactly once, whatever the
/// sub-socket granularity.
#[test]
fn layouts_tile_cores() {
    for sockets in [1usize, 3, 8] {
        let m = UvParams::uv2000(sockets).build();
        for per in [1usize, 2, 4, 8] {
            let l = IslandLayout::sub_socket(&m, per);
            let mut cores: Vec<usize> = l.all_cores().iter().map(|c| c.index()).collect();
            cores.sort_unstable();
            let expect: Vec<usize> = (0..m.core_count()).collect();
            assert_eq!(cores, expect, "sockets {sockets}, {per}/island");
            assert_eq!(l.len() * per, m.core_count());
        }
    }
}
