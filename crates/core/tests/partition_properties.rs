//! Property tests for partitioning and the extra-element analysis.

use islands_core::{extra_elements, IslandLayout, Partition, Variant};
use mpdata::mpdata_graph;
use numa_sim::UvParams;
use proptest::prelude::*;
use stencil_engine::Region3;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any 1-D or 2-D partition disjointly covers the domain.
    #[test]
    fn partitions_cover_disjointly(
        ni in 4usize..40, nj in 4usize..40, nk in 1usize..8,
        pi in 1usize..6, pj in 1usize..6, two_d in proptest::bool::ANY,
    ) {
        let d = Region3::of_extent(ni, nj, nk);
        let p = if two_d {
            Partition::grid2d(d, pi, pj).unwrap()
        } else {
            Partition::one_d(d, Variant::A, pi * pj).unwrap()
        };
        let total: usize = p.parts().iter().map(|r| r.cells()).sum();
        prop_assert_eq!(total, d.cells());
        for (n, a) in p.parts().iter().enumerate() {
            prop_assert!(d.contains_region(*a));
            for b in &p.parts()[n + 1..] {
                prop_assert!(!a.overlaps(*b));
            }
        }
    }

    /// Extra elements are monotone in the island count (more cuts can
    /// never reduce redundancy) and zero for one island.
    #[test]
    fn extra_elements_monotone(
        ni in 16usize..64, nj in 8usize..32,
        variant_b in proptest::bool::ANY,
    ) {
        let (g, _) = mpdata_graph();
        let d = Region3::of_extent(ni, nj, 4);
        let v = if variant_b { Variant::B } else { Variant::A };
        let mut last = 0usize;
        for n in 1..=4 {
            let e = extra_elements(&g, &Partition::one_d(d, v, n).unwrap());
            prop_assert!(e.extra_updates() >= last,
                "islands {n}: {} < {last}", e.extra_updates());
            if n == 1 {
                prop_assert_eq!(e.extra_updates(), 0);
            }
            last = e.extra_updates();
        }
    }

    /// Total updates are invariant under which variant produced the
    /// single-island partition (both are the whole domain).
    #[test]
    fn single_island_variants_agree(ni in 8usize..32, nj in 8usize..32) {
        let (g, _) = mpdata_graph();
        let d = Region3::of_extent(ni, nj, 4);
        let a = extra_elements(&g, &Partition::one_d(d, Variant::A, 1).unwrap());
        let b = extra_elements(&g, &Partition::one_d(d, Variant::B, 1).unwrap());
        prop_assert_eq!(a, b);
    }
}

/// Island layouts tile the machine's cores exactly once, whatever the
/// sub-socket granularity.
#[test]
fn layouts_tile_cores() {
    for sockets in [1usize, 3, 8] {
        let m = UvParams::uv2000(sockets).build();
        for per in [1usize, 2, 4, 8] {
            let l = IslandLayout::sub_socket(&m, per);
            let mut cores: Vec<usize> = l.all_cores().iter().map(|c| c.index()).collect();
            cores.sort_unstable();
            let expect: Vec<usize> = (0..m.core_count()).collect();
            assert_eq!(cores, expect, "sockets {sockets}, {per}/island");
            assert_eq!(l.len() * per, m.core_count());
        }
    }
}
