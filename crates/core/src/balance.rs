//! Imbalance-aware partitioning: non-uniform cuts from the cost model.
//!
//! The paper's partitions equalize island *width*, yet its own
//! efficiency numbers (77–97% across configurations) are dominated by
//! load imbalance: interior islands recompute two halo faces where edge
//! islands pay for one, and the 17 MPDATA stages differ in per-cell
//! cost. The balanced constructors here weight every candidate slice by
//! its enlarged per-stage regions — interior cells plus the redundant
//! halo cells [`per_island_extra`](crate::per_island_extra) accounts —
//! times per-stage coefficients, and place the cut positions where the
//! modeled costs equalize ([`stencil_engine::balanced_cuts`]).

use crate::mapping::IslandLayout;
use crate::partition::{BuildPartitionError, Partition, Variant};
use crate::planner::{plan_islands_partitioned, Workload};
use mpdata::mpdata_graph;
use numa_sim::{Machine, TraceSet};
use stencil_engine::{balanced_cuts, island_cost, Axis, CostModel, PlanBlocksError, Region3};

impl Partition {
    /// Like [`Partition::one_d`], but with cut positions that equalize
    /// the modeled cost of `model` over `graph` instead of the width.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPartitionError::NoIslands`] when `islands == 0`.
    pub fn one_d_balanced(
        domain: Region3,
        variant: Variant,
        islands: usize,
        graph: &stencil_engine::StageGraph,
        model: &CostModel,
    ) -> Result<Self, BuildPartitionError> {
        if islands == 0 {
            return Err(BuildPartitionError::NoIslands);
        }
        let parts = balanced_cuts(graph, domain, domain, variant.axis(), islands, model);
        Ok(Partition::from_parts(
            domain,
            parts,
            format!("balanced 1D {variant} × {islands}"),
        ))
    }

    /// Like [`Partition::grid2d`], but both cut directions equalize
    /// modeled cost: the `i` axis is balanced into `pi` slabs, then
    /// each slab is balanced along `j` into `pj` parts.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPartitionError::NoIslands`] when either factor is
    /// zero.
    pub fn grid2d_balanced(
        domain: Region3,
        pi: usize,
        pj: usize,
        graph: &stencil_engine::StageGraph,
        model: &CostModel,
    ) -> Result<Self, BuildPartitionError> {
        if pi == 0 || pj == 0 {
            return Err(BuildPartitionError::NoIslands);
        }
        let mut parts = Vec::with_capacity(pi * pj);
        for slab in balanced_cuts(graph, domain, domain, Axis::I, pi, model) {
            parts.extend(balanced_cuts(graph, slab, domain, Axis::J, pj, model));
        }
        Ok(Partition::from_parts(
            domain,
            parts,
            format!("balanced 2D {pi}×{pj} grid"),
        ))
    }
}

/// Like [`crate::plan_islands`], but the partition comes from
/// [`Partition::one_d_balanced`] under `model`, so islands with more
/// redundant halo work get proportionally thinner slabs.
///
/// # Errors
///
/// Returns [`PlanBlocksError`] when an island's block does not fit the
/// cache budget.
pub fn plan_islands_balanced(
    machine: &Machine,
    w: &Workload,
    variant: Variant,
    model: &CostModel,
) -> Result<TraceSet, PlanBlocksError> {
    let layout = IslandLayout::per_socket(machine);
    let (graph, _) = mpdata_graph();
    let partition = Partition::one_d_balanced(w.domain, variant, layout.len(), &graph, model)
        .expect("layout has at least one island");
    plan_islands_partitioned(machine, w, &partition, &layout)
}

/// Max/mean modeled island cost of `partition` under `model` — `1.0`
/// is perfect balance. The quantity the balanced constructors minimize,
/// exposed so callers (and E14) can report the predicted imbalance of
/// any partition.
pub fn modeled_imbalance(
    partition: &Partition,
    graph: &stencil_engine::StageGraph,
    axis: Axis,
    model: &CostModel,
) -> f64 {
    let costs: Vec<f64> = partition
        .parts()
        .iter()
        .map(|&p| island_cost(graph, p, partition.domain(), axis, model))
        .collect();
    let active: Vec<f64> = costs.into_iter().filter(|&c| c > 0.0).collect();
    if active.is_empty() {
        return 1.0;
    }
    let max = active.iter().fold(0.0f64, |a, &b| a.max(b));
    let mean = active.iter().sum::<f64>() / active.len() as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap::per_island_extra;

    #[test]
    fn balanced_cuts_equalize_modeled_cost() {
        let (g, _) = mpdata_graph();
        let d = Region3::of_extent(96, 24, 8);
        let m = CostModel::from_graph(&g);
        for n in [2, 4, 7] {
            let uniform = Partition::one_d(d, Variant::A, n).unwrap();
            let balanced = Partition::one_d_balanced(d, Variant::A, n, &g, &m).unwrap();
            let iu = modeled_imbalance(&uniform, &g, Axis::I, &m);
            let ib = modeled_imbalance(&balanced, &g, Axis::I, &m);
            assert!(ib <= iu + 1e-9, "n = {n}: balanced {ib} worse than {iu}");
            assert_eq!(
                balanced.parts().iter().map(|r| r.cells()).sum::<usize>(),
                d.cells()
            );
        }
    }

    #[test]
    fn interior_islands_get_thinner_slabs() {
        // Interior slabs pay two halo faces; equalizing cost must give
        // the edge islands wider slabs than a strict interior one.
        let (g, _) = mpdata_graph();
        let d = Region3::of_extent(120, 24, 8);
        let m = CostModel::uniform(g.stage_count());
        let p = Partition::one_d_balanced(d, Variant::A, 4, &g, &m).unwrap();
        let widths: Vec<usize> = p.parts().iter().map(|r| r.i.len()).collect();
        // The slack-spreading carve equalizes cost: the cheaper leading
        // edge ends at least as wide as any strict interior slab.
        assert!(
            widths[0] >= *widths[1..3].iter().max().unwrap(),
            "leading edge not widened: {widths:?}"
        );
        assert_eq!(widths.iter().sum::<usize>(), 120);
        // The redundant work is spread more evenly than uniform's.
        let extra_b = per_island_extra(&g, &p);
        let extra_u = per_island_extra(&g, &Partition::one_d(d, Variant::A, 4).unwrap());
        assert_eq!(extra_b.len(), extra_u.len(), "same island count either way");
    }

    #[test]
    fn grid2d_balanced_is_a_disjoint_cover() {
        let (g, _) = mpdata_graph();
        let d = Region3::of_extent(48, 48, 8);
        let m = CostModel::from_graph(&g);
        let p = Partition::grid2d_balanced(d, 2, 2, &g, &m).unwrap();
        assert_eq!(p.islands(), 4);
        assert_eq!(
            p.parts().iter().map(|r| r.cells()).sum::<usize>(),
            d.cells()
        );
        for a in 0..4 {
            for b in (a + 1)..4 {
                assert!(!p.parts()[a].overlaps(p.parts()[b]));
            }
        }
        assert!(p.description().contains("balanced"));
    }

    #[test]
    fn balanced_planner_feeds_the_simulator() {
        use numa_sim::UvParams;
        let machine = UvParams::uv2000(2).build();
        let (g, _) = mpdata_graph();
        let w = Workload {
            domain: Region3::of_extent(64, 32, 8),
            steps: 2,
            cache_bytes: 512 * 1024,
        };
        let m = CostModel::from_graph(&g);
        let ts = plan_islands_balanced(&machine, &w, Variant::A, &m).unwrap();
        assert!(ts.op_count() > 0);
    }
}
