//! # islands-core
//!
//! The islands-of-cores approach (Szustak, Wyrzykowski & Jakl,
//! PaCT 2017): NUMA-aware partitioning, redundant-computation analysis
//! and execution planning for heterogeneous stencil computations.
//!
//! The crate owns the paper's contribution proper:
//!
//! * [`Partition`] / [`Variant`] — 1-D island partitions along the
//!   first (A) or second (B) dimension, plus the future-work 2-D grids;
//! * [`extra_elements`] — the exact redundant-update accounting behind
//!   Table 2;
//! * [`IslandLayout`] — affinity-aware mapping of neighbouring parts
//!   onto interconnect-adjacent processors;
//! * [`plan_original`] / [`plan_fused`] / [`plan_islands`] — planners
//!   that lower each execution strategy onto a simulated SMP/NUMA
//!   machine, from which every table and figure of the paper is
//!   regenerated (the *real-thread* executors live in the `mpdata`
//!   crate and are verified bitwise-equivalent).
//!
//! ## Example: the trade-off in one picture
//!
//! ```
//! use islands_core::{
//!     estimate, plan_fused, plan_islands, InitPolicy, Variant, Workload,
//! };
//! use numa_sim::{SimConfig, UvParams};
//! use stencil_engine::Region3;
//!
//! let machine = UvParams::uv2000(8).build();
//! let w = Workload {
//!     domain: Region3::of_extent(128, 64, 16),
//!     steps: 10,
//!     cache_bytes: 512 * 1024,
//! };
//! let cfg = SimConfig::default();
//! let fused = estimate(&machine, &plan_fused(&machine, &w, InitPolicy::ParallelFirstTouch)?, &w, &cfg)?;
//! let islands = estimate(&machine, &plan_islands(&machine, &w, Variant::A)?, &w, &cfg)?;
//! // Communication-avoiding redundant computation wins on 8 sockets.
//! assert!(islands.total_seconds < fused.total_seconds);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balance;
mod mapping;
mod overlap;
mod partition;
mod planner;

pub use balance::{modeled_imbalance, plan_islands_balanced};
pub use mapping::{IslandLayout, IslandSpec};
pub use overlap::{extra_elements, per_island_extra, ExtraElements};
pub use partition::{BuildPartitionError, Partition, Variant};
pub use planner::{
    estimate, plan_fused, plan_islands, plan_islands_exchange, plan_islands_partitioned,
    plan_islands_with_layout, plan_original, InitPolicy, RunEstimate, Workload, GLOBAL_BARRIER,
};
