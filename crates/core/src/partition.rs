//! Domain partitioning for islands-of-cores.
//!
//! The paper restricts partitioning to the first two dimensions (array
//! layout only allows contiguous transfers there) and evaluates the two
//! 1-D variants: **A** cuts the first dimension, **B** the second
//! (Table 2 shows A produces half the extra elements of B on the
//! 1024×512×64 grid). 2-D island grids — the paper's future work — are
//! provided as [`Partition::grid2d`] and exercised by ablation A1.

use std::error::Error;
use std::fmt;
use stencil_engine::{Axis, Region3};

/// The paper's 1-D partitioning variants.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Variant {
    /// Cut the first (`i`) dimension.
    A,
    /// Cut the second (`j`) dimension.
    B,
}

impl Variant {
    /// The axis this variant cuts.
    pub fn axis(self) -> Axis {
        match self {
            Variant::A => Axis::I,
            Variant::B => Axis::J,
        }
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Variant::A => write!(f, "variant A (i-dimension)"),
            Variant::B => write!(f, "variant B (j-dimension)"),
        }
    }
}

/// Error building a partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildPartitionError {
    /// Zero islands requested.
    NoIslands,
    /// A `K`-axis cut was requested (forbidden by the data layout).
    KAxisCut,
}

impl fmt::Display for BuildPartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildPartitionError::NoIslands => write!(f, "a partition needs at least one island"),
            BuildPartitionError::KAxisCut => {
                write!(f, "partitioning the third dimension is forbidden: transfers would be non-contiguous")
            }
        }
    }
}

impl Error for BuildPartitionError {}

/// A partition of the domain into island parts (disjoint cover).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    domain: Region3,
    parts: Vec<Region3>,
    description: String,
}

impl Partition {
    /// 1-D partition along the axis of `variant` into `islands` parts.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPartitionError::NoIslands`] when `islands == 0`.
    pub fn one_d(
        domain: Region3,
        variant: Variant,
        islands: usize,
    ) -> Result<Self, BuildPartitionError> {
        if islands == 0 {
            return Err(BuildPartitionError::NoIslands);
        }
        Ok(Partition {
            domain,
            parts: domain.split(variant.axis(), islands),
            description: format!("1D {variant} × {islands}"),
        })
    }

    /// 2-D partition into a `pi × pj` grid of islands (the paper's
    /// future-work extension; `K` cuts remain forbidden).
    ///
    /// # Errors
    ///
    /// Returns [`BuildPartitionError::NoIslands`] when either factor is
    /// zero.
    pub fn grid2d(domain: Region3, pi: usize, pj: usize) -> Result<Self, BuildPartitionError> {
        if pi == 0 || pj == 0 {
            return Err(BuildPartitionError::NoIslands);
        }
        let mut parts = Vec::with_capacity(pi * pj);
        for slab in domain.split(Axis::I, pi) {
            parts.extend(slab.split(Axis::J, pj));
        }
        Ok(Partition {
            domain,
            parts,
            description: format!("2D {pi}×{pj} grid"),
        })
    }

    /// Internal constructor for partitions whose parts were computed
    /// elsewhere (the balanced constructors in `balance.rs`).
    pub(crate) fn from_parts(domain: Region3, parts: Vec<Region3>, description: String) -> Self {
        Partition {
            domain,
            parts,
            description,
        }
    }

    /// The partitioned domain.
    pub fn domain(&self) -> Region3 {
        self.domain
    }

    /// The island parts, in island order. Neighbouring parts are
    /// adjacent in this order for 1-D partitions, which the island
    /// mapping exploits to place them on NUMA-adjacent processors.
    pub fn parts(&self) -> &[Region3] {
        &self.parts
    }

    /// Number of islands.
    pub fn islands(&self) -> usize {
        self.parts.len()
    }

    /// Human-readable description.
    pub fn description(&self) -> &str {
        &self.description
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_axes() {
        assert_eq!(Variant::A.axis(), Axis::I);
        assert_eq!(Variant::B.axis(), Axis::J);
    }

    #[test]
    fn one_d_covers_domain() {
        let d = Region3::of_extent(16, 8, 4);
        let p = Partition::one_d(d, Variant::A, 3).unwrap();
        assert_eq!(p.islands(), 3);
        assert_eq!(
            p.parts().iter().map(|r| r.cells()).sum::<usize>(),
            d.cells()
        );
        // Adjacent in island order.
        for w in p.parts().windows(2) {
            assert_eq!(w[0].i.hi, w[1].i.lo);
        }
    }

    #[test]
    fn grid2d_covers_domain() {
        let d = Region3::of_extent(8, 8, 4);
        let p = Partition::grid2d(d, 2, 3).unwrap();
        assert_eq!(p.islands(), 6);
        assert_eq!(
            p.parts().iter().map(|r| r.cells()).sum::<usize>(),
            d.cells()
        );
        for a in 0..6 {
            for b in (a + 1)..6 {
                assert!(!p.parts()[a].overlaps(p.parts()[b]));
            }
        }
    }

    #[test]
    fn zero_islands_rejected() {
        let d = Region3::of_extent(4, 4, 4);
        assert_eq!(
            Partition::one_d(d, Variant::A, 0).unwrap_err(),
            BuildPartitionError::NoIslands
        );
        assert_eq!(
            Partition::grid2d(d, 0, 2).unwrap_err(),
            BuildPartitionError::NoIslands
        );
    }

    #[test]
    fn descriptions_mention_shape() {
        let d = Region3::of_extent(4, 4, 4);
        assert!(Partition::one_d(d, Variant::B, 2)
            .unwrap()
            .description()
            .contains("variant B"));
        assert!(Partition::grid2d(d, 2, 2)
            .unwrap()
            .description()
            .contains("2D"));
    }
}
