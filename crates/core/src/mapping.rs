//! Mapping islands onto the machine: which processor hosts which part.
//!
//! "All the neighbour parts should be assigned to the adjacent
//! processors that are closely connected each other within the
//! interconnect" (paper §4.2). Parts are produced in axis order by
//! [`crate::partition::Partition`]; sockets of the UV 2000 preset are
//! numbered so consecutive sockets share blades — so the identity
//! mapping *is* the affinity-aware mapping, and [`IslandLayout`] makes
//! that explicit and testable.

use numa_sim::{CoreId, Machine, NodeId};
use work_scheduler::TeamSpec;

/// One island: a processor (NUMA node) and its cores.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IslandSpec {
    /// The NUMA node hosting this island's part.
    pub node: NodeId,
    /// The cores forming the island's work team.
    pub cores: Vec<CoreId>,
}

/// The island → processor assignment for a machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IslandLayout {
    islands: Vec<IslandSpec>,
}

impl IslandLayout {
    /// One island per compute node (socket), in node order — the
    /// paper's configuration: island `p` on processor `p`, neighbours
    /// adjacent.
    pub fn per_socket(machine: &Machine) -> Self {
        let islands = machine
            .compute_nodes()
            .into_iter()
            .map(|node| IslandSpec {
                node,
                cores: machine.cores_of(node).to_vec(),
            })
            .collect();
        IslandLayout { islands }
    }

    /// Sub-socket islands: every island spans `cores_per_island`
    /// consecutive cores of one socket (ablation A2, "islands within a
    /// CPU"). Sockets whose core count is not divisible are rejected.
    ///
    /// # Panics
    ///
    /// Panics if `cores_per_island` is zero or does not divide each
    /// socket's core count.
    pub fn sub_socket(machine: &Machine, cores_per_island: usize) -> Self {
        assert!(cores_per_island > 0, "need at least one core per island");
        let mut islands = Vec::new();
        for node in machine.compute_nodes() {
            let cores = machine.cores_of(node);
            assert_eq!(
                cores.len() % cores_per_island,
                0,
                "{} cores per socket do not split into islands of {cores_per_island}",
                cores.len()
            );
            for chunk in cores.chunks(cores_per_island) {
                islands.push(IslandSpec {
                    node,
                    cores: chunk.to_vec(),
                });
            }
        }
        IslandLayout { islands }
    }

    /// The islands, in part order.
    pub fn islands(&self) -> &[IslandSpec] {
        &self.islands
    }

    /// Number of islands.
    pub fn len(&self) -> usize {
        self.islands.len()
    }

    /// Whether the layout has no islands.
    pub fn is_empty(&self) -> bool {
        self.islands.is_empty()
    }

    /// All cores across all islands, in island order.
    pub fn all_cores(&self) -> Vec<CoreId> {
        self.islands.iter().flat_map(|i| i.cores.clone()).collect()
    }

    /// A [`TeamSpec`] binding pool workers (worker `w` ↔ core `w`) to
    /// islands, for executing the same layout with real threads.
    pub fn team_spec(&self) -> TeamSpec {
        TeamSpec::new(
            self.islands
                .iter()
                .map(|i| i.cores.iter().map(|c| c.index()).collect())
                .collect(),
        )
        .expect("islands are non-empty and disjoint")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numa_sim::UvParams;

    #[test]
    fn per_socket_layout_matches_machine() {
        let m = UvParams::uv2000(4).build();
        let l = IslandLayout::per_socket(&m);
        assert_eq!(l.len(), 4);
        for (n, island) in l.islands().iter().enumerate() {
            assert_eq!(island.node, NodeId(n));
            assert_eq!(island.cores.len(), 8);
        }
        assert_eq!(l.all_cores().len(), 32);
    }

    #[test]
    fn neighbouring_islands_are_interconnect_adjacent() {
        let m = UvParams::uv2000(6).build();
        let l = IslandLayout::per_socket(&m);
        // Consecutive islands are never farther apart than
        // non-consecutive ones (the identity mapping is affinity-aware).
        for w in l.islands().windows(2) {
            let near = m.hops(w[0].node, w[1].node);
            for other in l.islands() {
                if other.node != w[0].node && other.node != w[1].node {
                    assert!(near <= m.hops(w[0].node, other.node) + 2);
                }
            }
        }
    }

    #[test]
    fn sub_socket_islands() {
        let m = UvParams::uv2000(2).build();
        let l = IslandLayout::sub_socket(&m, 4);
        assert_eq!(l.len(), 4); // 2 sockets × 2 islands
        assert_eq!(l.islands()[0].node, l.islands()[1].node);
        assert_ne!(l.islands()[1].node, l.islands()[2].node);
    }

    #[test]
    fn team_spec_mirrors_layout() {
        let m = UvParams::uv2000(2).build();
        let l = IslandLayout::per_socket(&m);
        let spec = l.team_spec();
        assert_eq!(spec.team_count(), 2);
        assert_eq!(spec.members(1), &[8, 9, 10, 11, 12, 13, 14, 15]);
    }

    #[test]
    #[should_panic]
    fn sub_socket_requires_divisibility() {
        let m = UvParams::uv2000(1).build();
        let _ = IslandLayout::sub_socket(&m, 3);
    }
}
