//! Execution planners: translate each MPDATA strategy into per-core
//! work traces for the NUMA machine simulator.
//!
//! All three planners share the MPDATA stage graph, the first-touch
//! placement model and the flop accounting, and differ exactly where the
//! strategies differ:
//!
//! * [`plan_original`] — 17 full-domain sweeps; every intermediate
//!   round-trips through DRAM; a global barrier after every stage.
//! * [`plan_fused`] — the pure (3+1)D decomposition: all cores of all
//!   sockets cooperate on one cache-sized block at a time. External
//!   slabs of a block live on *one* home node (first touch), so every
//!   block turns all remote sockets loose on a single NUMAlink port;
//!   per-stage halo reads between neighbouring cores become remote-cache
//!   pulls at socket boundaries; and every stage of every block ends in
//!   a machine-wide barrier. These three costs are the collapse of
//!   Table 1.
//! * [`plan_islands`] — islands-of-cores: each socket's team sweeps its
//!   own part with the (3+1)D schedule over *enlarged* stage regions
//!   (recomputing the paper's "extra elements"), reads almost only
//!   node-local memory, synchronizes per stage only within the socket,
//!   and meets the other islands once per time step.
//!
//! Traces describe **one time step**; [`estimate`] simulates it and
//! scales by the step count (the paper relies on the same homogeneity:
//! "such a relatively small number of time steps is sufficient ...
//! because of homogeneity of all time steps").

use crate::mapping::IslandLayout;
use crate::partition::{Partition, Variant};
use mpdata::mpdata_graph;
use numa_sim::{
    simulate, BarrierId, CoreId, Machine, NodeId, Op, Placement, SimConfig, SimError, SimReport,
    TraceSet,
};
use stencil_engine::{
    Axis, BlockPlanner, Blocking, FieldRole, PlanBlocksError, Region3, StageGraph, BYTES_PER_CELL,
};

/// The problem a planner schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Workload {
    /// The MPDATA grid.
    pub domain: Region3,
    /// Number of homogeneous time steps.
    pub steps: usize,
    /// Per-socket cache budget for (3+1)D block sizing, bytes.
    pub cache_bytes: usize,
}

impl Workload {
    /// A workload over `domain` for `steps` steps with the UV 2000's
    /// 16 MiB L3 budget.
    pub fn new(domain: Region3, steps: usize) -> Self {
        Workload {
            domain,
            steps,
            cache_bytes: 16 << 20,
        }
    }

    /// The paper's benchmark: 1024×512×64 grid, 50 time steps.
    pub fn paper() -> Self {
        Self::new(Region3::of_extent(1024, 512, 64), 50)
    }
}

/// How the arrays were first-touched (Table 1's crucial distinction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InitPolicy {
    /// The master thread initializes everything: every page lands on the
    /// first socket.
    SerialFirstTouch,
    /// Each thread initializes the part it will compute on: pages are
    /// distributed across sockets along the first dimension.
    ParallelFirstTouch,
    /// Pages are interleaved round-robin across all sockets
    /// (`numactl --interleave`): balanced controllers, mostly-remote
    /// accesses. Not evaluated by the paper; included as the standard
    /// third policy.
    Interleaved,
}

/// Builds the placement implied by `init` over the machine's sockets.
fn placement(init: InitPolicy, domain: Region3, machine: &Machine, axis: Axis) -> Placement {
    let nodes = machine.compute_nodes();
    match init {
        InitPolicy::SerialFirstTouch => Placement::serial(domain, nodes[0]),
        InitPolicy::ParallelFirstTouch => Placement::first_touch_split(domain, axis, &nodes),
        InitPolicy::Interleaved => Placement::interleaved(domain, axis, &nodes, 4),
    }
}

/// Emits read streams for `bytes_by_node`, distributing `flops`
/// proportionally to bytes (all-compute op when there is nothing to
/// read).
fn push_streams(ts: &mut TraceSet, core: CoreId, bytes_by_node: &[(NodeId, f64)], flops: f64) {
    let total: f64 = bytes_by_node.iter().map(|(_, b)| b).sum();
    if total <= 0.0 {
        if flops > 0.0 {
            ts.push(core, Op::Compute { flops });
        }
        return;
    }
    for &(node, bytes) in bytes_by_node {
        ts.push(
            core,
            Op::Stream {
                node,
                bytes,
                flops: flops * bytes / total,
                write: false,
            },
        );
    }
}

/// Emits the write-back of one output slab: write-allocate makes a store
/// miss cost a read *and* a write of the line, so the memory system sees
/// twice the slab size.
fn push_writes(ts: &mut TraceSet, core: CoreId, bytes_by_node: &[(NodeId, f64)]) {
    for &(node, bytes) in bytes_by_node {
        if bytes > 0.0 {
            ts.push(
                core,
                Op::MemWrite {
                    node,
                    bytes: 2.0 * bytes,
                },
            );
        }
    }
}

/// Plans one time step of the **original version**.
pub fn plan_original(machine: &Machine, w: &Workload, init: InitPolicy) -> TraceSet {
    let (graph, _) = mpdata_graph();
    let place = placement(init, w.domain, machine, Axis::I);
    let cores: Vec<CoreId> = (0..machine.core_count()).map(CoreId).collect();
    let mut ts = TraceSet::for_cores(machine.core_count());
    let global = ts.add_barrier(cores.clone());
    let slices = w.domain.split(Axis::I, cores.len());
    for st in graph.stages() {
        for (&core, &slice) in cores.iter().zip(&slices) {
            let flops = slice.cells() as f64 * st.flops_per_cell;
            // Every input — external or intermediate — streams from DRAM
            // in this version.
            let mut reads: Vec<(NodeId, f64)> = Vec::new();
            for _ in &st.inputs {
                reads.extend(place.bytes_on(slice));
            }
            push_streams(&mut ts, core, &reads, flops);
            for _ in &st.outputs {
                push_writes(&mut ts, core, &place.bytes_on(slice));
            }
            ts.push(core, Op::Barrier { id: global });
        }
    }
    ts
}

/// Per-core load phase of one (3+1)D/islands block: stream the block's
/// external slabs from their home nodes while executing the block's
/// arithmetic (stages run out of cache once the slabs arrive, so the
/// hardware overlaps the two; the final stage's flops are excluded —
/// they overlap the output write-back instead).
fn push_block_load(
    ts: &mut TraceSet,
    graph: &StageGraph,
    place: &Placement,
    block: &stencil_engine::BlockPlan,
    team: &[CoreId],
    rank: usize,
    split_axis: Axis,
) {
    let core = team[rank];
    let mut flops = 0.0;
    for st in graph.stages().iter().take(graph.stage_count() - 1) {
        let slice = st_slice(
            block.stage_regions[st.id.index()],
            split_axis,
            team.len(),
            rank,
        );
        flops += slice.cells() as f64 * st.flops_per_cell;
    }
    // Each external field is loaded over the hull of the regions of the
    // stages that read it in this block (not the whole block hull — the
    // wavefront lookahead of deep stages does not touch every input).
    let mut reads: Vec<(NodeId, f64)> = Vec::new();
    for f in graph.external_fields() {
        let mut hull = Region3::empty();
        for st in graph.stages() {
            if st.reads(f) {
                hull = hull.hull(block.stage_regions[st.id.index()]);
            }
        }
        let slice = st_slice(hull, split_axis, team.len(), rank);
        if !slice.is_empty() {
            reads.extend(place.bytes_on(slice));
        }
    }
    push_streams(ts, core, &reads, flops);
}

/// The rank's slice of a stage region (empty regions slice to empty).
fn st_slice(region: Region3, split_axis: Axis, team: usize, rank: usize) -> Region3 {
    if region.is_empty() {
        Region3::empty()
    } else {
        region.split(split_axis, team)[rank]
    }
}

/// Per-core synchronization-path work of one stage: intra-step halo
/// pulls from neighbouring ranks' caches, and the final stage's
/// write-back stream (overlapping the final stage's arithmetic).
#[allow(clippy::too_many_arguments)]
fn push_block_stage(
    ts: &mut TraceSet,
    graph: &StageGraph,
    machine: &Machine,
    out_place: &Placement,
    stage_idx: usize,
    region: Region3,
    team: &[CoreId],
    rank: usize,
    split_axis: Axis,
) {
    let st = &graph.stages()[stage_idx];
    let core = team[rank];
    let slice = st_slice(region, split_axis, team.len(), rank);
    let is_final = stage_idx + 1 == graph.stage_count();

    if is_final && !slice.is_empty() {
        let flops = slice.cells() as f64 * st.flops_per_cell;
        let slabs = out_place.bytes_on(slice);
        let total: f64 = slabs.iter().map(|(_, b)| b).sum();
        for (node, bytes) in slabs {
            ts.push(
                core,
                Op::Stream {
                    node,
                    bytes: 2.0 * bytes,
                    flops: flops * bytes / total.max(1.0),
                    write: true,
                },
            );
        }
    }

    // Halo pulls: intermediate inputs reach `halo` cells across the
    // split axis into the slices of the neighbouring ranks, whose caches
    // hold those freshly written values.
    let mut pulls: Vec<(NodeId, f64)> = Vec::new();
    if !slice.is_empty() {
        for (f, pattern) in &st.inputs {
            if graph.fields().role(*f) == FieldRole::External {
                continue;
            }
            let h = pattern.halo();
            let (neg, pos) = h.along(split_axis);
            let plane_cells = match split_axis {
                Axis::I => slice.j.len() * slice.k.len(),
                Axis::J => slice.i.len() * slice.k.len(),
                Axis::K => slice.i.len() * slice.j.len(),
            };
            let r = slice.range(split_axis);
            let whole = region.range(split_axis);
            if neg > 0 && r.lo > whole.lo && rank > 0 {
                let owner = machine.node_of(team[rank - 1]);
                pulls.push((owner, (neg as usize * plane_cells * BYTES_PER_CELL) as f64));
            }
            if pos > 0 && r.hi < whole.hi && rank + 1 < team.len() {
                let owner = machine.node_of(team[rank + 1]);
                pulls.push((owner, (pos as usize * plane_cells * BYTES_PER_CELL) as f64));
            }
        }
    }
    // Aggregate per source node to keep traces small.
    pulls.sort_by_key(|(n, _)| n.index());
    let mut agg: Vec<(NodeId, f64)> = Vec::new();
    for (n, b) in pulls {
        match agg.last_mut() {
            Some((last, acc)) if *last == n => *acc += b,
            _ => agg.push((n, b)),
        }
    }
    for (node, bytes) in agg {
        ts.push(core, Op::CacheRead { node, bytes });
    }
}

/// Plans one time step of the **pure (3+1)D decomposition**.
///
/// # Errors
///
/// Returns [`PlanBlocksError`] when no block fits the cache budget.
pub fn plan_fused(
    machine: &Machine,
    w: &Workload,
    init: InitPolicy,
) -> Result<TraceSet, PlanBlocksError> {
    let (graph, _) = mpdata_graph();
    let place = placement(init, w.domain, machine, Axis::I);
    let blocking = BlockPlanner::new(w.cache_bytes)
        .min_depth(4)
        .plan_wavefront(&graph, w.domain, w.domain)?;
    let cores: Vec<CoreId> = (0..machine.core_count()).map(CoreId).collect();
    let mut ts = TraceSet::for_cores(machine.core_count());
    let global = ts.add_barrier(cores.clone());
    for block in &blocking.blocks {
        for rank in 0..cores.len() {
            push_block_load(&mut ts, &graph, &place, block, &cores, rank, Axis::J);
        }
        for stage_idx in 0..graph.stage_count() {
            let region = block.stage_regions[stage_idx];
            for rank in 0..cores.len() {
                push_block_stage(
                    &mut ts,
                    &graph,
                    machine,
                    &place,
                    stage_idx,
                    region,
                    &cores,
                    rank,
                    Axis::J,
                );
                ts.push(cores[rank], Op::Barrier { id: global });
            }
        }
    }
    Ok(ts)
}

/// Plans one time step of the **islands-of-cores approach** over a
/// per-socket layout.
///
/// # Errors
///
/// Returns [`PlanBlocksError`] when an island's block does not fit the
/// cache budget.
pub fn plan_islands(
    machine: &Machine,
    w: &Workload,
    variant: Variant,
) -> Result<TraceSet, PlanBlocksError> {
    let layout = IslandLayout::per_socket(machine);
    plan_islands_with_layout(machine, w, variant, &layout)
}

/// Like [`plan_islands`] with an explicit island layout (sub-socket
/// islands for ablation A2, 2-D layouts, …).
///
/// # Errors
///
/// Returns [`PlanBlocksError`] when an island's block does not fit the
/// cache budget.
pub fn plan_islands_with_layout(
    machine: &Machine,
    w: &Workload,
    variant: Variant,
    layout: &IslandLayout,
) -> Result<TraceSet, PlanBlocksError> {
    let partition =
        Partition::one_d(w.domain, variant, layout.len()).expect("layout has at least one island");
    plan_islands_partitioned(machine, w, &partition, layout)
}

/// The most general islands planner: explicit partition and layout
/// (parts are assigned to islands in order; counts must match).
///
/// # Errors
///
/// Returns [`PlanBlocksError`] when an island's block does not fit the
/// cache budget.
///
/// # Panics
///
/// Panics if the partition and layout disagree on the island count.
pub fn plan_islands_partitioned(
    machine: &Machine,
    w: &Workload,
    partition: &Partition,
    layout: &IslandLayout,
) -> Result<TraceSet, PlanBlocksError> {
    assert_eq!(
        partition.islands(),
        layout.len(),
        "partition and layout island counts differ"
    );
    let (graph, _) = mpdata_graph();
    // First touch: every island initializes its own part, so each slab
    // of every array lives on its island's node.
    let slabs: Vec<(Region3, NodeId)> = partition
        .parts()
        .iter()
        .zip(layout.islands())
        .filter(|(r, _)| !r.is_empty())
        .map(|(&r, island)| (r, island.node))
        .collect();
    let place = Placement::explicit(w.domain, slabs);
    let mut ts = TraceSet::for_cores(machine.core_count());
    let all_cores = layout.all_cores();
    let global = ts.add_barrier(all_cores.clone());

    for (part, island) in partition.parts().iter().zip(layout.islands()) {
        if part.is_empty() {
            continue;
        }
        let team_barrier = ts.add_barrier(island.cores.clone());
        let blocking: Blocking = BlockPlanner::new(w.cache_bytes)
            .min_depth(4)
            .plan_wavefront(&graph, *part, w.domain)?;
        for block in &blocking.blocks {
            for rank in 0..island.cores.len() {
                push_block_load(&mut ts, &graph, &place, block, &island.cores, rank, Axis::J);
            }
            for stage_idx in 0..graph.stage_count() {
                let region = block.stage_regions[stage_idx];
                for rank in 0..island.cores.len() {
                    push_block_stage(
                        &mut ts,
                        &graph,
                        machine,
                        &place,
                        stage_idx,
                        region,
                        &island.cores,
                        rank,
                        Axis::J,
                    );
                    // Intra-island synchronization only.
                    ts.push(island.cores[rank], Op::Barrier { id: team_barrier });
                }
            }
        }
    }
    // All islands synchronize once per time step.
    for core in all_cores {
        ts.push(core, Op::Barrier { id: global });
    }
    Ok(ts)
}

/// Plans one time step of the **exchange variant** of island execution
/// (scenario 1 of Fig. 1 applied *between* islands): islands run the
/// (3+1)D schedule on exactly their own parts — no extra elements — and
/// instead *pull* the boundary values of every intermediate from the
/// neighbouring island's cache, which requires a machine-wide barrier
/// after every stage of every block so the neighbour's values exist.
///
/// This strategy is not in the paper's evaluation; it is the natural
/// strawman its §4.1 argues against, and simulating it quantifies the
/// trade-off at island granularity (experiment E8).
///
/// # Errors
///
/// Returns [`PlanBlocksError`] when an island's block does not fit the
/// cache budget.
pub fn plan_islands_exchange(
    machine: &Machine,
    w: &Workload,
    variant: Variant,
) -> Result<TraceSet, PlanBlocksError> {
    let layout = IslandLayout::per_socket(machine);
    let partition =
        Partition::one_d(w.domain, variant, layout.len()).expect("layout has at least one island");
    let (graph, _) = mpdata_graph();
    let slabs: Vec<(Region3, NodeId)> = partition
        .parts()
        .iter()
        .zip(layout.islands())
        .filter(|(r, _)| !r.is_empty())
        .map(|(&r, island)| (r, island.node))
        .collect();
    let place = Placement::explicit(w.domain, slabs);
    let mut ts = TraceSet::for_cores(machine.core_count());
    let all_cores = layout.all_cores();
    let global = ts.add_barrier(all_cores.clone());

    // Exact-part wavefront plans: required regions are clipped to the
    // part itself, so no redundant updates exist anywhere.
    let plans: Vec<Option<Blocking>> = partition
        .parts()
        .iter()
        .map(|&part| {
            if part.is_empty() {
                Ok(None)
            } else {
                BlockPlanner::new(w.cache_bytes)
                    .min_depth(4)
                    .plan_wavefront(&graph, part, part)
                    .map(Some)
            }
        })
        .collect::<Result<_, _>>()?;
    let n_blocks = plans
        .iter()
        .flatten()
        .map(|b| b.blocks.len())
        .max()
        .unwrap_or(0);
    let axis = variant.axis();

    for b in 0..n_blocks {
        // Load + compute phase of this block round on every island.
        for (p, island) in layout.islands().iter().enumerate() {
            let Some(blocking) = &plans[p] else { continue };
            if let Some(block) = blocking.blocks.get(b) {
                for rank in 0..island.cores.len() {
                    push_block_load(&mut ts, &graph, &place, block, &island.cores, rank, Axis::J);
                }
            }
        }
        for stage_idx in 0..graph.stage_count() {
            let st = &graph.stages()[stage_idx];
            for (p, island) in layout.islands().iter().enumerate() {
                let region = plans[p]
                    .as_ref()
                    .and_then(|bl| bl.blocks.get(b))
                    .map(|blk| blk.stage_regions[stage_idx])
                    .unwrap_or(Region3::empty());
                for rank in 0..island.cores.len() {
                    push_block_stage(
                        &mut ts,
                        &graph,
                        machine,
                        &place,
                        stage_idx,
                        region,
                        &island.cores,
                        rank,
                        Axis::J,
                    );
                    // Inter-island halo pulls: the rank whose slice
                    // touches the part boundary pulls the neighbour
                    // island's freshly computed boundary planes.
                    if !region.is_empty() {
                        let slice = st_slice(region, Axis::J, island.cores.len(), rank);
                        if !slice.is_empty() {
                            let mut bytes_lo = 0.0;
                            let mut bytes_hi = 0.0;
                            for (f, pattern) in &st.inputs {
                                if graph.fields().role(*f) == FieldRole::External {
                                    continue;
                                }
                                let h = pattern.halo();
                                let (neg, pos) = h.along(axis);
                                let plane = match axis {
                                    Axis::I => slice.j.len() * slice.k.len(),
                                    Axis::J => slice.i.len() * slice.k.len(),
                                    Axis::K => slice.i.len() * slice.j.len(),
                                } as f64
                                    * BYTES_PER_CELL as f64;
                                if neg > 0
                                    && region.range(axis).lo == partition.parts()[p].range(axis).lo
                                {
                                    bytes_lo += neg as f64 * plane;
                                }
                                if pos > 0
                                    && region.range(axis).hi == partition.parts()[p].range(axis).hi
                                {
                                    bytes_hi += pos as f64 * plane;
                                }
                            }
                            if bytes_lo > 0.0 && p > 0 {
                                ts.push(
                                    island.cores[rank],
                                    Op::CacheRead {
                                        node: layout.islands()[p - 1].node,
                                        bytes: bytes_lo,
                                    },
                                );
                            }
                            if bytes_hi > 0.0 && p + 1 < layout.len() {
                                ts.push(
                                    island.cores[rank],
                                    Op::CacheRead {
                                        node: layout.islands()[p + 1].node,
                                        bytes: bytes_hi,
                                    },
                                );
                            }
                        }
                    }
                }
            }
            // Machine-wide synchronization after every stage: the
            // neighbours' values must exist before the next stage reads
            // them across the boundary.
            for core in &all_cores {
                ts.push(*core, Op::Barrier { id: global });
            }
        }
    }
    Ok(ts)
}

/// Outcome of simulating one strategy.
#[derive(Clone, Debug)]
pub struct RunEstimate {
    /// Simulated seconds per time step.
    pub step_seconds: f64,
    /// Simulated seconds for the whole workload.
    pub total_seconds: f64,
    /// The underlying engine report for the single simulated step.
    pub report: SimReport,
}

/// Simulates one step of `traces` on `machine` and scales to the
/// workload's step count.
///
/// # Errors
///
/// Propagates [`SimError`] from the engine.
pub fn estimate(
    machine: &Machine,
    traces: &TraceSet,
    w: &Workload,
    config: &SimConfig,
) -> Result<RunEstimate, SimError> {
    let report = simulate(machine, traces, config)?;
    Ok(RunEstimate {
        step_seconds: report.makespan,
        total_seconds: report.makespan * w.steps as f64,
        report,
    })
}

/// The global barrier id every planner registers first (exposed for
/// tests).
pub const GLOBAL_BARRIER: BarrierId = BarrierId(0);

#[cfg(test)]
mod tests {
    use super::*;
    use numa_sim::UvParams;

    fn small_workload() -> Workload {
        Workload {
            domain: Region3::of_extent(64, 32, 8),
            steps: 5,
            cache_bytes: 256 * 1024,
        }
    }

    #[test]
    fn original_traces_validate_and_run() {
        let m = UvParams::uv2000(2).build();
        let w = small_workload();
        for init in [InitPolicy::SerialFirstTouch, InitPolicy::ParallelFirstTouch] {
            let ts = plan_original(&m, &w, init);
            let est = estimate(&m, &ts, &w, &SimConfig::default()).unwrap();
            assert!(est.step_seconds > 0.0);
            assert!((est.total_seconds - 5.0 * est.step_seconds).abs() < 1e-12);
        }
    }

    #[test]
    fn serial_init_is_slower_and_all_on_node0() {
        let m = UvParams::uv2000(4).build();
        let w = small_workload();
        let cfg = SimConfig::default();
        let ser = estimate(
            &m,
            &plan_original(&m, &w, InitPolicy::SerialFirstTouch),
            &w,
            &cfg,
        )
        .unwrap();
        let par = estimate(
            &m,
            &plan_original(&m, &w, InitPolicy::ParallelFirstTouch),
            &w,
            &cfg,
        )
        .unwrap();
        assert!(
            ser.step_seconds > 1.5 * par.step_seconds,
            "serial {} vs parallel {}",
            ser.step_seconds,
            par.step_seconds
        );
        // Serial init: only node 0's controller is busy.
        assert!(ser.report.memctrl_busy[0] > 0.0);
        assert_eq!(ser.report.memctrl_busy[1], 0.0);
        assert!(par.report.memctrl_busy[1] > 0.0);
    }

    #[test]
    fn fused_traces_validate_and_run() {
        let m = UvParams::uv2000(2).build();
        let w = small_workload();
        let ts = plan_fused(&m, &w, InitPolicy::ParallelFirstTouch).unwrap();
        let est = estimate(&m, &ts, &w, &SimConfig::default()).unwrap();
        assert!(est.step_seconds > 0.0);
        // Fused must move far fewer DRAM bytes than original.
        let orig = plan_original(&m, &w, InitPolicy::ParallelFirstTouch);
        let orig_est = estimate(&m, &orig, &w, &SimConfig::default()).unwrap();
        let fused_dram = est.report.mem_local_bytes + est.report.mem_remote_bytes;
        let orig_dram = orig_est.report.mem_local_bytes + orig_est.report.mem_remote_bytes;
        assert!(
            fused_dram < orig_dram / 5.0,
            "fused {fused_dram} vs original {orig_dram}"
        );
    }

    #[test]
    fn islands_traces_validate_and_run() {
        let m = UvParams::uv2000(4).build();
        let w = small_workload();
        let ts = plan_islands(&m, &w, Variant::A).unwrap();
        let est = estimate(&m, &ts, &w, &SimConfig::default()).unwrap();
        assert!(est.step_seconds > 0.0);
        // Islands use only intra-socket cache traffic — no remote pulls.
        assert_eq!(est.report.cache_remote_bytes, 0.0);
    }

    #[test]
    fn fused_has_remote_cache_traffic_on_many_sockets() {
        let m = UvParams::uv2000(4).build();
        let w = small_workload();
        let ts = plan_fused(&m, &w, InitPolicy::ParallelFirstTouch).unwrap();
        let est = estimate(&m, &ts, &w, &SimConfig::default()).unwrap();
        assert!(
            est.report.cache_remote_bytes > 0.0,
            "socket-boundary halo pulls must cross nodes"
        );
    }

    #[test]
    fn islands_beat_fused_on_many_sockets() {
        let m = UvParams::uv2000(8).build();
        let w = small_workload();
        let cfg = SimConfig::default();
        let fused = estimate(
            &m,
            &plan_fused(&m, &w, InitPolicy::ParallelFirstTouch).unwrap(),
            &w,
            &cfg,
        )
        .unwrap();
        let isl = estimate(&m, &plan_islands(&m, &w, Variant::A).unwrap(), &w, &cfg).unwrap();
        assert!(
            isl.step_seconds < fused.step_seconds,
            "islands {} vs fused {}",
            isl.step_seconds,
            fused.step_seconds
        );
    }

    /// Sums the flops carried by every op of a trace set.
    fn trace_flops(ts: &numa_sim::TraceSet) -> f64 {
        ts.ops
            .iter()
            .flatten()
            .map(|op| match *op {
                Op::Compute { flops } | Op::Stream { flops, .. } => flops,
                _ => 0.0,
            })
            .sum()
    }

    #[test]
    fn flop_accounting_is_strategy_independent_up_to_extras() {
        // Planned flops: original = fused (wavefront has no redundancy);
        // islands = fused + the part-boundary extra elements (a few
        // percent, exactly the Table 2 quantity).
        let m = UvParams::uv2000(4).build();
        let w = small_workload();
        let f_orig = trace_flops(&plan_original(&m, &w, InitPolicy::ParallelFirstTouch));
        let f_fused = trace_flops(&plan_fused(&m, &w, InitPolicy::ParallelFirstTouch).unwrap());
        let f_isl = trace_flops(&plan_islands(&m, &w, Variant::A).unwrap());
        assert!(
            (f_orig - f_fused).abs() / f_orig < 1e-9,
            "original {f_orig} vs fused {f_fused}"
        );
        assert!(f_isl > f_fused, "islands must pay extra elements");
        let extra = (f_isl - f_fused) / f_fused;
        assert!(
            extra < 0.20,
            "extra fraction {extra} should be a few percent on this grid"
        );
        // And it matches the overlap analysis exactly (flops-weighted
        // regions vs cell-weighted differ, so compare loosely).
        let analysis = crate::overlap::extra_elements(
            &mpdata_graph().0,
            &Partition::one_d(w.domain, Variant::A, 4).unwrap(),
        );
        let cells_extra = analysis.percent() / 100.0;
        assert!(
            (extra - cells_extra).abs() < 0.05,
            "trace extra {extra} vs analysis {cells_extra}"
        );
    }

    #[test]
    fn exchange_variant_validates_and_costs_more_on_many_sockets() {
        let w = small_workload();
        let cfg = SimConfig::default();
        let m = UvParams::uv2000(8).build();
        let rec = estimate(&m, &plan_islands(&m, &w, Variant::A).unwrap(), &w, &cfg)
            .unwrap()
            .total_seconds;
        let exc = estimate(
            &m,
            &plan_islands_exchange(&m, &w, Variant::A).unwrap(),
            &w,
            &cfg,
        )
        .unwrap();
        assert!(
            exc.total_seconds > rec,
            "exchange {} vs recompute {rec}",
            exc.total_seconds
        );
        // Exchange really does pull across islands...
        assert!(exc.report.cache_remote_bytes > 0.0);
        // ...and performs no redundant flops: trace flops equal fused's.
        let f_exc = trace_flops(&plan_islands_exchange(&m, &w, Variant::A).unwrap());
        let f_fused = trace_flops(&plan_fused(&m, &w, InitPolicy::ParallelFirstTouch).unwrap());
        assert!(
            (f_exc - f_fused).abs() / f_fused < 1e-9,
            "exchange {f_exc} vs fused {f_fused}"
        );
    }

    #[test]
    fn sub_socket_layout_plans() {
        let m = UvParams::uv2000(2).build();
        let w = small_workload();
        let layout = IslandLayout::sub_socket(&m, 4);
        let ts = plan_islands_with_layout(&m, &w, Variant::A, &layout).unwrap();
        let est = estimate(&m, &ts, &w, &SimConfig::default()).unwrap();
        assert!(est.step_seconds > 0.0);
    }
}
