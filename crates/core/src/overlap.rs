//! Extra-element analysis: the cost side of the islands-of-cores
//! trade-off.
//!
//! Each island computes every stage on the enlarged region from the
//! backward requirement analysis instead of receiving neighbour values.
//! The *extra elements* are the element updates performed beyond the
//! no-redundancy schedule; Table 2 of the paper reports them as a
//! percentage of the original version's updates for variants A and B.

use crate::partition::Partition;
use stencil_engine::{Region3, StageGraph};

/// Redundancy accounting for one partition of one stage graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExtraElements {
    /// Element updates of the no-redundancy schedule (original version):
    /// `Σ_stages |stage region over the whole domain|`.
    pub base_updates: usize,
    /// Element updates summed over all islands' enlarged schedules.
    pub total_updates: usize,
}

impl ExtraElements {
    /// Extra updates beyond the no-redundancy schedule.
    pub fn extra_updates(&self) -> usize {
        self.total_updates - self.base_updates
    }

    /// Extra updates as a percentage of the base (the unit of Table 2).
    pub fn percent(&self) -> f64 {
        100.0 * self.extra_updates() as f64 / self.base_updates as f64
    }
}

/// Counts element updates for `partition` under `graph`.
///
/// # Panics
///
/// Panics if the partition's domain is empty.
pub fn extra_elements(graph: &StageGraph, partition: &Partition) -> ExtraElements {
    let domain = partition.domain();
    assert!(!domain.is_empty(), "empty domain");
    let base_updates = schedule_updates(graph, domain, domain);
    let total_updates = partition
        .parts()
        .iter()
        .map(|&part| schedule_updates(graph, part, domain))
        .sum();
    ExtraElements {
        base_updates,
        total_updates,
    }
}

/// Extra element updates of each island separately, in partition
/// order: island `i`'s enlarged schedule minus its share of the
/// no-redundancy schedule (`Σ_s |part_i ∩ stage-s region over the
/// domain|`). Sums to [`ExtraElements::extra_updates`] because the
/// parts partition the domain, and — since the wavefront block
/// planner's per-stage regions disjointly tile the enlarged schedule —
/// equals the redundant-cell counts a traced islands run reports per
/// island (pinned by `crates/analysis/tests/observability.rs`).
///
/// # Panics
///
/// Panics if the partition's domain is empty.
pub fn per_island_extra(graph: &StageGraph, partition: &Partition) -> Vec<usize> {
    let domain = partition.domain();
    assert!(!domain.is_empty(), "empty domain");
    let base_regions = graph.required_regions(domain, domain);
    partition
        .parts()
        .iter()
        .map(|&part| {
            let enlarged = schedule_updates(graph, part, domain);
            let share: usize = base_regions
                .iter()
                .map(|&r| part.intersect(r).cells())
                .sum();
            enlarged - share
        })
        .collect()
}

/// Updates of the enlarged schedule computing `target` within `domain`.
fn schedule_updates(graph: &StageGraph, target: Region3, domain: Region3) -> usize {
    if target.is_empty() {
        return 0;
    }
    graph
        .required_regions(target, domain)
        .iter()
        .map(|r| r.cells())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{Partition, Variant};
    use mpdata::mpdata_graph;
    use stencil_engine::Region3;

    #[test]
    fn single_island_has_zero_extra() {
        let (g, _) = mpdata_graph();
        let d = Region3::of_extent(32, 16, 8);
        let p = Partition::one_d(d, Variant::A, 1).unwrap();
        let e = extra_elements(&g, &p);
        assert_eq!(e.extra_updates(), 0);
        assert_eq!(e.percent(), 0.0);
    }

    #[test]
    fn extra_grows_with_islands() {
        let (g, _) = mpdata_graph();
        let d = Region3::of_extent(64, 32, 8);
        let mut last = 0.0;
        for n in [2, 4, 8] {
            let p = Partition::one_d(d, Variant::A, n).unwrap();
            let e = extra_elements(&g, &p).percent();
            assert!(e > last, "islands {n}: {e} ≤ {last}");
            last = e;
        }
    }

    #[test]
    fn variant_a_beats_variant_b_on_wide_grids() {
        // Table 2's conclusion: when the first dimension is the longest,
        // cutting it produces smaller cut faces and fewer extra elements.
        let (g, _) = mpdata_graph();
        let d = Region3::of_extent(128, 64, 8);
        for n in [2, 4, 7] {
            let a = extra_elements(&g, &Partition::one_d(d, Variant::A, n).unwrap());
            let b = extra_elements(&g, &Partition::one_d(d, Variant::B, n).unwrap());
            assert!(
                a.percent() < b.percent(),
                "islands {n}: A {} ≥ B {}",
                a.percent(),
                b.percent()
            );
            // The grid is 2× longer in i, so B's cut face is 2× larger
            // and B pays ≈ 2× the extra elements (boundary-clipping
            // keeps it from being exact).
            let ratio = b.percent() / a.percent();
            assert!((1.6..2.4).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn extra_is_linear_in_island_count() {
        // Table 2 rows grow linearly: each additional cut adds the same
        // overlap volume (for interior cuts).
        let (g, _) = mpdata_graph();
        let d = Region3::of_extent(256, 32, 4);
        let e2 = extra_elements(&g, &Partition::one_d(d, Variant::A, 2).unwrap()).extra_updates();
        let e5 = extra_elements(&g, &Partition::one_d(d, Variant::A, 5).unwrap()).extra_updates();
        let per_cut_2 = e2 as f64;
        let per_cut_5 = e5 as f64 / 4.0;
        assert!(
            (per_cut_2 - per_cut_5).abs() / per_cut_2 < 0.05,
            "per-cut extra not constant: {per_cut_2} vs {per_cut_5}"
        );
    }

    #[test]
    fn per_island_extra_sums_to_total_extra() {
        let (g, _) = mpdata_graph();
        let d = Region3::of_extent(60, 24, 8);
        for (variant, n) in [
            (Variant::A, 1),
            (Variant::A, 3),
            (Variant::A, 4),
            (Variant::B, 2),
        ] {
            let p = Partition::one_d(d, variant, n).unwrap();
            let per = per_island_extra(&g, &p);
            assert_eq!(per.len(), n);
            let total = extra_elements(&g, &p).extra_updates();
            assert_eq!(per.iter().sum::<usize>(), total, "{variant:?} × {n}");
        }
        // Single island: nothing is redundant.
        let p1 = Partition::one_d(d, Variant::A, 1).unwrap();
        assert_eq!(per_island_extra(&g, &p1), vec![0]);
    }

    #[test]
    fn interior_islands_pay_more_than_boundary_islands() {
        // Interior slabs have two cut faces, boundary slabs one — so
        // the ends of a 1-D partition recompute less.
        let (g, _) = mpdata_graph();
        let d = Region3::of_extent(96, 24, 8);
        let per = per_island_extra(&g, &Partition::one_d(d, Variant::A, 4).unwrap());
        assert!(per[1] > per[0], "{per:?}");
        assert!(per[2] > per[3], "{per:?}");
    }

    #[test]
    fn grid2d_extra_exceeds_both_1d_variants_at_same_count() {
        // A 2×2 grid has cuts in both dimensions.
        let (g, _) = mpdata_graph();
        let d = Region3::of_extent(64, 64, 8);
        let g2 = extra_elements(&g, &Partition::grid2d(d, 2, 2).unwrap()).percent();
        let a4 = extra_elements(&g, &Partition::one_d(d, Variant::A, 4).unwrap()).percent();
        assert!(g2 > 0.0);
        // On a square grid, 4 islands in a 2×2 layout cut less total
        // face area than 4 slabs: 2 cuts vs 3 cuts.
        assert!(g2 < a4, "2×2 {g2} should beat 1D×4 {a4} on a square grid");
    }
}
