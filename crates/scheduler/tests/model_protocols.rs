//! Model-checker protocol suite as a test target (`--features model`).
//!
//! The same scenarios, matrix and traces `protocol-check` drives in CI,
//! pinned as tests so `cargo test --features model` exercises them
//! locally. Every test takes [`serial_guard`] — the ordering-override
//! map behind the minimality matrix is process-global.
#![cfg(feature = "model")]

use islands_modelcheck::{format_trace, Checker};
use work_scheduler::modelcheck_suite as suite;
use work_scheduler::modelcheck_suite::serial_guard;

fn check(name: &str) -> islands_modelcheck::Report {
    let proto = suite::protocols()
        .into_iter()
        .find(|p| p.name == name)
        .expect("known protocol");
    Checker::new(proto.cfg).check(proto.build)
}

#[test]
fn fast_protocols_explore_clean() {
    let _g = serial_guard();
    for name in [
        "barrier-handoff",
        "chunkq-claims",
        "latch-completion",
        "ring-publish",
    ] {
        let report = check(name);
        assert!(
            report.exhaustive_and_clean(),
            "{name}: {}",
            report.summary()
        );
        assert!(report.executions > 0, "{name}: explored nothing");
    }
}

#[test]
fn barrier_reuse_explores_clean() {
    let _g = serial_guard();
    let report = check("barrier-reuse");
    assert!(report.exhaustive_and_clean(), "{}", report.summary());
}

#[test]
fn chunkq_reuse_explores_clean() {
    let _g = serial_guard();
    let report = check("chunkq-reuse");
    assert!(report.exhaustive_and_clean(), "{}", report.summary());
}

/// The wrap-around drain race: a collector must never see a torn mix
/// of the push being overwritten and the push overwriting it, and
/// every lost event must be counted.
#[test]
fn ring_drain_explores_clean() {
    let _g = serial_guard();
    let report = check("ring-drain");
    assert!(report.exhaustive_and_clean(), "{}", report.summary());
}

/// The ordering-minimality matrix: weakening any load-bearing site one
/// step must be caught with a counterexample; every other site must
/// already sit at the weakest ordering its class admits.
#[test]
fn minimality_matrix_expectations_hold() {
    let _g = serial_guard();
    let mut caught = 0u32;
    for spec in suite::matrix() {
        match suite::run_weakened(&spec) {
            None => assert_eq!(
                spec.expect,
                suite::Expect::Minimal,
                "{}: expected a weakened run, but the ordering is already minimal",
                spec.site
            ),
            Some(report) => match spec.expect {
                suite::Expect::Caught => {
                    assert!(
                        report.counterexample.is_some(),
                        "{}: weakened mutant NOT caught — {}",
                        spec.site,
                        report.summary()
                    );
                    caught += 1;
                }
                suite::Expect::Minimal => panic!(
                    "{}: marked Minimal but {:?} still weakens",
                    spec.site, spec.current
                ),
            },
        }
    }
    // The issue's floor: at least four weakened-ordering mutants pinned.
    assert!(caught >= 4, "only {caught} mutants caught");
}

/// Spurious condvar wakeups are actually injected into the park loops:
/// the barrier's `cv.wait` recheck and the latch's `remaining != 0`
/// loop both survive them (the clean reports above) *and* the checker
/// really explored those paths.
#[test]
fn spurious_wakeups_are_exercised() {
    let _g = serial_guard();
    for name in ["barrier-handoff", "latch-completion"] {
        let report = check(name);
        assert!(
            report.spurious_injected > 0,
            "{name}: no spurious wakeup was ever injected"
        );
    }
}

/// The canonical lost-wakeup counterexample: weakening the releaser's
/// sleepers gate load to `Acquire` lets it miss the parked waiter's
/// increment (the classic store-buffering shape), so the notify is
/// skipped. Golden-pins the `--trace` pretty-printer output.
#[test]
fn gate_load_mutant_trace_matches_golden() {
    let _g = serial_guard();
    let spec = suite::find_site("barrier.sleepers-gate-load").expect("site in matrix");
    let report = suite::run_weakened(&spec).expect("site is weakenable");
    let ce = report.counterexample.expect("mutant must be caught");
    assert_eq!(ce.kind.name(), "lost-wakeup");
    let rendered = format_trace(&ce.trace);
    let golden = include_str!("golden/gate_load_trace.txt");
    assert_eq!(
        rendered, golden,
        "trace table diverged from golden/gate_load_trace.txt:\n{rendered}"
    );
}

/// Counterexample schedules are replayable: feeding the recorded
/// decision sequence back in reproduces the identical failure.
#[test]
fn counterexample_schedule_replays_deterministically() {
    let _g = serial_guard();
    let spec = suite::find_site("barrier.park-sleepers-inc-rmw").expect("site in matrix");
    let report = suite::run_weakened(&spec).expect("site is weakenable");
    let ce = report.counterexample.expect("mutant must be caught");
    let replay = suite::replay_weakened(&spec, &ce.schedule);
    let replayed = replay
        .counterexample
        .expect("replay reproduces the failure");
    assert_eq!(replayed.kind.name(), ce.kind.name());
    assert_eq!(
        format_trace(&replayed.trace),
        format_trace(&ce.trace),
        "replayed trace diverged"
    );
}
