//! The synchronization seam: one set of type names the runtime
//! protocols are written against, with two implementations selected at
//! compile time.
//!
//! * **Real builds** (default): `#[repr(transparent)]` `#[inline]`
//!   passthrough newtypes over `std::sync` — no dyn dispatch, no extra
//!   state, no allocation; the optimizer sees straight through them
//!   (the release zero-alloc pin in `mpdata` runs with this seam
//!   compiled in). [`ord`] compiles to its `default` argument.
//! * **Model builds** (`--features model`): the shim primitives from
//!   `islands-modelcheck`, which route every operation through the
//!   bounded exhaustive-interleaving checker when running on a model
//!   thread and fall back to the real primitive otherwise — so the
//!   regular unit tests keep passing under `--features model` too.
//!   [`ord`] consults the checker's weaken-override map, which is how
//!   the ordering-minimality matrix swaps a single named site one step
//!   weaker without recompiling.
//!
//! Every protocol `Ordering::` site goes through [`ord`] with a stable
//! `"file.site-name"` label; the labels double as the mutant names in
//! `protocol-check --mutant`.

pub(crate) use imp::*;

#[cfg(not(feature = "model"))]
mod imp {
    use std::sync::atomic::Ordering;

    /// Real-build ordering resolution: the named site always uses its
    /// default ordering. `#[inline(always)]` + constant propagation
    /// erase the site name entirely.
    #[inline(always)]
    pub(crate) fn ord(_site: &'static str, default: Ordering) -> Ordering {
        default
    }

    /// Passthrough `AtomicUsize` (label is compile-time discarded).
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub(crate) struct AtomicUsize(std::sync::atomic::AtomicUsize);

    impl AtomicUsize {
        #[inline(always)]
        pub(crate) fn with_label(v: usize, _label: &'static str) -> AtomicUsize {
            AtomicUsize(std::sync::atomic::AtomicUsize::new(v))
        }

        #[inline(always)]
        pub(crate) fn load(&self, ord: Ordering) -> usize {
            self.0.load(ord)
        }

        #[inline(always)]
        pub(crate) fn store(&self, v: usize, ord: Ordering) {
            self.0.store(v, ord)
        }

        #[inline(always)]
        pub(crate) fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
            self.0.fetch_add(v, ord)
        }

        #[inline(always)]
        pub(crate) fn fetch_sub(&self, v: usize, ord: Ordering) -> usize {
            self.0.fetch_sub(v, ord)
        }
    }

    /// Passthrough `AtomicBool`.
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub(crate) struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        #[inline(always)]
        pub(crate) fn with_label(v: bool, _label: &'static str) -> AtomicBool {
            AtomicBool(std::sync::atomic::AtomicBool::new(v))
        }

        #[inline(always)]
        pub(crate) fn load(&self, ord: Ordering) -> bool {
            self.0.load(ord)
        }

        #[inline(always)]
        pub(crate) fn store(&self, v: bool, ord: Ordering) {
            self.0.store(v, ord)
        }
    }

    /// Passthrough `Mutex`.
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub(crate) struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        #[inline(always)]
        pub(crate) fn with_label(v: T, _label: &'static str) -> Mutex<T> {
            Mutex(std::sync::Mutex::new(v))
        }

        #[inline(always)]
        pub(crate) fn lock(&self) -> std::sync::LockResult<std::sync::MutexGuard<'_, T>> {
            self.0.lock()
        }
    }

    /// Passthrough `Condvar`.
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub(crate) struct Condvar(std::sync::Condvar);

    impl Condvar {
        #[inline(always)]
        pub(crate) fn with_label(_label: &'static str) -> Condvar {
            Condvar(std::sync::Condvar::new())
        }

        #[inline(always)]
        pub(crate) fn wait<'a, T>(
            &self,
            guard: std::sync::MutexGuard<'a, T>,
        ) -> std::sync::LockResult<std::sync::MutexGuard<'a, T>> {
            self.0.wait(guard)
        }

        #[inline(always)]
        pub(crate) fn notify_all(&self) {
            self.0.notify_all()
        }
    }
}

#[cfg(feature = "model")]
mod imp {
    use std::sync::atomic::Ordering;

    /// Model-build ordering resolution: the weaken-override map may
    /// substitute a weaker ordering for this named site (the
    /// ordering-minimality matrix drives exactly one site at a time).
    pub(crate) fn ord(site: &'static str, default: Ordering) -> Ordering {
        islands_modelcheck::site::resolve(site, default)
    }

    pub(crate) use islands_modelcheck::{
        ModelAtomicBool as AtomicBool, ModelAtomicUsize as AtomicUsize, ModelCondvar as Condvar,
        ModelMutex as Mutex,
    };
}
