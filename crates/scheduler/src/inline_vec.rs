//! A fixed-capacity vector on the stack.
//!
//! The executors' hot loops assemble tiny per-stage argument lists — a
//! handful of input array references, output references, and debug
//! trackers — once per `(block, stage, rank)`. Heap-backed `Vec`s there
//! are the difference between an allocation-free steady state and
//! thousands of `malloc`/`free` pairs per time step. [`InlineVec`]
//! stores up to `N` elements inline and panics on overflow, which is
//! the right trade for capacities chosen from a static bound (the
//! widest MPDATA stage has seven inputs; the executors size `N` with
//! headroom and a test pins the bound).

use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};

/// A vector of at most `N` elements stored inline (no heap allocation).
///
/// Dereferences to `[T]`, so iteration and slice passing work as with
/// `Vec`. Pushing beyond `N` panics — capacity is a static planning
/// decision, not a runtime condition to recover from.
///
/// # Examples
///
/// ```
/// use work_scheduler::InlineVec;
/// let mut v: InlineVec<u32, 4> = InlineVec::new();
/// v.push(7);
/// v.push(9);
/// assert_eq!(&v[..], &[7, 9]);
/// v.clear();
/// assert!(v.is_empty());
/// ```
pub struct InlineVec<T, const N: usize> {
    buf: [MaybeUninit<T>; N],
    len: usize,
}

impl<T, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector.
    pub fn new() -> Self {
        InlineVec {
            buf: [const { MaybeUninit::uninit() }; N],
            len: 0,
        }
    }

    /// Number of initialized elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an element.
    ///
    /// # Panics
    ///
    /// Panics if the vector already holds `N` elements.
    pub fn push(&mut self, value: T) {
        assert!(
            self.len < N,
            "InlineVec capacity {N} exceeded — raise the static bound"
        );
        self.buf[self.len].write(value);
        self.len += 1;
    }

    /// Drops all elements, keeping the capacity.
    pub fn clear(&mut self) {
        // Move `len` to 0 first so a panicking destructor cannot lead a
        // later drop to touch already-dropped slots.
        let n = self.len;
        self.len = 0;
        for slot in &mut self.buf[..n] {
            // SAFETY: the first `n` slots were initialized by `push` and
            // are dropped exactly once here (len is already 0).
            unsafe { slot.assume_init_drop() };
        }
    }
}

impl<T, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        // SAFETY: the first `len` slots are initialized; MaybeUninit<T>
        // has the same layout as T.
        unsafe { &*(std::ptr::from_ref(&self.buf[..self.len]) as *const [T]) }
    }
}

impl<T, const N: usize> DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: as in `deref`.
        unsafe { &mut *(std::ptr::from_mut(&mut self.buf[..self.len]) as *mut [T]) }
    }
}

impl<T, const N: usize> Drop for InlineVec<T, N> {
    fn drop(&mut self) {
        self.clear();
    }
}

impl<T: std::fmt::Debug, const N: usize> std::fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn push_and_slice() {
        let mut v: InlineVec<i32, 3> = InlineVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        v.push(3);
        assert_eq!(v.len(), 3);
        assert_eq!(&v[..], &[1, 2, 3]);
        v[1] = 9;
        assert_eq!(v.iter().sum::<i32>(), 13);
    }

    #[test]
    #[should_panic(expected = "capacity 2 exceeded")]
    fn overflow_panics() {
        let mut v: InlineVec<u8, 2> = InlineVec::new();
        v.push(0);
        v.push(0);
        v.push(0);
    }

    #[test]
    fn drops_exactly_initialized_prefix() {
        let tok = Rc::new(());
        {
            let mut v: InlineVec<Rc<()>, 4> = InlineVec::new();
            v.push(Rc::clone(&tok));
            v.push(Rc::clone(&tok));
            assert_eq!(Rc::strong_count(&tok), 3);
            v.clear();
            assert_eq!(Rc::strong_count(&tok), 1);
            v.push(Rc::clone(&tok));
        }
        assert_eq!(Rc::strong_count(&tok), 1);
    }

    #[test]
    fn default_is_empty() {
        let v: InlineVec<String, 1> = InlineVec::default();
        assert!(v.is_empty());
    }
}
