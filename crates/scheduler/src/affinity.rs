//! Logical CPU identities and affinity maps.
//!
//! The paper binds OpenMP threads to physical cores with the Thread
//! Affinity interface so that neighbouring domain parts land on
//! NUMA-adjacent processors. This reproduction executes on arbitrary
//! hosts while *modelling* a specific machine, so affinity here is
//! logical: each pool worker is bound to a [`LogicalCpu`] of the modelled
//! machine, and that binding drives the NUMA placement decisions (which
//! island a worker belongs to, which node's memory it first-touches) and
//! the traces fed to the simulator. On the host, workers are ordinary
//! threads; the binding is a modelling identity, not an OS-level pin.

use std::fmt;

/// A logical CPU (core) of the modelled machine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LogicalCpu(pub usize);

impl LogicalCpu {
    /// The core index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LogicalCpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Maps pool workers to logical CPUs of the modelled machine.
///
/// # Examples
///
/// ```
/// use work_scheduler::{AffinityMap, LogicalCpu};
/// // Two islands of two cores: workers 0,1 → cpus 0,1; workers 2,3 → 8,9.
/// let m = AffinityMap::explicit(vec![
///     LogicalCpu(0), LogicalCpu(1), LogicalCpu(8), LogicalCpu(9),
/// ]);
/// assert_eq!(m.cpu_of(2), LogicalCpu(8));
/// assert_eq!(m.len(), 4);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AffinityMap {
    cpus: Vec<LogicalCpu>,
}

impl AffinityMap {
    /// Identity binding: worker `w` → `LogicalCpu(w)`.
    pub fn compact(workers: usize) -> Self {
        AffinityMap {
            cpus: (0..workers).map(LogicalCpu).collect(),
        }
    }

    /// Explicit binding: worker `w` → `cpus[w]`.
    ///
    /// # Panics
    ///
    /// Panics if two workers are bound to the same CPU.
    pub fn explicit(cpus: Vec<LogicalCpu>) -> Self {
        let mut seen = cpus.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), cpus.len(), "duplicate CPU in affinity map");
        AffinityMap { cpus }
    }

    /// The CPU worker `worker` is bound to.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    pub fn cpu_of(&self, worker: usize) -> LogicalCpu {
        self.cpus[worker]
    }

    /// Number of bound workers.
    pub fn len(&self) -> usize {
        self.cpus.len()
    }

    /// Whether the map binds no workers.
    pub fn is_empty(&self) -> bool {
        self.cpus.is_empty()
    }

    /// Iterates over `(worker, cpu)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, LogicalCpu)> + '_ {
        self.cpus.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_identity() {
        let m = AffinityMap::compact(4);
        assert_eq!(m.len(), 4);
        for w in 0..4 {
            assert_eq!(m.cpu_of(w), LogicalCpu(w));
        }
    }

    #[test]
    fn explicit_mapping() {
        let m = AffinityMap::explicit(vec![LogicalCpu(5), LogicalCpu(2)]);
        assert_eq!(m.cpu_of(0), LogicalCpu(5));
        assert_eq!(m.cpu_of(1), LogicalCpu(2));
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(0, LogicalCpu(5)), (1, LogicalCpu(2))]);
    }

    #[test]
    #[should_panic]
    fn duplicate_cpu_panics() {
        AffinityMap::explicit(vec![LogicalCpu(1), LogicalCpu(1)]);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", LogicalCpu(3)), "cpu3");
    }
}
