//! Sense-reversing barriers.
//!
//! The islands executor needs many small, cheap, *reusable* barriers: one
//! per work team (used 17 times per block) plus one global barrier per
//! time step. A centralized sense-reversing barrier serves both; unlike
//! `std::sync::Barrier` it hands out a *serial* flag and is trivially
//! shareable through `Arc`.
//!
//! # Waiting protocol
//!
//! Team barriers fire `stages × blocks` times per time step, so arrival
//! skew is usually tiny and a short spin wins; but when the machine is
//! oversubscribed (more workers than cores) a spinning waiter steals the
//! very CPU the straggler needs. `wait` therefore escalates in three
//! bounded phases: busy-spin ([`SPIN_ROUNDS`]), `yield_now`
//! ([`YIELD_ROUNDS`]), then parking on a `Condvar`. The park path uses
//! a `sleepers` counter so episodes that never park pay no mutex
//! traffic: the releaser only touches the lock when someone is (or is
//! about to be) asleep.

use crate::sync::{ord, AtomicBool, AtomicUsize, Condvar, Mutex};
use islands_trace::SpanKind;
use std::sync::atomic::Ordering;

/// Default busy-spin iterations before a waiter starts yielding.
#[cfg(not(feature = "model"))]
const SPIN_ROUNDS: u32 = 256;

/// Default `yield_now` iterations before a waiter parks on the condvar.
#[cfg(not(feature = "model"))]
const YIELD_ROUNDS: u32 = 64;

/// Model builds collapse the spin and yield phases to a single round
/// each: the checker's stale-read branching makes every extra loop
/// iteration a fresh choice point, and one round already exercises the
/// protocol-relevant outcomes (saw the flip early / fell through to
/// park).
#[cfg(feature = "model")]
const SPIN_ROUNDS: u32 = 1;

/// See [`SPIN_ROUNDS`].
#[cfg(feature = "model")]
const YIELD_ROUNDS: u32 = 1;

/// What a barrier synchronizes — tags its wait-time trace events so
/// the metrics can separate intra-island from once-per-step waits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BarrierScope {
    /// Synchronizes the ranks of one team (island) between stages.
    #[default]
    Team,
    /// Synchronizes all teams once per time step.
    Global,
}

impl BarrierScope {
    fn span_kind(self) -> SpanKind {
        match self {
            BarrierScope::Team => SpanKind::TeamBarrier,
            BarrierScope::Global => SpanKind::GlobalBarrier,
        }
    }
}

/// The spin and yield budgets appropriate for `workers` total runnable
/// workers on `cores` hardware threads.
///
/// At or below full subscription the default budgets apply: arrival
/// skew is tiny and a short spin beats a syscall. Oversubscribed, a
/// spinning waiter occupies the very CPU its straggler needs, so the
/// spin phase is dropped entirely and the yield phase shrinks with the
/// oversubscription ratio — the waiter gets out of the way and parks
/// almost immediately. Pure so the policy is unit-testable; the budgets
/// never exceed the defaults, which keeps model builds collapsed to one
/// round per phase.
pub fn spin_budget_for(workers: usize, cores: usize) -> (u32, u32) {
    let cores = cores.max(1);
    if workers <= cores {
        (SPIN_ROUNDS, YIELD_ROUNDS)
    } else {
        let ratio = workers.div_ceil(cores) as u32;
        (0, (YIELD_ROUNDS / ratio).clamp(1, YIELD_ROUNDS))
    }
}

/// Hardware threads available to this process (1 when undetectable).
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A reusable sense-reversing barrier for a fixed set of participants.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use work_scheduler::SenseBarrier;
/// let b = Arc::new(SenseBarrier::new(2));
/// let b2 = Arc::clone(&b);
/// let t = std::thread::spawn(move || { b2.wait(); });
/// let serial = b.wait();
/// t.join().unwrap();
/// // Exactly one participant of each episode observes `serial == true`
/// // (asserted across both threads in the crate's tests).
/// let _ = serial;
/// ```
#[derive(Debug)]
pub struct SenseBarrier {
    parties: usize,
    scope: BarrierScope,
    count: AtomicUsize,
    sense: AtomicBool,
    /// Waiters parked (or committed to parking) on `cv`. Nonzero tells
    /// the releaser it must take `lock` and notify.
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
    /// Busy-spin iterations before a waiter starts yielding (default
    /// [`SPIN_ROUNDS`]; see [`spin_budget_for`]). Plain data set at
    /// construction — the waiting protocol and its ordering audit are
    /// untouched by the budget.
    spin_rounds: u32,
    /// `yield_now` iterations before a waiter parks (default
    /// [`YIELD_ROUNDS`]).
    yield_rounds: u32,
}

impl SenseBarrier {
    /// Creates a team-scoped barrier for `parties` participants.
    ///
    /// # Panics
    ///
    /// Panics if `parties == 0`.
    pub fn new(parties: usize) -> Self {
        Self::scoped(parties, BarrierScope::Team)
    }

    /// Creates a barrier whose wait-time trace events carry `scope`.
    ///
    /// # Panics
    ///
    /// Panics if `parties == 0`.
    pub fn scoped(parties: usize, scope: BarrierScope) -> Self {
        Self::with_budget(parties, scope, (SPIN_ROUNDS, YIELD_ROUNDS))
    }

    /// Creates a barrier sized for a dispatch of `total_workers`
    /// runnable workers (of which this barrier synchronizes `parties`):
    /// the spin/yield budgets come from [`spin_budget_for`] against the
    /// machine's [`available_cores`], so oversubscribed runs park
    /// almost immediately instead of stealing the straggler's CPU.
    ///
    /// # Panics
    ///
    /// Panics if `parties == 0`.
    pub fn scoped_for_load(parties: usize, scope: BarrierScope, total_workers: usize) -> Self {
        Self::with_budget(
            parties,
            scope,
            spin_budget_for(total_workers, available_cores()),
        )
    }

    fn with_budget(parties: usize, scope: BarrierScope, budget: (u32, u32)) -> Self {
        assert!(parties > 0, "a barrier needs at least one participant");
        SenseBarrier {
            parties,
            scope,
            count: AtomicUsize::with_label(0, "barrier.count"),
            sense: AtomicBool::with_label(false, "barrier.sense"),
            sleepers: AtomicUsize::with_label(0, "barrier.sleepers"),
            lock: Mutex::with_label((), "barrier.lock"),
            cv: Condvar::with_label("barrier.cv"),
            spin_rounds: budget.0,
            yield_rounds: budget.1,
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// The scope this barrier's trace events are tagged with.
    pub fn scope(&self) -> BarrierScope {
        self.scope
    }

    /// Blocks until all `parties` threads have called `wait` for the
    /// current episode. Returns `true` for exactly one participant (the
    /// last to arrive), mirroring `std::sync::Barrier`'s leader flag.
    ///
    /// Waiters spin briefly, then yield, then park (see the module
    /// docs); none of the phases allocates. When a trace session is
    /// recording, each wait emits one span whose `aux` splits the wait
    /// into exact spin/yield/park nanoseconds; with tracing off the
    /// only extra cost is one relaxed load and a branch.
    pub fn wait(&self) -> bool {
        if islands_trace::is_enabled() {
            self.wait_traced()
        } else {
            self.wait_plain()
        }
    }

    /// The untraced wait: this is the exact pre-instrumentation code
    /// path, kept clock-free so the disabled mode measures nothing.
    fn wait_plain(&self) -> bool {
        // ordering: Relaxed — demoted from SeqCst with the checker's
        // blessing (`demoted_sites` in the model suite): coherence
        // alone keeps the prime exact, because every participant
        // observed the previous episode's flip on its way out of the
        // last wait (or the initial value at construction), so a staler
        // value is no longer visible to it.
        let my_sense = !self
            .sense
            .load(ord("barrier.sense-prime-load", Ordering::Relaxed));
        // ordering: AcqRel — arrivals synchronize pairwise through the
        // counter so the last arriver happens-after every earlier
        // arrival (and the work preceding it); the release half makes
        // this thread's pre-barrier writes visible to the releaser.
        let arrived = self
            .count
            .fetch_add(1, ord("barrier.count-arrive-rmw", Ordering::AcqRel))
            + 1;
        if arrived == self.parties {
            self.release(my_sense);
            true
        } else {
            for _ in 0..self.spin_rounds {
                // ordering: Acquire — demoted from SeqCst with the
                // checker's blessing: returning here must acquire the
                // flip (it publishes every participant's pre-barrier
                // writes), but the fast path needs no SC slot — the
                // SeqCst park recheck below is the lost-wakeup safety
                // net when this load runs stale.
                if self
                    .sense
                    .load(ord("barrier.sense-spin-load", Ordering::Acquire))
                    == my_sense
                {
                    return false;
                }
                std::hint::spin_loop();
            }
            for _ in 0..self.yield_rounds {
                // ordering: Acquire — same contract (and same demotion)
                // as the spin load.
                if self
                    .sense
                    .load(ord("barrier.sense-yield-load", Ordering::Acquire))
                    == my_sense
                {
                    return false;
                }
                std::thread::yield_now();
            }
            self.park(my_sense);
            false
        }
    }

    /// The traced wait: identical protocol, with timestamps taken at
    /// the phase boundaries so `spin + yield + park` equals the span
    /// duration *exactly* (each phase ends where the next begins).
    fn wait_traced(&self) -> bool {
        let kind = self.scope.span_kind();
        let t0 = islands_trace::now_ns();
        // ordering: Relaxed — same site contract (and demotion) as the
        // untraced prime read in `wait_plain`.
        let my_sense = !self
            .sense
            .load(ord("barrier.sense-prime-load", Ordering::Relaxed));
        // ordering: AcqRel — same site contract as `wait_plain`.
        let arrived = self
            .count
            .fetch_add(1, ord("barrier.count-arrive-rmw", Ordering::AcqRel))
            + 1;
        if arrived == self.parties {
            self.release(my_sense);
            // The serial participant never waits: a zero-length marker
            // keeps the episode visible without skewing wait totals.
            islands_trace::record(kind, t0, t0, 0, 0, [0; 3]);
            true
        } else {
            let mut released = false;
            for _ in 0..self.spin_rounds {
                // ordering: Acquire — same site (and demotion) as the
                // untraced spin load.
                if self
                    .sense
                    .load(ord("barrier.sense-spin-load", Ordering::Acquire))
                    == my_sense
                {
                    released = true;
                    break;
                }
                std::hint::spin_loop();
            }
            let t1 = islands_trace::now_ns();
            let mut t2 = t1;
            if !released {
                for _ in 0..self.yield_rounds {
                    // ordering: Acquire — same site (and demotion) as
                    // the untraced yield load.
                    if self
                        .sense
                        .load(ord("barrier.sense-yield-load", Ordering::Acquire))
                        == my_sense
                    {
                        released = true;
                        break;
                    }
                    std::thread::yield_now();
                }
                t2 = islands_trace::now_ns();
            }
            let t3 = if released {
                t2
            } else {
                self.park(my_sense);
                islands_trace::now_ns()
            };
            islands_trace::record(kind, t0, t3, 0, 0, [t1 - t0, t2 - t1, t3 - t2]);
            false
        }
    }

    /// Last-arrival release: reset the counter and flip the sense,
    /// which releases everyone waiting.
    fn release(&self, my_sense: bool) {
        // ordering: Relaxed — demoted from Release with the checker's
        // blessing (see `demoted_sites` in the model suite): the next
        // episode's arrivals already happen-after this store through
        // the SC sense flip below, which every participant reads (SC
        // load) before touching the counter again; an explicit release
        // edge on the reset adds nothing the flip does not provide.
        let reset_ord = ord("barrier.count-reset-store", Ordering::Relaxed);
        self.count.store(0, reset_ord);
        // ordering: SeqCst — the flip must take a slot in the single
        // total order *before* the sleepers gate below: SC store, then
        // SC load. Weakening either side re-creates the classic
        // store-buffering lost wakeup (caught by the matrix).
        self.sense
            .store(my_sense, ord("barrier.sense-flip-store", Ordering::SeqCst));
        // SC total order makes the sleepers check sound: a waiter
        // increments `sleepers` *before* re-reading `sense`. If we
        // read 0 here, that increment is ordered after this load, so
        // the waiter's subsequent sense read is ordered after our
        // store above and it never parks. If we read nonzero, we
        // acquire the lock — serializing with the waiter, who either
        // sees the flipped sense under the lock or is already inside
        // `cv.wait` — and the notify cannot be lost.
        // ordering: SeqCst — the load half of the store-buffering
        // pattern described above.
        if self
            .sleepers
            .load(ord("barrier.sleepers-gate-load", Ordering::SeqCst))
            > 0
        {
            let _g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.cv.notify_all();
        }
    }

    /// Condvar park for a waiter that exhausted its spin and yield
    /// budgets.
    fn park(&self, my_sense: bool) {
        let mut g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
        // ordering: SeqCst — the increment must be ordered before this
        // thread's sense re-read below (program order within the SC
        // total order), mirroring the releaser's flip-then-gate-load;
        // this is the other half of the no-lost-wakeup argument.
        self.sleepers
            .fetch_add(1, ord("barrier.park-sleepers-inc-rmw", Ordering::SeqCst));
        // ordering: SeqCst — if the releaser's gate load missed our
        // increment, this read is ordered after its SC flip and must
        // see the new sense, so we never park on a completed episode.
        while self
            .sense
            .load(ord("barrier.park-sense-recheck-load", Ordering::SeqCst))
            != my_sense
        {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        // ordering: Relaxed — demoted from SeqCst with the checker's
        // blessing: RMW atomicity keeps the count exact, and a releaser
        // whose gate load misses this decrement only reads a stale-high
        // value — an extra lock/notify round, never a lost wakeup.
        self.sleepers
            .fetch_sub(1, ord("barrier.park-sleepers-dec-rmw", Ordering::Relaxed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_party_returns_serial_immediately() {
        let b = SenseBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
        assert_eq!(b.parties(), 1);
    }

    #[test]
    fn reusable_across_many_episodes() {
        let n = 4;
        let episodes = 200;
        let b = Arc::new(SenseBarrier::new(n));
        let counter = Arc::new(AtomicUsize::new(0));
        let serials = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..n {
            let b = Arc::clone(&b);
            let counter = Arc::clone(&counter);
            let serials = Arc::clone(&serials);
            handles.push(std::thread::spawn(move || {
                for e in 0..episodes {
                    counter.fetch_add(1, Ordering::SeqCst);
                    if b.wait() {
                        serials.fetch_add(1, Ordering::SeqCst);
                    }
                    // After the barrier, every participant must observe all
                    // `n` increments of this episode.
                    let c = counter.load(Ordering::SeqCst);
                    assert!(c >= n * (e + 1), "episode {e}: saw {c}");
                    b.wait();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Exactly one serial thread per first-wait episode.
        assert_eq!(serials.load(Ordering::SeqCst), episodes);
    }

    #[test]
    fn parked_waiters_survive_slow_release() {
        // Force the park path: one straggler arrives long after the
        // others have exhausted their spin and yield budgets. The
        // episode must still complete (no lost wakeup) and repeat.
        let n = 3;
        let b = Arc::new(SenseBarrier::new(n));
        let mut handles = Vec::new();
        for w in 0..n - 1 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for _ in 0..5 {
                    b.wait();
                }
                w
            }));
        }
        for _ in 0..5 {
            std::thread::sleep(std::time::Duration::from_millis(20));
            b.wait();
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn parked_waiter_burns_no_cpu() {
        // A waiter that outlives its spin/yield budget must sleep on the
        // condvar, not churn `yield_now`. Measure the waiter's thread
        // CPU time across a 150 ms straggler window.
        fn thread_cpu_ns() -> u64 {
            let mut ts = std::mem::MaybeUninit::<libc_timespec>::uninit();
            #[repr(C)]
            #[allow(non_camel_case_types)]
            struct libc_timespec {
                tv_sec: i64,
                tv_nsec: i64,
            }
            extern "C" {
                fn clock_gettime(clk_id: i32, tp: *mut libc_timespec) -> i32;
            }
            const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
            let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, ts.as_mut_ptr()) };
            assert_eq!(rc, 0);
            let ts = unsafe { ts.assume_init() };
            ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
        }
        let b = Arc::new(SenseBarrier::new(2));
        let b2 = Arc::clone(&b);
        let waiter = std::thread::spawn(move || {
            let before = thread_cpu_ns();
            b2.wait();
            thread_cpu_ns() - before
        });
        std::thread::sleep(std::time::Duration::from_millis(150));
        b.wait();
        let spent = waiter.join().unwrap();
        // Spinning/yielding for 150 ms would burn roughly that much CPU;
        // a parked thread costs microseconds. Generous slack for the
        // bounded spin phase and scheduler noise.
        assert!(
            spent < 50_000_000,
            "parked waiter burned {spent} ns of CPU while waiting"
        );
    }

    #[test]
    #[should_panic]
    fn zero_parties_panics() {
        let _ = SenseBarrier::new(0);
    }

    #[test]
    fn spin_budget_full_below_subscription() {
        // At or below full subscription the default budgets apply.
        assert_eq!(spin_budget_for(1, 8), (SPIN_ROUNDS, YIELD_ROUNDS));
        assert_eq!(spin_budget_for(8, 8), (SPIN_ROUNDS, YIELD_ROUNDS));
    }

    #[test]
    fn spin_budget_shrinks_toward_park_when_oversubscribed() {
        // Oversubscribed: no spinning at all, and the yield phase
        // shrinks with the oversubscription ratio (never to zero — a
        // single yield gives the straggler one scheduling chance before
        // the waiter takes the park path).
        let (spin2, yield2) = spin_budget_for(16, 8);
        assert_eq!(spin2, 0);
        assert!(yield2 <= YIELD_ROUNDS.div_ceil(2) && yield2 >= 1);
        let (spin_huge, yield_huge) = spin_budget_for(10_000, 8);
        assert_eq!(spin_huge, 0);
        assert_eq!(yield_huge, 1);
        // Degenerate core counts clamp to one core (no division by
        // zero): 4 workers on "no" cores is 4× oversubscription. The
        // `.max(1)` mirrors the budget floor — under the model
        // feature's collapsed YIELD_ROUNDS the quotient rounds to 0.
        assert_eq!(spin_budget_for(4, 0), (0, (YIELD_ROUNDS / 4).max(1)));
    }

    #[test]
    fn oversubscribed_budget_barrier_still_correct() {
        // A barrier that parks almost immediately must keep the exact
        // same protocol guarantees.
        let n = 4;
        let b = Arc::new(SenseBarrier::scoped_for_load(
            n,
            BarrierScope::Team,
            10_000, // wildly oversubscribed → (0, 1) budget
        ));
        let serials = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..n {
            let b = Arc::clone(&b);
            let serials = Arc::clone(&serials);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    if b.wait() {
                        serials.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(serials.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn traced_wait_phases_sum_exactly_and_park_dominates() {
        // One straggler forces the waiter through spin -> yield -> park;
        // the recorded span must split the wait into phases that sum to
        // the duration *exactly*, with park dominating a 40 ms wait.
        // Events are tagged island 77 so concurrent tests in this
        // binary (whose barriers also record while the session is
        // live) cannot pollute the assertions.
        let session = islands_trace::Session::start();
        let b = Arc::new(SenseBarrier::scoped(2, BarrierScope::Global));
        assert_eq!(b.scope(), BarrierScope::Global);
        let b2 = Arc::clone(&b);
        let waiter = std::thread::spawn(move || {
            islands_trace::set_island_rank(77, 0);
            b2.wait()
        });
        std::thread::sleep(std::time::Duration::from_millis(40));
        islands_trace::set_island_rank(77, 1);
        let serial = b.wait();
        let waiter_serial = waiter.join().unwrap();
        let drained = session.finish();
        assert!(serial ^ waiter_serial, "exactly one serial participant");
        let events: Vec<_> = drained
            .events
            .iter()
            .filter(|t| t.ev.island == 77)
            .collect();
        assert_eq!(events.len(), 2, "one span per participant");
        for t in &events {
            assert_eq!(t.ev.kind, islands_trace::SpanKind::GlobalBarrier);
            assert_eq!(
                t.ev.aux.iter().sum::<u64>(),
                t.ev.dur_ns,
                "spin+yield+park must sum to the wait"
            );
        }
        // The serial (last) arrival records a zero-length marker.
        assert!(events.iter().any(|t| t.ev.dur_ns == 0));
        // The early arrival waited ~40 ms, overwhelmingly parked.
        let w = events
            .iter()
            .find(|t| t.ev.dur_ns > 0)
            .expect("waiter span");
        assert!(w.ev.dur_ns >= 20_000_000, "waited {} ns", w.ev.dur_ns);
        assert!(
            w.ev.aux[2] > w.ev.aux[0] + w.ev.aux[1],
            "park {} must dominate spin {} + yield {}",
            w.ev.aux[2],
            w.ev.aux[0],
            w.ev.aux[1]
        );
    }
}
