//! Sense-reversing barriers.
//!
//! The islands executor needs many small, cheap, *reusable* barriers: one
//! per work team (used 17 times per block) plus one global barrier per
//! time step. A centralized sense-reversing barrier serves both; unlike
//! `std::sync::Barrier` it hands out a *serial* flag and is trivially
//! shareable through `Arc`.
//!
//! # Waiting protocol
//!
//! Team barriers fire `stages × blocks` times per time step, so arrival
//! skew is usually tiny and a short spin wins; but when the machine is
//! oversubscribed (more workers than cores) a spinning waiter steals the
//! very CPU the straggler needs. `wait` therefore escalates in three
//! bounded phases: busy-spin ([`SPIN_ROUNDS`]), `yield_now`
//! ([`YIELD_ROUNDS`]), then parking on a `Condvar`. The park path uses
//! a `sleepers` counter so episodes that never park pay no mutex
//! traffic: the releaser only touches the lock when someone is (or is
//! about to be) asleep.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Busy-spin iterations before a waiter starts yielding.
const SPIN_ROUNDS: u32 = 256;

/// `yield_now` iterations before a waiter parks on the condvar.
const YIELD_ROUNDS: u32 = 64;

/// A reusable sense-reversing barrier for a fixed set of participants.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use work_scheduler::SenseBarrier;
/// let b = Arc::new(SenseBarrier::new(2));
/// let b2 = Arc::clone(&b);
/// let t = std::thread::spawn(move || { b2.wait(); });
/// let serial = b.wait();
/// t.join().unwrap();
/// // Exactly one participant of each episode observes `serial == true`
/// // (asserted across both threads in the crate's tests).
/// let _ = serial;
/// ```
#[derive(Debug)]
pub struct SenseBarrier {
    parties: usize,
    count: AtomicUsize,
    sense: AtomicBool,
    /// Waiters parked (or committed to parking) on `cv`. Nonzero tells
    /// the releaser it must take `lock` and notify.
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl SenseBarrier {
    /// Creates a barrier for `parties` participants.
    ///
    /// # Panics
    ///
    /// Panics if `parties == 0`.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one participant");
        SenseBarrier {
            parties,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Blocks until all `parties` threads have called `wait` for the
    /// current episode. Returns `true` for exactly one participant (the
    /// last to arrive), mirroring `std::sync::Barrier`'s leader flag.
    ///
    /// Waiters spin briefly, then yield, then park (see the module
    /// docs); none of the phases allocates.
    pub fn wait(&self) -> bool {
        let my_sense = !self.sense.load(Ordering::SeqCst);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.parties {
            // Last arrival: reset the counter and flip the sense, which
            // releases everyone waiting below.
            self.count.store(0, Ordering::Release);
            self.sense.store(my_sense, Ordering::SeqCst);
            // SC total order makes the sleepers check sound: a waiter
            // increments `sleepers` *before* re-reading `sense`. If we
            // read 0 here, that increment is ordered after this load, so
            // the waiter's subsequent sense read is ordered after our
            // store above and it never parks. If we read nonzero, we
            // acquire the lock — serializing with the waiter, who either
            // sees the flipped sense under the lock or is already inside
            // `cv.wait` — and the notify cannot be lost.
            if self.sleepers.load(Ordering::SeqCst) > 0 {
                let _g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
                self.cv.notify_all();
            }
            true
        } else {
            for _ in 0..SPIN_ROUNDS {
                if self.sense.load(Ordering::SeqCst) == my_sense {
                    return false;
                }
                std::hint::spin_loop();
            }
            for _ in 0..YIELD_ROUNDS {
                if self.sense.load(Ordering::SeqCst) == my_sense {
                    return false;
                }
                std::thread::yield_now();
            }
            let mut g = self.lock.lock().unwrap_or_else(|e| e.into_inner());
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            while self.sense.load(Ordering::SeqCst) != my_sense {
                g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_party_returns_serial_immediately() {
        let b = SenseBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
        assert_eq!(b.parties(), 1);
    }

    #[test]
    fn reusable_across_many_episodes() {
        let n = 4;
        let episodes = 200;
        let b = Arc::new(SenseBarrier::new(n));
        let counter = Arc::new(AtomicUsize::new(0));
        let serials = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..n {
            let b = Arc::clone(&b);
            let counter = Arc::clone(&counter);
            let serials = Arc::clone(&serials);
            handles.push(std::thread::spawn(move || {
                for e in 0..episodes {
                    counter.fetch_add(1, Ordering::SeqCst);
                    if b.wait() {
                        serials.fetch_add(1, Ordering::SeqCst);
                    }
                    // After the barrier, every participant must observe all
                    // `n` increments of this episode.
                    let c = counter.load(Ordering::SeqCst);
                    assert!(c >= n * (e + 1), "episode {e}: saw {c}");
                    b.wait();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Exactly one serial thread per first-wait episode.
        assert_eq!(serials.load(Ordering::SeqCst), episodes);
    }

    #[test]
    fn parked_waiters_survive_slow_release() {
        // Force the park path: one straggler arrives long after the
        // others have exhausted their spin and yield budgets. The
        // episode must still complete (no lost wakeup) and repeat.
        let n = 3;
        let b = Arc::new(SenseBarrier::new(n));
        let mut handles = Vec::new();
        for w in 0..n - 1 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for _ in 0..5 {
                    b.wait();
                }
                w
            }));
        }
        for _ in 0..5 {
            std::thread::sleep(std::time::Duration::from_millis(20));
            b.wait();
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn parked_waiter_burns_no_cpu() {
        // A waiter that outlives its spin/yield budget must sleep on the
        // condvar, not churn `yield_now`. Measure the waiter's thread
        // CPU time across a 150 ms straggler window.
        fn thread_cpu_ns() -> u64 {
            let mut ts = std::mem::MaybeUninit::<libc_timespec>::uninit();
            #[repr(C)]
            #[allow(non_camel_case_types)]
            struct libc_timespec {
                tv_sec: i64,
                tv_nsec: i64,
            }
            extern "C" {
                fn clock_gettime(clk_id: i32, tp: *mut libc_timespec) -> i32;
            }
            const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
            let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, ts.as_mut_ptr()) };
            assert_eq!(rc, 0);
            let ts = unsafe { ts.assume_init() };
            ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
        }
        let b = Arc::new(SenseBarrier::new(2));
        let b2 = Arc::clone(&b);
        let waiter = std::thread::spawn(move || {
            let before = thread_cpu_ns();
            b2.wait();
            thread_cpu_ns() - before
        });
        std::thread::sleep(std::time::Duration::from_millis(150));
        b.wait();
        let spent = waiter.join().unwrap();
        // Spinning/yielding for 150 ms would burn roughly that much CPU;
        // a parked thread costs microseconds. Generous slack for the
        // bounded spin phase and scheduler noise.
        assert!(
            spent < 50_000_000,
            "parked waiter burned {spent} ns of CPU while waiting"
        );
    }

    #[test]
    #[should_panic]
    fn zero_parties_panics() {
        let _ = SenseBarrier::new(0);
    }
}
