//! Sense-reversing barriers.
//!
//! The islands executor needs many small, cheap, *reusable* barriers: one
//! per work team (used 17 times per block) plus one global barrier per
//! time step. A centralized sense-reversing barrier with bounded spinning
//! followed by yielding serves both; unlike `std::sync::Barrier` it hands
//! out a *serial* flag and is trivially shareable through `Arc`.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A reusable sense-reversing barrier for a fixed set of participants.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use work_scheduler::SenseBarrier;
/// let b = Arc::new(SenseBarrier::new(2));
/// let b2 = Arc::clone(&b);
/// let t = std::thread::spawn(move || { b2.wait(); });
/// let serial = b.wait();
/// t.join().unwrap();
/// // Exactly one participant of each episode observes `serial == true`
/// // (asserted across both threads in the crate's tests).
/// let _ = serial;
/// ```
#[derive(Debug)]
pub struct SenseBarrier {
    parties: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SenseBarrier {
    /// Creates a barrier for `parties` participants.
    ///
    /// # Panics
    ///
    /// Panics if `parties == 0`.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one participant");
        SenseBarrier {
            parties,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Blocks until all `parties` threads have called `wait` for the
    /// current episode. Returns `true` for exactly one participant (the
    /// last to arrive), mirroring `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> bool {
        let my_sense = !self.sense.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.parties {
            // Last arrival: reset the counter and flip the sense, which
            // releases everyone spinning below.
            self.count.store(0, Ordering::Release);
            self.sense.store(my_sense, Ordering::Release);
            true
        } else {
            let mut spins = 0_u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_party_returns_serial_immediately() {
        let b = SenseBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
        assert_eq!(b.parties(), 1);
    }

    #[test]
    fn reusable_across_many_episodes() {
        let n = 4;
        let episodes = 200;
        let b = Arc::new(SenseBarrier::new(n));
        let counter = Arc::new(AtomicUsize::new(0));
        let serials = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..n {
            let b = Arc::clone(&b);
            let counter = Arc::clone(&counter);
            let serials = Arc::clone(&serials);
            handles.push(std::thread::spawn(move || {
                for e in 0..episodes {
                    counter.fetch_add(1, Ordering::SeqCst);
                    if b.wait() {
                        serials.fetch_add(1, Ordering::SeqCst);
                    }
                    // After the barrier, every participant must observe all
                    // `n` increments of this episode.
                    let c = counter.load(Ordering::SeqCst);
                    assert!(c >= n * (e + 1), "episode {e}: saw {c}");
                    b.wait();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Exactly one serial thread per first-wait episode.
        assert_eq!(serials.load(Ordering::SeqCst), episodes);
    }

    #[test]
    #[should_panic]
    fn zero_parties_panics() {
        let _ = SenseBarrier::new(0);
    }
}
