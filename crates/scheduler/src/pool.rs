//! A persistent pool of affinity-bound workers with scoped broadcasts.
//!
//! The paper replaces OpenMP's worksharing with a proprietary scheduler
//! that only uses OpenMP to create threads and pin them; all work
//! distribution is explicit. [`WorkerPool`] plays that role here: it
//! spawns one long-lived thread per logical CPU of the modelled machine
//! and executes *broadcasts* — a closure run once on every worker, with
//! the pool guaranteeing completion before the call returns, so the
//! closure may borrow from the caller's stack.

use crate::affinity::{AffinityMap, LogicalCpu};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Context handed to a broadcast closure on each worker.
#[derive(Clone, Copy, Debug)]
pub struct WorkerCtx {
    /// Dense worker index in `0..pool.len()`.
    pub worker: usize,
    /// Logical CPU of the modelled machine this worker is bound to.
    pub cpu: LogicalCpu,
}

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of persistent worker threads.
///
/// # Examples
///
/// ```
/// use work_scheduler::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// let pool = WorkerPool::new(4);
/// let hits = AtomicUsize::new(0);
/// pool.broadcast(|ctx| {
///     hits.fetch_add(ctx.worker + 1, Ordering::SeqCst);
/// });
/// assert_eq!(hits.load(Ordering::SeqCst), 1 + 2 + 3 + 4);
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    affinity: AffinityMap,
    senders: Vec<Sender<Task>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads bound compactly (worker `w` → CPU `w`).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        Self::with_affinity(AffinityMap::compact(workers))
    }

    /// Spawns one thread per entry of `affinity`.
    ///
    /// # Panics
    ///
    /// Panics if the map is empty.
    pub fn with_affinity(affinity: AffinityMap) -> Self {
        assert!(!affinity.is_empty(), "a pool needs at least one worker");
        let mut senders = Vec::with_capacity(affinity.len());
        let mut handles = Vec::with_capacity(affinity.len());
        for (worker, cpu) in affinity.iter() {
            let (tx, rx) = unbounded::<Task>();
            senders.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("worker-{worker}-{cpu}"))
                .spawn(move || {
                    while let Ok(task) = rx.recv() {
                        task();
                    }
                })
                .expect("failed to spawn pool worker");
            handles.push(handle);
        }
        WorkerPool {
            affinity,
            senders,
            handles,
        }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// Whether the pool has no workers (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// The affinity map the pool was built with.
    pub fn affinity(&self) -> &AffinityMap {
        &self.affinity
    }

    /// Runs `f` once on every worker and returns when all have finished.
    ///
    /// `f` may borrow from the caller because the call blocks until every
    /// worker is done with it.
    ///
    /// # Panics
    ///
    /// If any worker's invocation panics, the panic payload is re-raised
    /// on the caller after all workers have finished the broadcast.
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn(WorkerCtx) + Sync,
    {
        let n = self.len();
        let remaining = Arc::new(AtomicUsize::new(n));
        let panic_slot: Arc<Mutex<Option<Box<dyn std::any::Any + Send>>>> =
            Arc::new(Mutex::new(None));
        let f_ref: &(dyn Fn(WorkerCtx) + Sync) = &f;
        // SAFETY: the tasks sent below are joined before this function
        // returns (the completion loop waits for `remaining == 0`), so the
        // erased borrow of `f` never outlives the call. This is the
        // classic scoped-pool pattern.
        let f_static: &'static (dyn Fn(WorkerCtx) + Sync) =
            unsafe { std::mem::transmute(f_ref) };
        for (worker, cpu) in self.affinity.iter() {
            let remaining = Arc::clone(&remaining);
            let panic_slot = Arc::clone(&panic_slot);
            let ctx = WorkerCtx { worker, cpu };
            let task: Task = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(|| f_static(ctx)));
                if let Err(payload) = result {
                    let mut slot = panic_slot.lock();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
                remaining.fetch_sub(1, Ordering::AcqRel);
            });
            self.senders[worker]
                .send(task)
                .expect("pool worker exited prematurely");
        }
        let mut spins = 0_u32;
        while remaining.load(Ordering::Acquire) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        let payload = panic_slot.lock().take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channels terminates the worker loops.
        self.senders.clear();
        for h in self.handles.drain(..) {
            // A worker that panicked outside a broadcast already delivered
            // its payload; ignore the join error to keep Drop infallible.
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn broadcast_runs_on_every_worker_once() {
        let pool = WorkerPool::new(6);
        let mask = AtomicUsize::new(0);
        pool.broadcast(|ctx| {
            mask.fetch_or(1 << ctx.worker, Ordering::SeqCst);
        });
        assert_eq!(mask.load(Ordering::SeqCst), 0b111111);
    }

    #[test]
    fn broadcast_may_borrow_stack_data() {
        let pool = WorkerPool::new(3);
        let data = [1_usize, 2, 3];
        let sum = AtomicUsize::new(0);
        pool.broadcast(|ctx| {
            sum.fetch_add(data[ctx.worker], Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn broadcasts_are_sequentially_consistent() {
        let pool = WorkerPool::new(4);
        let mut total = 0_usize;
        for round in 0..50 {
            let c = AtomicUsize::new(0);
            pool.broadcast(|_| {
                c.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(c.load(Ordering::SeqCst), 4, "round {round}");
            total += c.load(Ordering::SeqCst);
        }
        assert_eq!(total, 200);
    }

    #[test]
    fn panic_in_worker_propagates() {
        let pool = WorkerPool::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(|ctx| {
                if ctx.worker == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err());
        // The pool must remain usable after a propagated panic.
        let c = AtomicUsize::new(0);
        pool.broadcast(|_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(c.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn pool_churn_is_clean() {
        // Creating and dropping many pools must neither leak threads
        // visibly (joins in Drop) nor deadlock.
        for n in 1..=16 {
            let pool = WorkerPool::new(1 + n % 4);
            let c = AtomicUsize::new(0);
            pool.broadcast(|_| {
                c.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(c.load(Ordering::SeqCst), pool.len());
            drop(pool);
        }
    }

    #[test]
    fn interleaved_broadcasts_and_team_runs() {
        use crate::team::TeamSpec;
        let pool = WorkerPool::new(6);
        for round in 0..20 {
            let c = AtomicUsize::new(0);
            pool.broadcast(|_| {
                c.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(c.load(Ordering::SeqCst), 6, "round {round}");
            let spec = TeamSpec::even(6, if round % 2 == 0 { 2 } else { 3 });
            let t = AtomicUsize::new(0);
            pool.run_teams(&spec, |ctx| {
                ctx.team_barrier();
                t.fetch_add(1, Ordering::SeqCst);
                ctx.team_barrier();
            });
            assert_eq!(t.load(Ordering::SeqCst), 6, "round {round}");
        }
    }

    #[test]
    fn affinity_is_visible_in_ctx() {
        use crate::affinity::LogicalCpu;
        let pool = WorkerPool::with_affinity(AffinityMap::explicit(vec![
            LogicalCpu(7),
            LogicalCpu(3),
        ]));
        let seen = Mutex::new(Vec::new());
        pool.broadcast(|ctx| {
            seen.lock().push((ctx.worker, ctx.cpu));
        });
        let mut v = seen.lock().clone();
        v.sort();
        assert_eq!(v, vec![(0, LogicalCpu(7)), (1, LogicalCpu(3))]);
    }
}
